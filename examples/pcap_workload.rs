//! Workloads from pcap traces: §3.5 says the user may provide "a pcap
//! trace or a more abstract profile". This example generates traffic,
//! writes a real pcap file, reads it back, derives the abstract profile
//! Clara needs, and predicts against it.
//!
//! ```sh
//! cargo run --release -p clara-core --example pcap_workload
//! ```

use clara_core::{Clara, SizeDist, TraceGenerator, WorkloadProfile};
use clara_workload::pcap::{read_pcap, write_pcap};

fn main() {
    // Synthesize a skewed, mixed-protocol trace and write it as a pcap
    // (real Ethernet/IPv4/TCP/UDP bytes with valid checksums).
    let trace = TraceGenerator::new(2026)
        .packets(20_000)
        .flows(5_000)
        .zipf(1.1)
        .tcp_share(0.8)
        .rate_pps(250_000.0)
        .sizes(SizeDist::imix())
        .generate();
    let mut pcap_bytes = Vec::new();
    write_pcap(&mut pcap_bytes, &trace).expect("pcap writes");
    let path = std::env::temp_dir().join("clara_workload.pcap");
    std::fs::write(&path, &pcap_bytes).expect("pcap file");
    println!("wrote {} packets to {} ({} kB)", trace.len(), path.display(), pcap_bytes.len() / 1024);

    // Read it back — this is where a real deployment would start, with a
    // capture from the production network.
    let restored = read_pcap(&pcap_bytes[..]).expect("pcap parses");
    let profile = WorkloadProfile::from_trace(&restored);
    println!("\nderived workload profile:");
    println!("  flows        : {}", profile.flows);
    println!("  TCP share    : {:.0}%", profile.tcp_share * 100.0);
    println!("  avg payload  : {:.0} B", profile.avg_payload);
    println!("  rate         : {:.0} kpps", profile.rate_pps / 1000.0);
    println!("  Zipf exponent: {:.1}", profile.zipf_alpha);

    // Predict a heavy-hitter detector against the captured traffic.
    let nic = clara_core::profiles::netronome_agilio_cx40();
    let clara = Clara::new(&nic);
    let prediction = clara
        .predict(&clara_core::nfs::heavy_hitter::source(4_096), &profile)
        .expect("predicts");
    println!(
        "\nheavy-hitter detector on this traffic: {:.2} µs/packet, {:.2} Mpps max",
        prediction.avg_latency_ns / 1000.0,
        prediction.throughput_pps / 1e6
    );
    let _ = std::fs::remove_file(&path);
}
