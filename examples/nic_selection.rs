//! NIC selection: "identify suitable SmartNIC models for her workloads"
//! (§1) — the same two NFs predicted across every built-in LNIC profile,
//! before buying any hardware.
//!
//! ```sh
//! cargo run --release -p clara-core --example nic_selection
//! ```

use clara_core::{Clara, WorkloadProfile};

fn main() {
    // Two very different NFs: a lookup-bound NAT and a payload-bound DPI.
    let candidates: Vec<(&str, String, WorkloadProfile)> = vec![
        (
            "NAT (lookup-bound)",
            clara_core::nfs::nat::source(),
            WorkloadProfile::paper_default(),
        ),
        (
            "DPI (payload-bound)",
            clara_core::nfs::dpi::source(65_536),
            WorkloadProfile {
                avg_payload: 1400.0,
                max_payload: 1400,
                ..WorkloadProfile::paper_default()
            },
        ),
    ];

    for (label, source, workload) in &candidates {
        println!("== {label} @ {:.0} kpps ==", workload.rate_pps / 1000.0);
        println!(
            "{:<24} {:>12} {:>12} {:>14}",
            "NIC", "latency", "max rate", "energy/pkt"
        );
        for nic in clara_core::profiles::all_profiles() {
            // One-time microbenchmark extraction per NIC.
            let clara = Clara::new(&nic);
            match clara.predict(source, workload) {
                Ok(p) => println!(
                    "{:<24} {:>9.2} µs {:>9.2} Mpps {:>11.1} nJ",
                    nic.name,
                    p.avg_latency_ns / 1000.0,
                    p.throughput_pps / 1e6,
                    p.energy_nj_per_packet
                ),
                Err(e) => println!("{:<24} unsuitable ({e})", nic.name),
            }
        }
        println!();
    }
    println!("Reading the table: the SoC's fast cores win raw latency; the pipeline");
    println!("ASIC wins energy on header-only work but collapses on payload scans");
    println!("(its per-byte streaming cost is prohibitive); the Netronome's NPU army");
    println!("wins when per-packet work parallelizes across many flows.");
}
