//! Offload planning: should this NF be offloaded at all, fully, or
//! partially? (§6: "whether to offload a particular NF, how to perform
//! an effective port".)
//!
//! ```sh
//! cargo run --release -p clara-core --example offload_planner
//! ```

use clara_core::{Clara, HostParams, WorkloadProfile};

fn main() {
    let nic = clara_core::profiles::netronome_agilio_cx40();
    let clara = Clara::new(&nic);

    // A chain with a cheap header front-end and an expensive DPI tail.
    let source = clara_core::nfs::dpi::source(1 << 20);
    let workload = WorkloadProfile {
        avg_payload: 1400.0,
        max_payload: 1400,
        ..WorkloadProfile::paper_default()
    };
    let analysis = clara.analyze(&source).expect("compiles");

    // Full-offload prediction with the auto strategy.
    let full = clara.predict(&source, &workload).expect("predicts");
    println!(
        "full offload: {:.2} µs/packet, bottleneck {}",
        full.avg_latency_ns / 1000.0,
        full.bottleneck
    );

    // Partial-offload plans: every prefix cut of the dataflow graph,
    // priced across NIC, PCIe, and host.
    let plans = clara_core::predict_partial(
        &analysis.module,
        clara.params(),
        &workload,
        HostParams::default(),
    )
    .expect("plans");
    println!("\npartial-offload plans (cut = dataflow nodes kept on the NIC):");
    for p in &plans {
        println!(
            "  cut {:>2}: {:>9.2} µs {}",
            p.cut,
            p.latency_ns / 1000.0,
            if p.crosses_pcie { "(crosses PCIe)" } else { "" }
        );
    }
    let best = plans
        .iter()
        .min_by(|a, b| a.latency_ns.partial_cmp(&b.latency_ns).unwrap())
        .unwrap();
    let n = analysis.graph.nodes.len();
    let verdict = if best.cut == n {
        "offload the whole NF".to_string()
    } else if best.cut == 0 {
        "keep the NF on the host".to_string()
    } else {
        format!("split: keep the first {} node(s) on the NIC", best.cut)
    };
    println!("\nrecommendation: {verdict} ({:.2} µs/packet)", best.latency_ns / 1000.0);

    // And the porting hints for whatever lands on the NIC.
    println!("\n{}", clara.porting_hints(&source, &workload).expect("hints"));
}
