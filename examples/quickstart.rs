//! Quickstart: predict an unported NF's performance on a SmartNIC in
//! four steps.
//!
//! ```sh
//! cargo run --release -p clara-core --example quickstart
//! ```

use clara_core::{Clara, WorkloadProfile};

fn main() {
    // 1. Pick a SmartNIC model. Building `Clara` runs the one-time
    //    microbenchmark suite against it (§3.2: "a one-time effort for
    //    each SmartNIC"; on hardware this would take minutes).
    println!("extracting NIC parameters (one-time per NIC)...");
    let nic = clara_core::profiles::netronome_agilio_cx40();
    let clara = Clara::new(&nic);

    // 2. Write (or load) the network function in its original, unported
    //    form. This one is a stateful firewall using eBPF-style APIs.
    let source = r#"
        nf firewall {
            state conns: map<u64, u64>[65536];

            fn handle(pkt: packet) -> action {
                bpf.parse(pkt);
                let key: u64 = hash(pkt.src_ip, pkt.dst_ip, pkt.src_port, pkt.dst_port);
                let established: u64 = conns.lookup(key);
                if (established == 0) {
                    if (pkt.is_syn) {
                        conns.insert(key, 1);
                        return forward;
                    }
                    return drop;
                }
                return forward;
            }
        }
    "#;

    // 3. Describe the target traffic (§3.5: a pcap trace or an abstract
    //    profile such as "80% TCP ... 10k concurrent flows").
    let workload = WorkloadProfile {
        flows: 10_000,
        tcp_share: 0.8,
        syn_share: 0.05,
        avg_payload: 300.0,
        max_payload: 1400,
        rate_pps: 500_000.0,
        zipf_alpha: 0.9,
    };

    // 4. Predict — no porting, no hardware.
    let prediction = clara.predict(source, &workload).expect("NF compiles and maps");

    println!("\npredicted performance on {}:", clara.params().nic_name);
    println!(
        "  average latency : {:.0} cycles ({:.2} µs)",
        prediction.avg_latency_cycles,
        prediction.avg_latency_ns / 1000.0
    );
    for class in &prediction.per_class {
        println!(
            "  {:<8} ({:>4.1}% of packets): {:.0} cycles",
            class.name,
            class.share * 100.0,
            class.latency_cycles
        );
    }
    println!(
        "  sustainable throughput : {:.2} Mpps (bottleneck: {})",
        prediction.throughput_pps / 1e6,
        prediction.bottleneck
    );
    println!("  energy : {:.0} nJ/packet", prediction.energy_nj_per_packet);

    println!("\n{}", clara.porting_hints(source, &workload).expect("hints"));
}
