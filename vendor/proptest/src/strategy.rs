//! The [`Strategy`] trait and its combinators.
//!
//! A strategy is a recipe for generating values of one type from a
//! seeded RNG. Unlike real proptest there is no shrinking tree — a
//! strategy produces plain values.

use rand::Rng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// The RNG handed to strategies (deterministic, seeded per test case).
pub type TestRng = rand::rngs::StdRng;

/// A recipe for generating values of type `Self::Value`.
pub trait Strategy {
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generate a value, then use it to pick a follow-up strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Build recursive structures: `self` generates leaves and
    /// `recurse` wraps an inner strategy into a branch strategy. The
    /// `desired_size` / `expected_branch_size` hints are accepted for
    /// API compatibility but unused (no shrinking here).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            base: self.boxed(),
            recurse: Rc::new(move |inner| recurse(inner).boxed()),
            depth,
        }
    }

    /// Type-erase this strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    #[allow(clippy::type_complexity)]
    recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        // Pick a nesting depth for this value, then stack the branch
        // constructor that many times over the leaf strategy.
        let levels = rng.gen_range(0..=self.depth);
        let mut strategy = self.base.clone();
        for _ in 0..levels {
            strategy = (self.recurse)(strategy);
        }
        strategy.new_value(rng)
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

/// Build a [`OneOf`]; used by the `prop_oneof!` macro.
pub fn one_of<T>(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
    OneOf { options }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].new_value(rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f64);

/// Strategies for tuples of strategies, generating tuples of values.
macro_rules! tuple_strategies {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// String-pattern strategy: `"\\PC*"` (any non-control characters) is
/// supported — the one regex the workspace's tests use. Any other
/// pattern falls back to generating itself literally.
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        if *self == "\\PC*" {
            let len = rng.gen_range(0usize..128);
            let mut out = String::new();
            for _ in 0..len {
                out.push(arbitrary_printable_char(rng));
            }
            out
        } else {
            (*self).to_string()
        }
    }
}

/// A non-control character, biased toward bytes the NFC lexer actually
/// discriminates on (ASCII punctuation and identifiers) with a tail of
/// arbitrary non-ASCII scalars.
fn arbitrary_printable_char(rng: &mut TestRng) -> char {
    const INTERESTING: &[u8] = b"{}()[]<>;:=!&|^%*/+-.,#\"'_ abz019";
    match rng.gen_range(0u32..10) {
        0..=5 => char::from(rng.gen_range(0x20u8..0x7f)),
        6..=7 => char::from(INTERESTING[rng.gen_range(0..INTERESTING.len())]),
        _ => loop {
            let scalar = rng.gen_range(0x80u32..0xffff);
            if let Some(c) = char::from_u32(scalar) {
                if !c.is_control() {
                    break c;
                }
            }
        },
    }
}
