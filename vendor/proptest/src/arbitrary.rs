//! `any::<T>()` — whole-domain strategies for primitive types.

use crate::strategy::{Strategy, TestRng};
use rand::{Rng, RngCore};
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values spanning many magnitudes (no NaN/inf; code
        // under test validates those separately where it matters).
        let mantissa: f64 = rng.gen();
        let exp = rng.gen_range(-64i32..64);
        (mantissa - 0.5) * (exp as f64).exp2()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        loop {
            if let Some(c) = char::from_u32(rng.gen_range(0u32..0x11_0000)) {
                return c;
            }
        }
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
