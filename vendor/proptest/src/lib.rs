//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the subset of proptest the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive`, range and `any::<T>()` strategies, tuple
//! strategies, `proptest::collection::vec`, `prop_oneof!`, and the
//! `proptest!` / `prop_assert!` macros backed by a deterministic
//! seeded test runner.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its assertion message, not a minimized input) and deterministic
//! per-test seeding instead of OS entropy. Both are acceptable for this
//! repository: tests assert *properties*, and deterministic seeds make
//! CI failures reproducible by construction.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted-free choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Assert a condition inside a `proptest!` body, failing the case (not
/// panicking) so the runner can report which generated input broke it.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert!` for equality, with the two values in the message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`",
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`",
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// Define property tests. Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     /// docs
///     #[test]
///     fn name(x in 0u32..10, y in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr;
     $(
         $(#[$meta:meta])*
         fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                runner.run_named(stringify!($name), ($($strategy,)+), |($($arg,)+)| {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}
