//! The case runner behind the `proptest!` macro.

use crate::strategy::{Strategy, TestRng};
use rand::SeedableRng;

/// Runner configuration. Only `cases` is meaningful here; the struct is
/// non-exhaustive in spirit (construct via `with_cases` / `default`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property does not hold; the test fails.
    Fail(String),
    /// The input was rejected (e.g. by a precondition); the case is
    /// skipped without failing the test.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "property failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

/// Drives a strategy + property closure for the configured number of
/// cases, with deterministic per-(test, case) seeds so any failure is
/// reproducible.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    pub fn run_named<S, F>(&mut self, name: &str, strategy: S, mut test: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        for case in 0..u64::from(self.config.cases) {
            let seed = fnv1a(name.as_bytes()) ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut rng = TestRng::seed_from_u64(seed);
            let value = strategy.new_value(&mut rng);
            match test(value) {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(reason)) => {
                    panic!(
                        "[{name}] property failed at case {case} (seed {seed:#018x}): {reason}"
                    );
                }
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn runs_the_configured_number_of_cases() {
        let mut count = 0u32;
        let mut runner = TestRunner::new(ProptestConfig::with_cases(17));
        runner.run_named("counting", (0u32..10,), |(_,)| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 17);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_the_reason() {
        let mut runner = TestRunner::new(ProptestConfig::default());
        runner.run_named("failing", (0u32..10,), |(v,)| {
            prop_assert!(v > 100, "v was {v}");
            Ok(())
        });
    }

    #[test]
    fn rejects_are_skipped() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(8));
        runner.run_named("rejecting", (0u32..10,), |(_,)| {
            Err(TestCaseError::reject("precondition"))
        });
    }
}
