//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::{Strategy, TestRng};
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Length specifications accepted by [`vec`]: an exact length, an
/// exclusive range, or an inclusive range.
pub trait IntoLenRange {
    /// (min, max) inclusive bounds on the length.
    fn bounds(&self) -> (usize, usize);
}

impl IntoLenRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoLenRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty length range");
        (self.start, self.end - 1)
    }
}

impl IntoLenRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty length range");
        (*self.start(), *self.end())
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `len`.
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

/// Generate vectors whose elements come from `element` and whose length
/// falls in `len`.
pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
    let (min, max) = len.bounds();
    VecStrategy { element, min, max }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.min..=self.max);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
