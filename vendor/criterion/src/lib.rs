//! Vendored, dependency-free stand-in for the `criterion` benchmark
//! harness (the build environment cannot reach crates.io).
//!
//! It keeps the same surface the workspace benches use — groups,
//! throughput annotations, `iter`, `iter_batched` — and does a simple
//! warmup + timed-run measurement, printing mean wall-clock time per
//! iteration. No statistics, plots, or saved baselines.

use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (std's is used directly
/// by newer call sites).
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The stub runs one setup per
/// iteration regardless; the variants exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Work-per-iteration annotation (printed, not analyzed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// Measurement state handed to `bench_function` closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn measure<F: FnMut()>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            routine();
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.measure(|| {
            black_box(routine());
        });
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let start = Instant::now();
        let mut spent_setup = Duration::ZERO;
        for _ in 0..self.iters {
            let before = Instant::now();
            let input = setup();
            spent_setup += before.elapsed();
            black_box(routine(input));
        }
        self.elapsed = start.elapsed().saturating_sub(spent_setup);
    }

    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        self.iter_batched(&mut setup, |mut input| routine(&mut input), _size);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mut f: F) {
    // Calibrate: run once, then pick an iteration count targeting a
    // short, stable measurement window.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(200);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;
    b.iters = iters;
    f(&mut b);
    let mean_ns = b.elapsed.as_nanos() as f64 / iters as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
            format!("  {:.1} MiB/s", n as f64 / (mean_ns / 1e9) / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:.1} Kelem/s", n as f64 / (mean_ns / 1e9) / 1e3)
        }
        None => String::new(),
    };
    println!("{id:<44} {:>12.1} ns/iter{rate}", mean_ns);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(&format!("{}/{id}", self.name), self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), throughput: None, _parent: self }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_the_closure() {
        let mut calls = 0u64;
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn batched_runs_setup_per_iteration() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
