//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small API subset it actually uses: `StdRng`
//! seeded from a `u64`, the `Rng` extension methods `gen`, `gen_range`,
//! and `gen_bool`, and uniform sampling over integer and float ranges.
//!
//! The generator is xoshiro256++ seeded via splitmix64 — deterministic
//! across platforms, which is what the trace generator and the tests
//! rely on.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly (`rng.gen_range(lo..hi)`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the stand-in for rand's
    /// `StdRng`; not cryptographically secure, which Clara never needs).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..=20);
            assert!((10..=20).contains(&v));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let i = rng.gen_range(-4i8..5);
            assert!((-4..5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            lo = lo.min(f);
            hi = hi.max(f);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }
}
