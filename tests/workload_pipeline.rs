//! Cross-crate integration of the workload path: generator → packet
//! bytes → pcap → parsed trace → abstract profile → prediction, and
//! consistency between the CIR interpreter and the simulator substrate.

use clara_core::sim::simulate;
use clara_core::{nfs, Clara, SizeDist, TraceGenerator, WorkloadProfile};
use clara_workload::pcap::{read_pcap, write_pcap};
use std::sync::OnceLock;

fn clara() -> &'static Clara {
    static C: OnceLock<Clara> = OnceLock::new();
    C.get_or_init(|| Clara::new(&clara_core::profiles::netronome_agilio_cx40()))
}

/// A trace survives the pcap round trip and the derived profile predicts
/// within a few percent of the profile derived from the original.
#[test]
fn pcap_roundtrip_preserves_predictions() {
    let trace = TraceGenerator::new(99)
        .packets(4_000)
        .flows(500)
        .tcp_share(0.7)
        .sizes(SizeDist::Fixed(256))
        .generate();
    let mut bytes = Vec::new();
    write_pcap(&mut bytes, &trace).unwrap();
    let restored = read_pcap(&bytes[..]).unwrap();

    let p_orig = WorkloadProfile::from_trace(&trace);
    let p_rest = WorkloadProfile::from_trace(&restored);
    assert_eq!(p_orig.flows, p_rest.flows);
    assert!((p_orig.tcp_share - p_rest.tcp_share).abs() < 1e-9);

    let src = nfs::firewall::source(65_536);
    let a = clara().predict(&src, &p_orig).unwrap().avg_latency_cycles;
    let b = clara().predict(&src, &p_rest).unwrap().avg_latency_cycles;
    assert!(
        (a - b).abs() / a < 0.02,
        "pcap roundtrip moved the prediction: {a:.0} vs {b:.0}"
    );
}

/// The interpreter (used for path profiling) and the simulator (used for
/// ground truth) agree on NF semantics: the firewall's admission
/// behaviour shows up as the SYN-vs-established latency split in both.
#[test]
fn interpreter_and_simulator_agree_on_paths() {
    let src = nfs::firewall::source(4_096);
    let module = clara().analyze(&src).unwrap().module;

    // Interpreter: first packet of a flow without SYN is dropped.
    let mut state = clara_cir::HashState::new();
    let data = clara_cir::PacketInfo::tcp(7, 8, 9, 10, 64);
    assert!(!clara_cir::execute(&module.handle, &data, &mut state, 100_000).unwrap().forward);
    let syn = data.with_syn();
    assert!(clara_cir::execute(&module.handle, &syn, &mut state, 100_000).unwrap().forward);
    assert!(clara_cir::execute(&module.handle, &data, &mut state, 100_000).unwrap().forward);

    // Prediction: the workload's SYN class is visible in the per-class
    // profile (paper §3.5's example output).
    let wl = WorkloadProfile { syn_share: 0.1, ..WorkloadProfile::paper_default() };
    let p = clara().predict(&src, &wl).unwrap();
    assert!(p.per_class.iter().any(|c| c.name == "tcp-syn"));
}

/// Figure-1 variants: the simulated ordering matches physical intuition,
/// end to end through the public API.
#[test]
fn fig1_orderings_hold() {
    let nic = clara_core::profiles::netronome_agilio_cx40();
    for (nf, variants) in nfs::fig1_variants() {
        let lat: Vec<f64> = variants
            .iter()
            .map(|v| {
                let trace = v.workload.to_trace(1_200, 5);
                simulate(&nic, &v.program, &trace).unwrap().avg_latency_cycles
            })
            .collect();
        match nf.as_str() {
            // NAT: accelerator verify beats software recompute.
            "NAT" => assert!(lat[0] < lat[1], "{nf}: {lat:?}"),
            // DPI: latency increases with packet size.
            "DPI" => assert!(lat[0] < lat[1] && lat[1] < lat[2], "{nf}: {lat:?}"),
            // LPM: latency increases with rule count.
            "LPM" => assert!(lat[0] < lat[1] && lat[1] < lat[2], "{nf}: {lat:?}"),
            // HH: latency increases with packet rate.
            "HH" => assert!(lat[0] < lat[2], "{nf}: {lat:?}"),
            // FW: CTM beats IMEM beats cold EMEM; skew beats uniform.
            "FW" => {
                assert!(lat[0] < lat[1], "{nf}: {lat:?}");
                assert!(lat[1] < lat[2], "{nf}: {lat:?}");
                assert!(lat[3] < lat[2], "{nf}: {lat:?}");
            }
            other => panic!("unexpected NF {other}"),
        }
    }
}

/// Different NIC profiles rank differently by workload — the §1 use case
/// "identify suitable SmartNIC models". The pipeline ASIC must win NAT
/// energy but lose DPI outright.
#[test]
fn nic_ranking_depends_on_workload() {
    let nat = nfs::nat::source();
    let dpi = nfs::dpi::source(65_536);
    let wl_dpi = WorkloadProfile {
        avg_payload: 1400.0,
        max_payload: 1400,
        ..WorkloadProfile::paper_default()
    };
    let netronome = clara();
    let asic = Clara::new(&clara_core::profiles::pipeline_asic());

    let nat_energy_netronome =
        netronome.predict(&nat, &WorkloadProfile::paper_default()).unwrap().energy_nj_per_packet;
    let nat_energy_asic =
        asic.predict(&nat, &WorkloadProfile::paper_default()).unwrap().energy_nj_per_packet;
    assert!(
        nat_energy_asic < nat_energy_netronome,
        "ASIC should win NAT energy: {nat_energy_asic} vs {nat_energy_netronome}"
    );

    let dpi_netronome = netronome.predict(&dpi, &wl_dpi).unwrap().avg_latency_cycles;
    let dpi_asic = asic.predict(&dpi, &wl_dpi).unwrap().avg_latency_cycles;
    // In wall-clock terms (different clocks!).
    let netronome_us = dpi_netronome / 0.8 / 1000.0;
    let asic_us = dpi_asic / 1.2 / 1000.0;
    assert!(
        asic_us > 3.0 * netronome_us,
        "ASIC should lose payload scans: {asic_us:.1}µs vs {netronome_us:.1}µs"
    );
}
