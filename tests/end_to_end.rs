//! End-to-end integration: the full Clara pipeline (source → frontend →
//! CIR → dataflow → microbenchmark parameters → ILP mapping → prediction)
//! validated against the simulator substrate, NF by NF.
//!
//! These tests encode the paper's headline claims as assertions, with
//! smaller sweeps than the `clara-bench` harnesses so they stay fast.

use clara_core::sim::simulate;
use clara_core::{nfs, Clara, WorkloadProfile};
use clara_predict::{predict_with_options, PredictOptions};
use std::sync::OnceLock;

fn clara() -> &'static Clara {
    static C: OnceLock<Clara> = OnceLock::new();
    C.get_or_init(|| Clara::new(&clara_core::profiles::netronome_agilio_cx40()))
}

/// Steady-state simulated latency (cold-start half discarded).
fn simulate_steady(program: &clara_core::sim::NicProgram, wl: &WorkloadProfile, packets: usize) -> f64 {
    let nic = clara_core::profiles::netronome_agilio_cx40();
    let trace = wl.to_trace(packets, 42);
    let r = simulate(&nic, program, &trace).expect("port simulates");
    let tail = &r.latencies[r.latencies.len() / 2..];
    tail.iter().sum::<u64>() as f64 / tail.len().max(1) as f64
}

fn rel_err(predicted: f64, actual: f64) -> f64 {
    (predicted - actual).abs() / actual
}

/// Figure 3c in miniature: NAT predictions within 10% of the simulated
/// port across payload sizes (paper: 7%).
#[test]
fn nat_prediction_tracks_simulation() {
    let module = clara().analyze(&nfs::nat::source()).unwrap().module;
    let program = nfs::nat::ported();
    for payload in [200.0, 800.0, 1400.0] {
        let wl = WorkloadProfile {
            avg_payload: payload,
            max_payload: payload as usize,
            ..WorkloadProfile::paper_default()
        };
        let predicted = clara().predict_module(&module, &wl).unwrap().avg_latency_cycles;
        let actual = simulate_steady(&program, &wl, 3_000);
        assert!(
            rel_err(predicted, actual) < 0.10,
            "NAT @ {payload}B: predicted {predicted:.0} vs actual {actual:.0}"
        );
    }
}

/// Figure 3a in miniature: LPM (software match/action strategy, rules
/// pinned to DRAM) within 20% per point (paper: 12% mean).
#[test]
fn lpm_prediction_tracks_simulation() {
    let wl = WorkloadProfile::paper_default();
    for entries in [5_000u64, 20_000] {
        let module = clara().analyze(&nfs::lpm::source(entries)).unwrap().module;
        let predicted = predict_with_options(
            &module,
            clara().params(),
            &wl,
            PredictOptions {
                software_only: true,
                pin_state: vec![("routes".into(), "emem".into())],
                ..PredictOptions::default()
            },
        )
        .unwrap()
        .avg_latency_cycles;
        let actual = simulate_steady(&nfs::lpm::ported_scan(entries), &wl, 800);
        assert!(
            rel_err(predicted, actual) < 0.20,
            "LPM @ {entries} rules: predicted {predicted:.0} vs actual {actual:.0}"
        );
    }
}

/// Figure 3b in miniature: the VNF chain within 12% per point
/// (paper: 3% mean on their testbed).
#[test]
fn vnf_prediction_tracks_simulation() {
    let module = clara()
        .analyze(&nfs::vnf::source(nfs::vnf::AUTOMATON_ENTRIES, nfs::vnf::STAT_BUCKETS))
        .unwrap()
        .module;
    let program = nfs::vnf::ported();
    for payload in [400.0, 1200.0] {
        let wl = WorkloadProfile {
            avg_payload: payload,
            max_payload: payload as usize,
            ..WorkloadProfile::paper_default()
        };
        let predicted = clara().predict_module(&module, &wl).unwrap().avg_latency_cycles;
        let actual = simulate_steady(&program, &wl, 1_200);
        assert!(
            rel_err(predicted, actual) < 0.12,
            "VNF @ {payload}B: predicted {predicted:.0} vs actual {actual:.0}"
        );
    }
}

/// The latency curves keep the paper's shapes: linear in rules (3a) and
/// in payload (3b, 3c).
#[test]
fn curve_shapes_are_linear() {
    // LPM: 4x the rules ≈ 4x the latency.
    let wl = WorkloadProfile::paper_default();
    let lat = |entries: u64| simulate_steady(&nfs::lpm::ported_scan(entries), &wl, 600);
    let (small, large) = (lat(5_000), lat(20_000));
    let ratio = large / small;
    assert!((3.0..5.0).contains(&ratio), "LPM scaling {ratio:.2}");

    // NAT: latency strictly increases with payload.
    let nat = nfs::nat::ported();
    let mut prev = 0.0;
    for payload in [200.0, 600.0, 1000.0, 1400.0] {
        let wl = WorkloadProfile {
            avg_payload: payload,
            max_payload: payload as usize,
            ..WorkloadProfile::paper_default()
        };
        let cur = simulate_steady(&nat, &wl, 1_500);
        assert!(cur > prev, "NAT not monotone at {payload}B: {cur} <= {prev}");
        prev = cur;
    }
}

/// Every corpus NF makes it through the entire pipeline and yields a
/// finite, positive prediction.
#[test]
fn whole_corpus_predicts() {
    let wl = WorkloadProfile::paper_default();
    for (name, src) in [
        ("nat", nfs::nat::source()),
        ("dpi", nfs::dpi::source(65_536)),
        ("fw", nfs::firewall::source(65_536)),
        ("lpm", nfs::lpm::source(10_000)),
        ("hh", nfs::heavy_hitter::source(4_096)),
        ("vnf", nfs::vnf::source(65_536, 1_024)),
    ] {
        let p = clara().predict(&src, &wl).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(p.avg_latency_cycles.is_finite() && p.avg_latency_cycles > 0.0, "{name}");
        assert!(p.throughput_pps > wl.rate_pps, "{name} can't sustain 60 kpps?");
        assert!(!p.per_class.is_empty(), "{name}");
    }
}

/// The porting strategy knobs change the prediction in the right
/// direction: software-only is never faster than the auto strategy.
#[test]
fn strategies_order_correctly() {
    let wl = WorkloadProfile {
        avg_payload: 1000.0,
        max_payload: 1000,
        ..WorkloadProfile::paper_default()
    };
    // Checksum before rewrite: accelerator-eligible under auto.
    let src = r#"nf verify {
        fn handle(pkt: packet) -> action {
            dpdk.parse_headers(pkt);
            let ck: u16 = checksum(pkt);
            if (ck == 0) { return drop; }
            return forward;
        } }"#;
    let module = clara().analyze(src).unwrap().module;
    let auto = clara().predict_module(&module, &wl).unwrap().avg_latency_cycles;
    let sw = predict_with_options(
        &module,
        clara().params(),
        &wl,
        PredictOptions { software_only: true, pin_state: vec![], ..PredictOptions::default() },
    )
    .unwrap()
    .avg_latency_cycles;
    assert!(sw > auto + 500.0, "software {sw:.0} vs auto {auto:.0}");
}
