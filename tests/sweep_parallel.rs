//! Cross-crate integration of the sweep path: the parallel,
//! shared-preparation sweep must be indistinguishable from independent
//! sequential predictions — bit-identical numbers, identical mappings —
//! and the fast solver must agree with the seed's dense reference.

use clara_core::{
    nfs, run_sweep, Clara, PredictOptions, SolverConfig, SweepScenario, WorkloadProfile,
};
use std::sync::OnceLock;

fn clara() -> &'static Clara {
    static C: OnceLock<Clara> = OnceLock::new();
    C.get_or_init(|| Clara::new(&clara_core::profiles::netronome_agilio_cx40()))
}

fn grid<'a>(
    module: &'a clara_core::CirModule,
    solver: SolverConfig,
) -> Vec<SweepScenario<'a>> {
    let mut out = Vec::new();
    for rate in [20_000.0, 200_000.0, 600_000.0] {
        for payload in [100.0, 700.0, 1400.0] {
            for flows in [100usize, 10_000, 100_000] {
                out.push(SweepScenario {
                    label: format!("rate={rate} payload={payload} flows={flows}"),
                    module,
                    params: clara().params(),
                    workload: WorkloadProfile {
                        rate_pps: rate,
                        avg_payload: payload,
                        max_payload: payload as usize,
                        flows,
                        ..WorkloadProfile::paper_default()
                    },
                    options: PredictOptions { solver, ..Default::default() },
                });
            }
        }
    }
    out
}

/// Parallel sweep output is bit-identical to a sequential run and to
/// per-cell `predict` calls that share nothing.
#[test]
fn parallel_sweep_is_bit_identical_to_sequential() {
    let module = clara().analyze(&nfs::nat::source()).unwrap().module;
    let scenarios = grid(&module, SolverConfig::default());

    let seq = run_sweep(&scenarios, 1);
    let par = run_sweep(&scenarios, 4);
    assert_eq!(seq.len(), par.len());
    for ((sc, a), b) in scenarios.iter().zip(&seq).zip(&par) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(
            a.avg_latency_cycles.to_bits(),
            b.avg_latency_cycles.to_bits(),
            "{}: latency diverged",
            sc.label
        );
        assert_eq!(
            a.throughput_pps.to_bits(),
            b.throughput_pps.to_bits(),
            "{}: throughput diverged",
            sc.label
        );
        assert_eq!(a.mapping.node_unit, b.mapping.node_unit, "{}", sc.label);
        assert_eq!(a.mapping.state_mem, b.mapping.state_mem, "{}", sc.label);

        // Shared preparation is an optimization, not a semantic change:
        // a from-scratch prediction of the same cell matches bit-for-bit.
        let solo = clara_predict::predict_with_options(
            sc.module,
            sc.params,
            &sc.workload,
            sc.options.clone(),
        )
        .unwrap();
        assert_eq!(
            a.avg_latency_cycles.to_bits(),
            solo.avg_latency_cycles.to_bits(),
            "{}: sweep diverged from standalone predict",
            sc.label
        );
    }
}

/// The fast solver and the seed reference produce equally good sweeps:
/// identical predicted numbers in every cell (the mapping objective has
/// a unique optimum on these NFs).
#[test]
fn fast_solver_sweep_matches_reference_solver() {
    let module = clara().analyze(&nfs::nat::source()).unwrap().module;
    let fast = run_sweep(&grid(&module, SolverConfig::default()), 2);
    let reference = run_sweep(&grid(&module, SolverConfig::baseline()), 2);
    for (a, b) in fast.iter().zip(&reference) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        let rel = (a.avg_latency_cycles - b.avg_latency_cycles).abs()
            / b.avg_latency_cycles.max(1.0);
        assert!(
            rel < 1e-9,
            "fast {} vs reference {}",
            a.avg_latency_cycles,
            b.avg_latency_cycles
        );
    }
}
