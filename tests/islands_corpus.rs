//! Identity corpus for the batched + island-parallel simulator paths.
//!
//! Every hand-ported corpus program — across memory placements that
//! exercise the batchable (signature-pure) and non-batchable (live
//! cache) classifications — is simulated under a corpus of fault plans
//! in four configurations: exact, scalar memoized, batched, and batched
//! with island-parallel DES. All four must agree bit-for-bit on every
//! observable. This pins the contract the `SimConfig` escape hatches
//! promise: a faster configuration is never a different simulator.

use clara_core::nfs;
use clara_core::sim::{
    simulate_configured, AccelKind, FaultPlan, NicProgram, SimConfig, SimResult, Watchdog,
};
use clara_core::TraceGenerator;

fn corpus() -> Vec<NicProgram> {
    vec![
        // Signature-pure: the whole run goes through the batched kernel.
        nfs::dpi::ported(65_536, "imem"),
        // Live EMEM cache: classified unbatchable, scalar loop all the way.
        nfs::dpi::ported(65_536, "emem"),
        // Flow-cache accelerator: live queues, unbatchable.
        nfs::nat::ported(),
        // Per-flow statistics (counter updates into cached memory).
        nfs::heavy_hitter::ported(4_096),
        // The full VNF chain, mixing all of the above.
        nfs::vnf::ported(),
    ]
}

fn fault_corpus() -> Vec<FaultPlan> {
    vec![
        FaultPlan::none(),
        FaultPlan { disable_emem_cache: true, ..FaultPlan::none() },
        FaultPlan { thrash_emem_cache: true, ..FaultPlan::none() },
        FaultPlan { accel_outage: vec![AccelKind::FlowCache], ..FaultPlan::none() },
        FaultPlan { corrupt_every: 7, truncate_every: 11, ..FaultPlan::none() },
        FaultPlan { dead_threads: 200, ingress_capacity: Some(8), ..FaultPlan::none() },
    ]
}

fn assert_identical(label: &str, a: &SimResult, b: &SimResult) {
    assert_eq!(a.latencies, b.latencies, "{label}: latencies");
    assert_eq!(a.packets, b.packets, "{label}: packets");
    assert_eq!(a.completed, b.completed, "{label}: completed");
    assert_eq!(a.dropped, b.dropped, "{label}: dropped");
    assert_eq!(a.accel_drops, b.accel_drops, "{label}: accel_drops");
    assert_eq!(a.corrupt_drops, b.corrupt_drops, "{label}: corrupt_drops");
    assert_eq!(a.truncated, b.truncated, "{label}: truncated");
    assert_eq!(a.flow_cache, b.flow_cache, "{label}: flow_cache");
    assert_eq!(a.emem_cache, b.emem_cache, "{label}: emem_cache");
    assert_eq!(
        a.energy_mj.to_bits(),
        b.energy_mj.to_bits(),
        "{label}: energy_mj {} vs {}",
        a.energy_mj,
        b.energy_mj
    );
    assert_eq!(
        a.achieved_pps.to_bits(),
        b.achieved_pps.to_bits(),
        "{label}: achieved_pps"
    );
    assert_eq!(
        a.avg_latency_cycles.to_bits(),
        b.avg_latency_cycles.to_bits(),
        "{label}: avg_latency_cycles"
    );
    assert_eq!(
        a.p99_latency_cycles.to_bits(),
        b.p99_latency_cycles.to_bits(),
        "{label}: p99_latency_cycles"
    );
    assert_eq!(a.per_stage_cycles.len(), b.per_stage_cycles.len(), "{label}: stages");
    for ((an, ac), (bn, bc)) in a.per_stage_cycles.iter().zip(&b.per_stage_cycles) {
        assert_eq!(an, bn, "{label}: stage name");
        assert_eq!(ac.to_bits(), bc.to_bits(), "{label}: stage `{an}` cycles");
    }
}

#[test]
fn every_configuration_is_the_same_simulator() {
    let nic = clara_core::profiles::netronome_agilio_cx40();
    let wd = Watchdog::new();
    let trace = TraceGenerator::new(42).packets(600).flows(128).rate_pps(80_000.0).generate();
    let configs = [
        ("scalar", SimConfig { batch: false, ..SimConfig::default() }),
        ("batched", SimConfig::default()),
        ("islands", SimConfig::islands()),
    ];
    for prog in corpus() {
        for (fi, faults) in fault_corpus().iter().enumerate() {
            let exact = simulate_configured(&nic, &prog, &trace, faults, &wd, &SimConfig::exact())
                .unwrap_or_else(|e| panic!("{} fault#{fi}: exact path failed: {e}", prog.name));
            for (cname, config) in &configs {
                let label = format!("{} fault#{fi} {cname}", prog.name);
                let got = simulate_configured(&nic, &prog, &trace, faults, &wd, config)
                    .unwrap_or_else(|e| panic!("{label}: failed: {e}"));
                assert_identical(&label, &got, &exact);
            }
        }
    }
}
