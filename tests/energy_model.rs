//! Integration: the §6 energy model. The predictor's per-packet energy
//! estimate (active cycles × nJ/cycle) must track the simulator's
//! measured energy accounting within a reasonable band, and energy must
//! order NICs the way their efficiency parameters say.

use clara_core::sim::simulate;
use clara_core::{nfs, Clara, WorkloadProfile};
use std::sync::OnceLock;

fn clara() -> &'static Clara {
    static C: OnceLock<Clara> = OnceLock::new();
    C.get_or_init(|| Clara::new(&clara_core::profiles::netronome_agilio_cx40()))
}

/// Simulated energy per completed packet, in nanojoules.
fn simulated_nj_per_packet(program: &clara_core::sim::NicProgram, wl: &WorkloadProfile) -> f64 {
    let nic = clara_core::profiles::netronome_agilio_cx40();
    let trace = wl.to_trace(2_000, 42);
    let r = simulate(&nic, program, &trace).expect("simulates");
    r.energy_mj * 1e6 / r.completed as f64
}

#[test]
fn predicted_energy_tracks_simulation() {
    // A compute-dominated NF where latency ≈ busy time (no queueing at
    // 60 kpps), so the two energy accountings measure the same thing.
    let module = clara()
        .analyze(&nfs::dpi::source(65_536))
        .expect("compiles")
        .module;
    let wl = WorkloadProfile {
        avg_payload: 800.0,
        max_payload: 800,
        ..WorkloadProfile::paper_default()
    };
    let predicted = clara().predict_module(&module, &wl).unwrap().energy_nj_per_packet;
    let actual = simulated_nj_per_packet(&nfs::dpi::ported(65_536, "emem"), &wl);
    let err = (predicted - actual).abs() / actual;
    assert!(
        err < 0.15,
        "energy: predicted {predicted:.0} nJ vs simulated {actual:.0} nJ ({:.0}% off)",
        err * 100.0
    );
}

#[test]
fn energy_scales_with_work() {
    let wl = WorkloadProfile::paper_default();
    let light = clara()
        .predict(&nfs::heavy_hitter::source(4_096), &wl)
        .unwrap()
        .energy_nj_per_packet;
    let heavy = clara()
        .predict(
            &nfs::dpi::source(65_536),
            &WorkloadProfile { avg_payload: 1400.0, max_payload: 1400, ..wl },
        )
        .unwrap()
        .energy_nj_per_packet;
    assert!(
        heavy > 20.0 * light,
        "DPI@1400B ({heavy:.0} nJ) should dwarf HH ({light:.0} nJ)"
    );
}

#[test]
fn asic_is_most_efficient_on_header_work() {
    // The paper's energy motivation: embedded cores/engines are more
    // energy-efficient; the ASIC's nJ/cycle is lowest and header-only
    // work should reflect it.
    let wl = WorkloadProfile::paper_default();
    // Genuinely header-only: parse + TTL decrement + rewrite. (An LPM
    // would use the Netronome's hardware engine and win there instead.)
    let src = r#"nf fwd {
        fn handle(pkt: packet) -> action {
            dpdk.parse_headers(pkt);
            pkt.decrement_ttl();
            pkt.set_dst_ip(0x0a000001);
            return forward;
        } }"#;
    let netronome = clara().predict(src, &wl).unwrap().energy_nj_per_packet;
    let asic = Clara::new(&clara_core::profiles::pipeline_asic())
        .predict(src, &wl)
        .unwrap()
        .energy_nj_per_packet;
    assert!(
        asic < netronome,
        "ASIC {asic:.0} nJ should beat Netronome {netronome:.0} nJ on header-only forwarding"
    );
}
