//! Property tests for the public pipeline entry points: hostile input
//! must never panic the library — every byte string yields `Ok` or a
//! typed [`clara_core::ClaraError`].

use clara_core::analyze_source;
use proptest::prelude::*;

proptest! {
    /// Arbitrary byte soup never panics parse → check → lower → extract.
    #[test]
    fn analyze_source_never_panics(src in "\\PC*") {
        let _ = analyze_source(&src);
    }

    /// Near-miss programs (a valid NF with a random slice deleted) never
    /// panic, and failures carry a non-empty message.
    #[test]
    fn mangled_programs_fail_gracefully(start in 0usize..220, len in 0usize..60) {
        let src = "nf nat { state flows: map<u64, u64>[65536];\n\
                   fn handle(pkt: packet) -> action {\n\
                   let k: u64 = hash(pkt.src_ip, pkt.src_port);\n\
                   if (flows.lookup(k) == 0) { flows.insert(k, 1); }\n\
                   pkt.set_src_ip(10);\n\
                   return forward; } }";
        let start = (0..=start.min(src.len())).rev().find(|&i| src.is_char_boundary(i)).unwrap_or(0);
        let end = (start + len).min(src.len());
        let end = (start..=end).rev().find(|&i| src.is_char_boundary(i)).unwrap_or(start);
        let mangled = format!("{}{}", &src[..start], &src[end..]);
        match analyze_source(&mangled) {
            Ok(_) => {}
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    /// Deeply nested adversarial sources are rejected with an error, not
    /// a stack overflow.
    #[test]
    fn deep_nesting_is_rejected(depth in 500usize..3000) {
        let expr = format!("{}1{}", "(".repeat(depth), ")".repeat(depth));
        let src = format!(
            "nf t {{ fn handle(pkt: packet) -> action {{ let x: u64 = {expr}; return drop; }} }}"
        );
        prop_assert!(analyze_source(&src).is_err());
    }
}
