//! Acceptance scenario for supervised execution (the PR's tentpole): a
//! sweep containing a panicking cell, a deadline-exceeding cell, and a
//! watchdog-tripping simulation completes end to end; healthy cells are
//! bit-identical to an unsupervised run; the three failure kinds stay
//! distinct in the run report; and the run is resumable from its
//! checkpoint with only the failed cells re-run.

use clara_core::sim::{
    simulate_supervised, simulate_with_faults, FaultPlan, MicroOp, NicProgram, SimError, Stage,
    StageUnit, Watchdog,
};
use clara_core::{
    nfs, run_sweep, run_sweep_supervised, CellOutcome, CellResult, Clara, PredictOptions,
    RunClass, SupervisorConfig, SweepScenario, TraceGenerator, WorkloadProfile,
};
use std::path::PathBuf;
use std::sync::OnceLock;

fn clara() -> &'static Clara {
    static C: OnceLock<Clara> = OnceLock::new();
    C.get_or_init(|| Clara::new(&clara_core::profiles::netronome_agilio_cx40()))
}

/// A 6-cell grid over the NAT NF with two poisoned cells: cell 1 panics
/// (test hook), cell 3 carries an already-expired solve deadline.
fn grid(module: &clara_core::CirModule) -> Vec<SweepScenario<'_>> {
    let rates = [20_000.0, 60_000.0, 100_000.0, 200_000.0, 400_000.0, 600_000.0];
    rates
        .iter()
        .enumerate()
        .map(|(i, &rate)| {
            let mut options = PredictOptions::default();
            if i == 1 {
                options.inject_panic = true;
            }
            if i == 3 {
                options.deadline_ms = Some(0);
            }
            SweepScenario {
                label: format!("rate={rate}"),
                module,
                params: clara().params(),
                workload: WorkloadProfile { rate_pps: rate, ..WorkloadProfile::paper_default() },
                options,
            }
        })
        .collect()
}

fn healthy_grid(module: &clara_core::CirModule) -> Vec<SweepScenario<'_>> {
    let mut g = grid(module);
    for sc in &mut g {
        sc.options.inject_panic = false;
        sc.options.deadline_ms = None;
    }
    g
}

/// An adversarial NIC program: one StreamPayload whose per-byte loop
/// overhead makes a single packet cost ~u64::MAX cycles.
fn adversarial_program() -> NicProgram {
    NicProgram {
        name: "adversarial".into(),
        tables: vec![],
        stages: vec![Stage {
            name: "spin".into(),
            unit: StageUnit::Npu,
            ops: vec![MicroOp::StreamPayload { table: None, loop_overhead: u64::MAX / 4 }],
        }],
    }
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("clara-acceptance-{name}-{}.json", std::process::id()))
}

/// The headline scenario: one sweep, three distinct failure kinds, zero
/// collateral damage, resumable.
#[test]
fn supervised_sweep_survives_panic_deadline_and_watchdog_and_resumes() {
    let module = clara().analyze(&nfs::nat::source()).unwrap().module;
    let path = tmp("headline");
    let _ = std::fs::remove_file(&path);

    // Reference: the same grid, unpoisoned, through the plain sweep.
    let baseline = run_sweep(&healthy_grid(&module), 1);

    let scenarios = grid(&module);
    let config = SupervisorConfig {
        checkpoint: Some(path.clone()),
        retry: false,
        ..SupervisorConfig::default()
    };
    let sweep = run_sweep_supervised(&scenarios, &config).unwrap();
    let mut report = sweep.report.clone();

    // Failure kind #3 rides along as an out-of-sweep stage: an
    // adversarial simulation whose watchdog failure is recorded into the
    // same report.
    let nic = clara_core::profiles::netronome_agilio_cx40();
    let trace = TraceGenerator::new(1).packets(5).generate();
    match simulate_with_faults(&nic, &adversarial_program(), &trace, &FaultPlan::none()) {
        Err(e @ SimError::Watchdog { .. }) => {
            report.record("sim=adversarial", CellOutcome::Failed {
                error: e.to_string(),
                retried: false,
            });
        }
        other => panic!("expected a watchdog trip, got {other:?}"),
    }

    // The three failures are present and distinct.
    assert!(
        matches!(&report.cells[1].outcome, CellOutcome::Panicked { payload, .. }
            if payload.contains("injected panic")),
        "{}",
        report.cells[1].outcome
    );
    assert!(
        matches!(report.cells[3].outcome, CellOutcome::TimedOut { .. }),
        "{}",
        report.cells[3].outcome
    );
    assert!(
        matches!(&report.cells[6].outcome, CellOutcome::Failed { error, .. }
            if error.contains("watchdog")),
        "{}",
        report.cells[6].outcome
    );
    assert_eq!(report.class(), RunClass::Partial);
    assert_eq!(report.ok_count(), 4);
    assert_eq!(report.failed_count(), 3);

    // Healthy cells are bit-identical to the unsupervised run.
    for i in [0usize, 2, 4, 5] {
        let expected = baseline[i].as_ref().unwrap();
        let CellResult::Fresh(got) = &sweep.results[i] else {
            panic!("cell {i} should be Fresh, got {:?}", sweep.results[i]);
        };
        assert_eq!(
            expected.avg_latency_cycles.to_bits(),
            got.avg_latency_cycles.to_bits(),
            "cell {i}: supervision changed a healthy result"
        );
        assert_eq!(expected.throughput_pps.to_bits(), got.throughput_pps.to_bits());
    }

    // Resume with the poison removed: only the two failed sweep cells
    // recompute; the four healthy ones restore from the checkpoint.
    let scenarios = healthy_grid(&module);
    let config = SupervisorConfig { resume: Some(path.clone()), ..SupervisorConfig::default() };
    let resumed = run_sweep_supervised(&scenarios, &config).unwrap();
    assert_eq!(resumed.report.class(), RunClass::AllOk);
    let (mut n_resumed, mut n_fresh) = (0, 0);
    for (i, r) in resumed.results.iter().enumerate() {
        match r {
            CellResult::Resumed(_) => n_resumed += 1,
            CellResult::Fresh(p) => {
                n_fresh += 1;
                // Recomputed cells match the healthy baseline too.
                let expected = baseline[i].as_ref().unwrap();
                assert_eq!(
                    expected.avg_latency_cycles.to_bits(),
                    p.avg_latency_cycles.to_bits()
                );
            }
            other => panic!("cell {i}: unexpected {other:?}"),
        }
    }
    assert_eq!((n_resumed, n_fresh), (4, 2));
    let _ = std::fs::remove_file(&path);
}

/// Supervision composes with PR 1's fault injection: a faulted,
/// watchdog-capped simulation still degrades gracefully, and the caps
/// don't disturb a legitimately faulted run.
#[test]
fn watchdog_composes_with_fault_plans() {
    let nic = clara_core::profiles::netronome_agilio_cx40();
    let prog = NicProgram {
        name: "stream".into(),
        tables: vec![],
        stages: vec![Stage {
            name: "scan".into(),
            unit: StageUnit::Npu,
            ops: vec![MicroOp::ParseHeader, MicroOp::StreamPayload { table: None, loop_overhead: 2 }],
        }],
    };
    let trace = TraceGenerator::new(5).packets(200).generate();
    let faults = FaultPlan { corrupt_every: 10, dead_threads: 8, ..FaultPlan::none() };

    let plain = simulate_with_faults(&nic, &prog, &trace, &faults).unwrap();
    let capped = simulate_supervised(&nic, &prog, &trace, &faults, &Watchdog::new()).unwrap();
    assert_eq!(plain.latencies, capped.latencies);
    assert_eq!(plain.corrupt_drops, capped.corrupt_drops);

    // The adversarial program trips the watchdog even while faults are
    // dropping part of the trace.
    let err =
        simulate_supervised(&nic, &adversarial_program(), &trace, &faults, &Watchdog::new())
            .unwrap_err();
    assert!(matches!(err, SimError::Watchdog { .. }), "{err}");
}

/// A run-wide `--deadline`-style budget with retry enabled: the
/// timed-out cell is retried (and times out again under the same
/// config), everything else completes.
#[test]
fn run_wide_deadline_and_retry_interact_sanely() {
    let module = clara().analyze(&nfs::nat::source()).unwrap().module;
    let mut scenarios = healthy_grid(&module);
    scenarios.truncate(3);
    scenarios[1].options.deadline_ms = Some(0);
    let sup = run_sweep_supervised(&scenarios, &SupervisorConfig::default()).unwrap();
    assert!(matches!(sup.report.cells[1].outcome, CellOutcome::TimedOut { retried: true }));
    assert!(sup.report.cells[0].outcome.is_ok());
    assert!(sup.report.cells[2].outcome.is_ok());
    assert_eq!(sup.report.class(), RunClass::Partial);
}

/// A truncated checkpoint salvages its complete cells: resuming from a
/// half-written file restores some cells and recomputes the rest, never
/// erroring.
#[test]
fn truncated_checkpoint_resumes_partially() {
    let module = clara().analyze(&nfs::nat::source()).unwrap().module;
    let path = tmp("truncated");
    let _ = std::fs::remove_file(&path);

    let scenarios = healthy_grid(&module);
    let config =
        SupervisorConfig { checkpoint: Some(path.clone()), ..SupervisorConfig::default() };
    run_sweep_supervised(&scenarios, &config).unwrap();

    // Clip the file to half: a crash mid-write.
    let full = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &full[..full.len() / 2]).unwrap();

    let config = SupervisorConfig { resume: Some(path.clone()), ..SupervisorConfig::default() };
    let resumed = run_sweep_supervised(&scenarios, &config).unwrap();
    assert_eq!(resumed.report.class(), RunClass::AllOk);
    let n_resumed = resumed
        .results
        .iter()
        .filter(|r| matches!(r, CellResult::Resumed(_)))
        .count();
    assert!(
        n_resumed >= 1 && n_resumed < scenarios.len(),
        "expected partial salvage, got {n_resumed}/{}",
        scenarios.len()
    );
    let _ = std::fs::remove_file(&path);
}
