//! End-to-end chaos test for the `clara serve` daemon: real predictions
//! over the wire while chaos slows every job and kills the worker after
//! each reply. The properties under test are the PR's acceptance bar:
//!
//! * overload at well past queue capacity sheds with a structured
//!   `overloaded` reply and a retry hint, never by blocking;
//! * killed workers are respawned by the supervisor and service
//!   continues;
//! * a poisoned (panicking) request gets a structured `worker-panicked`
//!   reply, and the *next* healthy request for the same workload class
//!   still answers correctly off the quarantined-then-rebuilt cache;
//! * every healthy reply is bit-identical to the one-shot
//!   [`Clara::predict`] path on the same inputs — with the full
//!   observability layer (histograms, rates, flight recorder + JSONL
//!   dump) enabled, proving instrumentation never perturbs results;
//! * the flight dump left behind reconstructs the poisoned request's
//!   admit -> dequeue -> panic lifecycle in sequence order;
//! * shutdown drains in-flight work and refuses late arrivals.
//!
//! Chaos truncation is deliberately off here (it is covered by the
//! serve crate's own tests): this test reads every reply, and a
//! truncated frame would turn a deterministic assertion into a coin
//! flip.

use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use clara_core::serve::json::Value;
use clara_core::serve::{
    reply_codes, ChaosConfig, Client, ClientError, ServeConfig, Server,
};
use clara_core::{profiles, Clara, NicParameters, Prediction, WorkloadProfile};

/// One extraction for the whole test binary: parameters are
/// deterministic, and extraction dominates the test's cost.
fn params() -> Arc<NicParameters> {
    static P: OnceLock<Arc<NicParameters>> = OnceLock::new();
    Arc::clone(P.get_or_init(|| {
        Arc::new(clara_core::extract_parameters(&profiles::netronome_agilio_cx40()))
    }))
}

/// Deterministic chaos: every job sleeps, every reply is followed by a
/// worker kill, panics come only from explicit `inject_panic` requests.
fn kill_and_slow(slow_ms: u64) -> ChaosConfig {
    ChaosConfig {
        panic_per_mille: 0,
        kill_per_mille: 1_000,
        slow_per_mille: 1_000,
        truncate_per_mille: 0,
        slow_ms,
        ..ChaosConfig::with_seed(42)
    }
}

fn code_of(reply: &Value) -> u64 {
    reply.get("code").and_then(Value::as_u64).expect("reply has a code")
}

fn f64_field(reply: &Value, key: &str) -> f64 {
    reply
        .get(key)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("reply missing f64 `{key}`: {reply:?}"))
}

/// The wire serializes f64 with `{:?}` and the parser round-trips it
/// through `str::parse`, so a healthy reply must match the one-shot
/// pipeline bit for bit — not approximately.
fn assert_bit_identical(reply: &Value, direct: &Prediction) {
    for (key, want) in [
        ("avg_latency_cycles", direct.avg_latency_cycles),
        ("avg_latency_ns", direct.avg_latency_ns),
        ("throughput_pps", direct.throughput_pps),
        ("energy_nj_per_packet", direct.energy_nj_per_packet),
    ] {
        let got = f64_field(reply, key);
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "`{key}` drifted over the wire: served {got:?}, one-shot {want:?}",
        );
    }
    let classes = reply.get("per_class").and_then(Value::as_arr).unwrap();
    assert_eq!(classes.len(), direct.per_class.len());
    for (cell, want) in classes.iter().zip(&direct.per_class) {
        assert_eq!(
            f64_field(cell, "latency_cycles").to_bits(),
            want.latency_cycles.to_bits(),
            "per-class latency drifted for `{}`",
            want.name,
        );
    }
    assert_eq!(
        reply.get("bottleneck").and_then(Value::as_str),
        Some(direct.bottleneck.as_str())
    );
}

/// Validate requests over one session share its simulator cost cache:
/// the first request interns pure stage costs, an identical second
/// request resolves them (without changing a single served bit), and a
/// panicking request over the same session purges the whole shard along
/// with the quarantined class entry.
#[test]
fn validate_requests_share_the_session_cost_cache_until_quarantine() {
    let params = params();
    let lnic = profiles::netronome_agilio_cx40();
    let config = ServeConfig {
        workers: 1,
        queue_cap: 4,
        read_timeout_ms: 30_000,
        ..ServeConfig::default()
    };
    let server = Server::start(config).unwrap();
    server.seed_target("netronome", lnic.clone(), Arc::clone(&params));
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();
    let get = |s: &Value, k: &str| {
        s.get(k)
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("stats missing `{k}`: {s:?}"))
    };

    // `dpi-imem` is the corpus variant whose stages are all
    // signature-pure (uncached automaton), so its validate runs intern
    // views in the session's shared cost cache.
    let req = r#"{"op":"validate","nf":"dpi-imem","rates":[20000.0,60000.0],"packets":400}"#;
    let first = client.request(req).unwrap();
    assert_eq!(code_of(&first), 0, "{first:?}");
    let stats = client.stats().unwrap();
    assert!(get(&stats, "sim_cost_views") > 0, "{stats:?}");
    assert!(get(&stats, "sim_memo_misses") > 0, "{stats:?}");

    // An identical request resolves pure costs from the shared cache —
    // and serves exactly the same bits.
    let second = client.request(req).unwrap();
    assert_eq!(code_of(&second), 0, "{second:?}");
    assert_eq!(
        first.get("cells"),
        second.get("cells"),
        "cache reuse changed served bits"
    );
    let stats = client.stats().unwrap();
    assert!(get(&stats, "sim_memo_hits") > 0, "{stats:?}");

    // The served cells match a local sweep on the same inputs bit for
    // bit (wire f64s are `{:?}`-serialized, so exact comparison holds).
    let (src, program) = clara_core::nfs::by_name("dpi-imem").unwrap();
    let module = clara_core::analyze_source(&src).unwrap().module;
    let grid: Vec<WorkloadProfile> = [20_000.0, 60_000.0]
        .into_iter()
        .map(|rate| WorkloadProfile { rate_pps: rate, ..WorkloadProfile::paper_default() })
        .collect();
    let local_cfg = clara_core::ValidationConfig {
        threads: 1,
        packets: 400,
        ..clara_core::ValidationConfig::default()
    };
    let local =
        clara_core::run_validation_sweep(&module, &params, &lnic, &program, &grid, &local_cfg);
    let cells = first.get("cells").and_then(Value::as_arr).unwrap();
    assert_eq!(cells.len(), local.cells.len());
    for (cell, want) in cells.iter().zip(&local.cells) {
        let clara_core::ValidationResult::Ok(want) = want else {
            panic!("local cell failed: {want:?}")
        };
        assert_eq!(
            f64_field(cell, "actual_cycles").to_bits(),
            want.actual_cycles.to_bits(),
            "served actual_cycles drifted from the local sweep"
        );
        assert_eq!(
            f64_field(cell, "predicted_cycles").to_bits(),
            want.predicted_cycles.to_bits(),
            "served predicted_cycles drifted from the local sweep"
        );
    }

    // A panicking request over the same session quarantines it: the
    // prepared entry and the whole cost-cache shard are evicted
    // together, while the hit/miss history survives.
    let reply = client
        .request(r#"{"op":"predict","nf":"dpi-imem","inject_panic":true}"#)
        .unwrap();
    assert_eq!(code_of(&reply), u64::from(reply_codes::PANICKED), "{reply:?}");
    let stats = client.stats().unwrap();
    assert_eq!(get(&stats, "quarantined"), 1, "{stats:?}");
    assert_eq!(
        get(&stats, "sim_cost_views"),
        0,
        "quarantine must purge the session cost cache: {stats:?}"
    );
    assert!(get(&stats, "sim_memo_hits") > 0, "history survives the purge: {stats:?}");

    server.shutdown();
    server.join();
}

#[test]
fn chaos_daemon_sheds_respawns_and_stays_bit_identical() {
    let params = params();
    let lnic = profiles::netronome_agilio_cx40();
    let nat_source = clara_core::nfs::by_name("nat").expect("corpus has nat").0;
    let direct = Clara::with_params((*params).clone())
        .predict(&nat_source, &WorkloadProfile::paper_default())
        .expect("one-shot prediction succeeds");

    // Full instrumentation on: the default flight recorder plus a JSONL
    // dump path. The bit-identity assertions below double as the proof
    // that observability never perturbs served predictions.
    let flight_path = std::env::temp_dir().join(format!(
        "clara_chaos_flight_{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&flight_path);
    let config = ServeConfig {
        workers: 1,
        queue_cap: 2,
        read_timeout_ms: 10_000,
        chaos: Some(kill_and_slow(300)),
        flight_path: Some(flight_path.clone()),
        ..ServeConfig::default()
    };
    let server = Server::start(config).unwrap();
    server.seed_target("netronome", lnic, Arc::clone(&params));
    let addr = server.addr();

    // Phase 1: a healthy request through the full daemon path (framed,
    // queued, chaos-slowed, worker killed after the reply) must answer
    // exactly what the library answers.
    let mut client = Client::connect(addr).unwrap();
    let reply = client.request(r#"{"op":"predict","nf":"nat"}"#).unwrap();
    assert_eq!(code_of(&reply), 0, "{reply:?}");
    assert_bit_identical(&reply, &direct);

    // Phase 2: overload. One worker asleep 300 ms per job behind a
    // queue of 2; ten concurrent requests are >3x the system's
    // capacity, so some must shed immediately with a retry hint while
    // the admitted ones still answer correctly.
    let handles: Vec<_> = (0..10)
        .map(|_| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let started = Instant::now();
                let reply = client.request(r#"{"op":"predict","nf":"nat"}"#).unwrap();
                (reply, started.elapsed())
            })
        })
        .collect();
    let replies: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let (mut shed, mut served) = (0, 0);
    for (reply, elapsed) in &replies {
        match code_of(reply) {
            code if code == u64::from(reply_codes::OVERLOADED) => {
                shed += 1;
                // Shedding is admission-time: it must not wait in line.
                assert!(*elapsed < Duration::from_millis(250), "shed took {elapsed:?}");
                assert!(
                    reply.get("retry_after_ms").and_then(Value::as_u64).unwrap() >= 1,
                    "{reply:?}"
                );
            }
            0 => {
                served += 1;
                assert_bit_identical(reply, &direct);
            }
            other => panic!("unexpected reply code {other}: {reply:?}"),
        }
    }
    assert!(shed >= 1, "no shed under 10 concurrent requests: {replies:?}");
    assert!(served >= 1, "nothing served under overload: {replies:?}");

    // Phase 3: a poisoned request panics mid-prediction. The worker
    // survives it (per-job isolation), the client gets a structured
    // reply, and the quarantined cache entry is rebuilt transparently
    // for the next healthy request.
    let reply = client
        .request(r#"{"op":"predict","nf":"nat","inject_panic":true}"#)
        .unwrap();
    assert_eq!(code_of(&reply), u64::from(reply_codes::PANICKED), "{reply:?}");
    assert_eq!(reply.get("error").and_then(Value::as_str), Some("worker-panicked"));
    let reply = client.request(r#"{"op":"predict","nf":"nat"}"#).unwrap();
    assert_eq!(code_of(&reply), 0, "{reply:?}");
    assert_bit_identical(&reply, &direct);

    // Phase 4: drain with work in flight. The admitted job completes
    // with its real (still bit-identical) reply; late arrivals are
    // refused once the listener closes.
    let inflight = thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.request(r#"{"op":"predict","nf":"nat"}"#).unwrap()
    });
    thread::sleep(Duration::from_millis(100));
    let shutdown = client.shutdown().unwrap();
    assert_eq!(shutdown.get("draining").and_then(Value::as_bool), Some(true));
    let reply = inflight.join().unwrap();
    assert_eq!(code_of(&reply), 0, "in-flight job dropped during drain: {reply:?}");
    assert_bit_identical(&reply, &direct);

    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match Client::connect_timeout(addr, Duration::from_millis(200)) {
            Err(_) => break,
            Ok(mut late) => match late.request(r#"{"op":"ping"}"#) {
                Ok(v) => {
                    // The accept loop may still be mid-poll; anything it
                    // answers while draining must say so.
                    let code = code_of(&v);
                    assert!(
                        code == 0 || code == u64::from(reply_codes::SHUTTING_DOWN),
                        "{v:?}"
                    );
                }
                Err(ClientError::Frame(_) | ClientError::Closed) => {}
                Err(e) => panic!("unexpected client error: {e}"),
            },
        }
        assert!(Instant::now() < deadline, "listener never closed");
        thread::sleep(Duration::from_millis(50));
    }

    let stats = server.join();
    // Every completed job killed its worker; the supervisor must have
    // respawned at least the ones before the drain.
    assert!(stats.workers_respawned >= 3, "{stats:?}");
    assert!(stats.shed >= 1, "{stats:?}");
    assert_eq!(stats.panicked, 1, "{stats:?}");
    assert!(stats.completed >= 4, "{stats:?}");
    // The session cache did its job: one prepare per healthy class plus
    // one rebuild after quarantine; everything else hit.
    assert!(stats.prepared_hits >= 2, "{stats:?}");
    assert_eq!(stats.quarantined, 1, "{stats:?}");

    // The flight dump exists (written at the panic and refreshed at
    // drain) and its events reconstruct the poisoned request's life:
    // admit -> dequeue -> panic, in sequence order, under one req id.
    let dump = std::fs::read_to_string(&flight_path)
        .unwrap_or_else(|e| panic!("no flight dump at {}: {e}", flight_path.display()));
    let events: Vec<Value> = dump
        .lines()
        .map(|line| clara_core::serve::json::parse(line).expect("flight dump line parses as JSON"))
        .collect();
    assert!(!events.is_empty(), "empty flight dump");
    let field = |e: &Value, k: &str| {
        e.get(k).and_then(Value::as_u64).unwrap_or_else(|| panic!("event missing `{k}`: {e:?}"))
    };
    let kind = |e: &Value| e.get("event").and_then(Value::as_str).unwrap().to_string();
    let panic_ev = events
        .iter()
        .find(|e| kind(e) == "panic")
        .unwrap_or_else(|| panic!("no panic event in the dump: {dump}"));
    let poisoned_req = field(panic_ev, "req");
    let seq_of = |want: &str| {
        events
            .iter()
            .find(|e| kind(e) == want && field(e, "req") == poisoned_req)
            .map(|e| field(e, "seq"))
            .unwrap_or_else(|| panic!("poisoned request {poisoned_req} has no `{want}` event"))
    };
    let (admit_seq, dequeue_seq, panic_seq) = (seq_of("admit"), seq_of("dequeue"), seq_of("panic"));
    assert!(
        admit_seq < dequeue_seq && dequeue_seq < panic_seq,
        "poisoned request's lifecycle out of order: admit {admit_seq}, dequeue {dequeue_seq}, panic {panic_seq}"
    );
    // Quarantine and respawn made it into the record too, and the drain
    // itself is the trailing part of the story.
    assert!(events.iter().any(|e| kind(e) == "quarantine" && field(e, "req") == poisoned_req));
    assert!(events.iter().any(|e| kind(e) == "respawn"));
    assert!(events.iter().any(|e| kind(e) == "drain"), "{dump}");
    let _ = std::fs::remove_file(&flight_path);
}
