//! CFG analyses over CIR functions: successors/predecessors,
//! reachability, dominators, and natural-loop detection.
//!
//! The dataflow extraction (`clara-dataflow`) uses loops to recognize
//! byte-scanning patterns and dominators to group blocks into coherent
//! dataflow nodes.

use crate::ir::{BlockId, CirFunction, Terminator};

/// Successor block ids of a block.
pub fn successors(f: &CirFunction, b: BlockId) -> Vec<BlockId> {
    match &f.block(b).term {
        Terminator::Jump(t) => vec![*t],
        Terminator::Branch { then_bb, else_bb, .. } => {
            if then_bb == else_bb {
                vec![*then_bb]
            } else {
                vec![*then_bb, *else_bb]
            }
        }
        Terminator::Return(_) => vec![],
    }
}

/// Predecessor lists for every block.
pub fn predecessors(f: &CirFunction) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); f.blocks.len()];
    for i in 0..f.blocks.len() {
        let b = BlockId(i as u32);
        for s in successors(f, b) {
            preds[s.0 as usize].push(b);
        }
    }
    preds
}

/// Immediate dominators (entry dominates itself), via the classic
/// iterative Cooper–Harvey–Kennedy algorithm over a reverse-postorder.
pub fn dominators(f: &CirFunction) -> Vec<BlockId> {
    let n = f.blocks.len();
    let rpo = reverse_postorder(f);
    let mut rpo_index = vec![usize::MAX; n];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_index[b.0 as usize] = i;
    }
    let preds = predecessors(f);
    let mut idom: Vec<Option<BlockId>> = vec![None; n];
    idom[0] = Some(BlockId(0));

    let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
        while a != b {
            while rpo_index[a.0 as usize] > rpo_index[b.0 as usize] {
                a = idom[a.0 as usize].expect("processed");
            }
            while rpo_index[b.0 as usize] > rpo_index[a.0 as usize] {
                b = idom[b.0 as usize].expect("processed");
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<BlockId> = None;
            for &p in &preds[b.0 as usize] {
                if idom[p.0 as usize].is_some() {
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
            }
            if let Some(ni) = new_idom {
                if idom[b.0 as usize] != Some(ni) {
                    idom[b.0 as usize] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom.into_iter()
        .map(|d| d.unwrap_or(BlockId(0)))
        .collect()
}

/// Whether `a` dominates `b` (reflexive).
pub fn dominates(idom: &[BlockId], a: BlockId, b: BlockId) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        let next = idom[cur.0 as usize];
        if next == cur {
            return false; // reached entry
        }
        cur = next;
    }
}

/// A natural loop: its header and member blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (target of the back edge).
    pub header: BlockId,
    /// All blocks in the loop body, including the header.
    pub blocks: Vec<BlockId>,
}

impl NaturalLoop {
    /// Whether the loop contains a block.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }
}

/// Detect natural loops from back edges (`tail → header` where `header`
/// dominates `tail`). Loops sharing a header are merged.
pub fn natural_loops(f: &CirFunction) -> Vec<NaturalLoop> {
    let idom = dominators(f);
    let preds = predecessors(f);
    let mut loops: Vec<NaturalLoop> = Vec::new();

    for i in 0..f.blocks.len() {
        let tail = BlockId(i as u32);
        for header in successors(f, tail) {
            if !dominates(&idom, header, tail) {
                continue;
            }
            // Collect the loop body: header plus everything that reaches
            // tail without passing through header.
            let mut body = vec![header];
            let mut stack = vec![tail];
            while let Some(b) = stack.pop() {
                if body.contains(&b) {
                    continue;
                }
                body.push(b);
                for &p in &preds[b.0 as usize] {
                    stack.push(p);
                }
            }
            body.sort();
            match loops.iter_mut().find(|l| l.header == header) {
                Some(existing) => {
                    for b in body {
                        if !existing.blocks.contains(&b) {
                            existing.blocks.push(b);
                        }
                    }
                    existing.blocks.sort();
                }
                None => loops.push(NaturalLoop { header, blocks: body }),
            }
        }
    }
    loops.sort_by_key(|l| l.header);
    loops
}

/// Blocks in reverse postorder from the entry.
pub fn reverse_postorder(f: &CirFunction) -> Vec<BlockId> {
    let n = f.blocks.len();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with an explicit "exit" marker.
    let mut stack: Vec<(BlockId, bool)> = vec![(BlockId(0), false)];
    while let Some((b, processed)) = stack.pop() {
        if processed {
            post.push(b);
            continue;
        }
        if visited[b.0 as usize] {
            continue;
        }
        visited[b.0 as usize] = true;
        stack.push((b, true));
        for s in successors(f, b).into_iter().rev() {
            if !visited[s.0 as usize] {
                stack.push((s, false));
            }
        }
    }
    post.reverse();
    post
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use clara_lang::frontend;

    fn func(src: &str) -> CirFunction {
        lower(&frontend(src).unwrap()).unwrap().handle
    }

    fn diamond() -> CirFunction {
        func(
            "nf t { fn handle(pkt: packet) -> action {
                let x: u64 = 0;
                if (pkt.is_tcp) { x = 1; } else { x = 2; }
                if (x == 1) { return forward; }
                return drop; } }",
        )
    }

    fn looped() -> CirFunction {
        func(
            "nf t { fn handle(pkt: packet) -> action {
                let i: u64 = 0;
                while (i < pkt.payload_len) { i = i + 1; }
                return forward; } }",
        )
    }

    #[test]
    fn successors_and_predecessors_agree() {
        let f = diamond();
        let preds = predecessors(&f);
        for i in 0..f.blocks.len() {
            for s in successors(&f, BlockId(i as u32)) {
                assert!(preds[s.0 as usize].contains(&BlockId(i as u32)));
            }
        }
    }

    #[test]
    fn entry_dominates_everything() {
        let f = diamond();
        let idom = dominators(&f);
        for i in 0..f.blocks.len() {
            assert!(dominates(&idom, BlockId(0), BlockId(i as u32)));
        }
    }

    #[test]
    fn branch_arms_do_not_dominate_join() {
        let f = diamond();
        let idom = dominators(&f);
        // Find the branch in the entry block and its join: the arms are
        // blocks 1 and 2, the join follows. Arms must not dominate the
        // block their branch rejoins into.
        let Terminator::Branch { then_bb, else_bb, .. } = &f.blocks[0].term else {
            panic!("entry should branch");
        };
        let join = successors(&f, *then_bb)[0];
        assert!(!dominates(&idom, *then_bb, join));
        assert!(!dominates(&idom, *else_bb, join));
        assert_eq!(idom[join.0 as usize], BlockId(0));
    }

    #[test]
    fn while_loop_detected() {
        let f = looped();
        let loops = natural_loops(&f);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        // Header and body block are both inside the loop.
        assert!(l.blocks.len() >= 2);
        assert!(l.contains(l.header));
    }

    #[test]
    fn straight_line_has_no_loops() {
        let f = func("nf t { fn handle(pkt: packet) -> action { return drop; } }");
        assert!(natural_loops(&f).is_empty());
    }

    #[test]
    fn nested_loops_detected() {
        let f = func(
            "nf t { fn handle(pkt: packet) -> action {
                let i: u64 = 0;
                while (i < 4) {
                    let j: u64 = 0;
                    while (j < 4) { j = j + 1; }
                    i = i + 1;
                }
                return forward; } }",
        );
        let loops = natural_loops(&f);
        assert_eq!(loops.len(), 2);
        // The outer loop contains the inner loop's header.
        let outer = loops.iter().max_by_key(|l| l.blocks.len()).unwrap();
        let inner = loops.iter().min_by_key(|l| l.blocks.len()).unwrap();
        assert!(outer.contains(inner.header));
        assert!(!inner.contains(outer.header));
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_all() {
        let f = diamond();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), f.blocks.len());
    }
}
