//! CIR data types.

use clara_lang::StateKind;
use core::fmt;

/// A virtual register (local value slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A basic block index within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Index of a state table within the module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// A register.
    Reg(Reg),
    /// An immediate constant.
    Imm(u64),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// Arithmetic / logical operations (booleans are 0/1 integers at this
/// level; short-circuit operators were lowered to control flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Wrapping add.
    Add,
    /// Wrapping subtract.
    Sub,
    /// Wrapping multiply.
    Mul,
    /// Unsigned divide (x/0 = 0, matching NIC datapath semantics).
    Div,
    /// Unsigned remainder (x%0 = x).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (by rhs & 63).
    Shl,
    /// Logical shift right (by rhs & 63).
    Shr,
    /// Equality, producing 0/1.
    Eq,
    /// Inequality, producing 0/1.
    Ne,
    /// Unsigned less-than, producing 0/1.
    Lt,
    /// Unsigned less-or-equal, producing 0/1.
    Le,
    /// Unsigned greater-than, producing 0/1.
    Gt,
    /// Unsigned greater-or-equal, producing 0/1.
    Ge,
}

impl Op {
    /// Evaluate the operation on concrete values.
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            Op::Add => a.wrapping_add(b),
            Op::Sub => a.wrapping_sub(b),
            Op::Mul => a.wrapping_mul(b),
            Op::Div => a.checked_div(b).unwrap_or(0),
            Op::Rem => a.checked_rem(b).unwrap_or(a),
            Op::And => a & b,
            Op::Or => a | b,
            Op::Xor => a ^ b,
            Op::Shl => a.wrapping_shl(b as u32 & 63),
            Op::Shr => a.wrapping_shr(b as u32 & 63),
            Op::Eq => (a == b) as u64,
            Op::Ne => (a != b) as u64,
            Op::Lt => (a < b) as u64,
            Op::Le => (a <= b) as u64,
            Op::Gt => (a > b) as u64,
            Op::Ge => (a >= b) as u64,
        }
    }

    /// Whether this is a multiply.
    pub fn is_mul(self) -> bool {
        matches!(self, Op::Mul)
    }

    /// Whether this is a divide or remainder.
    pub fn is_div(self) -> bool {
        matches!(self, Op::Div | Op::Rem)
    }
}

/// Packet header / metadata fields addressable from CIR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketField {
    /// IPv4 source address.
    SrcIp,
    /// IPv4 destination address.
    DstIp,
    /// Transport source port.
    SrcPort,
    /// Transport destination port.
    DstPort,
    /// IP protocol number.
    Proto,
    /// Time-to-live.
    Ttl,
    /// TCP flag byte (0 for UDP).
    TcpFlags,
    /// Transport payload length.
    PayloadLen,
    /// IP total length.
    TotalLen,
    /// 1 if TCP.
    IsTcp,
    /// 1 if UDP.
    IsUdp,
    /// 1 if TCP SYN.
    IsSyn,
}

impl PacketField {
    /// Parse a source-level field name.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "src_ip" => PacketField::SrcIp,
            "dst_ip" => PacketField::DstIp,
            "src_port" => PacketField::SrcPort,
            "dst_port" => PacketField::DstPort,
            "proto" => PacketField::Proto,
            "ttl" => PacketField::Ttl,
            "tcp_flags" => PacketField::TcpFlags,
            "payload_len" => PacketField::PayloadLen,
            "total_len" => PacketField::TotalLen,
            "is_tcp" => PacketField::IsTcp,
            "is_udp" => PacketField::IsUdp,
            "is_syn" => PacketField::IsSyn,
            _ => return None,
        })
    }
}

/// Virtual calls: framework/builtin operations named by their SmartNIC
/// semantics. Vcall substitution is the heart of §3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VCall {
    /// Parse packet headers (`vcall_get_hdr` in the paper's example).
    ParseHeader,
    /// Full checksum over header + payload.
    ChecksumFull,
    /// Incremental checksum fix-up after header rewrites.
    ChecksumIncr,
    /// Encrypt/decrypt the payload.
    Crypto,
    /// Byte-wise payload scan against a signature set (the DPI loop).
    PayloadScan,
    /// Hash the integer arguments into a 64-bit key.
    Hash,
    /// Exact-match lookup in a state table.
    TableLookup(StateId),
    /// Insert/update in a state table.
    TableWrite(StateId),
    /// Longest-prefix match against a rule table.
    LpmLookup(StateId),
    /// Counter/sketch increment.
    CounterAdd(StateId),
    /// Counter/sketch read.
    CounterRead(StateId),
    /// Dense array read.
    ArrayRead(StateId),
    /// Dense array write.
    ArrayWrite(StateId),
    /// Read a packet header/metadata field.
    MetadataRead(PacketField),
    /// Write a packet header/metadata field.
    MetadataWrite(PacketField),
    /// Read one payload byte.
    PayloadByte,
    /// Token-bucket metering decision.
    Meter,
    /// Floating-point helper (exercises FPU emulation).
    FloatOp,
    /// Logging (free on the datapath).
    Log,
}

impl VCall {
    /// The state table this vcall touches, if any.
    pub fn state(self) -> Option<StateId> {
        match self {
            VCall::TableLookup(s)
            | VCall::TableWrite(s)
            | VCall::LpmLookup(s)
            | VCall::CounterAdd(s)
            | VCall::CounterRead(s)
            | VCall::ArrayRead(s)
            | VCall::ArrayWrite(s) => Some(s),
            _ => None,
        }
    }

    /// Whether the cost of this vcall scales with payload size.
    pub fn is_payload_sized(self) -> bool {
        matches!(self, VCall::ChecksumFull | VCall::Crypto | VCall::PayloadScan)
    }
}

impl fmt::Display for VCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VCall::ParseHeader => write!(f, "vcall_get_hdr"),
            VCall::ChecksumFull => write!(f, "vcall_cksum"),
            VCall::ChecksumIncr => write!(f, "vcall_cksum_incr"),
            VCall::Crypto => write!(f, "vcall_crypto"),
            VCall::PayloadScan => write!(f, "vcall_scan"),
            VCall::Hash => write!(f, "vcall_hash"),
            VCall::TableLookup(s) => write!(f, "vcall_tbl_lookup[{}]", s.0),
            VCall::TableWrite(s) => write!(f, "vcall_tbl_write[{}]", s.0),
            VCall::LpmLookup(s) => write!(f, "vcall_lpm[{}]", s.0),
            VCall::CounterAdd(s) => write!(f, "vcall_ctr_add[{}]", s.0),
            VCall::CounterRead(s) => write!(f, "vcall_ctr_read[{}]", s.0),
            VCall::ArrayRead(s) => write!(f, "vcall_arr_read[{}]", s.0),
            VCall::ArrayWrite(s) => write!(f, "vcall_arr_write[{}]", s.0),
            VCall::MetadataRead(field) => write!(f, "vcall_md_read[{field:?}]"),
            VCall::MetadataWrite(field) => write!(f, "vcall_md_write[{field:?}]"),
            VCall::PayloadByte => write!(f, "vcall_payload_byte"),
            VCall::Meter => write!(f, "vcall_meter"),
            VCall::FloatOp => write!(f, "vcall_float"),
            VCall::Log => write!(f, "vcall_log"),
        }
    }
}

/// A CIR instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = imm`
    Const {
        /// Destination register.
        dst: Reg,
        /// Constant value.
        value: u64,
    },
    /// `dst = src` (register copy).
    Copy {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = op(lhs, rhs)`
    Binary {
        /// Destination register.
        dst: Reg,
        /// The operation.
        op: Op,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst? = vcall(args...)`
    VCall {
        /// Destination register (None for void vcalls).
        dst: Option<Reg>,
        /// Which virtual call.
        call: VCall,
        /// Arguments.
        args: Vec<Operand>,
    },
}

/// How a basic block ends.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on a 0/1 condition.
    Branch {
        /// Condition operand (non-zero = taken).
        cond: Operand,
        /// Target when the condition is non-zero.
        then_bb: BlockId,
        /// Target when the condition is zero.
        else_bb: BlockId,
    },
    /// Return the NF verdict (non-zero = forward, zero = drop).
    Return(Operand),
}

/// A basic block: straight-line instructions plus a terminator. LLVM's
/// definition applies: "a sequence of bytecode instructions without
/// branches or jumps — they are always executed as a whole" (§3.3).
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    /// Instructions in order.
    pub instrs: Vec<Instr>,
    /// How the block exits.
    pub term: Terminator,
}

/// A lowered function (only `handle` survives lowering; helpers are
/// inlined).
#[derive(Debug, Clone, PartialEq)]
pub struct CirFunction {
    /// Basic blocks; `BlockId(0)` is the entry.
    pub blocks: Vec<BasicBlock>,
    /// Number of virtual registers used.
    pub num_regs: u32,
}

impl CirFunction {
    /// The block behind an id.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// Total instruction count across all blocks.
    pub fn num_instrs(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// Iterate over all vcalls with their block ids.
    pub fn vcalls(&self) -> impl Iterator<Item = (BlockId, &VCall)> + '_ {
        self.blocks.iter().enumerate().flat_map(|(i, b)| {
            b.instrs.iter().filter_map(move |instr| match instr {
                Instr::VCall { call, .. } => Some((BlockId(i as u32), call)),
                _ => None,
            })
        })
    }
}

/// State-table metadata carried into the IR.
#[derive(Debug, Clone, PartialEq)]
pub struct StateInfo {
    /// Source-level name.
    pub name: String,
    /// Table kind.
    pub kind: StateKind,
    /// Capacity (entries / rules / buckets).
    pub capacity: u64,
    /// Approximate footprint in bytes.
    pub size_bytes: usize,
}

/// A lowered NF module.
#[derive(Debug, Clone, PartialEq)]
pub struct CirModule {
    /// NF name.
    pub name: String,
    /// State tables, indexed by [`StateId`].
    pub states: Vec<StateInfo>,
    /// The lowered packet handler.
    pub handle: CirFunction,
}

impl CirModule {
    /// State info behind an id.
    pub fn state(&self, id: StateId) -> &StateInfo {
        &self.states[id.0 as usize]
    }

    /// Find a state by source name.
    pub fn state_named(&self, name: &str) -> Option<StateId> {
        self.states
            .iter()
            .position(|s| s.name == name)
            .map(|i| StateId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_eval_semantics() {
        assert_eq!(Op::Add.eval(u64::MAX, 1), 0); // wrapping
        assert_eq!(Op::Div.eval(10, 0), 0);
        assert_eq!(Op::Rem.eval(10, 0), 10);
        assert_eq!(Op::Shl.eval(1, 65), 2); // shift amount masked
        assert_eq!(Op::Lt.eval(1, 2), 1);
        assert_eq!(Op::Ge.eval(1, 2), 0);
        assert_eq!(Op::Xor.eval(0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn vcall_state_extraction() {
        assert_eq!(VCall::TableLookup(StateId(3)).state(), Some(StateId(3)));
        assert_eq!(VCall::Hash.state(), None);
        assert!(VCall::ChecksumFull.is_payload_sized());
        assert!(!VCall::TableLookup(StateId(0)).is_payload_sized());
    }

    #[test]
    fn packet_field_names() {
        assert_eq!(PacketField::from_name("src_ip"), Some(PacketField::SrcIp));
        assert_eq!(PacketField::from_name("is_syn"), Some(PacketField::IsSyn));
        assert_eq!(PacketField::from_name("nope"), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Reg(4).to_string(), "%4");
        assert_eq!(BlockId(2).to_string(), "bb2");
        assert_eq!(VCall::ParseHeader.to_string(), "vcall_get_hdr");
        assert_eq!(VCall::TableLookup(StateId(1)).to_string(), "vcall_tbl_lookup[1]");
    }
}
