//! A CIR interpreter with path profiling.
//!
//! Clara's §3.5 prediction step "simulate\[s\] the execution for the set of
//! packets, and identif\[ies\] how a packet traverses the parameterized
//! LNIC". This interpreter provides the traversal half: given a packet
//! description and a state oracle it executes the lowered `handle`
//! function and records a [`PathProfile`] — how many times each basic
//! block ran and which vcalls executed with what operand sizes. The
//! predictor multiplies those counts by mapped per-block costs.
//!
//! The same interpreter doubles as a differential-testing tool for the
//! lowering pass (execute source-visible semantics, compare outcomes).

use crate::ir::*;
use std::collections::HashMap;

/// Packet description visible to the interpreter (mirrors the fields NFC
/// exposes via `pkt.*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketInfo {
    /// IPv4 source address (host order).
    pub src_ip: u32,
    /// IPv4 destination address (host order).
    pub dst_ip: u32,
    /// Transport source port.
    pub src_port: u16,
    /// Transport destination port.
    pub dst_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP).
    pub proto: u8,
    /// Time-to-live.
    pub ttl: u8,
    /// TCP flag byte (0 for UDP); bit 0x02 is SYN.
    pub tcp_flags: u8,
    /// Transport payload length.
    pub payload_len: u16,
    /// Payload pattern seed: byte `i` is `seed.wrapping_add(i)`.
    pub payload_seed: u8,
}

impl PacketInfo {
    /// A TCP packet with sensible defaults.
    pub fn tcp(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16, payload_len: u16) -> Self {
        PacketInfo {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: 6,
            ttl: 64,
            tcp_flags: 0x10, // ACK
            payload_len,
            payload_seed: 0,
        }
    }

    /// A UDP packet with sensible defaults.
    pub fn udp(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16, payload_len: u16) -> Self {
        PacketInfo { proto: 17, tcp_flags: 0, ..Self::tcp(src_ip, dst_ip, src_port, dst_port, payload_len) }
    }

    /// Mark as a TCP SYN.
    pub fn with_syn(mut self) -> Self {
        self.tcp_flags = 0x02;
        self
    }

    fn field(&self, f: PacketField) -> u64 {
        match f {
            PacketField::SrcIp => self.src_ip as u64,
            PacketField::DstIp => self.dst_ip as u64,
            PacketField::SrcPort => self.src_port as u64,
            PacketField::DstPort => self.dst_port as u64,
            PacketField::Proto => self.proto as u64,
            PacketField::Ttl => self.ttl as u64,
            PacketField::TcpFlags => self.tcp_flags as u64,
            PacketField::PayloadLen => self.payload_len as u64,
            PacketField::TotalLen => self.payload_len as u64 + 40,
            PacketField::IsTcp => (self.proto == 6) as u64,
            PacketField::IsUdp => (self.proto == 17) as u64,
            PacketField::IsSyn => (self.proto == 6 && self.tcp_flags & 0x02 != 0) as u64,
        }
    }

    fn set_field(&mut self, f: PacketField, v: u64) {
        match f {
            PacketField::SrcIp => self.src_ip = v as u32,
            PacketField::DstIp => self.dst_ip = v as u32,
            PacketField::SrcPort => self.src_port = v as u16,
            PacketField::DstPort => self.dst_port = v as u16,
            PacketField::Proto => self.proto = v as u8,
            PacketField::Ttl => self.ttl = v as u8,
            PacketField::TcpFlags => self.tcp_flags = v as u8,
            PacketField::PayloadLen => self.payload_len = v as u16,
            // Derived fields are not writable; ignore.
            PacketField::TotalLen
            | PacketField::IsTcp
            | PacketField::IsUdp
            | PacketField::IsSyn => {}
        }
    }
}

/// Backing store for NF state during interpretation.
///
/// Implementations decide hit/miss behaviour; [`HashState`] is a faithful
/// in-memory model.
pub trait StateOracle {
    /// Exact-match lookup; 0 means miss (NFC convention).
    fn table_lookup(&mut self, state: StateId, key: u64) -> u64;
    /// Insert or update.
    fn table_write(&mut self, state: StateId, key: u64, value: u64);
    /// Longest-prefix match over IPv4; 0 means no route.
    fn lpm_lookup(&mut self, state: StateId, ip: u64) -> u64;
    /// Counter bucket increment.
    fn counter_add(&mut self, state: StateId, idx: u64, delta: u64);
    /// Counter bucket read.
    fn counter_read(&mut self, state: StateId, idx: u64) -> u64;
    /// Dense array read.
    fn array_read(&mut self, state: StateId, idx: u64) -> u64;
    /// Dense array write.
    fn array_write(&mut self, state: StateId, idx: u64, value: u64);
    /// Token-bucket metering decision (true = conformant).
    fn meter(&mut self, flow: u64, rate: u64) -> bool {
        let _ = (flow, rate);
        true
    }
}

/// A straightforward hash-map-backed state store.
#[derive(Debug, Default, Clone)]
pub struct HashState {
    maps: HashMap<(StateId, u64), u64>,
    counters: HashMap<(StateId, u64), u64>,
    arrays: HashMap<(StateId, u64), u64>,
    lpm_rules: HashMap<StateId, Vec<(u32, u8, u64)>>, // (prefix, len, next hop)
}

impl HashState {
    /// Empty state.
    pub fn new() -> Self {
        HashState::default()
    }

    /// Install an LPM rule: `prefix/len → next_hop`.
    pub fn add_lpm_rule(&mut self, state: StateId, prefix: u32, len: u8, next_hop: u64) {
        self.lpm_rules.entry(state).or_default().push((prefix, len, next_hop));
    }

    /// Number of exact-match entries across all tables.
    pub fn table_entries(&self) -> usize {
        self.maps.len()
    }
}

impl StateOracle for HashState {
    fn table_lookup(&mut self, state: StateId, key: u64) -> u64 {
        self.maps.get(&(state, key)).copied().unwrap_or(0)
    }

    fn table_write(&mut self, state: StateId, key: u64, value: u64) {
        self.maps.insert((state, key), value);
    }

    fn lpm_lookup(&mut self, state: StateId, ip: u64) -> u64 {
        let ip = ip as u32;
        self.lpm_rules
            .get(&state)
            .and_then(|rules| {
                rules
                    .iter()
                    .filter(|(prefix, len, _)| {
                        let mask = if *len == 0 { 0 } else { u32::MAX << (32 - *len as u32) };
                        ip & mask == *prefix & mask
                    })
                    .max_by_key(|(_, len, _)| *len)
                    .map(|(_, _, nh)| *nh)
            })
            .unwrap_or(0)
    }

    fn counter_add(&mut self, state: StateId, idx: u64, delta: u64) {
        *self.counters.entry((state, idx)).or_insert(0) += delta;
    }

    fn counter_read(&mut self, state: StateId, idx: u64) -> u64 {
        self.counters.get(&(state, idx)).copied().unwrap_or(0)
    }

    fn array_read(&mut self, state: StateId, idx: u64) -> u64 {
        self.arrays.get(&(state, idx)).copied().unwrap_or(0)
    }

    fn array_write(&mut self, state: StateId, idx: u64, value: u64) {
        self.arrays.insert((state, idx), value);
    }
}

/// Execution record of one packet through the NF.
#[derive(Debug, Clone, PartialEq)]
pub struct PathProfile {
    /// Times each basic block executed.
    pub block_counts: Vec<u64>,
    /// Times each vcall executed.
    pub vcall_counts: HashMap<VCall, u64>,
    /// Final verdict: true = forward.
    pub forward: bool,
    /// Total instructions executed.
    pub instrs: u64,
    /// Final packet state (header rewrites applied).
    pub packet_out: PacketInfo,
}

/// Errors from interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The instruction budget was exhausted (runaway loop).
    FuelExhausted,
}

impl core::fmt::Display for InterpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            InterpError::FuelExhausted => write!(f, "instruction budget exhausted"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Execute `handle` for one packet.
pub fn execute(
    f: &CirFunction,
    packet: &PacketInfo,
    oracle: &mut dyn StateOracle,
    fuel: u64,
) -> Result<PathProfile, InterpError> {
    let mut regs = vec![0u64; f.num_regs as usize];
    let mut pkt = *packet;
    let mut profile = PathProfile {
        block_counts: vec![0; f.blocks.len()],
        vcall_counts: HashMap::new(),
        forward: false,
        instrs: 0,
        packet_out: pkt,
    };
    let mut bb = BlockId(0);
    let read = |regs: &[u64], op: Operand| -> u64 {
        match op {
            Operand::Reg(r) => regs[r.0 as usize],
            Operand::Imm(v) => v,
        }
    };

    loop {
        profile.block_counts[bb.0 as usize] += 1;
        let block = f.block(bb);
        for instr in &block.instrs {
            profile.instrs += 1;
            if profile.instrs > fuel {
                return Err(InterpError::FuelExhausted);
            }
            match instr {
                Instr::Const { dst, value } => regs[dst.0 as usize] = *value,
                Instr::Copy { dst, src } => regs[dst.0 as usize] = read(&regs, *src),
                Instr::Binary { dst, op, lhs, rhs } => {
                    regs[dst.0 as usize] = op.eval(read(&regs, *lhs), read(&regs, *rhs));
                }
                Instr::VCall { dst, call, args } => {
                    *profile.vcall_counts.entry(*call).or_insert(0) += 1;
                    let a: Vec<u64> = args.iter().map(|&x| read(&regs, x)).collect();
                    let result = eval_vcall(*call, &a, &mut pkt, oracle);
                    if let Some(d) = dst {
                        regs[d.0 as usize] = result;
                    }
                }
            }
        }
        match &block.term {
            Terminator::Jump(t) => bb = *t,
            Terminator::Branch { cond, then_bb, else_bb } => {
                bb = if read(&regs, *cond) != 0 { *then_bb } else { *else_bb };
            }
            Terminator::Return(v) => {
                profile.forward = read(&regs, *v) != 0;
                profile.packet_out = pkt;
                return Ok(profile);
            }
        }
    }
}

fn eval_vcall(call: VCall, args: &[u64], pkt: &mut PacketInfo, oracle: &mut dyn StateOracle) -> u64 {
    match call {
        VCall::ParseHeader => 0,
        // A deterministic stand-in value; NFs only compare/forward it.
        VCall::ChecksumFull => {
            (mix(pkt.payload_len as u64 ^ (pkt.payload_seed as u64) << 16) & 0xffff).max(1)
        }
        VCall::ChecksumIncr => 0,
        VCall::Crypto => 0,
        // Deterministic "did any signature match" result.
        VCall::PayloadScan => {
            let sigset = args.first().copied().unwrap_or(0);
            mix(pkt.payload_seed as u64 ^ sigset).is_multiple_of(97) as u64
        }
        VCall::Hash => {
            let mut acc = 0xcbf2_9ce4_8422_2325u64;
            for &a in args {
                acc = mix(acc ^ a);
            }
            acc
        }
        VCall::TableLookup(s) => oracle.table_lookup(s, args.first().copied().unwrap_or(0)),
        VCall::TableWrite(s) => {
            oracle.table_write(
                s,
                args.first().copied().unwrap_or(0),
                args.get(1).copied().unwrap_or(0),
            );
            0
        }
        VCall::LpmLookup(s) => oracle.lpm_lookup(s, args.first().copied().unwrap_or(0)),
        VCall::CounterAdd(s) => {
            oracle.counter_add(
                s,
                args.first().copied().unwrap_or(0),
                args.get(1).copied().unwrap_or(1),
            );
            0
        }
        VCall::CounterRead(s) => oracle.counter_read(s, args.first().copied().unwrap_or(0)),
        VCall::ArrayRead(s) => oracle.array_read(s, args.first().copied().unwrap_or(0)),
        VCall::ArrayWrite(s) => {
            oracle.array_write(
                s,
                args.first().copied().unwrap_or(0),
                args.get(1).copied().unwrap_or(0),
            );
            0
        }
        VCall::MetadataRead(f) => pkt.field(f),
        VCall::MetadataWrite(f) => {
            pkt.set_field(f, args.first().copied().unwrap_or(0));
            0
        }
        VCall::PayloadByte => {
            let i = args.first().copied().unwrap_or(0);
            if i < pkt.payload_len as u64 {
                pkt.payload_seed.wrapping_add(i as u8) as u64
            } else {
                0
            }
        }
        VCall::Meter => {
            oracle.meter(args.first().copied().unwrap_or(0), args.get(1).copied().unwrap_or(0))
                as u64
        }
        VCall::FloatOp => {
            let a = args.first().copied().unwrap_or(0);
            let b = args.get(1).copied().unwrap_or(0);
            ((a as f64 * 0.875) + (b as f64 * 0.125)) as u64
        }
        VCall::Log => 0,
    }
}

fn mix(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use clara_lang::frontend;

    fn run(src: &str, pkt: PacketInfo) -> PathProfile {
        let m = lower(&frontend(src).unwrap()).unwrap();
        let mut state = HashState::new();
        execute(&m.handle, &pkt, &mut state, 1_000_000).unwrap()
    }

    #[test]
    fn verdicts_follow_control_flow() {
        let src = "nf t { fn handle(pkt: packet) -> action {
            if (pkt.is_tcp) { return forward; }
            return drop; } }";
        assert!(run(src, PacketInfo::tcp(1, 2, 3, 4, 100)).forward);
        assert!(!run(src, PacketInfo::udp(1, 2, 3, 4, 100)).forward);
    }

    #[test]
    fn loop_iterations_tracked_in_block_counts() {
        let src = "nf t { fn handle(pkt: packet) -> action {
            let i: u64 = 0;
            let acc: u64 = 0;
            while (i < pkt.payload_len) {
                acc = acc + pkt.payload_byte(i);
                i = i + 1;
            }
            return forward; } }";
        let p = run(src, PacketInfo::tcp(1, 2, 3, 4, 37));
        // The loop body block must have executed exactly payload_len times.
        assert!(p.block_counts.contains(&37), "{:?}", p.block_counts);
        assert_eq!(p.vcall_counts[&VCall::PayloadByte], 37);
    }

    #[test]
    fn state_persists_across_packets() {
        let src = "nf t { state seen: map<u64, u64>[64];
            fn handle(pkt: packet) -> action {
                let k: u64 = hash(pkt.src_ip);
                let v: u64 = seen.lookup(k);
                if (v == 0) { seen.insert(k, 1); return drop; }
                return forward; } }";
        let m = lower(&frontend(src).unwrap()).unwrap();
        let mut state = HashState::new();
        let pkt = PacketInfo::tcp(9, 9, 9, 9, 10);
        let first = execute(&m.handle, &pkt, &mut state, 10_000).unwrap();
        let second = execute(&m.handle, &pkt, &mut state, 10_000).unwrap();
        assert!(!first.forward);
        assert!(second.forward);
        assert_eq!(state.table_entries(), 1);
    }

    #[test]
    fn header_rewrites_visible_in_packet_out() {
        let src = "nf t { fn handle(pkt: packet) -> action {
            pkt.set_src_ip(12345);
            pkt.decrement_ttl();
            return forward; } }";
        let p = run(src, PacketInfo::tcp(1, 2, 3, 4, 0));
        assert_eq!(p.packet_out.src_ip, 12345);
        assert_eq!(p.packet_out.ttl, 63);
    }

    #[test]
    fn lpm_longest_prefix_wins() {
        let src = "nf t { state routes: lpm[16];
            fn handle(pkt: packet) -> action {
                let nh: u64 = routes.lookup(pkt.dst_ip);
                if (nh == 0) { return drop; }
                return forward; } }";
        let m = lower(&frontend(src).unwrap()).unwrap();
        let sid = m.state_named("routes").unwrap();
        let mut state = HashState::new();
        state.add_lpm_rule(sid, 0x0a000000, 8, 1); // 10.0.0.0/8 -> 1
        state.add_lpm_rule(sid, 0x0a010000, 16, 2); // 10.1.0.0/16 -> 2
        let hit = execute(
            &m.handle,
            &PacketInfo { dst_ip: 0x0a01ff01, ..PacketInfo::tcp(1, 0, 3, 4, 0) },
            &mut state,
            10_000,
        )
        .unwrap();
        assert!(hit.forward);
        // Direct oracle check of longest-prefix semantics.
        assert_eq!(state.lpm_lookup(sid, 0x0a01ff01), 2);
        assert_eq!(state.lpm_lookup(sid, 0x0aff0001), 1);
        assert_eq!(state.lpm_lookup(sid, 0x0b000001), 0);
    }

    #[test]
    fn fuel_limits_runaway_loops() {
        let src = "nf t { fn handle(pkt: packet) -> action {
            let i: u64 = 0;
            while (i < 1000000) { i = i + 1; }
            return forward; } }";
        let m = lower(&frontend(src).unwrap()).unwrap();
        let mut state = HashState::new();
        let err = execute(&m.handle, &PacketInfo::tcp(1, 2, 3, 4, 0), &mut state, 100)
            .unwrap_err();
        assert_eq!(err, InterpError::FuelExhausted);
    }

    #[test]
    fn hash_is_deterministic_and_arg_sensitive() {
        let src = "nf t { fn handle(pkt: packet) -> action {
            let a: u64 = hash(pkt.src_ip, pkt.src_port);
            let b: u64 = hash(pkt.src_ip, pkt.src_port);
            let c: u64 = hash(pkt.dst_ip, pkt.src_port);
            if (a == b && a != c) { return forward; }
            return drop; } }";
        assert!(run(src, PacketInfo::tcp(7, 8, 9, 10, 0)).forward);
    }

    #[test]
    fn counters_accumulate() {
        let src = "nf t { state c: counter[8];
            fn handle(pkt: packet) -> action {
                c.add(pkt.src_ip % 8, 1);
                if (c.read(pkt.src_ip % 8) >= 3) { return drop; }
                return forward; } }";
        let m = lower(&frontend(src).unwrap()).unwrap();
        let mut state = HashState::new();
        let pkt = PacketInfo::tcp(16, 2, 3, 4, 0); // bucket 0
        let verdicts: Vec<bool> = (0..4)
            .map(|_| execute(&m.handle, &pkt, &mut state, 10_000).unwrap().forward)
            .collect();
        assert_eq!(verdicts, vec![true, true, false, false]);
    }
}
