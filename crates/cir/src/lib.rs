//! The Clara Intermediate Representation (CIR) — §3.3 of the paper.
//!
//! CIR is a small typed three-address bytecode organized into basic
//! blocks. The NFC frontend's AST is *lowered* here; user functions are
//! inlined (the checker guarantees acyclicity), short-circuit booleans
//! become control flow, and every framework/builtin call is substituted
//! with a **vcall** — a virtual call naming the NIC-relevant semantic
//! operation (`ParseHeader`, `ChecksumFull`, `TableLookup{state}`, ...)
//! that is bound to a SmartNIC component later in the analysis.
//!
//! The crate also provides:
//!
//! * [`mod@cfg`] — CFG analyses (successors/predecessors, reachability,
//!   dominators, natural-loop detection) used by the dataflow extraction.
//! * [`interp`] — a CIR interpreter that executes a function against a
//!   packet description and a state oracle, recording a *path profile*
//!   (block execution counts, vcall byte counts). This is Clara's
//!   "simulate the execution for the set of packets" path (§3.5).
//!
//! # Example
//!
//! ```
//! use clara_cir::lower;
//!
//! let src = r#"
//!     nf demo {
//!         state t: map<u64, u64>[1024];
//!         fn handle(pkt: packet) -> action {
//!             let v: u64 = t.lookup(hash(pkt.src_ip));
//!             if (v == 0) { return drop; }
//!             return forward;
//!         }
//!     }
//! "#;
//! let module = lower(&clara_lang::frontend(src).unwrap()).unwrap();
//! assert_eq!(module.name, "demo");
//! assert!(module.handle.blocks.len() >= 3); // entry, drop arm, tail
//! ```

pub mod cfg;
pub mod interp;
pub mod ir;
pub mod lower;

pub use interp::{execute, HashState, InterpError, PacketInfo, PathProfile, StateOracle};
pub use ir::{
    BasicBlock, BlockId, CirFunction, CirModule, Instr, Op, Operand, PacketField, Reg, StateId,
    StateInfo, Terminator, VCall,
};
pub use lower::{lower, LowerError};
