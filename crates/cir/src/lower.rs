//! AST → CIR lowering.
//!
//! User functions are inlined at call sites, short-circuit boolean
//! operators become control flow, `pkt.decrement_ttl()` style helpers
//! expand to read-modify-write vcall sequences, and every builtin /
//! framework call is substituted with its [`VCall`]. Unreachable blocks
//! produced by lowering (e.g. join points after both arms return) are
//! pruned before the module is returned.

use crate::ir::*;
use clara_lang::builtins::{lookup_builtin, lookup_method, Receiver};
use clara_lang::{
    BinOp, Block, BuiltinClass, Expr, ExprKind, FnDecl, NfProgram, Stmt, StmtKind, UnOp,
};
use std::collections::HashMap;

/// Errors from lowering. The type checker rules these out for checked
/// programs; they surface only when lowering unchecked ASTs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// The program has no `handle` function.
    MissingHandle,
    /// A name did not resolve (variable, function, state, or method).
    Unresolved(String),
    /// `pkt.decrement_ttl`-style expansion hit an unsupported shape.
    Unsupported(String),
}

impl core::fmt::Display for LowerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LowerError::MissingHandle => write!(f, "program has no `handle` function"),
            LowerError::Unresolved(n) => write!(f, "unresolved name `{n}`"),
            LowerError::Unsupported(m) => write!(f, "unsupported construct: {m}"),
        }
    }
}

impl std::error::Error for LowerError {}

/// Lower a checked NF program to CIR.
pub fn lower(program: &NfProgram) -> Result<CirModule, LowerError> {
    let handle = program.handle_fn().ok_or(LowerError::MissingHandle)?;
    let states: Vec<StateInfo> = program
        .states
        .iter()
        .map(|s| StateInfo {
            name: s.name.clone(),
            kind: s.kind.clone(),
            capacity: s.capacity,
            size_bytes: s.size_bytes(),
        })
        .collect();

    let mut ctx = Lowering {
        program,
        blocks: vec![PendingBlock::new()],
        current: BlockId(0),
        next_reg: 0,
        vars: HashMap::new(),
        inline_stack: Vec::new(),
    };
    // Bind the packet parameter name (its value is implicit; reads go
    // through MetadataRead vcalls, so no register is needed).
    ctx.vars.insert(handle.params[0].name.clone(), Binding::Packet);
    for c in &program.consts {
        ctx.vars.insert(c.name.clone(), Binding::Const(c.value));
    }
    ctx.lower_block(&handle.body)?;
    // The checker guarantees all paths return; any still-open block is
    // unreachable. Terminate it so the IR is well-formed, then prune.
    ctx.terminate_open_blocks();

    let handle = prune_unreachable(CirFunction {
        blocks: ctx
            .blocks
            .into_iter()
            .map(|b| BasicBlock {
                instrs: b.instrs,
                term: b.term.expect("all blocks terminated"),
            })
            .collect(),
        num_regs: ctx.next_reg,
    });

    Ok(CirModule { name: program.name.clone(), states, handle })
}

#[derive(Debug, Clone)]
enum Binding {
    Reg(Reg),
    Const(u64),
    Packet,
}

struct PendingBlock {
    instrs: Vec<Instr>,
    term: Option<Terminator>,
}

impl PendingBlock {
    fn new() -> Self {
        PendingBlock { instrs: Vec::new(), term: None }
    }
}

struct InlineFrame {
    ret_reg: Reg,
    cont_bb: BlockId,
}

struct Lowering<'a> {
    program: &'a NfProgram,
    blocks: Vec<PendingBlock>,
    current: BlockId,
    next_reg: u32,
    vars: HashMap<String, Binding>,
    inline_stack: Vec<InlineFrame>,
}

impl<'a> Lowering<'a> {
    fn fresh(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    fn new_block(&mut self) -> BlockId {
        self.blocks.push(PendingBlock::new());
        BlockId((self.blocks.len() - 1) as u32)
    }

    fn emit(&mut self, instr: Instr) {
        let b = &mut self.blocks[self.current.0 as usize];
        if b.term.is_none() {
            b.instrs.push(instr);
        }
        // Instructions after a terminator are unreachable; drop them.
    }

    fn set_term(&mut self, term: Terminator) {
        let b = &mut self.blocks[self.current.0 as usize];
        if b.term.is_none() {
            b.term = Some(term);
        }
    }

    fn terminate_open_blocks(&mut self) {
        for b in &mut self.blocks {
            if b.term.is_none() {
                b.term = Some(Terminator::Return(Operand::Imm(1)));
            }
        }
    }

    fn lower_block(&mut self, block: &Block) -> Result<(), LowerError> {
        let saved = self.vars.clone();
        for stmt in &block.stmts {
            self.lower_stmt(stmt)?;
        }
        self.vars = saved;
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), LowerError> {
        match &stmt.kind {
            StmtKind::Let { name, value, .. } => {
                let v = self.lower_expr(value)?;
                let dst = self.fresh();
                self.emit(Instr::Copy { dst, src: v });
                self.vars.insert(name.clone(), Binding::Reg(dst));
                Ok(())
            }
            StmtKind::Assign { name, value } => {
                let v = self.lower_expr(value)?;
                match self.vars.get(name) {
                    Some(Binding::Reg(dst)) => {
                        let dst = *dst;
                        self.emit(Instr::Copy { dst, src: v });
                        Ok(())
                    }
                    _ => Err(LowerError::Unresolved(name.clone())),
                }
            }
            StmtKind::If { cond, then_block, else_block } => {
                let c = self.lower_expr(cond)?;
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let end_bb = self.new_block();
                self.set_term(Terminator::Branch { cond: c, then_bb, else_bb });

                self.current = then_bb;
                self.lower_block(then_block)?;
                self.set_term(Terminator::Jump(end_bb));

                self.current = else_bb;
                if let Some(e) = else_block {
                    self.lower_block(e)?;
                }
                self.set_term(Terminator::Jump(end_bb));

                self.current = end_bb;
                Ok(())
            }
            StmtKind::While { cond, body } => {
                let head = self.new_block();
                let body_bb = self.new_block();
                let end_bb = self.new_block();
                self.set_term(Terminator::Jump(head));

                self.current = head;
                let c = self.lower_expr(cond)?;
                self.set_term(Terminator::Branch { cond: c, then_bb: body_bb, else_bb: end_bb });

                self.current = body_bb;
                self.lower_block(body)?;
                self.set_term(Terminator::Jump(head));

                self.current = end_bb;
                Ok(())
            }
            StmtKind::For { var, lo, hi, body } => {
                let lo_v = self.lower_expr(lo)?;
                let hi_v = self.lower_expr(hi)?;
                let i = self.fresh();
                self.emit(Instr::Copy { dst: i, src: lo_v });
                // Pin the bound into a register so re-evaluation is cheap.
                let bound = self.fresh();
                self.emit(Instr::Copy { dst: bound, src: hi_v });

                let head = self.new_block();
                let body_bb = self.new_block();
                let end_bb = self.new_block();
                self.set_term(Terminator::Jump(head));

                self.current = head;
                let c = self.fresh();
                self.emit(Instr::Binary {
                    dst: c,
                    op: Op::Lt,
                    lhs: Operand::Reg(i),
                    rhs: Operand::Reg(bound),
                });
                self.set_term(Terminator::Branch {
                    cond: Operand::Reg(c),
                    then_bb: body_bb,
                    else_bb: end_bb,
                });

                self.current = body_bb;
                let saved = self.vars.clone();
                self.vars.insert(var.clone(), Binding::Reg(i));
                self.lower_block(body)?;
                self.vars = saved;
                self.emit(Instr::Binary {
                    dst: i,
                    op: Op::Add,
                    lhs: Operand::Reg(i),
                    rhs: Operand::Imm(1),
                });
                self.set_term(Terminator::Jump(head));

                self.current = end_bb;
                Ok(())
            }
            StmtKind::Return(value) => {
                let v = match value {
                    Some(e) => self.lower_expr(e)?,
                    None => Operand::Imm(0),
                };
                if let Some(frame) = self.inline_stack.last() {
                    let (ret_reg, cont_bb) = (frame.ret_reg, frame.cont_bb);
                    self.emit(Instr::Copy { dst: ret_reg, src: v });
                    self.set_term(Terminator::Jump(cont_bb));
                    // Continue lowering any dead statements into a fresh
                    // unreachable block.
                    let dead = self.new_block();
                    self.current = dead;
                } else {
                    self.set_term(Terminator::Return(v));
                    let dead = self.new_block();
                    self.current = dead;
                }
                Ok(())
            }
            StmtKind::Expr(e) => {
                self.lower_expr(e)?;
                Ok(())
            }
        }
    }

    fn lower_expr(&mut self, expr: &Expr) -> Result<Operand, LowerError> {
        match &expr.kind {
            ExprKind::Int(v) => Ok(Operand::Imm(*v)),
            ExprKind::Bool(b) => Ok(Operand::Imm(*b as u64)),
            ExprKind::ActionLit(forward) => Ok(Operand::Imm(*forward as u64)),
            ExprKind::Ident(name) => match self.vars.get(name) {
                Some(Binding::Reg(r)) => Ok(Operand::Reg(*r)),
                Some(Binding::Const(v)) => Ok(Operand::Imm(*v)),
                Some(Binding::Packet) => Err(LowerError::Unsupported(
                    "packet used as a value".into(),
                )),
                None => Err(LowerError::Unresolved(name.clone())),
            },
            ExprKind::Unary(op, inner) => {
                let v = self.lower_expr(inner)?;
                let dst = self.fresh();
                match op {
                    UnOp::Not => self.emit(Instr::Binary {
                        dst,
                        op: Op::Eq,
                        lhs: v,
                        rhs: Operand::Imm(0),
                    }),
                    UnOp::Neg => self.emit(Instr::Binary {
                        dst,
                        op: Op::Sub,
                        lhs: Operand::Imm(0),
                        rhs: v,
                    }),
                }
                Ok(Operand::Reg(dst))
            }
            ExprKind::Binary(BinOp::LogicalAnd, lhs, rhs) => {
                self.lower_short_circuit(lhs, rhs, true)
            }
            ExprKind::Binary(BinOp::LogicalOr, lhs, rhs) => {
                self.lower_short_circuit(lhs, rhs, false)
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let l = self.lower_expr(lhs)?;
                let r = self.lower_expr(rhs)?;
                let dst = self.fresh();
                // Strength reduction (Clara mimics a compiler, and NPU
                // cores have no divide unit): x % 2^k -> x & (2^k - 1),
                // x / 2^k -> x >> k, x * 2^k -> x << k.
                let (op, r) = match (map_binop(*op), r) {
                    (Op::Rem, Operand::Imm(c)) if c.is_power_of_two() => {
                        (Op::And, Operand::Imm(c - 1))
                    }
                    (Op::Div, Operand::Imm(c)) if c.is_power_of_two() => {
                        (Op::Shr, Operand::Imm(c.trailing_zeros() as u64))
                    }
                    (Op::Mul, Operand::Imm(c)) if c.is_power_of_two() => {
                        (Op::Shl, Operand::Imm(c.trailing_zeros() as u64))
                    }
                    (op, r) => (op, r),
                };
                self.emit(Instr::Binary { dst, op, lhs: l, rhs: r });
                Ok(Operand::Reg(dst))
            }
            ExprKind::Call { name, args } => {
                if let Some(builtin) = lookup_builtin(name) {
                    return self.lower_vcall(builtin.class, None, args, builtin.ret);
                }
                if let Some(f) = self.program.function(name) {
                    let f = f.clone();
                    return self.inline_call(&f, args);
                }
                Err(LowerError::Unresolved(name.clone()))
            }
            ExprKind::MethodCall { recv, method, args } => {
                // Packet helper with read-modify-write expansion.
                if matches!(self.vars.get(recv), Some(Binding::Packet))
                    && method == "decrement_ttl"
                {
                    let ttl = self.fresh();
                    self.emit(Instr::VCall {
                        dst: Some(ttl),
                        call: VCall::MetadataRead(PacketField::Ttl),
                        args: vec![],
                    });
                    let dec = self.fresh();
                    self.emit(Instr::Binary {
                        dst: dec,
                        op: Op::Sub,
                        lhs: Operand::Reg(ttl),
                        rhs: Operand::Imm(1),
                    });
                    self.emit(Instr::VCall {
                        dst: None,
                        call: VCall::MetadataWrite(PacketField::Ttl),
                        args: vec![Operand::Reg(dec)],
                    });
                    return Ok(Operand::Imm(0));
                }

                let (builtin, state) = self.resolve_method(recv, method)?;
                // Packet metadata writes name the field via the method.
                if builtin.class == BuiltinClass::MetadataWrite {
                    let field = method
                        .strip_prefix("set_")
                        .and_then(PacketField::from_name)
                        .ok_or_else(|| {
                            LowerError::Unsupported(format!("metadata write `{method}`"))
                        })?;
                    let mut lowered = Vec::new();
                    for a in args {
                        lowered.push(self.lower_expr(a)?);
                    }
                    self.emit(Instr::VCall {
                        dst: None,
                        call: VCall::MetadataWrite(field),
                        args: lowered,
                    });
                    return Ok(Operand::Imm(0));
                }
                self.lower_vcall_with_state(builtin.class, state, args, builtin.ret)
            }
            ExprKind::Field { recv, field } => {
                if !matches!(self.vars.get(recv), Some(Binding::Packet)) {
                    return Err(LowerError::Unresolved(recv.clone()));
                }
                let pf = PacketField::from_name(field)
                    .ok_or_else(|| LowerError::Unresolved(format!("{recv}.{field}")))?;
                let dst = self.fresh();
                self.emit(Instr::VCall {
                    dst: Some(dst),
                    call: VCall::MetadataRead(pf),
                    args: vec![],
                });
                Ok(Operand::Reg(dst))
            }
        }
    }

    fn resolve_method(
        &self,
        recv: &str,
        method: &str,
    ) -> Result<(clara_lang::Builtin, Option<StateId>), LowerError> {
        if let Some(id) = self
            .program
            .states
            .iter()
            .position(|s| s.name == recv)
        {
            let kind = &self.program.states[id].kind;
            let b = lookup_method(Receiver::State(kind), method)
                .ok_or_else(|| LowerError::Unresolved(format!("{recv}.{method}")))?;
            return Ok((b, Some(StateId(id as u32))));
        }
        if clara_lang::builtins::is_namespace(recv) {
            let ns = match recv {
                "dpdk" => "dpdk",
                "click" => "click",
                _ => "bpf",
            };
            let b = lookup_method(Receiver::Namespace(ns), method)
                .ok_or_else(|| LowerError::Unresolved(format!("{recv}.{method}")))?;
            return Ok((b, None));
        }
        if matches!(self.vars.get(recv), Some(Binding::Packet)) {
            let b = lookup_method(Receiver::Packet, method)
                .ok_or_else(|| LowerError::Unresolved(format!("{recv}.{method}")))?;
            return Ok((b, None));
        }
        Err(LowerError::Unresolved(recv.to_string()))
    }

    fn lower_vcall(
        &mut self,
        class: BuiltinClass,
        state: Option<StateId>,
        args: &[Expr],
        ret: clara_lang::Type,
    ) -> Result<Operand, LowerError> {
        self.lower_vcall_with_state(class, state, args, ret)
    }

    fn lower_vcall_with_state(
        &mut self,
        class: BuiltinClass,
        state: Option<StateId>,
        args: &[Expr],
        ret: clara_lang::Type,
    ) -> Result<Operand, LowerError> {
        let call = vcall_for(class, state)?;
        let mut lowered = Vec::new();
        for a in args {
            // Packet arguments are implicit at the IR level.
            if matches!(&a.kind, ExprKind::Ident(n) if matches!(self.vars.get(n), Some(Binding::Packet)))
            {
                continue;
            }
            lowered.push(self.lower_expr(a)?);
        }
        let dst = if ret == clara_lang::Type::Void { None } else { Some(self.fresh()) };
        self.emit(Instr::VCall { dst, call, args: lowered });
        Ok(dst.map(Operand::Reg).unwrap_or(Operand::Imm(0)))
    }

    fn lower_short_circuit(
        &mut self,
        lhs: &Expr,
        rhs: &Expr,
        is_and: bool,
    ) -> Result<Operand, LowerError> {
        let result = self.fresh();
        // Default value if we short-circuit: 0 for &&, 1 for ||.
        self.emit(Instr::Const { dst: result, value: if is_and { 0 } else { 1 } });
        let l = self.lower_expr(lhs)?;
        let rhs_bb = self.new_block();
        let end_bb = self.new_block();
        if is_and {
            self.set_term(Terminator::Branch { cond: l, then_bb: rhs_bb, else_bb: end_bb });
        } else {
            self.set_term(Terminator::Branch { cond: l, then_bb: end_bb, else_bb: rhs_bb });
        }
        self.current = rhs_bb;
        let r = self.lower_expr(rhs)?;
        // Normalize to 0/1.
        self.emit(Instr::Binary { dst: result, op: Op::Ne, lhs: r, rhs: Operand::Imm(0) });
        self.set_term(Terminator::Jump(end_bb));
        self.current = end_bb;
        Ok(Operand::Reg(result))
    }

    fn inline_call(&mut self, f: &FnDecl, args: &[Expr]) -> Result<Operand, LowerError> {
        // Evaluate arguments in the caller's scope.
        let mut arg_vals = Vec::new();
        for (a, p) in args.iter().zip(&f.params) {
            if p.ty == clara_lang::Type::Packet {
                arg_vals.push(None);
            } else {
                arg_vals.push(Some(self.lower_expr(a)?));
            }
        }
        let ret_reg = self.fresh();
        let cont_bb = self.new_block();

        let saved_vars = self.vars.clone();
        // Callee scope: constants remain visible, parameters bound fresh.
        let mut callee_vars: HashMap<String, Binding> = HashMap::new();
        for c in &self.program.consts {
            callee_vars.insert(c.name.clone(), Binding::Const(c.value));
        }
        for (p, v) in f.params.iter().zip(arg_vals) {
            match v {
                Some(op) => {
                    let r = self.fresh();
                    self.emit(Instr::Copy { dst: r, src: op });
                    callee_vars.insert(p.name.clone(), Binding::Reg(r));
                }
                None => {
                    callee_vars.insert(p.name.clone(), Binding::Packet);
                }
            }
        }
        self.vars = callee_vars;
        self.inline_stack.push(InlineFrame { ret_reg, cont_bb });
        self.lower_block(&f.body)?;
        // Void functions can fall off the end.
        self.set_term(Terminator::Jump(cont_bb));
        self.inline_stack.pop();
        self.vars = saved_vars;
        self.current = cont_bb;
        Ok(Operand::Reg(ret_reg))
    }
}

fn map_binop(op: BinOp) -> Op {
    match op {
        BinOp::Add => Op::Add,
        BinOp::Sub => Op::Sub,
        BinOp::Mul => Op::Mul,
        BinOp::Div => Op::Div,
        BinOp::Rem => Op::Rem,
        BinOp::And => Op::And,
        BinOp::Or => Op::Or,
        BinOp::Xor => Op::Xor,
        BinOp::Shl => Op::Shl,
        BinOp::Shr => Op::Shr,
        BinOp::Eq => Op::Eq,
        BinOp::Ne => Op::Ne,
        BinOp::Lt => Op::Lt,
        BinOp::Le => Op::Le,
        BinOp::Gt => Op::Gt,
        BinOp::Ge => Op::Ge,
        BinOp::LogicalAnd | BinOp::LogicalOr => {
            unreachable!("short-circuit ops lowered to control flow")
        }
    }
}

fn vcall_for(class: BuiltinClass, state: Option<StateId>) -> Result<VCall, LowerError> {
    use BuiltinClass as C;
    let need_state = || {
        state.ok_or_else(|| LowerError::Unsupported("table vcall without a state".into()))
    };
    Ok(match class {
        C::ParseHeader => VCall::ParseHeader,
        C::ChecksumFull => VCall::ChecksumFull,
        C::ChecksumIncr => VCall::ChecksumIncr,
        C::Crypto => VCall::Crypto,
        C::PayloadScan => VCall::PayloadScan,
        C::HashCompute => VCall::Hash,
        C::TableLookup => VCall::TableLookup(need_state()?),
        C::TableWrite => VCall::TableWrite(need_state()?),
        C::LpmLookup => VCall::LpmLookup(need_state()?),
        C::CounterAdd => VCall::CounterAdd(need_state()?),
        C::CounterRead => VCall::CounterRead(need_state()?),
        C::ArrayRead => VCall::ArrayRead(need_state()?),
        C::ArrayWrite => VCall::ArrayWrite(need_state()?),
        C::MetadataRead => {
            return Err(LowerError::Unsupported(
                "bare metadata-read builtin (reads go through fields)".into(),
            ))
        }
        C::MetadataWrite => {
            return Err(LowerError::Unsupported(
                "metadata writes are lowered at the call site".into(),
            ))
        }
        C::PayloadByte => VCall::PayloadByte,
        C::Meter => VCall::Meter,
        C::FloatOp => VCall::FloatOp,
        C::Log => VCall::Log,
    })
}

/// Remove unreachable blocks and remap ids.
fn prune_unreachable(f: CirFunction) -> CirFunction {
    let n = f.blocks.len();
    let mut reachable = vec![false; n];
    let mut stack = vec![0usize];
    while let Some(i) = stack.pop() {
        if reachable[i] {
            continue;
        }
        reachable[i] = true;
        match &f.blocks[i].term {
            Terminator::Jump(t) => stack.push(t.0 as usize),
            Terminator::Branch { then_bb, else_bb, .. } => {
                stack.push(then_bb.0 as usize);
                stack.push(else_bb.0 as usize);
            }
            Terminator::Return(_) => {}
        }
    }
    let mut remap = vec![u32::MAX; n];
    let mut next = 0u32;
    for i in 0..n {
        if reachable[i] {
            remap[i] = next;
            next += 1;
        }
    }
    let blocks = f
        .blocks
        .into_iter()
        .enumerate()
        .filter(|(i, _)| reachable[*i])
        .map(|(_, mut b)| {
            b.term = match b.term {
                Terminator::Jump(t) => Terminator::Jump(BlockId(remap[t.0 as usize])),
                Terminator::Branch { cond, then_bb, else_bb } => Terminator::Branch {
                    cond,
                    then_bb: BlockId(remap[then_bb.0 as usize]),
                    else_bb: BlockId(remap[else_bb.0 as usize]),
                },
                r @ Terminator::Return(_) => r,
            };
            b
        })
        .collect();
    CirFunction { blocks, num_regs: f.num_regs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_lang::frontend;

    fn module(src: &str) -> CirModule {
        lower(&frontend(src).unwrap()).unwrap()
    }

    #[test]
    fn straight_line_lowering() {
        let m = module(
            "nf t { fn handle(pkt: packet) -> action { let a: u64 = 1 + 2; return forward; } }",
        );
        assert_eq!(m.handle.blocks.len(), 1);
        let b = &m.handle.blocks[0];
        assert!(matches!(b.term, Terminator::Return(Operand::Imm(1))));
        assert!(b
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Binary { op: Op::Add, .. })));
    }

    #[test]
    fn vcall_substitution_for_frameworks() {
        // The §3.3 example: Click's network_header becomes vcall_get_hdr.
        let m = module(
            "nf t { fn handle(pkt: packet) -> action { click.network_header(pkt); return drop; } }",
        );
        let calls: Vec<_> = m.handle.vcalls().map(|(_, c)| *c).collect();
        assert_eq!(calls, vec![VCall::ParseHeader]);
    }

    #[test]
    fn table_vcalls_reference_states() {
        let m = module(
            "nf t { state tbl: map<u64, u64>[128]; state r: lpm[100];
              fn handle(pkt: packet) -> action {
                let a: u64 = tbl.lookup(1);
                let b: u64 = r.lookup(pkt.dst_ip);
                tbl.insert(1, a + b);
                return forward; } }",
        );
        let calls: Vec<_> = m.handle.vcalls().map(|(_, c)| *c).collect();
        assert!(calls.contains(&VCall::TableLookup(StateId(0))));
        assert!(calls.contains(&VCall::LpmLookup(StateId(1))));
        assert!(calls.contains(&VCall::TableWrite(StateId(0))));
        assert_eq!(m.state(StateId(1)).capacity, 100);
    }

    #[test]
    fn if_else_produces_diamond() {
        let m = module(
            "nf t { fn handle(pkt: packet) -> action {
                if (pkt.is_tcp) { return forward; } else { return drop; } } }",
        );
        // entry + then + else (join pruned as unreachable).
        assert_eq!(m.handle.blocks.len(), 3);
        let terms: Vec<_> = m.handle.blocks.iter().map(|b| &b.term).collect();
        assert!(matches!(terms[0], Terminator::Branch { .. }));
    }

    #[test]
    fn while_loop_structure() {
        let m = module(
            "nf t { fn handle(pkt: packet) -> action {
                let i: u64 = 0;
                while (i < 10) { i = i + 1; }
                return forward; } }",
        );
        // entry, head, body, end.
        assert_eq!(m.handle.blocks.len(), 4);
        // The body must jump back to the head (a back edge).
        let has_back_edge = m.handle.blocks.iter().enumerate().any(|(i, b)| {
            matches!(&b.term, Terminator::Jump(t) if (t.0 as usize) < i)
        });
        assert!(has_back_edge);
    }

    #[test]
    fn for_loop_desugars_to_while_shape() {
        let m = module(
            "nf t { state c: counter[16];
              fn handle(pkt: packet) -> action {
                for i in 0..4 { c.add(i, 1); }
                return forward; } }",
        );
        assert_eq!(m.handle.blocks.len(), 4);
        assert!(m
            .handle
            .vcalls()
            .any(|(_, c)| matches!(c, VCall::CounterAdd(_))));
    }

    #[test]
    fn user_function_inlined() {
        let m = module(
            "nf t {
              fn triple(x: u64) -> u64 { return x * 3; }
              fn handle(pkt: packet) -> action {
                let y: u64 = triple(14);
                if (y == 42) { return forward; }
                return drop; } }",
        );
        // No call instruction kind exists; the multiply must appear inline.
        assert!(m
            .handle
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i, Instr::Binary { op: Op::Mul, .. })));
    }

    #[test]
    fn short_circuit_becomes_branches() {
        let m = module(
            "nf t { fn handle(pkt: packet) -> action {
                if (pkt.is_tcp && pkt.is_syn) { return drop; }
                return forward; } }",
        );
        let branch_count = m
            .handle
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Terminator::Branch { .. }))
            .count();
        assert!(branch_count >= 2, "expected >=2 branches, got {branch_count}");
    }

    #[test]
    fn decrement_ttl_expands_to_rmw() {
        let m = module(
            "nf t { fn handle(pkt: packet) -> action { pkt.decrement_ttl(); return forward; } }",
        );
        let calls: Vec<_> = m.handle.vcalls().map(|(_, c)| *c).collect();
        assert_eq!(
            calls,
            vec![
                VCall::MetadataRead(PacketField::Ttl),
                VCall::MetadataWrite(PacketField::Ttl)
            ]
        );
    }

    #[test]
    fn metadata_writes_name_fields() {
        let m = module(
            "nf t { fn handle(pkt: packet) -> action { pkt.set_dst_port(8080); return forward; } }",
        );
        assert!(m
            .handle
            .vcalls()
            .any(|(_, c)| *c == VCall::MetadataWrite(PacketField::DstPort)));
    }

    #[test]
    fn strength_reduction_on_power_of_two() {
        let m = module(
            "nf t { fn handle(pkt: packet) -> action {
                let a: u64 = pkt.src_ip % 4096;
                let b: u64 = a / 8;
                let c: u64 = b * 16;
                if (c == 0) { return drop; }
                return forward; } }",
        );
        let ops: Vec<Op> = m
            .handle
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter_map(|i| match i {
                Instr::Binary { op, .. } => Some(*op),
                _ => None,
            })
            .collect();
        assert!(ops.contains(&Op::And), "{ops:?}");
        assert!(ops.contains(&Op::Shr), "{ops:?}");
        assert!(ops.contains(&Op::Shl), "{ops:?}");
        assert!(!ops.contains(&Op::Rem) && !ops.contains(&Op::Div) && !ops.contains(&Op::Mul));
    }

    #[test]
    fn unreachable_blocks_pruned() {
        let m = module(
            "nf t { fn handle(pkt: packet) -> action { return forward; } }",
        );
        assert_eq!(m.handle.blocks.len(), 1);
    }

    #[test]
    fn packet_arg_implicit_in_vcalls() {
        let m = module(
            "nf t { fn handle(pkt: packet) -> action {
                let c: u16 = checksum(pkt); return forward; } }",
        );
        let vcall_args = m
            .handle
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .find_map(|i| match i {
                Instr::VCall { call: VCall::ChecksumFull, args, .. } => Some(args.len()),
                _ => None,
            });
        assert_eq!(vcall_args, Some(0));
    }
}
