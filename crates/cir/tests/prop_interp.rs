//! Property tests: the lowering + interpreter pair computes the same
//! arithmetic a direct evaluator does (differential testing of the
//! compiler half of Clara).

use clara_cir::{execute, lower, HashState, PacketInfo};
use clara_lang::frontend;
use proptest::prelude::*;

/// A tiny arithmetic AST we can both print as NFC and evaluate in Rust.
#[derive(Debug, Clone)]
enum E {
    Lit(u32),
    SrcIp,
    PayloadLen,
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Rem(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Shl(Box<E>, u32),
    Shr(Box<E>, u32),
}

impl E {
    fn print(&self) -> String {
        match self {
            E::Lit(v) => v.to_string(),
            E::SrcIp => "pkt.src_ip".into(),
            E::PayloadLen => "pkt.payload_len".into(),
            E::Add(a, b) => format!("({} + {})", a.print(), b.print()),
            E::Sub(a, b) => format!("({} - {})", a.print(), b.print()),
            E::Mul(a, b) => format!("({} * {})", a.print(), b.print()),
            E::Div(a, b) => format!("({} / {})", a.print(), b.print()),
            E::Rem(a, b) => format!("({} % {})", a.print(), b.print()),
            E::And(a, b) => format!("({} & {})", a.print(), b.print()),
            E::Or(a, b) => format!("({} | {})", a.print(), b.print()),
            E::Xor(a, b) => format!("({} ^ {})", a.print(), b.print()),
            E::Shl(a, k) => format!("({} << {})", a.print(), k),
            E::Shr(a, k) => format!("({} >> {})", a.print(), k),
        }
    }

    fn eval(&self, pkt: &PacketInfo) -> u64 {
        match self {
            E::Lit(v) => *v as u64,
            E::SrcIp => pkt.src_ip as u64,
            E::PayloadLen => pkt.payload_len as u64,
            E::Add(a, b) => a.eval(pkt).wrapping_add(b.eval(pkt)),
            E::Sub(a, b) => a.eval(pkt).wrapping_sub(b.eval(pkt)),
            E::Mul(a, b) => a.eval(pkt).wrapping_mul(b.eval(pkt)),
            E::Div(a, b) => a.eval(pkt).checked_div(b.eval(pkt)).unwrap_or(0),
            E::Rem(a, b) => {
                let (x, y) = (a.eval(pkt), b.eval(pkt));
                x.checked_rem(y).unwrap_or(x)
            }
            E::And(a, b) => a.eval(pkt) & b.eval(pkt),
            E::Or(a, b) => a.eval(pkt) | b.eval(pkt),
            E::Xor(a, b) => a.eval(pkt) ^ b.eval(pkt),
            E::Shl(a, k) => a.eval(pkt).wrapping_shl(*k & 63),
            E::Shr(a, k) => a.eval(pkt).wrapping_shr(*k & 63),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (0u32..10_000).prop_map(E::Lit),
        Just(E::SrcIp),
        Just(E::PayloadLen),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Div(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Rem(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::And(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Or(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(a.into(), b.into())),
            (inner.clone(), 0u32..64).prop_map(|(a, k)| E::Shl(a.into(), k)),
            (inner, 0u32..64).prop_map(|(a, k)| E::Shr(a.into(), k)),
        ]
    })
}

proptest! {
    /// Lower + interpret == direct evaluation, for any expression and
    /// packet. Covers the strength-reduction rewrites too (power-of-two
    /// multiplies/divides/modulo must stay semantically identical).
    #[test]
    fn lowering_preserves_arithmetic(
        e in arb_expr(),
        src_ip in any::<u32>(),
        payload in any::<u16>(),
    ) {
        let src = format!(
            "nf t {{ fn handle(pkt: packet) -> action {{
                let v: u64 = {};
                if (v == {}) {{ return forward; }}
                return drop;
            }} }}",
            e.print(),
            0u64, // placeholder, replaced below by expected equality check
        );
        // Compute expected, then test both branches by comparing against
        // the real expected value.
        let pkt = PacketInfo { src_ip, payload_len: payload, ..PacketInfo::tcp(0, 0, 0, 0, 0) };
        let expected = e.eval(&pkt);
        let src_match = src.replace("== 0)", &format!("== {expected})"));

        let module = lower(&frontend(&src_match).unwrap()).unwrap();
        let mut state = HashState::new();
        let out = execute(&module.handle, &pkt, &mut state, 1_000_000).unwrap();
        prop_assert!(
            out.forward,
            "expr {} evaluated differently (expected {expected}) for pkt {pkt:?}",
            e.print()
        );
    }

    /// Interpretation is deterministic: same packet, same state seed,
    /// same path profile.
    #[test]
    fn interpretation_deterministic(src_ip in any::<u32>(), payload in any::<u16>()) {
        let src = "nf t { state c: counter[16];
            fn handle(pkt: packet) -> action {
                let i: u64 = 0;
                while (i < pkt.payload_len % 64) {
                    c.add(i % 16, 1);
                    i = i + 1;
                }
                if (pkt.src_ip % 2 == 0) { return forward; }
                return drop;
            } }";
        let module = lower(&frontend(src).unwrap()).unwrap();
        let pkt = PacketInfo { src_ip, payload_len: payload, ..PacketInfo::tcp(0, 0, 0, 0, 0) };
        let mut s1 = HashState::new();
        let mut s2 = HashState::new();
        let a = execute(&module.handle, &pkt, &mut s1, 1_000_000).unwrap();
        let b = execute(&module.handle, &pkt, &mut s2, 1_000_000).unwrap();
        prop_assert_eq!(a.block_counts, b.block_counts);
        prop_assert_eq!(a.forward, b.forward);
        prop_assert_eq!(a.forward, src_ip % 2 == 0);
    }
}
