//! Property tests on the curve-fitting utilities and the parameter
//! store.

use clara_microbench::{knee_of_curve, linear_fit};
use proptest::prelude::*;

proptest! {
    /// Least squares recovers an exact line for any slope/intercept.
    #[test]
    fn fit_recovers_exact_lines(
        intercept in -1e5f64..1e5,
        slope in -1e3f64..1e3,
        n in 2usize..40,
    ) {
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let x = i as f64 * 3.5;
                (x, intercept + slope * x)
            })
            .collect();
        let (b, m) = linear_fit(&pts);
        prop_assert!((b - intercept).abs() < 1e-6 * (1.0 + intercept.abs()), "b {b} vs {intercept}");
        prop_assert!((m - slope).abs() < 1e-6 * (1.0 + slope.abs()), "m {m} vs {slope}");
    }

    /// Symmetric noise cannot bias the slope by more than its magnitude.
    #[test]
    fn fit_resists_symmetric_noise(slope in 0.1f64..100.0, noise in 0.0f64..5.0) {
        let pts: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let x = i as f64;
                let eps = if i % 2 == 0 { noise } else { -noise };
                (x, slope * x + eps)
            })
            .collect();
        let (_, m) = linear_fit(&pts);
        prop_assert!((m - slope).abs() < 0.2 + noise * 0.1, "m {m} vs {slope}");
    }

    /// A step curve's knee is always located between the last low point
    /// and the first high point.
    #[test]
    fn knee_brackets_the_step(
        step_at in 2usize..18,
        low in 10.0f64..200.0,
        jump in 100.0f64..2000.0,
    ) {
        let pts: Vec<(f64, f64)> = (0..20)
            .map(|i| {
                let x = (i + 1) as f64 * 1000.0;
                (x, if i < step_at { low } else { low + jump })
            })
            .collect();
        let knee = knee_of_curve(&pts).expect("a step has a knee");
        let last_low = pts[step_at - 1].0;
        let first_high = pts[step_at].0;
        prop_assert!(
            (last_low..=first_high).contains(&knee),
            "knee {knee} outside [{last_low}, {first_high}]"
        );
    }

    /// Near-flat curves (within 10%) never report a knee.
    #[test]
    fn flat_curves_have_no_knee(base in 10.0f64..1e5, wiggle in 0.0f64..0.04) {
        let pts: Vec<(f64, f64)> = (0..12)
            .map(|i| {
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                ((i + 1) as f64, base * (1.0 + sign * wiggle))
            })
            .collect();
        prop_assert_eq!(knee_of_curve(&pts), None);
    }
}
