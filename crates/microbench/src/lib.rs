//! Microbenchmark programs and NIC parameter extraction (§3.2 / §4).
//!
//! Clara annotates the LNIC skeleton with performance parameters obtained
//! "from hardware specifications or microbenchmarking, as a one-time
//! effort for each SmartNIC". This crate implements the paper's six
//! microbenchmark families — run against the `clara-nicsim` substrate in
//! place of hardware:
//!
//! 1. packet parsers,
//! 2. checksum units (software path and ingress accelerator),
//! 3. the flow cache,
//! 4. header and metadata modifications,
//! 5. atomic and bulk memory loads and stores (latency per region, bulk
//!    streaming slopes, cache-capacity knees via the half-latency rule
//!    \[40\]),
//! 6. general-purpose compute instructions.
//!
//! The crucial property is the **information barrier**: the predictor
//! never reads the simulator's true constants. Everything in
//! [`NicParameters`] is *estimated* from measured latency curves
//! (marginal differences, least-squares slopes, knee detection), so
//! prediction error has the same character as on real hardware —
//! parameter-estimation noise plus model abstraction.
//!
//! Architectural parameters (region capacities, thread counts, which
//! accelerators exist) are taken from the LNIC "databook", as the paper
//! prescribes: "most (though not all) SmartNIC databooks include
//! architectural parameters". Per-instruction ALU/multiply/divide cycle
//! counts likewise come from the databook — vendor documentation and
//! uops.info-style tables publish these — and are *not* measured here.
//!
//! # Example
//!
//! ```
//! use clara_lnic::profiles;
//! use clara_microbench::extract_parameters;
//!
//! let nic = profiles::netronome_agilio_cx40();
//! let params = extract_parameters(&nic);
//! // §3.2: header parsing ≈ 150 cycles on an NPU.
//! assert!((params.parse_header - 150.0).abs() < 15.0);
//! ```

pub mod fit;
pub mod params;
pub mod programs;
pub mod store;

pub use fit::{knee_of_curve, linear_fit};
pub use params::{AccelEst, CacheEst, MemEst, NicParameters};
pub use store::{from_text, to_text, StoreError};
pub use programs::{
    accel_service_curve, checksum_sw_curve, extract_parameters, linear_scan_curve,
    memory_latency_vs_working_set, stream_curve,
};
