//! Curve-fitting utilities: least-squares lines and latency-curve knees.

/// Ordinary least-squares fit `y = intercept + slope·x`.
///
/// Returns `(intercept, slope)`. With fewer than two distinct x values
/// the slope is 0 and the intercept is the mean.
pub fn linear_fit(points: &[(f64, f64)]) -> (f64, f64) {
    let n = points.len() as f64;
    if points.is_empty() {
        return (0.0, 0.0);
    }
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    if sxx == 0.0 {
        return (mean_y, 0.0);
    }
    let sxy: f64 = points
        .iter()
        .map(|p| (p.0 - mean_x) * (p.1 - mean_y))
        .sum();
    let slope = sxy / sxx;
    (mean_y - slope * mean_x, slope)
}

/// Find the knee of a latency curve by the *half-latency rule* \[40\]:
/// the knee sits where latency first exceeds the midpoint between the
/// floor (minimum) and the ceiling (maximum) of the curve.
///
/// Input points must be sorted by x (offered size/load). Returns the x of
/// the knee, or `None` when the curve is flat (ceiling within 10% of the
/// floor — no capacity cliff observed).
pub fn knee_of_curve(points: &[(f64, f64)]) -> Option<f64> {
    if points.len() < 3 {
        return None;
    }
    let floor = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let ceil = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    if ceil < floor * 1.1 {
        return None;
    }
    let half = floor + (ceil - floor) / 2.0;
    let after = points.iter().position(|p| p.1 > half)?;
    if after == 0 {
        return Some(points[0].0);
    }
    // Linear interpolation between the straddling samples.
    let (x0, y0) = points[after - 1];
    let (x1, y1) = points[after];
    if (y1 - y0).abs() < f64::EPSILON {
        return Some(x1);
    }
    Some(x0 + (half - y0) / (y1 - y0) * (x1 - x0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let (b, m) = linear_fit(&pts);
        assert!((b - 3.0).abs() < 1e-9);
        assert!((m - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fits_noisy_line() {
        let pts: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let x = i as f64;
                let noise = if i % 2 == 0 { 0.5 } else { -0.5 };
                (x, 10.0 + 0.25 * x + noise)
            })
            .collect();
        let (b, m) = linear_fit(&pts);
        assert!((b - 10.0).abs() < 0.2, "intercept {b}");
        assert!((m - 0.25).abs() < 0.01, "slope {m}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(linear_fit(&[]), (0.0, 0.0));
        let (b, m) = linear_fit(&[(5.0, 7.0), (5.0, 9.0)]);
        assert_eq!(m, 0.0);
        assert!((b - 8.0).abs() < 1e-9);
    }

    #[test]
    fn knee_found_at_capacity_cliff() {
        // Flat at 150 cycles until 3 MB, then 500.
        let pts: Vec<(f64, f64)> = (1..=8)
            .map(|mb| {
                let x = mb as f64 * 1e6;
                (x, if x <= 3e6 { 150.0 } else { 500.0 })
            })
            .collect();
        let knee = knee_of_curve(&pts).unwrap();
        assert!((3e6..=4e6).contains(&knee), "knee {knee}");
    }

    #[test]
    fn flat_curve_has_no_knee() {
        let pts: Vec<(f64, f64)> = (1..=8).map(|i| (i as f64, 100.0)).collect();
        assert_eq!(knee_of_curve(&pts), None);
    }

    #[test]
    fn gradual_curve_interpolates() {
        let pts = vec![(1.0, 100.0), (2.0, 100.0), (3.0, 200.0), (4.0, 300.0)];
        // floor 100, ceil 300, half 200 -> first > 200 at x=4; interpolate
        // between (3,200) and (4,300): 200 is not > 200, half point 200
        // crossed between 3 and 4.
        let knee = knee_of_curve(&pts).unwrap();
        assert!((3.0..=4.0).contains(&knee), "knee {knee}");
    }
}
