//! The extracted parameter table consumed by the predictor.

use clara_lnic::AccelKind;
use std::collections::HashMap;

/// Estimated cache parameters of a memory region.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEst {
    /// Capacity estimated from the latency-curve knee, in bytes.
    pub capacity: f64,
    /// Hit latency in cycles (measured on a resident working set).
    pub hit_latency: f64,
}

/// Estimated parameters of one memory region.
#[derive(Debug, Clone, PartialEq)]
pub struct MemEst {
    /// Region name (matches the LNIC databook).
    pub name: String,
    /// Capacity in bytes (databook/architectural).
    pub capacity: usize,
    /// Measured raw access latency in cycles (cache misses, cold sets).
    pub latency: f64,
    /// Measured bulk streaming cost per byte.
    pub bulk_per_byte: f64,
    /// Cache estimate, when a knee was observed.
    pub cache: Option<CacheEst>,
    /// Whether NF state may be placed here (false for per-core local
    /// memory and engine-private SRAM).
    pub placeable: bool,
    /// Mean extra latency for remote-island access (0 when uniform).
    pub numa_extra: f64,
}

/// Estimated service curve of an accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelEst {
    /// Fixed invocation cost in cycles.
    pub base: f64,
    /// Marginal cycles per byte.
    pub per_byte: f64,
}

/// Everything the predictor knows about a NIC: measured performance
/// parameters plus databook architectural facts.
#[derive(Debug, Clone, PartialEq)]
pub struct NicParameters {
    /// NIC model name.
    pub nic_name: String,
    /// Clock in GHz (databook).
    pub freq_ghz: f64,
    /// Total hardware threads across general cores (databook).
    pub total_threads: usize,
    /// Whether general cores have FPUs (databook).
    pub has_fpu: bool,
    /// Whether the NIC requires pipelined stage mapping (databook).
    pub pipelined: bool,
    /// Energy per cycle in nanojoules (databook).
    pub nj_per_cycle: f64,

    /// Measured: header parse cost in cycles.
    pub parse_header: f64,
    /// Measured: one metadata modification in cycles.
    pub metadata_mod: f64,
    /// Measured: one flow-hash computation in cycles.
    pub hash: f64,
    /// Measured: one software-emulated float op in cycles.
    pub float_op: f64,
    /// Measured: software streaming cost per payload byte in CTM
    /// residence (compute + bulk reads combined).
    pub stream_per_byte_resident: f64,
    /// Measured: marginal streaming cost per byte once the payload spills
    /// past the CTM residency threshold.
    pub stream_per_byte_spilled: f64,
    /// Measured: fixed datapath overhead per packet (hub traversals).
    pub hub_overhead: f64,
    /// Measured: flow-cache hit cost in cycles.
    pub flow_cache_hit: f64,
    /// Estimated: flow-cache capacity in entries (knee over flow count).
    pub flow_cache_entries: f64,
    /// Measured: per-entry cost of a linear match/action scan with a warm
    /// cache, in cycles.
    pub linear_scan_per_entry: f64,
    /// Measured: software checksum as (base, per-byte) over frame bytes.
    pub checksum_sw: AccelEst,

    /// Databook: per-instruction costs (vendor tables publish these).
    pub alu: f64,
    /// Databook: integer multiply cycles.
    pub mul: f64,
    /// Databook: integer divide cycles.
    pub div: f64,
    /// Databook: taken-branch cycles.
    pub branch: f64,

    /// Measured memory regions.
    pub mems: Vec<MemEst>,
    /// Measured accelerator service curves (present accelerators only).
    pub accels: HashMap<AccelKind, AccelEst>,
}

impl NicParameters {
    /// Look up a measured region by name.
    pub fn mem(&self, name: &str) -> Option<&MemEst> {
        self.mems.iter().find(|m| m.name == name)
    }

    /// Effective expected latency of one access to `region`, given the
    /// probability `hit_ratio` that it hits the region's cache.
    pub fn effective_latency(&self, region: &MemEst, hit_ratio: f64) -> f64 {
        match &region.cache {
            None => region.latency + region.numa_extra,
            Some(c) => {
                hit_ratio * c.hit_latency + (1.0 - hit_ratio) * region.latency
                    + region.numa_extra
            }
        }
    }

    /// Regions sorted by effective cold latency, cheapest first — the
    /// placement preference order.
    pub fn regions_by_speed(&self) -> Vec<&MemEst> {
        let mut v: Vec<&MemEst> = self.mems.iter().collect();
        v.sort_by(|a, b| a.latency.partial_cmp(&b.latency).unwrap_or(std::cmp::Ordering::Equal));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(name: &str, latency: f64, cache: Option<CacheEst>) -> MemEst {
        MemEst {
            name: name.into(),
            capacity: 1 << 20,
            latency,
            bulk_per_byte: 1.0,
            cache,
            placeable: true,
            numa_extra: 0.0,
        }
    }

    fn params() -> NicParameters {
        NicParameters {
            nic_name: "test".into(),
            freq_ghz: 1.0,
            total_threads: 8,
            has_fpu: false,
            pipelined: false,
            nj_per_cycle: 0.5,
            parse_header: 150.0,
            metadata_mod: 3.0,
            hash: 20.0,
            float_op: 80.0,
            stream_per_byte_resident: 2.0,
            stream_per_byte_spilled: 4.0,
            hub_overhead: 100.0,
            flow_cache_hit: 44.0,
            flow_cache_entries: 32_768.0,
            linear_scan_per_entry: 40.0,
            checksum_sw: AccelEst { base: 50.0, per_byte: 2.0 },
            alu: 1.0,
            mul: 5.0,
            div: 40.0,
            branch: 2.0,
            mems: vec![
                region("sram", 50.0, None),
                region("dram", 500.0, Some(CacheEst { capacity: 3e6, hit_latency: 150.0 })),
            ],
            accels: HashMap::new(),
        }
    }

    #[test]
    fn effective_latency_blends_cache() {
        let p = params();
        let dram = p.mem("dram").unwrap();
        assert!((p.effective_latency(dram, 1.0) - 150.0).abs() < 1e-9);
        assert!((p.effective_latency(dram, 0.0) - 500.0).abs() < 1e-9);
        assert!((p.effective_latency(dram, 0.5) - 325.0).abs() < 1e-9);
        let sram = p.mem("sram").unwrap();
        assert!((p.effective_latency(sram, 0.9) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn regions_sorted_by_speed() {
        let p = params();
        let order: Vec<&str> = p.regions_by_speed().iter().map(|m| m.name.as_str()).collect();
        assert_eq!(order, vec!["sram", "dram"]);
    }

    #[test]
    fn lookup_by_name() {
        let p = params();
        assert!(p.mem("sram").is_some());
        assert!(p.mem("nope").is_none());
    }
}
