//! Persistence for extracted parameters.
//!
//! §3.2: benchmarking is "a one-time effort for each SmartNIC" and "the
//! obtained parameters for a NIC are reusable across NFs" — so they must
//! survive the process. The format is a simple line-oriented
//! `section.key = value` text file (no external serialization crates),
//! self-describing and diff-friendly:
//!
//! ```text
//! nic.name = netronome-agilio-cx40
//! nic.freq_ghz = 0.8
//! compute.parse_header = 150.25
//! mem.emem.latency = 455.06
//! mem.emem.cache.capacity = 4054630.2
//! accel.checksum.base = 60.0
//! ```

use crate::params::{AccelEst, CacheEst, MemEst, NicParameters};
use clara_lnic::AccelKind;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Errors from parsing a parameter file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A line is not `key = value` or a comment.
    BadLine(usize),
    /// A value failed to parse as its expected type.
    BadValue(String),
    /// A required key is missing.
    Missing(String),
}

impl core::fmt::Display for StoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StoreError::BadLine(n) => write!(f, "line {n}: expected `key = value`"),
            StoreError::BadValue(k) => write!(f, "bad value for `{k}`"),
            StoreError::Missing(k) => write!(f, "missing key `{k}`"),
        }
    }
}

impl std::error::Error for StoreError {}

fn accel_name(kind: AccelKind) -> &'static str {
    match kind {
        AccelKind::Checksum => "checksum",
        AccelKind::Crypto => "crypto",
        AccelKind::FlowCache => "flowcache",
        AccelKind::Lpm => "lpm",
    }
}

fn accel_from_name(name: &str) -> Option<AccelKind> {
    Some(match name {
        "checksum" => AccelKind::Checksum,
        "crypto" => AccelKind::Crypto,
        "flowcache" => AccelKind::FlowCache,
        "lpm" => AccelKind::Lpm,
        _ => return None,
    })
}

/// Serialize parameters to the text format.
pub fn to_text(p: &NicParameters) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Clara NIC parameters — extracted by clara-microbench");
    let _ = writeln!(out, "nic.name = {}", p.nic_name);
    let _ = writeln!(out, "nic.freq_ghz = {}", p.freq_ghz);
    let _ = writeln!(out, "nic.total_threads = {}", p.total_threads);
    let _ = writeln!(out, "nic.has_fpu = {}", p.has_fpu);
    let _ = writeln!(out, "nic.pipelined = {}", p.pipelined);
    let _ = writeln!(out, "nic.nj_per_cycle = {}", p.nj_per_cycle);

    for (k, v) in [
        ("parse_header", p.parse_header),
        ("metadata_mod", p.metadata_mod),
        ("hash", p.hash),
        ("float_op", p.float_op),
        ("stream_per_byte_resident", p.stream_per_byte_resident),
        ("stream_per_byte_spilled", p.stream_per_byte_spilled),
        ("hub_overhead", p.hub_overhead),
        ("flow_cache_hit", p.flow_cache_hit),
        ("flow_cache_entries", p.flow_cache_entries),
        ("linear_scan_per_entry", p.linear_scan_per_entry),
        ("alu", p.alu),
        ("mul", p.mul),
        ("div", p.div),
        ("branch", p.branch),
    ] {
        let _ = writeln!(out, "compute.{k} = {v}");
    }
    let _ = writeln!(out, "checksum_sw.base = {}", p.checksum_sw.base);
    let _ = writeln!(out, "checksum_sw.per_byte = {}", p.checksum_sw.per_byte);

    for m in &p.mems {
        let n = &m.name;
        let _ = writeln!(out, "mem.{n}.capacity = {}", m.capacity);
        let _ = writeln!(out, "mem.{n}.latency = {}", m.latency);
        let _ = writeln!(out, "mem.{n}.bulk_per_byte = {}", m.bulk_per_byte);
        let _ = writeln!(out, "mem.{n}.placeable = {}", m.placeable);
        let _ = writeln!(out, "mem.{n}.numa_extra = {}", m.numa_extra);
        if let Some(c) = &m.cache {
            let _ = writeln!(out, "mem.{n}.cache.capacity = {}", c.capacity);
            let _ = writeln!(out, "mem.{n}.cache.hit_latency = {}", c.hit_latency);
        }
    }
    for (kind, a) in &p.accels {
        let n = accel_name(*kind);
        let _ = writeln!(out, "accel.{n}.base = {}", a.base);
        let _ = writeln!(out, "accel.{n}.per_byte = {}", a.per_byte);
    }
    out
}

/// Parse parameters back from the text format.
pub fn from_text(text: &str) -> Result<NicParameters, StoreError> {
    let mut kv: HashMap<String, String> = HashMap::new();
    let mut mem_order: Vec<String> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line.split_once('=').ok_or(StoreError::BadLine(i + 1))?;
        let key = key.trim().to_string();
        if let Some(rest) = key.strip_prefix("mem.") {
            if let Some(name) = rest.strip_suffix(".capacity") {
                // `mem.<name>.cache.capacity` is a cache key, not a region.
                if !name.contains('.') {
                    mem_order.push(name.to_string());
                }
            }
        }
        kv.insert(key, value.trim().to_string());
    }

    let get = |k: &str| -> Result<&String, StoreError> {
        kv.get(k).ok_or_else(|| StoreError::Missing(k.into()))
    };
    let f = |k: &str| -> Result<f64, StoreError> {
        get(k)?.parse().map_err(|_| StoreError::BadValue(k.into()))
    };
    let b = |k: &str| -> Result<bool, StoreError> {
        get(k)?.parse().map_err(|_| StoreError::BadValue(k.into()))
    };

    let mut mems = Vec::new();
    for name in &mem_order {
        let pre = format!("mem.{name}");
        let cache = match (
            kv.get(&format!("{pre}.cache.capacity")),
            kv.get(&format!("{pre}.cache.hit_latency")),
        ) {
            (Some(c), Some(h)) => Some(CacheEst {
                capacity: c.parse().map_err(|_| StoreError::BadValue(format!("{pre}.cache.capacity")))?,
                hit_latency: h
                    .parse()
                    .map_err(|_| StoreError::BadValue(format!("{pre}.cache.hit_latency")))?,
            }),
            _ => None,
        };
        mems.push(MemEst {
            name: name.clone(),
            capacity: f(&format!("{pre}.capacity"))? as usize,
            latency: f(&format!("{pre}.latency"))?,
            bulk_per_byte: f(&format!("{pre}.bulk_per_byte"))?,
            cache,
            placeable: b(&format!("{pre}.placeable"))?,
            numa_extra: f(&format!("{pre}.numa_extra"))?,
        });
    }

    let mut accels = HashMap::new();
    for kind in [AccelKind::Checksum, AccelKind::Crypto, AccelKind::FlowCache, AccelKind::Lpm] {
        let n = accel_name(kind);
        if let (Some(base), Some(per_byte)) =
            (kv.get(&format!("accel.{n}.base")), kv.get(&format!("accel.{n}.per_byte")))
        {
            accels.insert(
                kind,
                AccelEst {
                    base: base
                        .parse()
                        .map_err(|_| StoreError::BadValue(format!("accel.{n}.base")))?,
                    per_byte: per_byte
                        .parse()
                        .map_err(|_| StoreError::BadValue(format!("accel.{n}.per_byte")))?,
                },
            );
        }
    }
    // Reject unknown accel sections so typos don't silently disappear.
    for key in kv.keys() {
        if let Some(rest) = key.strip_prefix("accel.") {
            let name = rest.split('.').next().unwrap_or("");
            if accel_from_name(name).is_none() {
                return Err(StoreError::BadValue(key.clone()));
            }
        }
    }

    Ok(NicParameters {
        nic_name: get("nic.name")?.clone(),
        freq_ghz: f("nic.freq_ghz")?,
        total_threads: f("nic.total_threads")? as usize,
        has_fpu: b("nic.has_fpu")?,
        pipelined: b("nic.pipelined")?,
        nj_per_cycle: f("nic.nj_per_cycle")?,
        parse_header: f("compute.parse_header")?,
        metadata_mod: f("compute.metadata_mod")?,
        hash: f("compute.hash")?,
        float_op: f("compute.float_op")?,
        stream_per_byte_resident: f("compute.stream_per_byte_resident")?,
        stream_per_byte_spilled: f("compute.stream_per_byte_spilled")?,
        hub_overhead: f("compute.hub_overhead")?,
        flow_cache_hit: f("compute.flow_cache_hit")?,
        flow_cache_entries: f("compute.flow_cache_entries")?,
        linear_scan_per_entry: f("compute.linear_scan_per_entry")?,
        checksum_sw: AccelEst {
            base: f("checksum_sw.base")?,
            per_byte: f("checksum_sw.per_byte")?,
        },
        alu: f("compute.alu")?,
        mul: f("compute.mul")?,
        div: f("compute.div")?,
        branch: f("compute.branch")?,
        mems,
        accels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::extract_parameters;
    use clara_lnic::profiles;
    use std::sync::OnceLock;

    fn params() -> &'static NicParameters {
        static P: OnceLock<NicParameters> = OnceLock::new();
        P.get_or_init(|| extract_parameters(&profiles::netronome_agilio_cx40()))
    }

    #[test]
    fn roundtrip_is_lossless_enough() {
        let p = params();
        let text = to_text(p);
        let restored = from_text(&text).unwrap();
        assert_eq!(restored.nic_name, p.nic_name);
        assert_eq!(restored.total_threads, p.total_threads);
        assert_eq!(restored.mems.len(), p.mems.len());
        assert_eq!(restored.accels.len(), p.accels.len());
        for (a, b) in p.mems.iter().zip(&restored.mems) {
            assert_eq!(a.name, b.name);
            assert!((a.latency - b.latency).abs() < 1e-9);
            assert_eq!(a.cache.is_some(), b.cache.is_some());
        }
        // Infinity survives (flow_cache_hit is inf on engines-less NICs).
        assert_eq!(restored.flow_cache_hit.is_finite(), p.flow_cache_hit.is_finite());
        // Full float equality on a few key fields.
        assert_eq!(restored.parse_header, p.parse_header);
        assert_eq!(restored.stream_per_byte_resident, p.stream_per_byte_resident);
    }

    #[test]
    fn infinity_roundtrips() {
        let p = extract_parameters(&profiles::soc_armada());
        assert!(p.flow_cache_hit.is_infinite());
        let restored = from_text(&to_text(&p)).unwrap();
        assert!(restored.flow_cache_hit.is_infinite());
    }

    #[test]
    fn errors_are_informative() {
        assert!(matches!(from_text("garbage line"), Err(StoreError::BadLine(1))));
        assert!(matches!(
            from_text("nic.name = x"),
            Err(StoreError::Missing(_))
        ));
        let mut text = to_text(params());
        text.push_str("accel.warp_drive.base = 1\n");
        assert!(matches!(from_text(&text), Err(StoreError::BadValue(_))));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let mut text = String::from("# header comment\n\n");
        text.push_str(&to_text(params()));
        assert!(from_text(&text).is_ok());
    }
}
