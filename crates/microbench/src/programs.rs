//! The microbenchmark programs themselves, and the extraction driver.
//!
//! All measurements are *marginal*: the cost of an operation is the
//! latency difference between a program with `k` and `2k` instances of
//! it, which cancels fixed datapath overheads exactly the way hardware
//! microbenchmarks are built.

use crate::fit::{knee_of_curve, linear_fit};
use crate::params::{AccelEst, CacheEst, MemEst, NicParameters};
use clara_lnic::{AccelKind, Lnic, MemKind};
use clara_nicsim::{simulate, BytesSpec, MicroOp, NicProgram, Stage, StageUnit, TableCfg};
use clara_workload::{SizeDist, Trace, TraceGenerator};
use std::collections::HashMap;

/// Calibration rate: low enough that queueing never contaminates the
/// latency measurements.
const CAL_RATE_PPS: f64 = 10_000.0;

fn cal_trace(packets: usize, flows: usize, payload: usize, seed: u64) -> Trace {
    TraceGenerator::new(seed)
        .packets(packets)
        .flows(flows.max(1))
        .rate_pps(CAL_RATE_PPS)
        .sizes(SizeDist::Fixed(payload))
        .syn_on_first(false)
        .generate()
}

fn npu_prog(ops: Vec<MicroOp>, tables: Vec<TableCfg>) -> NicProgram {
    NicProgram {
        name: "microbench".into(),
        tables,
        stages: vec![Stage { name: "bench".into(), unit: StageUnit::Npu, ops }],
    }
}

fn run(nic: &Lnic, prog: &NicProgram, trace: &Trace) -> f64 {
    simulate(nic, prog, trace)
        .expect("microbench program must be valid")
        .avg_latency_cycles
}

/// Like [`run`], but discards the first half of the trace as warmup —
/// standard practice for cache-sensitive measurements.
fn run_steady(nic: &Lnic, prog: &NicProgram, trace: &Trace) -> f64 {
    let r = simulate(nic, prog, trace).expect("microbench program must be valid");
    let tail = &r.latencies[r.latencies.len() / 2..];
    if tail.is_empty() {
        return r.avg_latency_cycles;
    }
    tail.iter().sum::<u64>() as f64 / tail.len() as f64
}

/// Marginal cost of `op` via the k vs 2k difference.
fn marginal(nic: &Lnic, op: MicroOp, k: usize, trace: &Trace) -> f64 {
    let once = npu_prog(vec![op.clone(); k], vec![]);
    let twice = npu_prog(vec![op; 2 * k], vec![]);
    (run(nic, &twice, trace) - run(nic, &once, trace)) / k as f64
}

/// Family 5 (memory): mean lookup latency as the working set grows.
/// Returns `(working_set_bytes, marginal_cycles_per_lookup)` samples.
pub fn memory_latency_vs_working_set(
    nic: &Lnic,
    region: &str,
    entry_bytes: usize,
    working_sets: &[usize],
) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    for &ws in working_sets {
        // The table is kept 8x sparser than the flow count so that hash
        // buckets rarely collide and the touched set really is ~ws bytes.
        let entries = ((ws / entry_bytes).max(8) as u64) * 8;
        let table = TableCfg {
            name: "bench".into(),
            mem: region.into(),
            entry_bytes,
            entries,
            use_flow_cache: false,
        };
        // The touched working set is one entry per flow, so flows must
        // scale with the target size, and packets must revisit each flow
        // several times or nothing is ever warm.
        let flows = (ws / entry_bytes).clamp(8, 600_000);
        let packets = (6 * flows).clamp(500, 1_500_000);
        let trace = cal_trace(packets, flows, 64, 11);
        let base = npu_prog(vec![], vec![table.clone()]);
        let with = npu_prog(vec![MicroOp::TableLookup { table: 0 }], vec![table]);
        let cost = run_steady(nic, &with, &trace) - run_steady(nic, &base, &trace);
        out.push((ws as f64, cost));
    }
    out
}

/// Family 2 (checksum): software checksum latency vs payload size.
pub fn checksum_sw_curve(nic: &Lnic, payloads: &[usize]) -> Vec<(f64, f64)> {
    payloads
        .iter()
        .map(|&p| {
            let trace = cal_trace(300, 64, p, 13);
            let base = npu_prog(vec![], vec![]);
            let with = npu_prog(vec![MicroOp::ChecksumSw], vec![]);
            ((p + 40) as f64, run(nic, &with, &trace) - run(nic, &base, &trace))
        })
        .collect()
}

/// Payload streaming latency vs payload size (no side table).
pub fn stream_curve(nic: &Lnic, payloads: &[usize]) -> Vec<(f64, f64)> {
    payloads
        .iter()
        .map(|&p| {
            let trace = cal_trace(300, 64, p, 17);
            let base = npu_prog(vec![], vec![]);
            let with = npu_prog(vec![MicroOp::StreamPayload { table: None, loop_overhead: 0 }], vec![]);
            (p as f64, run(nic, &with, &trace) - run(nic, &base, &trace))
        })
        .collect()
}

/// Accelerator service latency vs request size.
pub fn accel_service_curve(nic: &Lnic, kind: AccelKind, sizes: &[u64]) -> Vec<(f64, f64)> {
    sizes
        .iter()
        .map(|&n| {
            let trace = cal_trace(300, 64, 64, 19);
            let prog = NicProgram {
                name: "accel-bench".into(),
                tables: vec![],
                stages: vec![Stage {
                    name: "accel".into(),
                    unit: StageUnit::Accel(kind),
                    ops: vec![MicroOp::AccelCall { bytes: BytesSpec::Fixed(n) }],
                }],
            };
            let base = npu_prog(vec![], vec![]);
            (n as f64, run(nic, &prog, &trace) - run(nic, &base, &trace))
        })
        .collect()
}

/// Match/action linear-scan latency vs rule count in `region` (warm).
pub fn linear_scan_curve(nic: &Lnic, region: &str, entry_bytes: usize, rules: &[u64]) -> Vec<(f64, f64)> {
    rules
        .iter()
        .map(|&n| {
            let table = TableCfg {
                name: "rules".into(),
                mem: region.into(),
                entry_bytes,
                entries: n,
                use_flow_cache: false,
            };
            let trace = cal_trace(200, 64, 64, 23);
            let base = npu_prog(vec![], vec![table.clone()]);
            let with = npu_prog(vec![MicroOp::LinearScan { table: 0 }], vec![table]);
            (n as f64, run(nic, &with, &trace) - run(nic, &base, &trace))
        })
        .collect()
}

/// Family 3 (flow cache): hit latency and capacity estimate.
fn flow_cache_params(nic: &Lnic) -> (f64, f64) {
    if nic.accelerators(AccelKind::FlowCache).is_empty() {
        return (f64::INFINITY, 0.0);
    }
    let table = |entries: u64| TableCfg {
        name: "fc".into(),
        mem: "emem".into(),
        entry_bytes: 16,
        entries,
        use_flow_cache: true,
    };
    // Hit cost: tiny flow count, warm.
    let trace = cal_trace(2000, 8, 64, 29);
    let base = npu_prog(vec![], vec![table(1 << 16)]);
    let with = npu_prog(vec![MicroOp::TableLookup { table: 0 }], vec![table(1 << 16)]);
    let hit = run_steady(nic, &with, &trace) - run_steady(nic, &base, &trace);

    // Capacity: sweep concurrent flows until hits collapse.
    let mut curve = Vec::new();
    for flows in [1_000usize, 4_000, 8_000, 16_000, 24_000, 32_000, 48_000, 60_000] {
        let trace = cal_trace(3 * flows.min(20_000), flows, 64, 31);
        let with = npu_prog(vec![MicroOp::TableLookup { table: 0 }], vec![table(1 << 20)]);
        let base = npu_prog(vec![], vec![table(1 << 20)]);
        curve.push((flows as f64, run(nic, &with, &trace) - run(nic, &base, &trace)));
    }
    let capacity = knee_of_curve(&curve).unwrap_or(32_768.0);
    (hit, capacity)
}

/// Run every family and assemble the parameter table.
pub fn extract_parameters(nic: &Lnic) -> NicParameters {
    let std_trace = cal_trace(400, 64, 300, 1);

    // Fixed per-packet overhead (hub traversals): an empty program.
    let hub_overhead = run(nic, &npu_prog(vec![], vec![]), &std_trace);

    // Families 1, 4, 6: parse, metadata, hash, float.
    let parse_header = marginal(nic, MicroOp::ParseHeader, 4, &std_trace);
    let metadata_mod = marginal(nic, MicroOp::MetadataMod { count: 1 }, 32, &std_trace);
    let hash = marginal(nic, MicroOp::Hash { count: 1 }, 16, &std_trace);
    let float_op = marginal(nic, MicroOp::FloatOps { count: 1 }, 16, &std_trace);

    // Streaming slopes: resident vs spilled.
    let resident = stream_curve(nic, &[128, 256, 512, 768, 1000]);
    let (_, stream_per_byte_resident) = linear_fit(&resident);
    let spilled = stream_curve(nic, &[1100, 1200, 1300, 1400, 1500]);
    let (_, stream_per_byte_spilled) = linear_fit(&spilled);

    // Software checksum curve.
    let ck = checksum_sw_curve(nic, &[100, 300, 500, 700, 900]);
    let (ck_base, ck_slope) = linear_fit(&ck);

    // Memory regions.
    let mut mems = Vec::new();
    for m in nic.memories() {
        if m.kind == MemKind::Local {
            // Local memory holds registers/program state, not NF tables of
            // interest; measure a token small table anyway.
        }
        // 64-byte entries: one cache line per entry, so the touched set
        // equals flows x line.
        let entry_bytes = 64usize;
        let max_ws = m.capacity.min(32 << 20);
        let min_ws = (entry_bytes * 8).min(max_ws);
        // Log-spaced working sets up to the region (or 32 MB) cap.
        let mut sweep = Vec::new();
        let mut ws = min_ws.max(64 << 10);
        while ws <= max_ws && sweep.len() < 10 {
            sweep.push(ws);
            ws *= 2;
        }
        if sweep.is_empty() {
            sweep.push(min_ws.max(512));
        }
        let curve = memory_latency_vs_working_set(nic, &m.name, entry_bytes, &sweep);
        let floor = curve.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let ceil = curve.iter().map(|p| p.1).fold(0.0f64, f64::max);
        let knee = knee_of_curve(&curve);
        // Hit latency from a dedicated warm run (tiny resident set, many
        // revisits) — the knee curve's floor is cold-start biased. The
        // half-latency point of an LRU cache under uniform access sits at
        // twice the capacity (hit ratio C/W puts the midpoint at W = 2C),
        // so the knee is halved when converting to a capacity estimate.
        let cache = knee.map(|knee_ws| {
            let warm = memory_latency_vs_working_set(nic, &m.name, entry_bytes, &[16 << 10]);
            CacheEst { capacity: knee_ws / 2.0, hit_latency: warm[0].1.min(floor) }
        });
        // Raw latency: the large-working-set plateau when a cache exists,
        // otherwise the flat level.
        let latency = if cache.is_some() { ceil } else { ceil.max(floor) };

        // Sequential streaming slope via linear scan.
        let scan_rules: Vec<u64> = {
            let max_rules = (max_ws / entry_bytes) as u64;
            [500u64, 1000, 2000, 4000]
                .into_iter()
                .map(|r| r.min(max_rules.max(8)))
                .collect()
        };
        let scan = linear_scan_curve(nic, &m.name, entry_bytes, &scan_rules);
        let (_, per_rule) = linear_fit(&scan);
        let bulk_per_byte = (per_rule / entry_bytes as f64).max(0.0);

        mems.push(MemEst {
            name: m.name.clone(),
            capacity: m.capacity,
            latency,
            bulk_per_byte,
            cache,
            placeable: m.kind != MemKind::Local && !m.name.contains("flowcache"),
            numa_extra: 0.0, // folded into the measured mean
        });
    }

    // Accelerators.
    let mut accels = HashMap::new();
    for kind in [AccelKind::Checksum, AccelKind::Crypto, AccelKind::FlowCache, AccelKind::Lpm] {
        if nic.accelerators(kind).is_empty() {
            continue;
        }
        let curve = accel_service_curve(nic, kind, &[0, 256, 512, 1024, 1500]);
        let (base, per_byte) = linear_fit(&curve);
        accels.insert(kind, AccelEst { base: base.max(0.0), per_byte: per_byte.max(0.0) });
    }

    let (flow_cache_hit, flow_cache_entries) = flow_cache_params(nic);

    // Linear-scan cost per 16-byte rule in the slowest bulk region rules
    // typically live in (external memory), warm.
    let ext_region = nic
        .memories()
        .iter()
        .find(|m| m.kind == MemKind::External)
        .map(|m| m.name.clone());
    let linear_scan_per_entry = match &ext_region {
        Some(region) => {
            let scan = linear_scan_curve(nic, region, 16, &[1000, 4000, 8000, 16000]);
            linear_fit(&scan).1
        }
        None => 40.0,
    };

    // Databook values.
    let core = nic
        .units()
        .iter()
        .find(|u| u.class == clara_lnic::ComputeClass::GeneralCore)
        .expect("NIC has general cores");

    NicParameters {
        nic_name: nic.name.clone(),
        freq_ghz: nic.freq_ghz,
        total_threads: nic.total_threads(),
        has_fpu: core.has_fpu,
        pipelined: nic.pipelined,
        nj_per_cycle: nic.nj_per_cycle,
        parse_header,
        metadata_mod,
        hash,
        float_op,
        stream_per_byte_resident,
        stream_per_byte_spilled,
        hub_overhead,
        flow_cache_hit,
        flow_cache_entries,
        linear_scan_per_entry,
        checksum_sw: AccelEst { base: ck_base.max(0.0), per_byte: ck_slope.max(0.0) },
        alu: core.cost.alu as f64,
        mul: core.cost.mul as f64,
        div: core.cost.div as f64,
        branch: core.cost.branch as f64,
        mems,
        accels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_lnic::profiles;

    // Extraction is moderately expensive; share one table across tests.
    fn params() -> &'static NicParameters {
        use std::sync::OnceLock;
        static PARAMS: OnceLock<NicParameters> = OnceLock::new();
        PARAMS.get_or_init(|| extract_parameters(&profiles::netronome_agilio_cx40()))
    }

    #[test]
    fn recovers_paper_compute_parameters() {
        let p = params();
        // §3.2: parse ≈150 cycles, metadata mods 2-5 cycles.
        assert!((p.parse_header - 150.0).abs() < 15.0, "parse {}", p.parse_header);
        assert!((2.0..=5.0).contains(&p.metadata_mod), "mods {}", p.metadata_mod);
        assert!((p.hash - 20.0).abs() < 5.0, "hash {}", p.hash);
        assert!((p.float_op - 80.0).abs() < 10.0, "float {}", p.float_op);
    }

    #[test]
    fn recovers_checksum_tradeoff() {
        let p = params();
        // §2.1: ingress checksum ~300 cycles for 1000 B; software path
        // needs ~1700 extra cycles of memory traffic.
        let accel = p.accels[&AccelKind::Checksum];
        let accel_1000 = accel.base + accel.per_byte * 1000.0;
        assert!((250.0..=350.0).contains(&accel_1000), "accel {accel_1000}");
        let sw_1000 = p.checksum_sw.base + p.checksum_sw.per_byte * 1040.0;
        assert!(
            sw_1000 > accel_1000 + 1200.0,
            "software {sw_1000} vs accel {accel_1000}"
        );
    }

    #[test]
    fn finds_emem_cache_knee() {
        let p = params();
        let emem = p.mem("emem").expect("emem measured");
        let cache = emem.cache.as_ref().expect("knee found");
        // True capacity 3 MB; knee estimation within a factor of ~2.
        assert!(
            (1.5e6..=8e6).contains(&cache.capacity),
            "capacity {}",
            cache.capacity
        );
        assert!((cache.hit_latency - 150.0).abs() < 40.0, "hit {}", cache.hit_latency);
        assert!((emem.latency - 500.0).abs() < 110.0, "raw {}", emem.latency);
    }

    #[test]
    fn uncached_regions_have_no_knee() {
        let p = params();
        let imem = p.mem("imem").expect("imem measured");
        assert!(imem.cache.is_none());
        assert!((imem.latency - 250.0).abs() < 40.0, "imem {}", imem.latency);
    }

    #[test]
    fn ctm_measures_include_numa_mean() {
        let p = params();
        let ctm = p.mem("ctm0").expect("ctm0 measured");
        // Raw CTM is 50 cycles; 5/6 of threads are remote (+60), so the
        // measured mean sits near 100.
        assert!(
            (60.0..=130.0).contains(&ctm.latency),
            "ctm mean {}",
            ctm.latency
        );
    }

    #[test]
    fn flow_cache_measured() {
        let p = params();
        assert!(
            (20.0..=80.0).contains(&p.flow_cache_hit),
            "hit {}",
            p.flow_cache_hit
        );
        // True capacity 512 KB / 16 B = 32768 entries.
        assert!(
            (12_000.0..=60_000.0).contains(&p.flow_cache_entries),
            "entries {}",
            p.flow_cache_entries
        );
    }

    #[test]
    fn stream_slopes_ordered() {
        let p = params();
        // Spilled bytes stream from EMEM and must cost more than CTM.
        assert!(
            p.stream_per_byte_spilled > p.stream_per_byte_resident + 1.0,
            "resident {} spilled {}",
            p.stream_per_byte_resident,
            p.stream_per_byte_spilled
        );
        // CTM residence: 0.25 compute + 1.7 bulk ≈ 1.95.
        assert!(
            (1.5..=2.5).contains(&p.stream_per_byte_resident),
            "resident {}",
            p.stream_per_byte_resident
        );
    }

    #[test]
    fn databook_fields_passed_through() {
        let p = params();
        assert_eq!(p.total_threads, 48 * 8);
        assert!(!p.has_fpu);
        assert!(!p.pipelined);
        assert_eq!(p.freq_ghz, 0.8);
        assert_eq!(p.alu, 1.0);
    }

    #[test]
    fn soc_profile_extracts_too() {
        let p = extract_parameters(&profiles::soc_armada());
        assert!(p.has_fpu);
        assert!(p.accels.contains_key(&AccelKind::Crypto));
        assert!(!p.accels.contains_key(&AccelKind::Checksum));
        assert!(p.parse_header < 100.0);
        assert!(p.flow_cache_hit.is_infinite()); // no flow cache engine
    }
}
