//! Type checker for NFC programs.
//!
//! Integer widths coerce freely (C-style); `bool`, `packet`, and `action`
//! are strict. Beyond expression types, the checker enforces program-level
//! rules Clara relies on: a `handle(pkt: packet) -> action` entry point
//! must exist, all paths of a non-void function return, user calls are
//! acyclic (bodies are later inlined into the IR), and state capacities
//! are positive.

use crate::ast::*;
use crate::builtins::{
    is_namespace, lookup_builtin, lookup_method, packet_field, Builtin, ParamTy, Receiver,
};
use crate::tokens::Span;
use crate::LangError;
use std::collections::{HashMap, HashSet};

/// Type-check a parsed program.
pub fn check(program: &NfProgram) -> Result<(), LangError> {
    let checker = Checker { program };
    checker.run()
}

struct Checker<'a> {
    program: &'a NfProgram,
}

#[derive(Clone)]
struct Env {
    vars: HashMap<String, Type>,
}

impl<'a> Checker<'a> {
    fn run(&self) -> Result<(), LangError> {
        // handle() entry point.
        let handle = self.program.handle_fn().ok_or_else(|| {
            LangError::new("program must define `fn handle(pkt: packet) -> action`", Span::new(1, 1))
        })?;
        if handle.params.len() != 1
            || handle.params[0].ty != Type::Packet
            || handle.ret != Type::Action
        {
            return Err(LangError::new(
                "`handle` must take exactly one `packet` parameter and return `action`",
                handle.span,
            ));
        }

        // Unique names.
        let mut seen = HashSet::new();
        for name in self
            .program
            .consts
            .iter()
            .map(|c| &c.name)
            .chain(self.program.states.iter().map(|s| &s.name))
            .chain(self.program.functions.iter().map(|f| &f.name))
        {
            if !seen.insert(name.clone()) {
                return Err(LangError::new(
                    format!("duplicate declaration `{name}`"),
                    Span::new(1, 1),
                ));
            }
        }

        for c in &self.program.consts {
            if !c.ty.is_int() {
                return Err(LangError::new("constants must have integer type", c.span));
            }
        }
        for s in &self.program.states {
            if s.capacity == 0 {
                return Err(LangError::new(
                    format!("state `{}` has zero capacity", s.name),
                    s.span,
                ));
            }
        }

        self.check_no_recursion()?;

        for f in &self.program.functions {
            self.check_fn(f)?;
        }
        Ok(())
    }

    fn check_no_recursion(&self) -> Result<(), LangError> {
        // DFS over the user-call graph.
        fn calls_in_block(b: &Block, out: &mut Vec<String>) {
            for s in &b.stmts {
                calls_in_stmt(s, out);
            }
        }
        fn calls_in_stmt(s: &Stmt, out: &mut Vec<String>) {
            match &s.kind {
                StmtKind::Let { value, .. } | StmtKind::Assign { value, .. } => {
                    calls_in_expr(value, out)
                }
                StmtKind::If { cond, then_block, else_block } => {
                    calls_in_expr(cond, out);
                    calls_in_block(then_block, out);
                    if let Some(e) = else_block {
                        calls_in_block(e, out);
                    }
                }
                StmtKind::While { cond, body } => {
                    calls_in_expr(cond, out);
                    calls_in_block(body, out);
                }
                StmtKind::For { lo, hi, body, .. } => {
                    calls_in_expr(lo, out);
                    calls_in_expr(hi, out);
                    calls_in_block(body, out);
                }
                StmtKind::Return(Some(e)) => calls_in_expr(e, out),
                StmtKind::Return(None) => {}
                StmtKind::Expr(e) => calls_in_expr(e, out),
            }
        }
        fn calls_in_expr(e: &Expr, out: &mut Vec<String>) {
            match &e.kind {
                ExprKind::Call { name, args } => {
                    out.push(name.clone());
                    for a in args {
                        calls_in_expr(a, out);
                    }
                }
                ExprKind::MethodCall { args, .. } => {
                    for a in args {
                        calls_in_expr(a, out);
                    }
                }
                ExprKind::Binary(_, l, r) => {
                    calls_in_expr(l, out);
                    calls_in_expr(r, out);
                }
                ExprKind::Unary(_, inner) => calls_in_expr(inner, out),
                _ => {}
            }
        }

        let mut edges: HashMap<&str, Vec<String>> = HashMap::new();
        for f in &self.program.functions {
            let mut out = Vec::new();
            calls_in_block(&f.body, &mut out);
            out.retain(|n| self.program.function(n).is_some());
            edges.insert(&f.name, out);
        }
        // Detect cycles with colors. The DFS is iterative: the call graph's
        // depth is not bounded by the parser's nesting limit, so a long
        // chain of functions must not overflow the checker's stack.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: HashMap<&str, Color> =
            edges.keys().map(|&k| (k, Color::White)).collect();
        for f in &self.program.functions {
            let root = f.name.as_str();
            if color.get(root) != Some(&Color::White) {
                continue;
            }
            color.insert(root, Color::Gray);
            // Explicit DFS stack of (node, next outgoing edge to try).
            let mut stack: Vec<(&str, usize)> = vec![(root, 0)];
            while let Some((node, idx)) = stack.pop() {
                let nexts = edges.get(node).map(Vec::as_slice).unwrap_or(&[]);
                if idx >= nexts.len() {
                    color.insert(node, Color::Black);
                    continue;
                }
                stack.push((node, idx + 1));
                // `out.retain` above kept only calls to known functions;
                // a key miss would mean an edge to nowhere — skip it
                // rather than panic.
                let Some(&key) = edges.keys().find(|k| **k == nexts[idx].as_str())
                else {
                    continue;
                };
                match color.get(key).copied().unwrap_or(Color::Black) {
                    Color::Gray => {
                        return Err(LangError::new(
                            "recursive functions are not supported (bodies are inlined)",
                            f.span,
                        ))
                    }
                    Color::White => {
                        color.insert(key, Color::Gray);
                        stack.push((key, 0));
                    }
                    Color::Black => {}
                }
            }
        }
        Ok(())
    }

    fn check_fn(&self, f: &FnDecl) -> Result<(), LangError> {
        let mut env = Env { vars: HashMap::new() };
        for c in &self.program.consts {
            env.vars.insert(c.name.clone(), c.ty);
        }
        for p in &f.params {
            env.vars.insert(p.name.clone(), p.ty);
        }
        self.check_block(&f.body, &mut env, f.ret)?;
        if f.ret != Type::Void && !must_return(&f.body) {
            return Err(LangError::new(
                format!("function `{}` may fall off the end without returning", f.name),
                f.span,
            ));
        }
        Ok(())
    }

    fn check_block(&self, b: &Block, env: &mut Env, ret: Type) -> Result<(), LangError> {
        // Block-scoped: clone the env so inner `let`s don't leak.
        let mut inner = env.clone();
        for s in &b.stmts {
            self.check_stmt(s, &mut inner, ret)?;
        }
        Ok(())
    }

    fn check_stmt(&self, s: &Stmt, env: &mut Env, ret: Type) -> Result<(), LangError> {
        match &s.kind {
            StmtKind::Let { name, ty, value } => {
                let vt = self.expr_type(value, env)?;
                if let Some(declared) = ty {
                    if !compatible(*declared, vt) {
                        return Err(LangError::new(
                            format!("cannot initialize `{name}: {declared}` from {vt}"),
                            s.span,
                        ));
                    }
                    env.vars.insert(name.clone(), *declared);
                } else {
                    if vt == Type::Void {
                        return Err(LangError::new(
                            format!("`{name}` initialized from a void expression"),
                            s.span,
                        ));
                    }
                    env.vars.insert(name.clone(), vt);
                }
                Ok(())
            }
            StmtKind::Assign { name, value } => {
                let Some(&target) = env.vars.get(name) else {
                    return Err(LangError::new(format!("unknown variable `{name}`"), s.span));
                };
                if self.program.constant(name).is_some() {
                    return Err(LangError::new(
                        format!("cannot assign to constant `{name}`"),
                        s.span,
                    ));
                }
                let vt = self.expr_type(value, env)?;
                if !compatible(target, vt) {
                    return Err(LangError::new(
                        format!("cannot assign {vt} to `{name}: {target}`"),
                        s.span,
                    ));
                }
                Ok(())
            }
            StmtKind::If { cond, then_block, else_block } => {
                self.expect_bool(cond, env)?;
                self.check_block(then_block, env, ret)?;
                if let Some(e) = else_block {
                    self.check_block(e, env, ret)?;
                }
                Ok(())
            }
            StmtKind::While { cond, body } => {
                self.expect_bool(cond, env)?;
                self.check_block(body, env, ret)
            }
            StmtKind::For { var, lo, hi, body } => {
                let lt = self.expr_type(lo, env)?;
                let ht = self.expr_type(hi, env)?;
                if !lt.is_int() || !ht.is_int() {
                    return Err(LangError::new("for-range bounds must be integers", s.span));
                }
                let mut inner = env.clone();
                inner.vars.insert(var.clone(), Type::U64);
                self.check_block(body, &mut inner, ret)
            }
            StmtKind::Return(value) => {
                let vt = match value {
                    Some(e) => self.expr_type(e, env)?,
                    None => Type::Void,
                };
                if !compatible(ret, vt) {
                    return Err(LangError::new(
                        format!("return type mismatch: expected {ret}, found {vt}"),
                        s.span,
                    ));
                }
                Ok(())
            }
            StmtKind::Expr(e) => {
                self.expr_type(e, env)?;
                Ok(())
            }
        }
    }

    fn expect_bool(&self, e: &Expr, env: &Env) -> Result<(), LangError> {
        let t = self.expr_type(e, env)?;
        if t != Type::Bool {
            return Err(LangError::new(format!("condition must be bool, found {t}"), e.span));
        }
        Ok(())
    }

    fn expr_type(&self, e: &Expr, env: &Env) -> Result<Type, LangError> {
        match &e.kind {
            ExprKind::Int(_) => Ok(Type::U64),
            ExprKind::Bool(_) => Ok(Type::Bool),
            ExprKind::ActionLit(_) => Ok(Type::Action),
            ExprKind::Ident(name) => env
                .vars
                .get(name)
                .copied()
                .ok_or_else(|| LangError::new(format!("unknown variable `{name}`"), e.span)),
            ExprKind::Unary(op, inner) => {
                let t = self.expr_type(inner, env)?;
                match op {
                    UnOp::Not if t == Type::Bool => Ok(Type::Bool),
                    UnOp::Not => {
                        Err(LangError::new(format!("`!` needs bool, found {t}"), e.span))
                    }
                    UnOp::Neg if t.is_int() => Ok(t),
                    UnOp::Neg => {
                        Err(LangError::new(format!("`-` needs integer, found {t}"), e.span))
                    }
                }
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let lt = self.expr_type(lhs, env)?;
                let rt = self.expr_type(rhs, env)?;
                if op.is_logical() {
                    if lt != Type::Bool || rt != Type::Bool {
                        return Err(LangError::new(
                            format!("logical operator needs bool operands, found {lt} and {rt}"),
                            e.span,
                        ));
                    }
                    return Ok(Type::Bool);
                }
                if op.is_comparison() {
                    let ok = (lt.is_int() && rt.is_int())
                        || (lt == rt && matches!(lt, Type::Bool | Type::Action));
                    if !ok {
                        return Err(LangError::new(
                            format!("cannot compare {lt} with {rt}"),
                            e.span,
                        ));
                    }
                    return Ok(Type::Bool);
                }
                if !lt.is_int() || !rt.is_int() {
                    return Err(LangError::new(
                        format!("arithmetic needs integers, found {lt} and {rt}"),
                        e.span,
                    ));
                }
                // Result takes the wider operand width.
                Ok(if lt.bits() >= rt.bits() { lt } else { rt })
            }
            ExprKind::Call { name, args } => {
                if let Some(builtin) = lookup_builtin(name) {
                    return self.check_builtin_call(name, &builtin, args, env, e.span);
                }
                if let Some(f) = self.program.function(name) {
                    if args.len() != f.params.len() {
                        return Err(LangError::new(
                            format!(
                                "`{name}` expects {} argument(s), got {}",
                                f.params.len(),
                                args.len()
                            ),
                            e.span,
                        ));
                    }
                    for (arg, param) in args.iter().zip(&f.params) {
                        let at = self.expr_type(arg, env)?;
                        if !compatible(param.ty, at) {
                            return Err(LangError::new(
                                format!(
                                    "argument `{}` of `{name}` expects {}, found {at}",
                                    param.name, param.ty
                                ),
                                arg.span,
                            ));
                        }
                    }
                    return Ok(f.ret);
                }
                Err(LangError::new(format!("unknown function `{name}`"), e.span))
            }
            ExprKind::MethodCall { recv, method, args } => {
                let receiver = self.resolve_receiver(recv, env, e.span)?;
                let builtin = lookup_method(receiver, method).ok_or_else(|| {
                    LangError::new(
                        format!("`{recv}` has no method `{method}`"),
                        e.span,
                    )
                })?;
                self.check_builtin_call(method, &builtin, args, env, e.span)
            }
            ExprKind::Field { recv, field } => {
                match env.vars.get(recv) {
                    Some(Type::Packet) => packet_field(field).ok_or_else(|| {
                        LangError::new(format!("packet has no field `{field}`"), e.span)
                    }),
                    Some(other) => Err(LangError::new(
                        format!("`{recv}: {other}` has no fields"),
                        e.span,
                    )),
                    None => Err(LangError::new(
                        format!("unknown receiver `{recv}`"),
                        e.span,
                    )),
                }
            }
        }
    }

    fn resolve_receiver<'e>(
        &'e self,
        recv: &str,
        env: &Env,
        span: Span,
    ) -> Result<Receiver<'e>, LangError> {
        if let Some(state) = self.program.state(recv) {
            return Ok(Receiver::State(&state.kind));
        }
        if is_namespace(recv) {
            // Borrow the static namespace name from the program-independent
            // registry by matching again; lifetimes make this the simple way.
            return Ok(match recv {
                "dpdk" => Receiver::Namespace("dpdk"),
                "click" => Receiver::Namespace("click"),
                _ => Receiver::Namespace("bpf"),
            });
        }
        match env.vars.get(recv) {
            Some(Type::Packet) => Ok(Receiver::Packet),
            Some(other) => Err(LangError::new(
                format!("`{recv}: {other}` cannot receive method calls"),
                span,
            )),
            None => Err(LangError::new(
                format!("unknown receiver `{recv}` (not a state, packet, or framework)"),
                span,
            )),
        }
    }

    fn check_builtin_call(
        &self,
        name: &str,
        builtin: &Builtin,
        args: &[Expr],
        env: &Env,
        span: Span,
    ) -> Result<Type, LangError> {
        if args.len() < builtin.params.len()
            || (!builtin.variadic && args.len() != builtin.params.len())
        {
            return Err(LangError::new(
                format!(
                    "`{name}` expects {}{} argument(s), got {}",
                    builtin.params.len(),
                    if builtin.variadic { "+" } else { "" },
                    args.len()
                ),
                span,
            ));
        }
        for (i, arg) in args.iter().enumerate() {
            let at = self.expr_type(arg, env)?;
            let expected = builtin.params.get(i).copied().unwrap_or(ParamTy::Int);
            let ok = match expected {
                ParamTy::Int => at.is_int(),
                ParamTy::Packet => at == Type::Packet,
            };
            if !ok {
                return Err(LangError::new(
                    format!("argument {} of `{name}` has type {at}", i + 1),
                    arg.span,
                ));
            }
        }
        Ok(builtin.ret)
    }
}

/// Whether every path through the block returns.
fn must_return(b: &Block) -> bool {
    b.stmts.iter().any(|s| match &s.kind {
        StmtKind::Return(_) => true,
        StmtKind::If { then_block, else_block: Some(e), .. } => {
            must_return(then_block) && must_return(e)
        }
        _ => false,
    })
}

/// Assignment compatibility: all integer widths interchange; other types
/// must match exactly.
fn compatible(target: Type, value: Type) -> bool {
    target == value || (target.is_int() && value.is_int())
}

#[cfg(test)]
mod tests {
    use crate::frontend;

    fn err(src: &str) -> String {
        frontend(src).unwrap_err().message
    }

    fn wrap(body: &str) -> String {
        format!(
            "nf t {{ state tbl: map<u64, u64>[64]; fn handle(pkt: packet) -> action {{ {body} return forward; }} }}"
        )
    }

    #[test]
    fn missing_handle_rejected() {
        assert!(err("nf t { fn other(x: u64) -> u64 { return x; } }").contains("handle"));
    }

    #[test]
    fn bad_handle_signature_rejected() {
        assert!(err("nf t { fn handle(x: u64) -> action { return drop; } }")
            .contains("packet"));
    }

    #[test]
    fn unknown_variable_rejected() {
        assert!(err(&wrap("let a: u64 = nope;")).contains("unknown variable"));
    }

    #[test]
    fn condition_must_be_bool() {
        assert!(err(&wrap("if (5) { }")).contains("bool"));
        assert!(frontend(&wrap("if (5 == 5) { }")).is_ok());
    }

    #[test]
    fn int_widths_coerce() {
        assert!(frontend(&wrap("let a: u8 = pkt.proto; let b: u64 = a + 1;")).is_ok());
    }

    #[test]
    fn bool_int_mix_rejected() {
        assert!(err(&wrap("let a: u64 = true + 1;")).contains("integers"));
        assert!(err(&wrap("let a: bool = 1 && true;")).contains("bool"));
    }

    #[test]
    fn table_methods_checked() {
        assert!(frontend(&wrap("let v: u64 = tbl.lookup(5); tbl.insert(1, 2);")).is_ok());
        assert!(err(&wrap("tbl.lookup(1, 2);")).contains("argument"));
        assert!(err(&wrap("tbl.scan(1);")).contains("no method"));
    }

    #[test]
    fn assignment_rules() {
        assert!(frontend(&wrap("let a: u64 = 1; a = 2;")).is_ok());
        assert!(err(&wrap("b = 2;")).contains("unknown variable"));
        assert!(err(
            "nf t { const C: u64 = 5; fn handle(pkt: packet) -> action { C = 6; return drop; } }"
        )
        .contains("constant"));
    }

    #[test]
    fn all_paths_must_return() {
        let src = "nf t { fn handle(pkt: packet) -> action { if (pkt.is_tcp) { return forward; } } }";
        assert!(err(src).contains("fall off"));
        let ok = "nf t { fn handle(pkt: packet) -> action { if (pkt.is_tcp) { return forward; } else { return drop; } } }";
        assert!(frontend(ok).is_ok());
    }

    #[test]
    fn recursion_rejected() {
        let src = r#"nf t {
            fn a(x: u64) -> u64 { return b(x); }
            fn b(x: u64) -> u64 { return a(x); }
            fn handle(pkt: packet) -> action { return forward; }
        }"#;
        assert!(err(src).contains("recursive"));
    }

    #[test]
    fn user_function_calls_checked() {
        let src = r#"nf t {
            fn double(x: u64) -> u64 { return x * 2; }
            fn handle(pkt: packet) -> action {
                let y: u64 = double(21);
                return forward;
            }
        }"#;
        assert!(frontend(src).is_ok());
        let bad = r#"nf t {
            fn double(x: u64) -> u64 { return x * 2; }
            fn handle(pkt: packet) -> action {
                let y: u64 = double(true);
                return forward;
            }
        }"#;
        assert!(err(bad).contains("expects"));
    }

    #[test]
    fn zero_capacity_state_rejected() {
        assert!(err(
            "nf t { state s: counter[0]; fn handle(pkt: packet) -> action { return drop; } }"
        )
        .contains("zero capacity"));
    }

    #[test]
    fn duplicate_names_rejected() {
        assert!(err(
            "nf t { state s: counter[5]; state s: counter[5]; fn handle(pkt: packet) -> action { return drop; } }"
        )
        .contains("duplicate"));
    }

    #[test]
    fn packet_fields_and_framework_calls() {
        let ok = wrap(
            "dpdk.parse_headers(pkt); click.network_header(pkt); bpf.csum_diff(pkt); \
             let f: bool = pkt.is_syn; let p: u8 = pkt.proto;",
        );
        assert!(frontend(&ok).is_ok());
        assert!(err(&wrap("let z: u64 = pkt.zzz;")).contains("no field"));
    }

    #[test]
    fn variadic_hash_accepts_many_args() {
        assert!(frontend(&wrap(
            "let h: u64 = hash(pkt.src_ip, pkt.dst_ip, pkt.src_port, pkt.dst_port, pkt.proto);"
        ))
        .is_ok());
        assert!(err(&wrap("let h: u64 = hash();")).contains("expects"));
    }

    #[test]
    fn void_let_rejected() {
        assert!(err(&wrap("let x = checksum_update(pkt);")).contains("void"));
    }
}
