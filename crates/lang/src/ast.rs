//! Abstract syntax tree for NFC programs.

use crate::tokens::Span;
use core::fmt;

/// Scalar and special types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 8-bit unsigned integer.
    U8,
    /// 16-bit unsigned integer.
    U16,
    /// 32-bit unsigned integer.
    U32,
    /// 64-bit unsigned integer.
    U64,
    /// Boolean.
    Bool,
    /// The packet being processed.
    Packet,
    /// The verdict type returned by `handle` (forward/drop).
    Action,
    /// No value.
    Void,
}

impl Type {
    /// Whether this is one of the integer types.
    pub fn is_int(self) -> bool {
        matches!(self, Type::U8 | Type::U16 | Type::U32 | Type::U64)
    }

    /// Width in bits for integer types.
    pub fn bits(self) -> u32 {
        match self {
            Type::U8 => 8,
            Type::U16 => 16,
            Type::U32 => 32,
            Type::U64 => 64,
            _ => 0,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Type::U8 => "u8",
            Type::U16 => "u16",
            Type::U32 => "u32",
            Type::U64 => "u64",
            Type::Bool => "bool",
            Type::Packet => "packet",
            Type::Action => "action",
            Type::Void => "void",
        };
        write!(f, "{s}")
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    LogicalAnd,
    /// `||`
    LogicalOr,
}

impl BinOp {
    /// Whether the operator yields a boolean.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Whether the operator takes boolean operands.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::LogicalAnd | BinOp::LogicalOr)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `!`
    Not,
    /// `-` (wrapping negation on unsigned values, as in C).
    Neg,
}

/// An expression with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression itself.
    pub kind: ExprKind,
    /// Source position.
    pub span: Span,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(u64),
    /// Boolean literal.
    Bool(bool),
    /// `forward` / `drop` action literal (true = forward).
    ActionLit(bool),
    /// Variable, parameter, or constant reference.
    Ident(String),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Free-function call, e.g. `hash(a, b)`.
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Method-style call, e.g. `pkt.set_src_ip(x)`, `table.lookup(k)`,
    /// or a namespaced framework call like `dpdk.parse_headers(pkt)`.
    MethodCall {
        /// Receiver identifier (packet, table, or framework namespace).
        recv: String,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Field read, e.g. `pkt.src_ip`.
    Field {
        /// Receiver identifier.
        recv: String,
        /// Field name.
        field: String,
    },
}

/// A statement with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// The statement itself.
    pub kind: StmtKind,
    /// Source position.
    pub span: Span,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `let name: ty = expr;` (type optional, inferred).
    Let {
        /// Variable name.
        name: String,
        /// Declared type, if written.
        ty: Option<Type>,
        /// Initializer.
        value: Expr,
    },
    /// `name = expr;`
    Assign {
        /// Target variable.
        name: String,
        /// New value.
        value: Expr,
    },
    /// `if (cond) { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_block: Block,
        /// Else-branch, if present.
        else_block: Option<Block>,
    },
    /// `while (cond) { .. }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Body.
        body: Block,
    },
    /// `for i in lo..hi { .. }`
    For {
        /// Induction variable.
        var: String,
        /// Inclusive lower bound expression.
        lo: Expr,
        /// Exclusive upper bound expression.
        hi: Expr,
        /// Body.
        body: Block,
    },
    /// `return expr?;`
    Return(Option<Expr>),
    /// A bare expression statement (usually a call).
    Expr(Expr),
}

/// A `{ ... }` block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Type,
}

/// A function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDecl {
    /// Name (`handle` is the packet entry point).
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Return type (`Void` if omitted).
    pub ret: Type,
    /// Body.
    pub body: Block,
    /// Source position.
    pub span: Span,
}

/// State (table) kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateKind {
    /// `map<K, V>[capacity]`: exact-match table.
    Map {
        /// Key type.
        key: Type,
        /// Value type.
        value: Type,
    },
    /// `array<T>[len]`: dense array.
    Array {
        /// Element type.
        elem: Type,
    },
    /// `lpm[rules]`: longest-prefix-match table over IPv4 destinations.
    Lpm,
    /// `counter[buckets]`: counting sketch / per-bucket counters.
    Counter,
}

/// A state declaration: named NF state with a capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct StateDecl {
    /// Name.
    pub name: String,
    /// Kind (map/array/lpm/counter).
    pub kind: StateKind,
    /// Capacity: map entries, array length, LPM rules, or counter buckets.
    pub capacity: u64,
    /// Source position.
    pub span: Span,
}

impl StateDecl {
    /// Approximate size in bytes of this state, for memory placement.
    pub fn size_bytes(&self) -> usize {
        let entry = match &self.kind {
            // key + value + bucket overhead
            StateKind::Map { key, value } => {
                (key.bits() as usize + value.bits() as usize) / 8 + 8
            }
            StateKind::Array { elem } => (elem.bits() as usize) / 8,
            // prefix + mask + next hop + priority
            StateKind::Lpm => 16,
            StateKind::Counter => 8,
        };
        entry.max(1) * self.capacity as usize
    }
}

/// A named compile-time constant.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstDecl {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Type,
    /// Value.
    pub value: u64,
    /// Source position.
    pub span: Span,
}

/// A complete NF program: one `nf name { ... }` unit.
#[derive(Debug, Clone, PartialEq)]
pub struct NfProgram {
    /// NF name.
    pub name: String,
    /// Constants.
    pub consts: Vec<ConstDecl>,
    /// State declarations.
    pub states: Vec<StateDecl>,
    /// Functions (`handle` must be among them).
    pub functions: Vec<FnDecl>,
}

impl NfProgram {
    /// The packet entry point.
    pub fn handle_fn(&self) -> Option<&FnDecl> {
        self.functions.iter().find(|f| f.name == "handle")
    }

    /// Look up a state declaration by name.
    pub fn state(&self, name: &str) -> Option<&StateDecl> {
        self.states.iter().find(|s| s.name == name)
    }

    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<&FnDecl> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Look up a constant by name.
    pub fn constant(&self, name: &str) -> Option<&ConstDecl> {
        self.consts.iter().find(|c| c.name == name)
    }

    /// Total declared state footprint in bytes.
    pub fn state_bytes(&self) -> usize {
        self.states.iter().map(|s| s.size_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_predicates() {
        assert!(Type::U8.is_int() && Type::U64.is_int());
        assert!(!Type::Bool.is_int() && !Type::Packet.is_int());
        assert_eq!(Type::U16.bits(), 16);
        assert_eq!(Type::Bool.bits(), 0);
    }

    #[test]
    fn binop_predicates() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::LogicalAnd.is_logical());
        assert!(!BinOp::And.is_logical());
    }

    #[test]
    fn state_size_estimates() {
        let map = StateDecl {
            name: "t".into(),
            kind: StateKind::Map { key: Type::U64, value: Type::U64 },
            capacity: 1000,
            span: Span::default(),
        };
        assert_eq!(map.size_bytes(), 24 * 1000);
        let lpm = StateDecl {
            name: "r".into(),
            kind: StateKind::Lpm,
            capacity: 30_000,
            span: Span::default(),
        };
        assert_eq!(lpm.size_bytes(), 16 * 30_000);
    }

    #[test]
    fn program_lookups() {
        let p = NfProgram {
            name: "x".into(),
            consts: vec![],
            states: vec![StateDecl {
                name: "tbl".into(),
                kind: StateKind::Counter,
                capacity: 64,
                span: Span::default(),
            }],
            functions: vec![FnDecl {
                name: "handle".into(),
                params: vec![],
                ret: Type::Action,
                body: Block::default(),
                span: Span::default(),
            }],
        };
        assert!(p.handle_fn().is_some());
        assert!(p.state("tbl").is_some());
        assert!(p.state("nope").is_none());
        assert_eq!(p.state_bytes(), 8 * 64);
    }
}
