//! Lexer for the NFC language.

use crate::LangError;
use core::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

impl Span {
    /// Construct a span.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    // Literals and identifiers.
    /// Integer literal (decimal or 0x hex).
    Int(u64),
    /// Identifier.
    Ident(String),

    // Keywords.
    /// `nf`
    Nf,
    /// `state`
    State,
    /// `const`
    Const,
    /// `fn`
    Fn,
    /// `let`
    Let,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `in`
    In,
    /// `return`
    Return,
    /// `true`
    True,
    /// `false`
    False,
    /// `map`
    Map,
    /// `array`
    Array,
    /// `lpm`
    Lpm,
    /// `counter`
    Counter,

    // Punctuation.
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `=`
    Assign,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `->`
    Arrow,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Eof => write!(f, "end of input"),
            other => write!(f, "`{}`", other.lexeme()),
        }
    }
}

impl TokenKind {
    fn lexeme(&self) -> &'static str {
        match self {
            TokenKind::Nf => "nf",
            TokenKind::State => "state",
            TokenKind::Const => "const",
            TokenKind::Fn => "fn",
            TokenKind::Let => "let",
            TokenKind::If => "if",
            TokenKind::Else => "else",
            TokenKind::While => "while",
            TokenKind::For => "for",
            TokenKind::In => "in",
            TokenKind::Return => "return",
            TokenKind::True => "true",
            TokenKind::False => "false",
            TokenKind::Map => "map",
            TokenKind::Array => "array",
            TokenKind::Lpm => "lpm",
            TokenKind::Counter => "counter",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Lt => "<",
            TokenKind::Gt => ">",
            TokenKind::Le => "<=",
            TokenKind::Ge => ">=",
            TokenKind::EqEq => "==",
            TokenKind::Ne => "!=",
            TokenKind::Assign => "=",
            TokenKind::Semi => ";",
            TokenKind::Colon => ":",
            TokenKind::Comma => ",",
            TokenKind::Dot => ".",
            TokenKind::DotDot => "..",
            TokenKind::Arrow => "->",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Amp => "&",
            TokenKind::Pipe => "|",
            TokenKind::Caret => "^",
            TokenKind::Shl => "<<",
            TokenKind::Shr => ">>",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            TokenKind::Bang => "!",
            TokenKind::Int(_) | TokenKind::Ident(_) | TokenKind::Eof => "",
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token.
    pub kind: TokenKind,
    /// Where it starts.
    pub span: Span,
}

/// Tokenize NFC source. `//` line comments and `/* */` block comments are
/// skipped.
pub fn tokenize(source: &str) -> Result<Vec<Token>, LangError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let span = Span::new(line, col);
        match c {
            c if c.is_whitespace() => bump!(),
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    bump!();
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                bump!();
                bump!();
                loop {
                    if i + 1 >= chars.len() {
                        return Err(LangError::new("unterminated block comment", span));
                    }
                    if chars[i] == '*' && chars[i + 1] == '/' {
                        bump!();
                        bump!();
                        break;
                    }
                    bump!();
                }
            }
            '0'..='9' => {
                let mut value: u64 = 0;
                if c == '0' && matches!(chars.get(i + 1), Some('x') | Some('X')) {
                    bump!();
                    bump!();
                    let mut any = false;
                    while let Some(d) = chars.get(i).and_then(|c| c.to_digit(16)) {
                        value = value
                            .checked_mul(16)
                            .and_then(|v| v.checked_add(d as u64))
                            .ok_or_else(|| LangError::new("integer literal overflows u64", span))?;
                        any = true;
                        bump!();
                    }
                    if !any {
                        return Err(LangError::new("expected hex digits after 0x", span));
                    }
                } else {
                    while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                        // `_` separators yield no digit and are skipped.
                        if let Some(d) = chars[i].to_digit(10) {
                            value = value
                                .checked_mul(10)
                                .and_then(|v| v.checked_add(d as u64))
                                .ok_or_else(|| {
                                    LangError::new("integer literal overflows u64", span)
                                })?;
                        }
                        bump!();
                    }
                }
                tokens.push(Token { kind: TokenKind::Int(value), span });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    bump!();
                }
                let word: String = chars[start..i].iter().collect();
                let kind = match word.as_str() {
                    "nf" => TokenKind::Nf,
                    "state" => TokenKind::State,
                    "const" => TokenKind::Const,
                    "fn" => TokenKind::Fn,
                    "let" => TokenKind::Let,
                    "if" => TokenKind::If,
                    "else" => TokenKind::Else,
                    "while" => TokenKind::While,
                    "for" => TokenKind::For,
                    "in" => TokenKind::In,
                    "return" => TokenKind::Return,
                    "true" => TokenKind::True,
                    "false" => TokenKind::False,
                    "map" => TokenKind::Map,
                    "array" => TokenKind::Array,
                    "lpm" => TokenKind::Lpm,
                    "counter" => TokenKind::Counter,
                    _ => TokenKind::Ident(word),
                };
                tokens.push(Token { kind, span });
            }
            _ => {
                let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
                let (kind, len) = match two.as_str() {
                    "<=" => (TokenKind::Le, 2),
                    ">=" => (TokenKind::Ge, 2),
                    "==" => (TokenKind::EqEq, 2),
                    "!=" => (TokenKind::Ne, 2),
                    "<<" => (TokenKind::Shl, 2),
                    ">>" => (TokenKind::Shr, 2),
                    "&&" => (TokenKind::AndAnd, 2),
                    "||" => (TokenKind::OrOr, 2),
                    "->" => (TokenKind::Arrow, 2),
                    ".." => (TokenKind::DotDot, 2),
                    _ => {
                        let kind = match c {
                            '{' => TokenKind::LBrace,
                            '}' => TokenKind::RBrace,
                            '(' => TokenKind::LParen,
                            ')' => TokenKind::RParen,
                            '[' => TokenKind::LBracket,
                            ']' => TokenKind::RBracket,
                            '<' => TokenKind::Lt,
                            '>' => TokenKind::Gt,
                            '=' => TokenKind::Assign,
                            ';' => TokenKind::Semi,
                            ':' => TokenKind::Colon,
                            ',' => TokenKind::Comma,
                            '.' => TokenKind::Dot,
                            '+' => TokenKind::Plus,
                            '-' => TokenKind::Minus,
                            '*' => TokenKind::Star,
                            '/' => TokenKind::Slash,
                            '%' => TokenKind::Percent,
                            '&' => TokenKind::Amp,
                            '|' => TokenKind::Pipe,
                            '^' => TokenKind::Caret,
                            '!' => TokenKind::Bang,
                            other => {
                                return Err(LangError::new(
                                    format!("unexpected character `{other}`"),
                                    span,
                                ))
                            }
                        };
                        (kind, 1)
                    }
                };
                for _ in 0..len {
                    bump!();
                }
                tokens.push(Token { kind, span });
            }
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, span: Span::new(line, col) });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_identifiers() {
        assert_eq!(
            kinds("nf foo state fn"),
            vec![
                TokenKind::Nf,
                TokenKind::Ident("foo".into()),
                TokenKind::State,
                TokenKind::Fn,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers_decimal_hex_underscore() {
        assert_eq!(
            kinds("42 0xff 1_000"),
            vec![
                TokenKind::Int(42),
                TokenKind::Int(255),
                TokenKind::Int(1000),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("<= >= == != << >> && || -> .."),
            vec![
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::Ne,
                TokenKind::Shl,
                TokenKind::Shr,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Arrow,
                TokenKind::DotDot,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("a // comment\n b /* block\n comment */ c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let toks = tokenize("ab\n  cd").unwrap();
        assert_eq!(toks[0].span, Span::new(1, 1));
        assert_eq!(toks[1].span, Span::new(2, 3));
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(tokenize("/* nope").is_err());
    }

    #[test]
    fn unknown_char_errors() {
        let err = tokenize("a @ b").unwrap_err();
        assert!(err.message.contains('@'));
        assert_eq!(err.span.col, 3);
    }

    #[test]
    fn overflow_literal_errors() {
        assert!(tokenize("99999999999999999999999").is_err());
        assert!(tokenize("0xffffffffffffffffff").is_err());
    }

    #[test]
    fn dot_vs_dotdot() {
        assert_eq!(
            kinds("a.b 0..2"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Dot,
                TokenKind::Ident("b".into()),
                TokenKind::Int(0),
                TokenKind::DotDot,
                TokenKind::Int(2),
                TokenKind::Eof
            ]
        );
    }
}
