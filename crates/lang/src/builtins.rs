//! The framework/builtin API registry.
//!
//! NFC programs call framework-style APIs: free functions (`hash`,
//! `checksum_update`), namespaced framework calls (`dpdk.parse_headers`,
//! `click.network_header`, `bpf.csum_diff`), packet methods
//! (`pkt.set_src_ip`), and state-table methods (`t.lookup`). Each resolves
//! to a [`Builtin`] carrying its *semantic class* — the information Clara
//! uses to substitute the call with a *vcall* in the IR (§3.3) and later
//! bind it to a SmartNIC component (match/action engine, checksum unit,
//! crypto accelerator, ...).

use crate::ast::{StateKind, Type};

/// The semantic class of a builtin — what NIC resource it exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BuiltinClass {
    /// Header parsing (maps to a match/action engine or an NPU parse
    /// routine; the paper's `vcall_get_hdr` example).
    ParseHeader,
    /// Full checksum over the packet (size-dependent; accelerator-eligible).
    ChecksumFull,
    /// Incremental checksum update after a header rewrite (cheap).
    ChecksumIncr,
    /// Crypto over the payload (accelerator-eligible).
    Crypto,
    /// Byte-wise payload scan — the DPI inner loop (size-dependent).
    PayloadScan,
    /// Flow/key hash computation.
    HashCompute,
    /// Exact-match table lookup.
    TableLookup,
    /// Exact-match table insert/update.
    TableWrite,
    /// Longest-prefix-match lookup (flow-cache / LPM-engine eligible).
    LpmLookup,
    /// Counter/sketch increment.
    CounterAdd,
    /// Counter/sketch read.
    CounterRead,
    /// Dense array read.
    ArrayRead,
    /// Dense array write.
    ArrayWrite,
    /// Packet metadata/header field read.
    MetadataRead,
    /// Packet metadata/header field write.
    MetadataWrite,
    /// Single payload byte read.
    PayloadByte,
    /// Token-bucket metering.
    Meter,
    /// Floating-point arithmetic helper (exercises FPU emulation, §3.4).
    FloatOp,
    /// Diagnostic logging (free at NIC level; kept for source fidelity).
    Log,
}

/// Loose parameter types for builtin signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamTy {
    /// Any integer type.
    Int,
    /// The packet.
    Packet,
}

/// A resolved builtin: its class and signature.
#[derive(Debug, Clone, PartialEq)]
pub struct Builtin {
    /// Semantic class.
    pub class: BuiltinClass,
    /// Expected parameters. For variadic builtins (`hash`), this is the
    /// minimum prefix and extra `Int` arguments are allowed.
    pub params: Vec<ParamTy>,
    /// Whether extra integer arguments are allowed beyond `params`.
    pub variadic: bool,
    /// Return type.
    pub ret: Type,
}

impl Builtin {
    fn new(class: BuiltinClass, params: Vec<ParamTy>, ret: Type) -> Self {
        Builtin { class, params, variadic: false, ret }
    }

    fn variadic(class: BuiltinClass, params: Vec<ParamTy>, ret: Type) -> Self {
        Builtin { class, params, variadic: true, ret }
    }
}

/// Resolve a free-function builtin by name.
pub fn lookup_builtin(name: &str) -> Option<Builtin> {
    use BuiltinClass as C;
    use ParamTy::*;
    Some(match name {
        "hash" => Builtin::variadic(C::HashCompute, vec![Int], Type::U64),
        "checksum" => Builtin::new(C::ChecksumFull, vec![Packet], Type::U16),
        "checksum_update" => Builtin::new(C::ChecksumIncr, vec![Packet], Type::Void),
        "aes_encrypt" => Builtin::new(C::Crypto, vec![Packet], Type::Void),
        "aes_decrypt" => Builtin::new(C::Crypto, vec![Packet], Type::Void),
        "payload_scan" => Builtin::new(C::PayloadScan, vec![Packet, Int], Type::U64),
        "meter" => Builtin::new(C::Meter, vec![Int, Int], Type::Bool),
        "ewma" => Builtin::new(C::FloatOp, vec![Int, Int], Type::U64),
        "log" => Builtin::variadic(C::Log, vec![], Type::Void),
        _ => return None,
    })
}

/// Receiver kinds for method-style calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Receiver<'a> {
    /// The `packet` parameter.
    Packet,
    /// A declared state table.
    State(&'a StateKind),
    /// A framework namespace (`dpdk`, `click`, `bpf`).
    Namespace(&'a str),
}

/// Resolve a method or namespaced framework call.
pub fn lookup_method(recv: Receiver<'_>, method: &str) -> Option<Builtin> {
    use BuiltinClass as C;
    use ParamTy::*;
    match recv {
        Receiver::Packet => Some(match method {
            "parse" => Builtin::new(C::ParseHeader, vec![], Type::Void),
            "set_src_ip" | "set_dst_ip" => {
                Builtin::new(C::MetadataWrite, vec![Int], Type::Void)
            }
            "set_src_port" | "set_dst_port" => {
                Builtin::new(C::MetadataWrite, vec![Int], Type::Void)
            }
            "set_ttl" => Builtin::new(C::MetadataWrite, vec![Int], Type::Void),
            "decrement_ttl" => Builtin::new(C::MetadataWrite, vec![], Type::Void),
            "payload_byte" => Builtin::new(C::PayloadByte, vec![Int], Type::U8),
            _ => return None,
        }),
        Receiver::Namespace(ns) => {
            let b = match (ns, method) {
                // DPDK-style APIs.
                ("dpdk", "parse_headers") => Builtin::new(C::ParseHeader, vec![Packet], Type::Void),
                ("dpdk", "l3_checksum") => Builtin::new(C::ChecksumFull, vec![Packet], Type::U16),
                ("dpdk", "hash_crc") => Builtin::variadic(C::HashCompute, vec![Int], Type::U64),
                // Click-style APIs (the paper's `network_header` example).
                ("click", "network_header") => {
                    Builtin::new(C::ParseHeader, vec![Packet], Type::Void)
                }
                ("click", "ip_checksum") => Builtin::new(C::ChecksumFull, vec![Packet], Type::U16),
                // eBPF-style APIs.
                ("bpf", "parse") => Builtin::new(C::ParseHeader, vec![Packet], Type::Void),
                ("bpf", "csum_diff") => Builtin::new(C::ChecksumIncr, vec![Packet], Type::Void),
                _ => return None,
            };
            Some(b)
        }
        Receiver::State(kind) => {
            let b = match (kind, method) {
                (StateKind::Map { value, .. }, "lookup") => {
                    Builtin::new(C::TableLookup, vec![Int], *value)
                }
                (StateKind::Map { .. }, "contains") => {
                    Builtin::new(C::TableLookup, vec![Int], Type::Bool)
                }
                (StateKind::Map { .. }, "insert") | (StateKind::Map { .. }, "update") => {
                    Builtin::new(C::TableWrite, vec![Int, Int], Type::Void)
                }
                (StateKind::Map { .. }, "remove") => {
                    Builtin::new(C::TableWrite, vec![Int], Type::Void)
                }
                (StateKind::Lpm, "lookup") => Builtin::new(C::LpmLookup, vec![Int], Type::U64),
                (StateKind::Counter, "add") => {
                    Builtin::new(C::CounterAdd, vec![Int, Int], Type::Void)
                }
                (StateKind::Counter, "read") => {
                    Builtin::new(C::CounterRead, vec![Int], Type::U64)
                }
                (StateKind::Array { elem }, "get") => {
                    Builtin::new(C::ArrayRead, vec![Int], *elem)
                }
                (StateKind::Array { .. }, "set") => {
                    Builtin::new(C::ArrayWrite, vec![Int, Int], Type::Void)
                }
                _ => return None,
            };
            Some(b)
        }
    }
}

/// Packet fields readable via `pkt.<field>`, with their types.
pub fn packet_field(field: &str) -> Option<Type> {
    Some(match field {
        "src_ip" | "dst_ip" => Type::U32,
        "src_port" | "dst_port" => Type::U16,
        "proto" | "ttl" | "tcp_flags" => Type::U8,
        "payload_len" | "total_len" => Type::U16,
        "is_tcp" | "is_udp" | "is_syn" => Type::Bool,
        _ => return None,
    })
}

/// The framework namespaces recognized as call receivers.
pub fn is_namespace(name: &str) -> bool {
    matches!(name, "dpdk" | "click" | "bpf")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_builtins_resolve() {
        assert_eq!(lookup_builtin("hash").unwrap().class, BuiltinClass::HashCompute);
        assert!(lookup_builtin("hash").unwrap().variadic);
        assert_eq!(lookup_builtin("checksum").unwrap().ret, Type::U16);
        assert!(lookup_builtin("no_such_thing").is_none());
    }

    #[test]
    fn framework_namespaces_resolve_to_same_classes() {
        // The paper's point: different frameworks, same semantic class.
        let dpdk = lookup_method(Receiver::Namespace("dpdk"), "parse_headers").unwrap();
        let click = lookup_method(Receiver::Namespace("click"), "network_header").unwrap();
        let bpf = lookup_method(Receiver::Namespace("bpf"), "parse").unwrap();
        assert_eq!(dpdk.class, BuiltinClass::ParseHeader);
        assert_eq!(click.class, BuiltinClass::ParseHeader);
        assert_eq!(bpf.class, BuiltinClass::ParseHeader);
    }

    #[test]
    fn table_methods_typed_by_state_kind() {
        let map = StateKind::Map { key: Type::U64, value: Type::U32 };
        let lk = lookup_method(Receiver::State(&map), "lookup").unwrap();
        assert_eq!(lk.class, BuiltinClass::TableLookup);
        assert_eq!(lk.ret, Type::U32);

        let lpm = StateKind::Lpm;
        assert_eq!(
            lookup_method(Receiver::State(&lpm), "lookup").unwrap().class,
            BuiltinClass::LpmLookup
        );
        // Maps don't have `add`; counters do.
        assert!(lookup_method(Receiver::State(&map), "add").is_none());
        let ctr = StateKind::Counter;
        assert_eq!(
            lookup_method(Receiver::State(&ctr), "add").unwrap().class,
            BuiltinClass::CounterAdd
        );
    }

    #[test]
    fn packet_methods_and_fields() {
        assert_eq!(
            lookup_method(Receiver::Packet, "set_src_ip").unwrap().class,
            BuiltinClass::MetadataWrite
        );
        assert_eq!(packet_field("src_ip"), Some(Type::U32));
        assert_eq!(packet_field("is_tcp"), Some(Type::Bool));
        assert_eq!(packet_field("bogus"), None);
    }

    #[test]
    fn namespace_predicate() {
        assert!(is_namespace("dpdk") && is_namespace("click") && is_namespace("bpf"));
        assert!(!is_namespace("pkt"));
    }
}
