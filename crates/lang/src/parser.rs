//! Recursive-descent parser for NFC.

use crate::ast::*;
use crate::tokens::{tokenize, Span, Token, TokenKind};
use crate::LangError;

/// Hard ceiling on accepted source size. NF sources are a few kilobytes;
/// anything near this limit is hostile or corrupt input, and rejecting it
/// up front bounds lexer/parser memory.
pub const MAX_SOURCE_BYTES: usize = 1 << 20;

/// Maximum nesting depth (parenthesized expressions, unary chains, and
/// nested blocks each count one level). Bounds parser stack usage so
/// adversarial input like `((((...` reports an error instead of
/// overflowing the stack. Each level costs the full precedence-climbing
/// frame chain, so the ceiling must stay small enough for a default 2 MiB
/// thread stack even in unoptimized builds; real NF sources nest well
/// under 20 levels.
pub const MAX_NESTING_DEPTH: usize = 32;

/// Parse NFC source into an [`NfProgram`] (syntax only; run
/// [`crate::check`] afterwards, or use [`crate::frontend`]).
pub fn parse(source: &str) -> Result<NfProgram, LangError> {
    if source.len() > MAX_SOURCE_BYTES {
        return Err(LangError::new(
            format!(
                "source is {} bytes; the maximum is {MAX_SOURCE_BYTES}",
                source.len()
            ),
            Span { line: 1, col: 1 },
        ));
    }
    let tokens = tokenize(source)?;
    Parser { tokens, pos: 0, depth: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Current recursion depth (see [`MAX_NESTING_DEPTH`]).
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), LangError> {
        if self.peek() == &kind {
            self.bump();
            Ok(())
        } else {
            Err(LangError::new(
                format!("expected {kind}, found {}", self.peek()),
                self.span(),
            ))
        }
    }

    fn ident(&mut self) -> Result<String, LangError> {
        match self.peek() {
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.bump();
                Ok(name)
            }
            other => Err(LangError::new(
                format!("expected identifier, found {other}"),
                self.span(),
            )),
        }
    }

    /// Bump the nesting depth, erroring out (instead of risking a stack
    /// overflow) past [`MAX_NESTING_DEPTH`]. Pair with [`Self::descend`].
    fn ascend(&mut self) -> Result<(), LangError> {
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            return Err(LangError::new(
                format!("nesting deeper than {MAX_NESTING_DEPTH} levels"),
                self.span(),
            ));
        }
        Ok(())
    }

    fn descend(&mut self) {
        self.depth -= 1;
    }

    fn int_literal(&mut self) -> Result<u64, LangError> {
        match self.peek() {
            TokenKind::Int(v) => {
                let v = *v;
                self.bump();
                Ok(v)
            }
            other => Err(LangError::new(
                format!("expected integer literal, found {other}"),
                self.span(),
            )),
        }
    }

    // ---- declarations -------------------------------------------------

    fn program(&mut self) -> Result<NfProgram, LangError> {
        self.expect(TokenKind::Nf)?;
        let name = self.ident()?;
        self.expect(TokenKind::LBrace)?;
        let mut program = NfProgram {
            name,
            consts: Vec::new(),
            states: Vec::new(),
            functions: Vec::new(),
        };
        while !self.eat(&TokenKind::RBrace) {
            match self.peek() {
                TokenKind::Const => program.consts.push(self.const_decl()?),
                TokenKind::State => program.states.push(self.state_decl()?),
                TokenKind::Fn => program.functions.push(self.fn_decl()?),
                TokenKind::Eof => {
                    return Err(LangError::new("unclosed `nf` block", self.span()))
                }
                other => {
                    return Err(LangError::new(
                        format!("expected `const`, `state`, or `fn`, found {other}"),
                        self.span(),
                    ))
                }
            }
        }
        self.expect(TokenKind::Eof)?;
        Ok(program)
    }

    fn const_decl(&mut self) -> Result<ConstDecl, LangError> {
        let span = self.span();
        self.expect(TokenKind::Const)?;
        let name = self.ident()?;
        self.expect(TokenKind::Colon)?;
        let ty = self.ty()?;
        self.expect(TokenKind::Assign)?;
        let value = self.int_literal()?;
        self.expect(TokenKind::Semi)?;
        Ok(ConstDecl { name, ty, value, span })
    }

    fn state_decl(&mut self) -> Result<StateDecl, LangError> {
        let span = self.span();
        self.expect(TokenKind::State)?;
        let name = self.ident()?;
        self.expect(TokenKind::Colon)?;
        let kind = match self.bump() {
            TokenKind::Map => {
                self.expect(TokenKind::Lt)?;
                let key = self.ty()?;
                self.expect(TokenKind::Comma)?;
                let value = self.ty()?;
                self.expect(TokenKind::Gt)?;
                StateKind::Map { key, value }
            }
            TokenKind::Array => {
                self.expect(TokenKind::Lt)?;
                let elem = self.ty()?;
                self.expect(TokenKind::Gt)?;
                StateKind::Array { elem }
            }
            TokenKind::Lpm => StateKind::Lpm,
            TokenKind::Counter => StateKind::Counter,
            other => {
                return Err(LangError::new(
                    format!("expected `map`, `array`, `lpm`, or `counter`, found {other}"),
                    span,
                ))
            }
        };
        self.expect(TokenKind::LBracket)?;
        let capacity = self.int_literal()?;
        self.expect(TokenKind::RBracket)?;
        self.expect(TokenKind::Semi)?;
        Ok(StateDecl { name, kind, capacity, span })
    }

    fn fn_decl(&mut self) -> Result<FnDecl, LangError> {
        let span = self.span();
        self.expect(TokenKind::Fn)?;
        let name = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                let pname = self.ident()?;
                self.expect(TokenKind::Colon)?;
                let ty = self.ty()?;
                params.push(Param { name: pname, ty });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let ret = if self.eat(&TokenKind::Arrow) { self.ty()? } else { Type::Void };
        let body = self.block()?;
        Ok(FnDecl { name, params, ret, body, span })
    }

    fn ty(&mut self) -> Result<Type, LangError> {
        let span = self.span();
        let name = self.ident()?;
        match name.as_str() {
            "u8" => Ok(Type::U8),
            "u16" => Ok(Type::U16),
            "u32" => Ok(Type::U32),
            "u64" => Ok(Type::U64),
            "bool" => Ok(Type::Bool),
            "packet" => Ok(Type::Packet),
            "action" => Ok(Type::Action),
            "void" => Ok(Type::Void),
            other => Err(LangError::new(format!("unknown type `{other}`"), span)),
        }
    }

    // ---- statements ---------------------------------------------------

    fn block(&mut self) -> Result<Block, LangError> {
        self.ascend()?;
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if self.peek() == &TokenKind::Eof {
                self.descend();
                return Err(LangError::new("unclosed block", self.span()));
            }
            match self.stmt() {
                Ok(s) => stmts.push(s),
                Err(e) => {
                    self.descend();
                    return Err(e);
                }
            }
        }
        self.descend();
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        let span = self.span();
        let kind = match self.peek() {
            TokenKind::Let => {
                self.bump();
                let name = self.ident()?;
                let ty = if self.eat(&TokenKind::Colon) { Some(self.ty()?) } else { None };
                self.expect(TokenKind::Assign)?;
                let value = self.expr()?;
                self.expect(TokenKind::Semi)?;
                StmtKind::Let { name, ty, value }
            }
            TokenKind::If => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let then_block = self.block()?;
                let else_block = if self.eat(&TokenKind::Else) {
                    if self.peek() == &TokenKind::If {
                        // `else if`: wrap the nested if in a block.
                        let nested = self.stmt()?;
                        Some(Block { stmts: vec![nested] })
                    } else {
                        Some(self.block()?)
                    }
                } else {
                    None
                };
                StmtKind::If { cond, then_block, else_block }
            }
            TokenKind::While => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = self.block()?;
                StmtKind::While { cond, body }
            }
            TokenKind::For => {
                self.bump();
                let var = self.ident()?;
                self.expect(TokenKind::In)?;
                let lo = self.expr()?;
                self.expect(TokenKind::DotDot)?;
                let hi = self.expr()?;
                let body = self.block()?;
                StmtKind::For { var, lo, hi, body }
            }
            TokenKind::Return => {
                self.bump();
                let value = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi)?;
                StmtKind::Return(value)
            }
            // `ident = expr;` assignment, disambiguated by lookahead.
            TokenKind::Ident(_) if self.peek2() == &TokenKind::Assign => {
                let name = self.ident()?;
                self.expect(TokenKind::Assign)?;
                let value = self.expr()?;
                self.expect(TokenKind::Semi)?;
                StmtKind::Assign { name, value }
            }
            _ => {
                let e = self.expr()?;
                self.expect(TokenKind::Semi)?;
                StmtKind::Expr(e)
            }
        };
        Ok(Stmt { kind, span })
    }

    // ---- expressions (precedence climbing) ----------------------------

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.ascend()?;
        let result = self.logical_or();
        self.descend();
        result
    }

    fn binary_level<F>(
        &mut self,
        mut next: F,
        table: &[(TokenKind, BinOp)],
    ) -> Result<Expr, LangError>
    where
        F: FnMut(&mut Self) -> Result<Expr, LangError>,
    {
        let mut lhs = next(self)?;
        'outer: loop {
            for (tok, op) in table {
                if self.peek() == tok {
                    let span = self.span();
                    self.bump();
                    let rhs = next(self)?;
                    lhs = Expr {
                        kind: ExprKind::Binary(*op, Box::new(lhs), Box::new(rhs)),
                        span,
                    };
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn logical_or(&mut self) -> Result<Expr, LangError> {
        self.binary_level(Self::logical_and, &[(TokenKind::OrOr, BinOp::LogicalOr)])
    }

    fn logical_and(&mut self) -> Result<Expr, LangError> {
        self.binary_level(Self::bit_or, &[(TokenKind::AndAnd, BinOp::LogicalAnd)])
    }

    fn bit_or(&mut self) -> Result<Expr, LangError> {
        self.binary_level(Self::bit_xor, &[(TokenKind::Pipe, BinOp::Or)])
    }

    fn bit_xor(&mut self) -> Result<Expr, LangError> {
        self.binary_level(Self::bit_and, &[(TokenKind::Caret, BinOp::Xor)])
    }

    fn bit_and(&mut self) -> Result<Expr, LangError> {
        self.binary_level(Self::equality, &[(TokenKind::Amp, BinOp::And)])
    }

    fn equality(&mut self) -> Result<Expr, LangError> {
        self.binary_level(
            Self::relational,
            &[(TokenKind::EqEq, BinOp::Eq), (TokenKind::Ne, BinOp::Ne)],
        )
    }

    fn relational(&mut self) -> Result<Expr, LangError> {
        self.binary_level(
            Self::shift,
            &[
                (TokenKind::Le, BinOp::Le),
                (TokenKind::Ge, BinOp::Ge),
                (TokenKind::Lt, BinOp::Lt),
                (TokenKind::Gt, BinOp::Gt),
            ],
        )
    }

    fn shift(&mut self) -> Result<Expr, LangError> {
        self.binary_level(
            Self::additive,
            &[(TokenKind::Shl, BinOp::Shl), (TokenKind::Shr, BinOp::Shr)],
        )
    }

    fn additive(&mut self) -> Result<Expr, LangError> {
        self.binary_level(
            Self::multiplicative,
            &[(TokenKind::Plus, BinOp::Add), (TokenKind::Minus, BinOp::Sub)],
        )
    }

    fn multiplicative(&mut self) -> Result<Expr, LangError> {
        self.binary_level(
            Self::unary,
            &[
                (TokenKind::Star, BinOp::Mul),
                (TokenKind::Slash, BinOp::Div),
                (TokenKind::Percent, BinOp::Rem),
            ],
        )
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        let span = self.span();
        let op = if self.eat(&TokenKind::Bang) {
            Some(UnOp::Not)
        } else if self.eat(&TokenKind::Minus) {
            Some(UnOp::Neg)
        } else {
            None
        };
        if let Some(op) = op {
            // Unary chains (`!!!!x`) recurse outside `expr`; they count
            // against the same nesting budget.
            self.ascend()?;
            let inner = self.unary();
            self.descend();
            return Ok(Expr { kind: ExprKind::Unary(op, Box::new(inner?)), span });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, LangError> {
        let mut expr = self.primary()?;
        while self.peek() == &TokenKind::Dot {
            // `recv.member` or `recv.method(args)` — the receiver must be a
            // plain identifier (packet/table/namespace), matching how the
            // paper recognizes framework API calls.
            let ExprKind::Ident(recv) = &expr.kind else {
                return Err(LangError::new(
                    "`.` receiver must be an identifier",
                    self.span(),
                ));
            };
            let recv = recv.clone();
            let span = self.span();
            self.bump(); // `.`
            let member = self.ident()?;
            if self.eat(&TokenKind::LParen) {
                let args = self.args()?;
                expr = Expr { kind: ExprKind::MethodCall { recv, method: member, args }, span };
            } else {
                expr = Expr { kind: ExprKind::Field { recv, field: member }, span };
            }
        }
        Ok(expr)
    }

    fn args(&mut self) -> Result<Vec<Expr>, LangError> {
        let mut args = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                args.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr { kind: ExprKind::Int(v), span })
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr { kind: ExprKind::Bool(true), span })
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr { kind: ExprKind::Bool(false), span })
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if name == "forward" {
                    return Ok(Expr { kind: ExprKind::ActionLit(true), span });
                }
                if name == "drop" {
                    return Ok(Expr { kind: ExprKind::ActionLit(false), span });
                }
                if self.eat(&TokenKind::LParen) {
                    let args = self.args()?;
                    Ok(Expr { kind: ExprKind::Call { name, args }, span })
                } else {
                    Ok(Expr { kind: ExprKind::Ident(name), span })
                }
            }
            other => Err(LangError::new(
                format!("expected expression, found {other}"),
                span,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_expr(src: &str) -> Expr {
        let program = parse(&format!(
            "nf t {{ fn handle(pkt: packet) -> action {{ let x: u64 = {src}; return drop; }} }}"
        ))
        .unwrap();
        match &program.functions[0].body.stmts[0].kind {
            StmtKind::Let { value, .. } => value.clone(),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("1 + 2 * 3");
        match e.kind {
            ExprKind::Binary(BinOp::Add, lhs, rhs) => {
                assert!(matches!(lhs.kind, ExprKind::Int(1)));
                assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_shift_vs_compare() {
        // `a >> 2 == 5` parses as `(a >> 2) == 5`.
        let e = parse_expr("7 >> 2 == 5");
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::Eq, _, _)));
    }

    #[test]
    fn parentheses_override() {
        let e = parse_expr("(1 + 2) * 3");
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn method_call_and_field() {
        let e = parse_expr("pkt.src_ip + flow_table.lookup(5)");
        match e.kind {
            ExprKind::Binary(BinOp::Add, lhs, rhs) => {
                assert!(matches!(
                    lhs.kind,
                    ExprKind::Field { ref recv, ref field } if recv == "pkt" && field == "src_ip"
                ));
                assert!(matches!(
                    rhs.kind,
                    ExprKind::MethodCall { ref recv, ref method, ref args }
                        if recv == "flow_table" && method == "lookup" && args.len() == 1
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn action_literals() {
        assert!(matches!(parse_expr("forward").kind, ExprKind::ActionLit(true)));
        assert!(matches!(parse_expr("drop").kind, ExprKind::ActionLit(false)));
    }

    #[test]
    fn unary_operators() {
        let e = parse_expr("!true");
        assert!(matches!(e.kind, ExprKind::Unary(UnOp::Not, _)));
        let e = parse_expr("-5");
        assert!(matches!(e.kind, ExprKind::Unary(UnOp::Neg, _)));
    }

    #[test]
    fn full_program_shapes() {
        let src = r#"
            nf fw {
                const MAX: u64 = 100;
                state conns: map<u64, u8>[4096];
                state rules: lpm[1000];
                state counts: counter[256];
                state ring: array<u32>[64];

                fn helper(x: u64) -> u64 {
                    return x + 1;
                }

                fn handle(pkt: packet) -> action {
                    let i: u64 = 0;
                    while (i < MAX) {
                        i = i + 1;
                    }
                    for j in 0..4 {
                        counts.add(j, 1);
                    }
                    if (pkt.proto == 6) {
                        return forward;
                    } else if (pkt.proto == 17) {
                        return drop;
                    } else {
                        return drop;
                    }
                }
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.consts.len(), 1);
        assert_eq!(p.states.len(), 4);
        assert_eq!(p.functions.len(), 2);
        assert_eq!(p.functions[1].params[0].ty, Type::Packet);
        assert!(matches!(p.states[1].kind, StateKind::Lpm));
        assert_eq!(p.states[0].capacity, 4096);
    }

    #[test]
    fn else_if_desugars_to_nested_block() {
        let src = r#"nf t { fn handle(pkt: packet) -> action {
            if (1 == 1) { return forward; } else if (2 == 2) { return drop; }
            return drop;
        } }"#;
        let p = parse(src).unwrap();
        match &p.functions[0].body.stmts[0].kind {
            StmtKind::If { else_block: Some(b), .. } => {
                assert!(matches!(b.stmts[0].kind, StmtKind::If { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_messages_are_positioned() {
        let err = parse("nf t { fn handle() -> action { let x = ; } }").unwrap_err();
        assert!(err.message.contains("expected expression"), "{err}");
        let err = parse("nf t { state s: hash[5]; }").unwrap_err();
        assert!(err.message.contains("expected `map`"), "{err}");
    }

    #[test]
    fn rejects_trailing_tokens() {
        assert!(parse("nf t { } extra").is_err());
    }

    #[test]
    fn deep_paren_nesting_errors_instead_of_overflowing() {
        let deep = format!("{}1{}", "(".repeat(10_000), ")".repeat(10_000));
        let err = parse(&format!(
            "nf t {{ fn handle(pkt: packet) -> action {{ let x: u64 = {deep}; return drop; }} }}"
        ))
        .unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn deep_unary_chain_errors_instead_of_overflowing() {
        let deep = format!("{}true", "!".repeat(10_000));
        let err = parse(&format!(
            "nf t {{ fn handle(pkt: packet) -> action {{ let x: bool = {deep}; return drop; }} }}"
        ))
        .unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn deep_block_nesting_errors_instead_of_overflowing() {
        let body = format!(
            "{}return drop;{}",
            "if (1 == 1) { ".repeat(10_000),
            " } ".repeat(10_000)
        );
        let err = parse(&format!(
            "nf t {{ fn handle(pkt: packet) -> action {{ {body} return drop; }} }}"
        ))
        .unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn moderate_nesting_still_parses() {
        let depth = 20;
        let expr = format!("{}1{}", "(".repeat(depth), ")".repeat(depth));
        assert!(parse(&format!(
            "nf t {{ fn handle(pkt: packet) -> action {{ let x: u64 = {expr}; return drop; }} }}"
        ))
        .is_ok());
    }

    #[test]
    fn oversized_source_is_rejected_up_front() {
        let mut src = String::from("nf t { ");
        src.push_str(&" ".repeat(MAX_SOURCE_BYTES));
        src.push('}');
        let err = parse(&src).unwrap_err();
        assert!(err.message.contains("maximum"), "{err}");
    }

    #[test]
    fn rejects_chained_dot_on_non_ident() {
        assert!(parse(
            "nf t { fn handle(pkt: packet) -> action { let x: u64 = hash(1).y; return drop; } }"
        )
        .is_err());
    }
}
