//! The NF source language frontend for Clara.
//!
//! Clara analyzes *unported* network functions. The original Clara uses
//! LLVM to lower C/DPDK programs; this reproduction instead defines a
//! compact C-like NF language ("NFC") with framework-style builtins
//! (Click-, eBPF-, and DPDK-flavoured API calls) and implements the full
//! frontend from scratch: lexer → recursive-descent parser → AST → type
//! checker. `clara-cir` lowers the checked AST to the Clara IR.
//!
//! # The language in one example
//!
//! ```text
//! nf nat {
//!     state flow_table: map<u64, u64>[65536];
//!
//!     fn handle(pkt: packet) -> action {
//!         dpdk.parse_headers(pkt);
//!         let key: u64 = hash(pkt.src_ip, pkt.src_port);
//!         let entry: u64 = flow_table.lookup(key);
//!         if (entry == 0) {
//!             entry = key & 0xffff;
//!             flow_table.insert(key, entry);
//!         }
//!         pkt.set_src_ip(entry);
//!         checksum_update(pkt);
//!         return forward;
//!     }
//! }
//! ```
//!
//! Framework calls (`dpdk.parse_headers`, `click.network_header`,
//! `bpf.map_lookup`, plain `hash`/`checksum_update`) are recognized by the
//! [`builtins`] registry and later substituted with *vcalls* in the IR
//! (§3.3 of the paper).

pub mod ast;
pub mod builtins;
pub mod parser;
pub mod tokens;
pub mod types;

pub use ast::{
    BinOp, Block, Expr, ExprKind, FnDecl, NfProgram, Param, StateDecl, StateKind, Stmt,
    StmtKind, Type, UnOp,
};
pub use builtins::{lookup_builtin, lookup_method, Builtin, BuiltinClass};
pub use parser::parse;
pub use tokens::{Span, Token, TokenKind};
pub use types::check;

use core::fmt;

/// A frontend error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// What went wrong.
    pub message: String,
    /// Where (line/column, 1-based).
    pub span: Span,
}

impl LangError {
    pub(crate) fn new(message: impl Into<String>, span: Span) -> Self {
        LangError { message: message.into(), span }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.span.line, self.span.col, self.message)
    }
}

impl std::error::Error for LangError {}

/// Parse and type-check an NF program in one call.
pub fn frontend(source: &str) -> Result<NfProgram, LangError> {
    let program = parse(source)?;
    check(&program)?;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontend_accepts_the_doc_example() {
        let src = r#"
            nf nat {
                state flow_table: map<u64, u64>[65536];

                fn handle(pkt: packet) -> action {
                    dpdk.parse_headers(pkt);
                    let key: u64 = hash(pkt.src_ip, pkt.src_port);
                    let entry: u64 = flow_table.lookup(key);
                    if (entry == 0) {
                        entry = key & 0xffff;
                        flow_table.insert(key, entry);
                    }
                    pkt.set_src_ip(entry);
                    checksum_update(pkt);
                    return forward;
                }
            }
        "#;
        let program = frontend(src).unwrap();
        assert_eq!(program.name, "nat");
        assert_eq!(program.states.len(), 1);
        assert_eq!(program.functions.len(), 1);
    }

    #[test]
    fn error_carries_position() {
        let err = frontend("nf x {\n  fn handle( {\n}").unwrap_err();
        assert_eq!(err.span.line, 2);
        assert!(err.to_string().contains("2:"));
    }
}
