//! Property tests for the frontend: it must never panic — every input,
//! however mangled, yields `Ok` or a positioned `Err`.

use clara_lang::frontend;
use proptest::prelude::*;

/// A generator of syntactically plausible NF programs (round-trippable
/// through the real grammar).
fn arb_program() -> impl Strategy<Value = String> {
    let expr = prop_oneof![
        Just("1 + 2 * 3".to_string()),
        Just("pkt.src_ip".to_string()),
        Just("hash(pkt.src_ip, pkt.dst_port)".to_string()),
        Just("(pkt.payload_len + 7) % 64".to_string()),
        Just("t.lookup(5)".to_string()),
    ];
    let stmt = expr.prop_flat_map(|e| {
        prop_oneof![
            Just(format!("let x: u64 = {e};")),
            Just(format!("if ({e} == 0) {{ return drop; }}")),
            Just(format!("for i in 0..4 {{ t.insert(i, {e}); }}")),
        ]
    });
    proptest::collection::vec(stmt, 0..6).prop_map(|stmts| {
        format!(
            "nf gen {{ state t: map<u64, u64>[64];\n fn handle(pkt: packet) -> action {{\n {}\n return forward; }} }}",
            stmts.join("\n ")
        )
    })
}

proptest! {
    /// Well-formed generated programs always pass the whole frontend.
    #[test]
    fn generated_programs_compile(src in arb_program()) {
        let program = frontend(&src);
        prop_assert!(program.is_ok(), "{src}\n{:?}", program.err());
        // (Lowering of generated programs is covered by clara-cir's own
        // property tests; lang cannot depend on cir.)
    }

    /// Arbitrary bytes never panic the lexer/parser/checker.
    #[test]
    fn arbitrary_input_never_panics(src in "\\PC*") {
        let _ = frontend(&src);
    }

    /// Mangling a valid program (deleting a random slice) never panics
    /// and, when it errors, the error has a plausible position.
    #[test]
    fn truncated_programs_fail_gracefully(cut in 0usize..400) {
        let src = "nf t { state m: map<u64, u64>[256];\n fn handle(pkt: packet) -> action {\n let k: u64 = hash(pkt.src_ip);\n if (m.lookup(k) == 0) { m.insert(k, 1); }\n return forward; } }";
        let cut = cut.min(src.len());
        // Respect char boundaries.
        let cut = (0..=cut).rev().find(|&i| src.is_char_boundary(i)).unwrap_or(0);
        match frontend(&src[..cut]) {
            Ok(_) => {}
            Err(e) => {
                prop_assert!(e.span.line >= 1);
                prop_assert!(!e.message.is_empty());
            }
        }
    }

    /// Random operator soup parses or errors without panicking, and
    /// integer literal edge cases are handled.
    #[test]
    fn operator_soup(ops in proptest::collection::vec(
        prop_oneof![
            Just("+"), Just("-"), Just("*"), Just("/"), Just("%"),
            Just("<<"), Just(">>"), Just("&"), Just("|"), Just("^"),
            Just("=="), Just("!="), Just("<"), Just("<=")
        ],
        1..8,
    ), vals in proptest::collection::vec(any::<u64>(), 2..9)) {
        let mut expr = vals[0].to_string();
        for (op, v) in ops.iter().zip(vals.iter().skip(1)) {
            expr.push_str(&format!(" {op} {v}"));
        }
        // Comparisons nested in arithmetic may type-error: must not panic.
        let src = format!(
            "nf t {{ fn handle(pkt: packet) -> action {{ let x: u64 = {expr}; return drop; }} }}"
        );
        let _ = frontend(&src);
    }
}
