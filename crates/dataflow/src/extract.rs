//! The extraction algorithm: segment, pattern-match, and group CIR blocks
//! into dataflow nodes.
//!
//! Basic blocks are first *segmented* at anchor-vcall boundaries (a
//! straight-line block that parses, hashes, and looks up a table becomes
//! three segments), then segments are grouped: natural-loop bodies
//! collapse into a single loop node (payload-proportional loops become
//! `PayloadScan`), and consecutive same-kind segments merge.

use crate::graph::{DataflowGraph, DfNode, LoopBound, NodeId, NodeKind, OpCounts};
use clara_cir::cfg;
use clara_cir::{BlockId, CirFunction, CirModule, Instr, Op, Operand, PacketField, Reg, Terminator, VCall};
use std::collections::{HashMap, HashSet};

/// Extract the dataflow graph of a module's `handle` function.
pub fn extract(module: &CirModule) -> DataflowGraph {
    Extractor::new(&module.handle).run()
}

/// One segment: a run of instructions inside a block sharing an anchor.
struct Segment {
    block: BlockId,
    kind: Option<NodeKind>,
    ops: OpCounts,
    vcalls: Vec<(VCall, u64)>,
}

struct Extractor<'a> {
    f: &'a CirFunction,
    /// Registers that (transitively) hold the packet payload length.
    payload_len_regs: HashSet<Reg>,
    /// Registers whose every definition is the same constant.
    const_regs: HashMap<Reg, u64>,
}

impl<'a> Extractor<'a> {
    fn new(f: &'a CirFunction) -> Self {
        // Fixed point over Copy chains: regs defined by
        // MetadataRead(PayloadLen) or copied from such a reg.
        let mut regs: HashSet<Reg> = HashSet::new();
        loop {
            let before = regs.len();
            for b in &f.blocks {
                for i in &b.instrs {
                    match i {
                        Instr::VCall {
                            dst: Some(d),
                            call: VCall::MetadataRead(PacketField::PayloadLen),
                            ..
                        } => {
                            regs.insert(*d);
                        }
                        Instr::Copy { dst, src: Operand::Reg(s) } if regs.contains(s) => {
                            regs.insert(*dst);
                        }
                        _ => {}
                    }
                }
            }
            if regs.len() == before {
                break;
            }
        }
        // Constant registers: every definition writes the same immediate.
        let mut const_candidates: HashMap<Reg, Option<u64>> = HashMap::new();
        let mut note = |dst: Reg, value: Option<u64>| {
            const_candidates
                .entry(dst)
                .and_modify(|slot| {
                    if *slot != value {
                        *slot = None;
                    }
                })
                .or_insert(value);
        };
        for b in &f.blocks {
            for i in &b.instrs {
                match i {
                    Instr::Const { dst, value } => note(*dst, Some(*value)),
                    Instr::Copy { dst, src: Operand::Imm(v) } => note(*dst, Some(*v)),
                    Instr::Copy { dst, .. } => note(*dst, None),
                    Instr::Binary { dst, .. } => note(*dst, None),
                    Instr::VCall { dst: Some(d), .. } => note(*d, None),
                    Instr::VCall { dst: None, .. } => {}
                }
            }
        }
        let const_regs = const_candidates
            .into_iter()
            .filter_map(|(r, v)| v.map(|v| (r, v)))
            .collect();
        Extractor { f, payload_len_regs: regs, const_regs }
    }

    fn run(&self) -> DataflowGraph {
        let f = self.f;
        let loops = cfg::natural_loops(f);
        // Assign each block to its outermost loop, if any.
        let mut block_loop: Vec<Option<usize>> = vec![None; f.blocks.len()];
        let mut order: Vec<usize> = (0..loops.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(loops[i].blocks.len()));
        for li in order {
            for b in &loops[li].blocks {
                let slot = &mut block_loop[b.0 as usize];
                if slot.is_none() {
                    *slot = Some(li);
                }
            }
        }
        // Outer loops assigned first (largest), so nested blocks keep the
        // outermost loop. Blocks in multiple loops resolve to the largest.

        // Segment every block in reverse postorder.
        let rpo = cfg::reverse_postorder(f);
        let mut segments: Vec<Segment> = Vec::new();
        let mut block_first_seg: HashMap<BlockId, usize> = HashMap::new();
        let mut block_last_seg: HashMap<BlockId, usize> = HashMap::new();
        for &b in &rpo {
            let segs = self.segment_block(b);
            let start = segments.len();
            block_first_seg.insert(b, start);
            segments.extend(segs);
            block_last_seg.insert(b, segments.len() - 1);
        }

        // Group segments into nodes.
        // Pass 1: loop membership. All segments of blocks in loop L form
        // one node.
        let mut seg_node: Vec<Option<usize>> = vec![None; segments.len()];
        let mut nodes: Vec<DfNode> = Vec::new();
        let mut loop_node: HashMap<usize, usize> = HashMap::new();
        for (si, seg) in segments.iter().enumerate() {
            if let Some(li) = block_loop[seg.block.0 as usize] {
                let ni = *loop_node.entry(li).or_insert_with(|| {
                    nodes.push(DfNode {
                        id: NodeId(nodes.len()),
                        kind: NodeKind::Compute, // refined below
                        blocks: Vec::new(),
                        ops: OpCounts::default(),
                        vcalls: Vec::new(),
                        loop_bound: Some(self.loop_bound(&loops[li])),
                        weight: 1.0,
                        after_rewrite: false,
                    });
                    nodes.len() - 1
                });
                seg_node[si] = Some(ni);
                merge_segment(&mut nodes[ni], seg);
            }
        }
        // Refine loop-node kinds now that vcalls are merged.
        for node in &mut nodes {
            if node.loop_bound.is_some() {
                node.kind = loop_kind(node);
                if node.kind == NodeKind::PayloadScan {
                    node.loop_bound = Some(LoopBound::PerPayloadByte);
                }
            }
        }

        // Pass 2: non-loop segments, merged when consecutive and same-kind.
        let mut prev: Option<usize> = None;
        for (si, seg) in segments.iter().enumerate() {
            if seg_node[si].is_some() {
                prev = None; // loop node breaks merging chains
                continue;
            }
            let kind = seg.kind.unwrap_or(NodeKind::Compute);
            if let Some(p) = prev {
                if nodes[p].kind == kind {
                    seg_node[si] = Some(p);
                    merge_segment(&mut nodes[p], seg);
                    continue;
                }
            }
            nodes.push(DfNode {
                id: NodeId(nodes.len()),
                kind,
                blocks: Vec::new(),
                ops: OpCounts::default(),
                vcalls: Vec::new(),
                loop_bound: None,
                weight: 1.0,
                after_rewrite: false,
            });
            let ni = nodes.len() - 1;
            seg_node[si] = Some(ni);
            merge_segment(&mut nodes[ni], seg);
            prev = Some(ni);
        }

        // Charge each block's branch to its last segment's node.
        for &b in &rpo {
            if matches!(f.block(b).term, Terminator::Branch { .. }) {
                let si = block_last_seg[&b];
                let ni = seg_node[si].expect("all segments assigned");
                nodes[ni].ops.branch += 1;
            }
        }

        for node in &mut nodes {
            node.blocks.sort();
            node.blocks.dedup();
        }

        // Edges: intra-block segment adjacency + CFG edges between blocks.
        let mut edge_set: HashSet<(NodeId, NodeId)> = HashSet::new();
        for &b in &rpo {
            let (first, last) = (block_first_seg[&b], block_last_seg[&b]);
            for si in first..last {
                let a = NodeId(seg_node[si].expect("assigned"));
                let c = NodeId(seg_node[si + 1].expect("assigned"));
                if a != c {
                    edge_set.insert((a, c));
                }
            }
            for succ in cfg::successors(f, b) {
                let a = NodeId(seg_node[block_last_seg[&b]].expect("assigned"));
                let c = NodeId(seg_node[block_first_seg[&succ]].expect("assigned"));
                if a != c {
                    edge_set.insert((a, c));
                }
            }
        }
        let mut edges: Vec<_> = edge_set.into_iter().collect();
        edges.sort();

        // block -> primary node (node of the block's first segment).
        let block_node: Vec<NodeId> = (0..f.blocks.len())
            .map(|i| {
                let si = block_first_seg[&BlockId(i as u32)];
                NodeId(seg_node[si].expect("assigned"))
            })
            .collect();

        // Mark nodes reachable from a header-rewrite node: ingress-side
        // accelerators cannot serve work on already-modified packets.
        let mut frontier: Vec<NodeId> = nodes
            .iter()
            .filter(|n| n.kind == NodeKind::HeaderRewrite)
            .map(|n| n.id)
            .collect();
        let mut seen: HashSet<NodeId> = frontier.iter().copied().collect();
        while let Some(cur) = frontier.pop() {
            for &(from, to) in &edges {
                if from == cur && seen.insert(to) {
                    nodes[to.0].after_rewrite = true;
                    frontier.push(to);
                }
            }
        }

        DataflowGraph { nodes, edges, block_node }
    }

    /// Split a block into anchor-delimited segments.
    fn segment_block(&self, b: BlockId) -> Vec<Segment> {
        let block = self.f.block(b);
        let mut segs: Vec<Segment> = vec![Segment {
            block: b,
            kind: None,
            ops: OpCounts::default(),
            vcalls: Vec::new(),
        }];
        for instr in &block.instrs {
            let cur = segs.last_mut().expect("non-empty");
            match instr {
                Instr::Const { .. } | Instr::Copy { .. } => cur.ops.alu += 1,
                Instr::Binary { op, .. } => {
                    if op.is_mul() {
                        cur.ops.mul += 1;
                    } else if op.is_div() {
                        cur.ops.div += 1;
                    } else {
                        cur.ops.alu += 1;
                    }
                }
                Instr::VCall { call, .. } => {
                    match anchor_kind(call) {
                        Some(kind) => {
                            // New anchor: cut if the current segment is
                            // already anchored differently.
                            if cur.kind.is_some() && cur.kind != Some(kind) {
                                segs.push(Segment {
                                    block: b,
                                    kind: Some(kind),
                                    ops: OpCounts::default(),
                                    vcalls: Vec::new(),
                                });
                            } else {
                                cur.kind = Some(kind);
                            }
                            let cur = segs.last_mut().expect("non-empty");
                            cur.kind = Some(kind);
                            push_vcall(&mut cur.vcalls, *call);
                            count_vcall_ops(&mut cur.ops, call);
                        }
                        None => {
                            push_vcall(&mut cur.vcalls, *call);
                            count_vcall_ops(&mut cur.ops, call);
                        }
                    }
                }
            }
        }
        segs
    }

    /// Classify a loop's trip count.
    fn loop_bound(&self, l: &cfg::NaturalLoop) -> LoopBound {
        // Payload-proportional if any loop block reads payload bytes.
        for &b in &l.blocks {
            for i in &self.f.block(b).instrs {
                if matches!(i, Instr::VCall { call: VCall::PayloadByte, .. }) {
                    return LoopBound::PerPayloadByte;
                }
            }
        }
        // Inspect the header's exit comparison.
        let header = self.f.block(l.header);
        if let Terminator::Branch { cond: Operand::Reg(c), .. } = header.term {
            for i in &header.instrs {
                if let Instr::Binary { dst, op: Op::Lt, rhs, .. } = i {
                    if *dst == c {
                        match rhs {
                            Operand::Imm(n) => return LoopBound::Constant(*n),
                            Operand::Reg(r) if self.payload_len_regs.contains(r) => {
                                return LoopBound::PerPayloadByte
                            }
                            Operand::Reg(r) => {
                                if let Some(&n) = self.const_regs.get(r) {
                                    return LoopBound::Constant(n);
                                }
                            }
                        }
                    }
                }
            }
        }
        LoopBound::Unknown(8)
    }
}

fn push_vcall(vcalls: &mut Vec<(VCall, u64)>, call: VCall) {
    match vcalls.iter_mut().find(|(c, _)| *c == call) {
        Some((_, n)) => *n += 1,
        None => vcalls.push((call, 1)),
    }
}

fn count_vcall_ops(ops: &mut OpCounts, call: &VCall) {
    match call {
        VCall::Hash => ops.hash += 1,
        VCall::MetadataRead(_) => ops.metadata_reads += 1,
        VCall::MetadataWrite(_) => ops.metadata_writes += 1,
        VCall::PayloadByte => ops.payload_bytes += 1,
        VCall::FloatOp => ops.float += 1,
        _ => {}
    }
}

/// Which vcalls *anchor* a segment (define its semantic identity).
fn anchor_kind(call: &VCall) -> Option<NodeKind> {
    Some(match call {
        VCall::ParseHeader => NodeKind::Parse,
        VCall::ChecksumFull => NodeKind::Checksum,
        VCall::Crypto => NodeKind::Crypto,
        VCall::PayloadScan => NodeKind::PayloadScan,
        VCall::LpmLookup(s) => NodeKind::LpmLookup(*s),
        VCall::TableLookup(s) => NodeKind::TableLookup(*s),
        VCall::TableWrite(s) => NodeKind::TableWrite(*s),
        VCall::CounterAdd(s) | VCall::CounterRead(s) => NodeKind::CounterOp(*s),
        VCall::ArrayRead(s) | VCall::ArrayWrite(s) => NodeKind::ArrayOp(*s),
        VCall::Meter => NodeKind::Meter,
        VCall::ChecksumIncr | VCall::MetadataWrite(_) => NodeKind::HeaderRewrite,
        VCall::Hash
        | VCall::MetadataRead(_)
        | VCall::PayloadByte
        | VCall::FloatOp
        | VCall::Log => return None,
    })
}

fn merge_segment(node: &mut DfNode, seg: &Segment) {
    if !node.blocks.contains(&seg.block) {
        node.blocks.push(seg.block);
    }
    node.ops.add(&seg.ops);
    for (c, n) in &seg.vcalls {
        match node.vcalls.iter_mut().find(|(vc, _)| vc == c) {
            Some((_, total)) => *total += n,
            None => node.vcalls.push((*c, *n)),
        }
    }
}

/// Kind of a loop node, from its merged vcalls.
fn loop_kind(node: &DfNode) -> NodeKind {
    // Payload reads inside a loop are the DPI fingerprint.
    if node.ops.payload_bytes > 0 || node.has_vcall(&VCall::PayloadScan) {
        return NodeKind::PayloadScan;
    }
    // Otherwise take the highest-priority anchor present.
    let mut best: Option<NodeKind> = None;
    for (c, _) in &node.vcalls {
        if let Some(k) = anchor_kind(c) {
            best = Some(match best {
                None => k,
                Some(prev) => {
                    if priority(k) < priority(prev) {
                        k
                    } else {
                        prev
                    }
                }
            });
        }
    }
    best.unwrap_or(NodeKind::Compute)
}

fn priority(k: NodeKind) -> u8 {
    match k {
        NodeKind::PayloadScan => 0,
        NodeKind::Crypto => 1,
        NodeKind::Checksum => 2,
        NodeKind::Parse => 3,
        NodeKind::LpmLookup(_) => 4,
        NodeKind::TableLookup(_) => 5,
        NodeKind::TableWrite(_) => 6,
        NodeKind::CounterOp(_) => 7,
        NodeKind::ArrayOp(_) => 8,
        NodeKind::Meter => 9,
        NodeKind::HeaderRewrite => 10,
        NodeKind::Compute => 11,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_cir::lower;
    use clara_lang::frontend;

    fn graph(src: &str) -> DataflowGraph {
        extract(&lower(&frontend(src).unwrap()).unwrap())
    }

    #[test]
    fn straight_line_block_is_segmented_by_anchors() {
        // parse, lookup, and rewrite all live in ONE basic block; the
        // extractor must still separate them.
        let g = graph(
            "nf t { state tbl: map<u64, u64>[64];
              fn handle(pkt: packet) -> action {
                dpdk.parse_headers(pkt);
                let v: u64 = tbl.lookup(hash(pkt.src_ip));
                pkt.set_src_ip(v);
                return forward; } }",
        );
        let kinds: Vec<_> = g.nodes.iter().map(|n| n.kind).collect();
        assert!(kinds.contains(&NodeKind::Parse), "{kinds:?}");
        assert!(kinds.iter().any(|k| matches!(k, NodeKind::TableLookup(_))));
        assert!(kinds.contains(&NodeKind::HeaderRewrite));
        // Parse comes before lookup, lookup before rewrite.
        let pos = |kind: fn(&NodeKind) -> bool| kinds.iter().position(&kind).unwrap();
        assert!(pos(|k| *k == NodeKind::Parse) < pos(|k| matches!(k, NodeKind::TableLookup(_))));
    }

    #[test]
    fn payload_loop_becomes_scan_node() {
        let g = graph(
            "nf t { fn handle(pkt: packet) -> action {
                let i: u64 = 0;
                let acc: u64 = 0;
                while (i < pkt.payload_len) {
                    acc = acc + pkt.payload_byte(i);
                    i = i + 1;
                }
                return forward; } }",
        );
        let scan = g
            .nodes
            .iter()
            .find(|n| n.kind == NodeKind::PayloadScan)
            .expect("scan node");
        assert_eq!(scan.loop_bound, Some(LoopBound::PerPayloadByte));
        assert!(scan.ops.payload_bytes > 0);
    }

    #[test]
    fn constant_loop_bound_recovered() {
        let g = graph(
            "nf t { state c: counter[16];
              fn handle(pkt: packet) -> action {
                for i in 0..12 { c.add(i, 1); }
                return forward; } }",
        );
        let node = g
            .nodes
            .iter()
            .find(|n| n.loop_bound.is_some())
            .expect("loop node");
        assert_eq!(node.loop_bound, Some(LoopBound::Constant(12)));
        assert!(matches!(node.kind, NodeKind::CounterOp(_)));
    }

    #[test]
    fn hash_does_not_split_segments() {
        // hash feeds the lookup; they belong to the same region of code
        // and the hash must not anchor its own node.
        let g = graph(
            "nf t { state tbl: map<u64, u64>[64];
              fn handle(pkt: packet) -> action {
                let v: u64 = tbl.lookup(hash(pkt.src_ip, pkt.dst_ip));
                if (v == 0) { return drop; }
                return forward; } }",
        );
        let lookup = g
            .nodes
            .iter()
            .find(|n| matches!(n.kind, NodeKind::TableLookup(_)))
            .expect("lookup node");
        assert!(lookup.ops.hash > 0, "hash stays with the lookup segment");
    }

    #[test]
    fn edges_follow_traffic_direction() {
        let g = graph(
            "nf t { state tbl: map<u64, u64>[64];
              fn handle(pkt: packet) -> action {
                dpdk.parse_headers(pkt);
                let v: u64 = tbl.lookup(1);
                return forward; } }",
        );
        let parse = g.nodes_of_kind(NodeKind::Parse)[0];
        let succs = g.successors(parse);
        assert!(!succs.is_empty());
        // Parse must reach the lookup node downstream.
        let lookup = g
            .nodes
            .iter()
            .find(|n| matches!(n.kind, NodeKind::TableLookup(_)))
            .unwrap()
            .id;
        assert!(succs.contains(&lookup) || {
            // possibly with a compute node in between
            succs.iter().any(|&s| g.successors(s).contains(&lookup))
        });
    }

    #[test]
    fn weights_annotated_from_block_counts() {
        let src = "nf t { state tbl: map<u64, u64>[64];
            fn handle(pkt: packet) -> action {
                if (pkt.is_tcp) { tbl.insert(1, 1); }
                return forward; } }";
        let module = lower(&frontend(src).unwrap()).unwrap();
        let mut g = extract(&module);
        // Simulate: 10 packets, write-arm taken 3 times.
        let mut counts = vec![0u64; module.handle.blocks.len()];
        counts[0] = 10;
        let write_node = g
            .nodes
            .iter()
            .find(|n| matches!(n.kind, NodeKind::TableWrite(_)))
            .unwrap();
        for b in &write_node.blocks {
            counts[b.0 as usize] = 3;
        }
        g.annotate_weights(&counts, 10);
        let write_node = g
            .nodes
            .iter()
            .find(|n| matches!(n.kind, NodeKind::TableWrite(_)))
            .unwrap();
        assert!((write_node.weight - 0.3).abs() < 1e-9);
    }

    #[test]
    fn every_block_owned_by_some_node() {
        let g = graph(
            "nf t { fn handle(pkt: packet) -> action {
                if (pkt.is_tcp) { return forward; } else { return drop; } } }",
        );
        assert!(!g.block_node.is_empty());
        for nid in &g.block_node {
            assert!(nid.0 < g.nodes.len());
        }
    }

    #[test]
    fn checksum_node_extracted() {
        let g = graph(
            "nf t { fn handle(pkt: packet) -> action {
                let c: u16 = checksum(pkt);
                if (c == 0) { return drop; }
                return forward; } }",
        );
        assert_eq!(g.nodes_of_kind(NodeKind::Checksum).len(), 1);
    }
}
