//! Dataflow-graph extraction from CIR — the coarsening step of §3.3.
//!
//! LLVM-style basic blocks are often too fine-grained: "sometimes semantic
//! information may be better captured at a coarser granularity — e.g.,
//! header parsing might require multiple branches". This crate implements
//! Clara's *pattern matching*: it walks the CIR control-flow graph and
//! coalesces basic blocks into semantic **dataflow nodes** (header parse,
//! checksum, table lookup, payload scan, header rewrite, generic
//! compute), connected by edges that follow the traffic direction.
//!
//! Each node carries the static operation counts of its blocks
//! ([`OpCounts`]) and its semantic [`NodeKind`] — the hook the ILP mapper
//! uses to decide accelerator eligibility — plus loop information
//! (payload-proportional loops are how DPI-style scans are recognized).
//!
//! # Example
//!
//! ```
//! use clara_dataflow::{extract, NodeKind};
//!
//! let src = r#"
//!     nf demo {
//!         state t: map<u64, u64>[256];
//!         fn handle(pkt: packet) -> action {
//!             dpdk.parse_headers(pkt);
//!             let v: u64 = t.lookup(hash(pkt.src_ip));
//!             let i: u64 = 0;
//!             let acc: u64 = 0;
//!             while (i < pkt.payload_len) {
//!                 acc = acc + pkt.payload_byte(i);
//!                 i = i + 1;
//!             }
//!             if (acc == v) { return drop; }
//!             return forward;
//!         }
//!     }
//! "#;
//! let module = clara_cir::lower(&clara_lang::frontend(src).unwrap()).unwrap();
//! let graph = extract(&module);
//! assert!(graph.nodes.iter().any(|n| n.kind == NodeKind::Parse));
//! assert!(graph.nodes.iter().any(|n| matches!(n.kind, NodeKind::TableLookup(_))));
//! assert!(graph.nodes.iter().any(|n| n.kind == NodeKind::PayloadScan));
//! ```

pub mod extract;
pub mod graph;

pub use extract::extract;
pub use graph::{DataflowGraph, DfNode, LoopBound, NodeId, NodeKind, OpCounts};
