//! Dataflow graph types.

use clara_cir::{BlockId, StateId, VCall};
use core::fmt;

/// Index of a node within a [`DataflowGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Semantic classification of a dataflow node — what NIC resource class
/// the node wants. This drives accelerator eligibility in the mapping ILP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Header parsing (match/action engine eligible).
    Parse,
    /// Full checksum (checksum accelerator eligible).
    Checksum,
    /// Payload encryption/decryption (crypto accelerator eligible).
    Crypto,
    /// Byte-wise payload scanning (DPI inner loop).
    PayloadScan,
    /// Exact-match table lookup (flow-cache engine eligible).
    TableLookup(StateId),
    /// Table insert/update.
    TableWrite(StateId),
    /// Longest-prefix match (LPM engine / flow cache eligible).
    LpmLookup(StateId),
    /// Counter/sketch operations.
    CounterOp(StateId),
    /// Dense array operations.
    ArrayOp(StateId),
    /// Header/metadata rewriting (incl. incremental checksum fix-ups).
    HeaderRewrite,
    /// Metering / policing.
    Meter,
    /// Anything else: generic computation on a core.
    Compute,
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::Parse => write!(f, "parse"),
            NodeKind::Checksum => write!(f, "checksum"),
            NodeKind::Crypto => write!(f, "crypto"),
            NodeKind::PayloadScan => write!(f, "payload-scan"),
            NodeKind::TableLookup(s) => write!(f, "table-lookup[{}]", s.0),
            NodeKind::TableWrite(s) => write!(f, "table-write[{}]", s.0),
            NodeKind::LpmLookup(s) => write!(f, "lpm-lookup[{}]", s.0),
            NodeKind::CounterOp(s) => write!(f, "counter[{}]", s.0),
            NodeKind::ArrayOp(s) => write!(f, "array[{}]", s.0),
            NodeKind::HeaderRewrite => write!(f, "header-rewrite"),
            NodeKind::Meter => write!(f, "meter"),
            NodeKind::Compute => write!(f, "compute"),
        }
    }
}

impl NodeKind {
    /// The state table this node operates on, if any.
    pub fn state(self) -> Option<StateId> {
        match self {
            NodeKind::TableLookup(s)
            | NodeKind::TableWrite(s)
            | NodeKind::LpmLookup(s)
            | NodeKind::CounterOp(s)
            | NodeKind::ArrayOp(s) => Some(s),
            _ => None,
        }
    }
}

/// Static per-execution operation counts of a node's blocks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Simple ALU operations (incl. copies and constants).
    pub alu: u64,
    /// Multiplications.
    pub mul: u64,
    /// Divisions / remainders.
    pub div: u64,
    /// Conditional branches.
    pub branch: u64,
    /// Hash computations.
    pub hash: u64,
    /// Metadata / header field reads.
    pub metadata_reads: u64,
    /// Metadata / header field writes.
    pub metadata_writes: u64,
    /// Single payload byte reads.
    pub payload_bytes: u64,
    /// Floating-point operations (FPU-emulation candidates, §3.4).
    pub float: u64,
}

impl OpCounts {
    /// Component-wise sum.
    pub fn add(&mut self, other: &OpCounts) {
        self.alu += other.alu;
        self.mul += other.mul;
        self.div += other.div;
        self.branch += other.branch;
        self.hash += other.hash;
        self.metadata_reads += other.metadata_reads;
        self.metadata_writes += other.metadata_writes;
        self.payload_bytes += other.payload_bytes;
        self.float += other.float;
    }

    /// Total operation count (used as a tie-breaking weight).
    pub fn total(&self) -> u64 {
        self.alu
            + self.mul
            + self.div
            + self.branch
            + self.hash
            + self.metadata_reads
            + self.metadata_writes
            + self.payload_bytes
            + self.float
    }
}

/// How often a loop node iterates per packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoopBound {
    /// Once per payload byte (DPI-style scans).
    PerPayloadByte,
    /// A constant trip count recovered from the loop bound.
    Constant(u64),
    /// Unknown; the extractor's fallback estimate.
    Unknown(u64),
}

impl LoopBound {
    /// Expected iterations for a given payload size.
    pub fn iterations(&self, payload_len: f64) -> f64 {
        match self {
            LoopBound::PerPayloadByte => payload_len,
            LoopBound::Constant(n) => *n as f64,
            LoopBound::Unknown(n) => *n as f64,
        }
    }
}

/// A dataflow node: a group of basic blocks with one semantic identity.
#[derive(Debug, Clone, PartialEq)]
pub struct DfNode {
    /// Node id.
    pub id: NodeId,
    /// Semantic kind.
    pub kind: NodeKind,
    /// Member blocks (sorted).
    pub blocks: Vec<BlockId>,
    /// Static op counts summed over member blocks (one execution each).
    pub ops: OpCounts,
    /// Vcalls issued by this node with their static occurrence counts.
    pub vcalls: Vec<(VCall, u64)>,
    /// Loop bound if the node's blocks form a loop body.
    pub loop_bound: Option<LoopBound>,
    /// Mean executions of this node per packet, annotated from path
    /// profiles (1.0 until annotated).
    pub weight: f64,
    /// Whether this node executes after a header rewrite on some path —
    /// ingress-side accelerators (the checksum engine) saw the original
    /// bytes and cannot serve it.
    pub after_rewrite: bool,
}

impl DfNode {
    /// Whether this node issues a given vcall.
    pub fn has_vcall(&self, call: &VCall) -> bool {
        self.vcalls.iter().any(|(c, _)| c == call)
    }

    /// Distinct state tables this node accesses (via any vcall — a
    /// payload-scan loop touches its automaton even though the node's
    /// kind carries no state).
    pub fn touched_states(&self) -> Vec<StateId> {
        let mut out: Vec<StateId> = self
            .vcalls
            .iter()
            .filter_map(|(c, _)| c.state())
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

/// The extracted dataflow graph.
#[derive(Debug, Clone, PartialEq)]
pub struct DataflowGraph {
    /// Nodes, topologically ordered by first block id.
    pub nodes: Vec<DfNode>,
    /// Directed edges following the traffic direction (deduplicated).
    pub edges: Vec<(NodeId, NodeId)>,
    /// Mapping from basic block index to owning node.
    pub block_node: Vec<NodeId>,
}

impl DataflowGraph {
    /// The node behind an id.
    pub fn node(&self, id: NodeId) -> &DfNode {
        &self.nodes[id.0]
    }

    /// Successor node ids of a node.
    pub fn successors(&self, id: NodeId) -> Vec<NodeId> {
        self.edges
            .iter()
            .filter(|(from, _)| *from == id)
            .map(|(_, to)| *to)
            .collect()
    }

    /// Nodes of a given kind.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind == kind)
            .map(|n| n.id)
            .collect()
    }

    /// Annotate node weights (mean executions per packet) from aggregated
    /// per-block execution counts over `packets` packets.
    pub fn annotate_weights(&mut self, block_counts: &[u64], packets: u64) {
        if packets == 0 {
            return;
        }
        for node in &mut self.nodes {
            // A node executes when its entry block does; use the mean over
            // member blocks' max to be robust to partial groups.
            let max = node
                .blocks
                .iter()
                .map(|b| block_counts.get(b.0 as usize).copied().unwrap_or(0))
                .max()
                .unwrap_or(0);
            node.weight = max as f64 / packets as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_counts_sum() {
        let mut a = OpCounts { alu: 1, mul: 2, ..OpCounts::default() };
        let b = OpCounts { alu: 10, branch: 3, ..OpCounts::default() };
        a.add(&b);
        assert_eq!(a.alu, 11);
        assert_eq!(a.mul, 2);
        assert_eq!(a.branch, 3);
        assert_eq!(a.total(), 16);
    }

    #[test]
    fn loop_bound_iterations() {
        assert_eq!(LoopBound::PerPayloadByte.iterations(300.0), 300.0);
        assert_eq!(LoopBound::Constant(5).iterations(300.0), 5.0);
        assert_eq!(LoopBound::Unknown(8).iterations(1.0), 8.0);
    }

    #[test]
    fn node_kind_state() {
        assert_eq!(NodeKind::TableLookup(StateId(2)).state(), Some(StateId(2)));
        assert_eq!(NodeKind::Parse.state(), None);
        assert_eq!(NodeKind::Compute.to_string(), "compute");
    }
}
