//! Property tests on the mapping layer: for randomized NFs and
//! workloads, the ILP must never be worse than greedy, and its output
//! must satisfy its own constraints.

use clara_dataflow::extract;
use clara_lnic::profiles;
use clara_map::{greedy_map, solve_mapping, MapInput, StateClass, StateSpec, UnitChoice};
use clara_microbench::{extract_parameters, NicParameters};
use proptest::prelude::*;
use std::sync::OnceLock;

fn params() -> &'static NicParameters {
    static P: OnceLock<NicParameters> = OnceLock::new();
    P.get_or_init(|| extract_parameters(&profiles::netronome_agilio_cx40()))
}

/// Generate a random-but-valid NF over one map and one counter.
fn arb_nf() -> impl Strategy<Value = String> {
    let piece = prop_oneof![
        Just("let ck: u16 = checksum(pkt);".to_string()),
        Just("let v: u64 = tbl.lookup(hash(pkt.src_ip, pkt.dst_ip));".to_string()),
        Just("tbl.insert(hash(pkt.dst_ip), 1);".to_string()),
        Just("ctr.add(pkt.src_ip % 256, 1);".to_string()),
        Just("pkt.set_src_ip(12345);".to_string()),
        Just("pkt.decrement_ttl();".to_string()),
        Just("aes_encrypt(pkt);".to_string()),
        Just("if (pkt.is_udp) { return drop; }".to_string()),
    ];
    proptest::collection::vec(piece, 1..6).prop_map(|pieces| {
        format!(
            "nf gen {{ state tbl: map<u64, u64>[65536]; state ctr: counter[256];
              fn handle(pkt: packet) -> action {{
                dpdk.parse_headers(pkt);
                {}
                return forward; }} }}",
            pieces.join("\n                ")
        )
    })
}

fn mk_input<'a>(
    graph: &'a clara_dataflow::DataflowGraph,
    p: &'a NicParameters,
    payload: f64,
    rate: f64,
    flows: usize,
) -> MapInput<'a> {
    let states = vec![
        StateSpec {
            name: "tbl".into(),
            class: StateClass::ExactMatch,
            entries: 65_536,
            size_bytes: 65_536 * 24,
        },
        StateSpec {
            name: "ctr".into(),
            class: StateClass::Counter,
            entries: 256,
            size_bytes: 2_048,
        },
    ];
    // A plausible flow-scaled hit matrix.
    let hit = (1.0f64).min(50_000.0 / flows as f64);
    MapInput {
        graph,
        states,
        params: p,
        avg_payload: payload,
        rate_pps: rate,
        state_hit: vec![vec![hit; p.mems.len()]; 2],
        fc_hit: hit,
        dpi_hit: 0.2,
        forbid_accels: false,
        pinned: vec![],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// ILP ≤ greedy on the shared objective, for any generated NF and
    /// workload; and the solution respects eligibility and placement
    /// bounds.
    #[test]
    fn ilp_dominates_greedy(
        src in arb_nf(),
        payload in 64.0f64..1400.0,
        rate in 10_000.0f64..200_000.0,
        flows in 100usize..100_000,
    ) {
        let module = clara_cir::lower(&clara_lang::frontend(&src).unwrap()).unwrap();
        let graph = extract(&module);
        let p = params();
        let input = mk_input(&graph, p, payload, rate, flows);

        let ilp = solve_mapping(&input).unwrap();
        let greedy = greedy_map(&input).unwrap();
        prop_assert!(
            ilp.latency_cycles <= greedy.latency_cycles + 1e-6,
            "ILP {} > greedy {} for\n{src}",
            ilp.latency_cycles,
            greedy.latency_cycles
        );

        // Solution sanity: one unit per node, placements are placeable
        // regions with room.
        prop_assert_eq!(ilp.node_unit.len(), graph.nodes.len());
        for &m in &ilp.state_mem {
            prop_assert!(p.mems[m].placeable);
        }
        // Accelerator choices must be eligible for the node kind.
        for (node, unit) in graph.nodes.iter().zip(&ilp.node_unit) {
            if let UnitChoice::Accel(kind) = unit {
                let eligible = clara_map::cost::eligible_units(node, p);
                prop_assert!(
                    eligible.contains(&UnitChoice::Accel(*kind)),
                    "node {} ({}) mapped to ineligible {kind}",
                    node.id.0,
                    node.kind
                );
            }
        }
    }

    /// The software-only strategy never beats the free-choice mapping.
    #[test]
    fn software_only_never_wins(src in arb_nf(), payload in 64.0f64..1400.0) {
        let module = clara_cir::lower(&clara_lang::frontend(&src).unwrap()).unwrap();
        let graph = extract(&module);
        let p = params();
        let auto = solve_mapping(&mk_input(&graph, p, payload, 60_000.0, 1_000)).unwrap();
        let mut sw_input = mk_input(&graph, p, payload, 60_000.0, 1_000);
        sw_input.forbid_accels = true;
        let sw = solve_mapping(&sw_input).unwrap();
        prop_assert!(auto.latency_cycles <= sw.latency_cycles + 1e-6);
        prop_assert!(sw.node_unit.iter().all(|u| !matches!(u, UnitChoice::Accel(_))));
    }
}
