//! The cost model: pricing a dataflow node on a unit option, and state
//! accesses against a memory placement — all in measured parameters.
//!
//! The same functions are used three times: inside the ILP objective,
//! by the greedy baseline, and by `clara-predict` when it re-prices the
//! chosen mapping per packet class (with that class's payload size).

use crate::input::{MapInput, StateClass, UnitChoice};
use clara_dataflow::{DfNode, NodeKind};
use clara_lnic::AccelKind;
use clara_microbench::NicParameters;
use clara_cir::VCall;

/// Pricing context: parameters plus the workload quantities costs depend
/// on. `clara-predict` builds one per packet class.
#[derive(Debug, Clone)]
pub struct CostCtx<'a> {
    /// Measured NIC parameters.
    pub params: &'a NicParameters,
    /// Payload size in bytes for this pricing.
    pub payload: f64,
    /// Expected hit ratio per (state, region) pair.
    pub state_hit: &'a [Vec<f64>],
    /// Flow-cache hit ratio.
    pub fc_hit: f64,
    /// DPI automaton cache-hit ratio.
    pub dpi_hit: f64,
}

impl<'a> CostCtx<'a> {
    /// Build the mapping-time context from a [`MapInput`].
    pub fn from_input(input: &'a MapInput<'a>) -> Self {
        CostCtx {
            params: input.params,
            payload: input.avg_payload,
            state_hit: &input.state_hit,
            fc_hit: input.fc_hit,
            dpi_hit: input.dpi_hit,
        }
    }

    /// Hit ratio for `state` placed in region index `m`.
    pub fn hit(&self, state: usize, m: usize) -> f64 {
        self.state_hit
            .get(state)
            .and_then(|row| row.get(m))
            .copied()
            .unwrap_or(0.0)
    }

    /// Effective latency of one access by `state` in region `m`.
    pub fn eff_latency(&self, state: usize, m: usize) -> f64 {
        let region = &self.params.mems[m];
        self.params.effective_latency(region, self.hit(state, m))
    }

    /// The software DPI automaton access cost per payload byte: one
    /// dependent access into external memory at the workload's automaton
    /// hit ratio.
    pub fn dpi_access_per_byte(&self) -> f64 {
        let ext = self
            .params
            .mems
            .iter()
            .max_by(|a, b| a.latency.partial_cmp(&b.latency).unwrap_or(std::cmp::Ordering::Equal));
        match ext {
            Some(region) => self.params.effective_latency(region, self.dpi_hit),
            None => 400.0,
        }
    }
}

/// Frame bytes for a payload (IPv4 + transport + Ethernet headers).
pub fn frame_bytes(payload: f64) -> f64 {
    payload + 54.0
}

/// Compute-only cost of ONE execution of `node` on `unit`, excluding
/// state-table access latencies (those depend on placement and are priced
/// by [`state_access_cost`]).
pub fn node_compute_cost(node: &DfNode, unit: UnitChoice, ctx: &CostCtx<'_>) -> f64 {
    let p = ctx.params;
    match unit {
        UnitChoice::Accel(kind) => {
            let est = match p.accels.get(&kind) {
                Some(e) => e,
                None => return f64::INFINITY,
            };
            let bytes = match kind {
                AccelKind::Checksum => frame_bytes(ctx.payload),
                AccelKind::Crypto => ctx.payload,
                AccelKind::FlowCache | AccelKind::Lpm => 0.0,
            };
            est.base + est.per_byte * bytes
        }
        UnitChoice::Npu | UnitChoice::Stage(_) => {
            let ops = &node.ops;
            let mut cycles = ops.alu as f64 * p.alu
                + ops.mul as f64 * p.mul
                + ops.div as f64 * p.div
                + ops.branch as f64 * p.branch
                + ops.hash as f64 * p.hash
                + (ops.metadata_reads + ops.metadata_writes) as f64 * p.metadata_mod
                + ops.payload_bytes as f64 * p.stream_per_byte_resident
                + ops.float as f64 * p.float_op;
            for (call, count) in &node.vcalls {
                let n = *count as f64;
                cycles += n * match call {
                    VCall::ParseHeader => p.parse_header,
                    VCall::ChecksumFull => {
                        p.checksum_sw.base + p.checksum_sw.per_byte * frame_bytes(ctx.payload)
                    }
                    VCall::ChecksumIncr => 2.0 * p.metadata_mod,
                    // Software crypto: an order of magnitude over plain
                    // streaming (no AES datapath on the cores).
                    VCall::Crypto => ctx.payload * p.stream_per_byte_resident * 8.0,
                    VCall::PayloadScan => {
                        ctx.payload * (p.stream_per_byte_resident + ctx.dpi_access_per_byte())
                    }
                    VCall::Meter => 20.0 * p.alu,
                    VCall::FloatOp | VCall::Log => 0.0, // counted in ops
                    VCall::Hash => 0.0,                  // counted in ops
                    VCall::MetadataRead(_) | VCall::MetadataWrite(_) | VCall::PayloadByte => 0.0,
                    // State vcalls priced by state_access_cost.
                    VCall::TableLookup(_)
                    | VCall::TableWrite(_)
                    | VCall::LpmLookup(_)
                    | VCall::CounterAdd(_)
                    | VCall::CounterRead(_)
                    | VCall::ArrayRead(_)
                    | VCall::ArrayWrite(_) => 4.0 * p.alu, // index arithmetic
                };
            }
            cycles
        }
    }
}

/// State-access cost of ONE execution of `node`, given that its state is
/// placed in region `m` and the node runs on `unit`.
///
/// For exact-match / counter / array state this is `accesses ×
/// effective latency`; for LPM state on a general core it is the naive
/// software path — a full linear match/action scan of the rule table
/// (`size × bulk cost`); a node mapped onto the flow-cache engine pays
/// the engine on hits and falls back to the backing region on misses.
pub fn state_access_cost(
    node: &DfNode,
    state: usize,
    m: usize,
    unit: UnitChoice,
    input_states: &[crate::input::StateSpec],
    ctx: &CostCtx<'_>,
) -> f64 {
    let p = ctx.params;
    let spec = &input_states[state];
    let accesses: u64 = node
        .vcalls
        .iter()
        .filter(|(c, _)| c.state().map(|s| s.0 as usize) == Some(state))
        .map(|(c, n)| {
            // Counter updates are read-modify-write: two accesses.
            match c {
                VCall::CounterAdd(_) => 2 * n,
                _ => *n,
            }
        })
        .sum();
    if accesses == 0 {
        return 0.0;
    }
    match unit {
        UnitChoice::Accel(AccelKind::FlowCache) | UnitChoice::Accel(AccelKind::Lpm) => {
            // Engine hit path; misses fall back to the backing region.
            let engine = p.flow_cache_hit.min(1e6);
            let backing = ctx.eff_latency(state, m);
            accesses as f64 * (engine + (1.0 - ctx.fc_hit) * backing)
        }
        UnitChoice::Accel(_) => 0.0, // checksum/crypto engines hold no NF state
        UnitChoice::Npu | UnitChoice::Stage(_) => {
            match spec.class {
                StateClass::Lpm => {
                    // Naive software LPM: scan every rule for the longest
                    // match, streaming the table out of its region.
                    let region = &p.mems[m];
                    accesses as f64
                        * (spec.size_bytes as f64 * region.bulk_per_byte
                            + 2.0 * spec.entries as f64 * p.alu)
                }
                _ => accesses as f64 * ctx.eff_latency(state, m),
            }
        }
    }
}

/// Eligible unit options for a node on this NIC.
pub fn eligible_units(node: &DfNode, params: &NicParameters) -> Vec<UnitChoice> {
    let mut units = Vec::new();
    if params.pipelined {
        // Pipelined ASIC: header-engine stages 0..3 plus the aux core
        // treated as the last stage's NPU.
        for s in 0..4 {
            units.push(UnitChoice::Stage(s));
        }
    }
    units.push(UnitChoice::Npu);
    let accel = |k: AccelKind| params.accels.contains_key(&k);
    match node.kind {
        // The checksum engine sits at ingress: it saw the packet's
        // original bytes, so checksums computed after a header rewrite
        // must run in software.
        NodeKind::Checksum if accel(AccelKind::Checksum) && !node.after_rewrite => {
            units.push(UnitChoice::Accel(AccelKind::Checksum));
        }
        NodeKind::Crypto if accel(AccelKind::Crypto) => {
            units.push(UnitChoice::Accel(AccelKind::Crypto));
        }
        NodeKind::TableLookup(_) if accel(AccelKind::FlowCache) => {
            units.push(UnitChoice::Accel(AccelKind::FlowCache));
        }
        NodeKind::LpmLookup(_) => {
            if accel(AccelKind::Lpm) {
                units.push(UnitChoice::Accel(AccelKind::Lpm));
            }
            if accel(AccelKind::FlowCache) {
                units.push(UnitChoice::Accel(AccelKind::FlowCache));
            }
        }
        _ => {}
    }
    units
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::StateSpec;
    use clara_dataflow::{NodeId, OpCounts};
    use clara_lnic::profiles;
    use clara_microbench::extract_parameters;
    use std::sync::OnceLock;

    fn params() -> &'static NicParameters {
        static P: OnceLock<NicParameters> = OnceLock::new();
        P.get_or_init(|| extract_parameters(&profiles::netronome_agilio_cx40()))
    }

    fn ctx<'a>(p: &'a NicParameters, hits: &'a [Vec<f64>]) -> CostCtx<'a> {
        CostCtx { params: p, payload: 300.0, state_hit: hits, fc_hit: 0.8, dpi_hit: 0.2 }
    }

    fn node(kind: NodeKind, vcalls: Vec<(VCall, u64)>, ops: OpCounts) -> DfNode {
        DfNode {
            id: NodeId(0),
            kind,
            blocks: vec![],
            ops,
            vcalls,
            loop_bound: None,
            weight: 1.0,
            after_rewrite: false,
        }
    }

    #[test]
    fn checksum_accelerator_cheaper_than_software() {
        let p = params();
        let hits: Vec<Vec<f64>> = vec![];
        let c = ctx(p, &hits);
        let n = node(NodeKind::Checksum, vec![(VCall::ChecksumFull, 1)], OpCounts::default());
        let sw = node_compute_cost(&n, UnitChoice::Npu, &c);
        let hw = node_compute_cost(&n, UnitChoice::Accel(AccelKind::Checksum), &c);
        assert!(hw < sw / 2.0, "hw {hw} sw {sw}");
    }

    #[test]
    fn missing_accelerator_priced_infinite() {
        let p = extract_parameters(&profiles::soc_armada()); // no checksum accel
        let hits: Vec<Vec<f64>> = vec![];
        let c = CostCtx { params: &p, payload: 300.0, state_hit: &hits, fc_hit: 0.5, dpi_hit: 0.2 };
        let n = node(NodeKind::Checksum, vec![(VCall::ChecksumFull, 1)], OpCounts::default());
        assert!(node_compute_cost(&n, UnitChoice::Accel(AccelKind::Checksum), &c).is_infinite());
    }

    #[test]
    fn lpm_software_scan_scales_with_rules() {
        let p = params();
        let hits = vec![vec![0.5; p.mems.len()]];
        let c = ctx(p, &hits);
        let n = node(
            NodeKind::LpmLookup(clara_cir::StateId(0)),
            vec![(VCall::LpmLookup(clara_cir::StateId(0)), 1)],
            OpCounts::default(),
        );
        let emem = p.mems.iter().position(|m| m.name == "emem").unwrap();
        let small = [StateSpec {
            name: "r".into(),
            class: StateClass::Lpm,
            entries: 5_000,
            size_bytes: 80_000,
        }];
        let large = [StateSpec {
            name: "r".into(),
            class: StateClass::Lpm,
            entries: 30_000,
            size_bytes: 480_000,
        }];
        let cs = state_access_cost(&n, 0, emem, UnitChoice::Npu, &small, &c);
        let cl = state_access_cost(&n, 0, emem, UnitChoice::Npu, &large, &c);
        assert!((cl / cs - 6.0).abs() < 0.5, "ratio {}", cl / cs);
    }

    #[test]
    fn flow_cache_engine_cost_blends_hit_and_miss() {
        let p = params();
        let hits = vec![vec![0.0; p.mems.len()]];
        let mut c = ctx(p, &hits);
        let n = node(
            NodeKind::TableLookup(clara_cir::StateId(0)),
            vec![(VCall::TableLookup(clara_cir::StateId(0)), 1)],
            OpCounts::default(),
        );
        let states = [StateSpec {
            name: "t".into(),
            class: StateClass::ExactMatch,
            entries: 1024,
            size_bytes: 16_384,
        }];
        let emem = p.mems.iter().position(|m| m.name == "emem").unwrap();
        c.fc_hit = 1.0;
        let all_hit = state_access_cost(&n, 0, emem, UnitChoice::Accel(AccelKind::FlowCache), &states, &c);
        c.fc_hit = 0.0;
        let all_miss = state_access_cost(&n, 0, emem, UnitChoice::Accel(AccelKind::FlowCache), &states, &c);
        assert!(all_hit < all_miss);
        assert!((all_hit - p.flow_cache_hit).abs() < 1.0);
    }

    #[test]
    fn counter_update_is_rmw() {
        let p = params();
        let hits = vec![vec![0.0; p.mems.len()]];
        let c = ctx(p, &hits);
        let sid = clara_cir::StateId(0);
        let add = node(NodeKind::CounterOp(sid), vec![(VCall::CounterAdd(sid), 1)], OpCounts::default());
        let read = node(NodeKind::CounterOp(sid), vec![(VCall::CounterRead(sid), 1)], OpCounts::default());
        let states = [StateSpec {
            name: "c".into(),
            class: StateClass::Counter,
            entries: 64,
            size_bytes: 512,
        }];
        let imem = p.mems.iter().position(|m| m.name == "imem").unwrap();
        let ca = state_access_cost(&add, 0, imem, UnitChoice::Npu, &states, &c);
        let cr = state_access_cost(&read, 0, imem, UnitChoice::Npu, &states, &c);
        assert!((ca / cr - 2.0).abs() < 1e-9);
    }

    #[test]
    fn eligibility_rules() {
        let p = params();
        let ck = node(NodeKind::Checksum, vec![], OpCounts::default());
        let units = eligible_units(&ck, p);
        assert!(units.contains(&UnitChoice::Npu));
        assert!(units.contains(&UnitChoice::Accel(AccelKind::Checksum)));
        assert!(!units.contains(&UnitChoice::Accel(AccelKind::Crypto)));

        let lpm = node(NodeKind::LpmLookup(clara_cir::StateId(0)), vec![], OpCounts::default());
        let units = eligible_units(&lpm, p);
        assert!(units.contains(&UnitChoice::Accel(AccelKind::FlowCache)));

        let generic = node(NodeKind::Compute, vec![], OpCounts::default());
        assert_eq!(eligible_units(&generic, p), vec![UnitChoice::Npu]);
    }

    #[test]
    fn payload_scan_scales_with_payload() {
        let p = params();
        let hits: Vec<Vec<f64>> = vec![];
        let mut c = ctx(p, &hits);
        let n = node(NodeKind::PayloadScan, vec![(VCall::PayloadScan, 1)], OpCounts::default());
        c.payload = 200.0;
        let small = node_compute_cost(&n, UnitChoice::Npu, &c);
        c.payload = 1400.0;
        let large = node_compute_cost(&n, UnitChoice::Npu, &c);
        assert!((large / small - 7.0).abs() < 0.2, "ratio {}", large / small);
    }
}
