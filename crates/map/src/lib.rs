//! ILP-based mapping of NF dataflow graphs onto the logical SmartNIC
//! (§3.4 of the Clara paper).
//!
//! Clara "mimics the role of a compiler and attempts to lower the CIR
//! dataflow graph to the parameterized LNIC ... by encoding a set of ILP
//! constraints, and invoking a solver to find an optimal solution that
//! maximizes performance". This crate builds that formulation:
//!
//! * **Compute constraints Π** — a 0/1 variable `x[i][u]` per (dataflow
//!   node, eligible unit option); every node maps to exactly one unit
//!   (`∀i, Σ_u x[i][u] = 1`), and on pipelined NICs a directed dataflow
//!   edge `t → k` forces non-decreasing stage numbers (`Π[k] ≤ Π[t]` in
//!   the paper's orientation).
//! * **Memory constraints Γ** — a 0/1 variable `y[s][m]` per (state
//!   table, region); each state is placed exactly once, and placements
//!   respect region capacities (the paper's example: the flow table goes
//!   to IMEM only if it fits).
//! * **Queue constraints Θ** — offered-load utilization limits on each
//!   accelerator (single-server engines) and on the NPU thread pool.
//!
//! Cross terms (a node's memory-access cost depends on where its state
//! landed) are linearized with standard `w ≥ x + y − 1` product
//! variables. The objective minimizes expected per-packet latency under
//! the workload's node weights, payload sizes, and cache-hit estimates —
//! all expressed in *measured* [`clara_microbench::NicParameters`], never
//! the simulator's true constants.
//!
//! A greedy first-fit mapper ([`greedy_map`]) is included as the ablation
//! baseline (everything on NPUs, states into the fastest region that
//! fits).

pub mod cost;
pub mod greedy;
pub mod input;
pub mod solve;

pub use cost::{node_compute_cost, state_access_cost, CostCtx};
pub use greedy::greedy_map;
pub use input::{MapError, MapInput, Mapping, MappingQuality, StateClass, StateSpec, UnitChoice};
pub use solve::{
    solve_mapping, solve_mapping_seeded, solve_mapping_with_budget, solve_mapping_with_config,
    solve_mapping_with_limits,
};

pub use clara_ilp::{IlpSeed, RunDeadline, SolveBudget, SolveStats, SolverConfig};
