//! Greedy first-fit mapping — the ablation baseline for the ILP.
//!
//! Every node goes to the cheapest *individually* optimal unit without
//! considering shared-resource utilization, and states are placed
//! first-fit-decreasing into the fastest (cold-latency) region with
//! space. This reproduces what a porter in a hurry does — and what the
//! `ablation_greedy_vs_ilp` bench quantifies.

use crate::cost::{eligible_units, node_compute_cost, state_access_cost, CostCtx};
use crate::input::{MapError, MapInput, Mapping, MappingQuality, UnitChoice};

/// Map greedily (see module docs).
pub fn greedy_map(input: &MapInput<'_>) -> Result<Mapping, MapError> {
    let ctx = CostCtx::from_input(input);
    let params = input.params;

    // States first: biggest first, fastest region that still has room.
    let mut order: Vec<usize> = (0..input.states.len()).collect();
    order.sort_by_key(|&s| std::cmp::Reverse(input.states[s].size_bytes));
    let mut remaining: Vec<f64> = params
        .mems
        .iter()
        .map(|m| {
            if m.name.starts_with("ctm") {
                m.capacity as f64 * 0.5
            } else {
                m.capacity as f64
            }
        })
        .collect();
    let mut speed_order: Vec<usize> = (0..params.mems.len())
        .filter(|&m| params.mems[m].placeable)
        .collect();
    speed_order.sort_by(|&a, &b| {
        params.mems[a]
            .latency
            .partial_cmp(&params.mems[b].latency)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut state_mem = vec![usize::MAX; input.states.len()];
    for s in order {
        let size = input.states[s].size_bytes as f64;
        let pin = input.pinned.iter().find(|(ps, _)| *ps == s).map(|(_, m)| *m);
        let slot = speed_order
            .iter()
            .copied()
            .filter(|&m| pin.is_none_or(|pm| pm == m))
            .find(|&m| remaining[m] >= size);
        match slot {
            Some(m) => {
                remaining[m] -= size;
                state_mem[s] = m;
            }
            None => {
                return Err(MapError::Infeasible(format!(
                    "state `{}` fits in no region",
                    input.states[s].name
                )))
            }
        }
    }

    // Nodes: locally cheapest eligible unit.
    let mut node_unit = Vec::with_capacity(input.graph.nodes.len());
    let mut total = params.hub_overhead;
    for node in &input.graph.nodes {
        let mut options = eligible_units(node, params);
        if input.forbid_accels {
            options.retain(|u| !matches!(u, UnitChoice::Accel(_)));
        }
        let best = options
            .into_iter()
            .map(|u| {
                let mut c = node_compute_cost(node, u, &ctx);
                for state in node.touched_states() {
                    let s = state.0 as usize;
                    c += state_access_cost(node, s, state_mem[s], u, &input.states, &ctx);
                }
                (u, c)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .ok_or_else(|| MapError::Infeasible("node with no units".into()))?;
        total += node.weight * best.1;
        node_unit.push(best.0);
    }

    Ok(Mapping {
        node_unit,
        state_mem,
        latency_cycles: total,
        quality: MappingQuality::GreedyFallback,
        stats: clara_ilp::SolveStats::default(),
        ilp_seed: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{StateClass, StateSpec};
    use crate::solve::solve_mapping;
    use clara_dataflow::extract;
    use clara_lnic::profiles;
    use clara_microbench::{extract_parameters, NicParameters};
    use std::sync::OnceLock;

    fn params() -> &'static NicParameters {
        static P: OnceLock<NicParameters> = OnceLock::new();
        P.get_or_init(|| extract_parameters(&profiles::netronome_agilio_cx40()))
    }

    fn fw_input<'a>(p: &'a NicParameters, graph: &'a clara_dataflow::DataflowGraph) -> MapInput<'a> {
        MapInput {
            graph,
            states: vec![
                StateSpec {
                    name: "small".into(),
                    class: StateClass::Counter,
                    entries: 1024,
                    size_bytes: 8192,
                },
                StateSpec {
                    name: "big".into(),
                    class: StateClass::ExactMatch,
                    entries: 200_000,
                    size_bytes: 200_000 * 24,
                },
            ],
            params: p,
            avg_payload: 300.0,
            rate_pps: 60_000.0,
            state_hit: vec![vec![0.3; p.mems.len()]; 2],
            fc_hit: 0.5,
            dpi_hit: 0.2,
            forbid_accels: false,
            pinned: vec![],
        }
    }

    fn graph() -> clara_dataflow::DataflowGraph {
        let src = r#"nf fw {
            state small: counter[1024];
            state big: map<u64, u64>[200000];
            fn handle(pkt: packet) -> action {
                small.add(pkt.src_ip % 1024, 1);
                let v: u64 = big.lookup(hash(pkt.src_ip, pkt.dst_ip));
                if (v == 0) { return drop; }
                return forward;
            } }"#;
        extract(&clara_cir::lower(&clara_lang::frontend(src).unwrap()).unwrap())
    }

    #[test]
    fn greedy_is_feasible_and_first_fit() {
        let p = params();
        let g = graph();
        let inp = fw_input(p, &g);
        let m = greedy_map(&inp).unwrap();
        // Small counter fits the fastest placeable region; big table can't.
        let small_mem = &p.mems[m.state_mem[0]];
        let big_mem = &p.mems[m.state_mem[1]];
        assert!(small_mem.latency <= big_mem.latency);
        assert!(m.latency_cycles > 0.0);
    }

    #[test]
    fn ilp_never_worse_than_greedy() {
        let p = params();
        let g = graph();
        let inp = fw_input(p, &g);
        let greedy = greedy_map(&inp).unwrap();
        let ilp = solve_mapping(&inp).unwrap();
        assert!(
            ilp.latency_cycles <= greedy.latency_cycles + 1e-6,
            "ilp {} vs greedy {}",
            ilp.latency_cycles,
            greedy.latency_cycles
        );
    }

    #[test]
    fn greedy_infeasible_when_nothing_fits() {
        let p = params();
        let g = graph();
        let mut inp = fw_input(p, &g);
        inp.states[1].size_bytes = 100 << 30;
        assert!(matches!(greedy_map(&inp).unwrap_err(), MapError::Infeasible(_)));
    }
}
