//! The ILP formulation (Π, Γ, Θ) and solution extraction.

use crate::cost::{eligible_units, node_compute_cost, state_access_cost, CostCtx};
use crate::greedy::greedy_map;
use crate::input::{MapError, MapInput, Mapping, MappingQuality, UnitChoice};
use clara_ilp::{LinExpr, Model, Rel, RunDeadline, SolveBudget, SolveError, SolverConfig, Var};
use clara_lnic::AccelKind;

/// Fraction of cluster SRAM reserved for packet buffers rather than NF
/// state (packets reside in the CTM of their island).
const CTM_STATE_FRACTION: f64 = 0.5;

/// Utilization ceiling for the Θ (queueing) constraints.
const MAX_UTILIZATION: f64 = 0.95;

/// Solve the mapping ILP for `input` with the default [`SolveBudget`].
pub fn solve_mapping(input: &MapInput<'_>) -> Result<Mapping, MapError> {
    solve_mapping_with_budget(input, &SolveBudget::default())
}

/// Solve the mapping ILP under an explicit node budget, degrading
/// gracefully rather than failing:
///
/// 1. branch-and-bound completes → [`MappingQuality::Optimal`];
/// 2. the budget runs out with an incumbent → that feasible mapping,
///    tagged [`MappingQuality::Incumbent`];
/// 3. the ILP is infeasible or yields no incumbent in budget → the
///    greedy first-fit mapping, tagged [`MappingQuality::GreedyFallback`].
///
/// Only when the greedy mapper *also* fails (e.g. a state that fits in
/// no region) is the original error reported.
pub fn solve_mapping_with_budget(
    input: &MapInput<'_>,
    budget: &SolveBudget,
) -> Result<Mapping, MapError> {
    solve_mapping_with_config(input, budget, &SolverConfig::default())
}

/// [`solve_mapping_with_budget`] under an explicit [`SolverConfig`] —
/// the benchmark harness uses [`SolverConfig::baseline`] to price the
/// seed solver against the optimized one on identical inputs.
pub fn solve_mapping_with_config(
    input: &MapInput<'_>,
    budget: &SolveBudget,
    config: &SolverConfig,
) -> Result<Mapping, MapError> {
    solve_mapping_with_limits(input, budget, config, &RunDeadline::none())
}

/// [`solve_mapping_with_config`] under a cooperative [`RunDeadline`].
///
/// The degradation ladder still applies while time remains: an exhausted
/// node budget with an incumbent yields [`MappingQuality::Incumbent`],
/// and infeasible/budget-limited solves fall back to the greedy mapper.
/// An *expired deadline* with an incumbent also degrades to
/// [`MappingQuality::Incumbent`]; without one it returns
/// [`MapError::TimedOut`] — never the greedy fallback, because "out of
/// time" must stay distinguishable from "proved infeasible" for the
/// supervision layer's retry and reporting logic.
pub fn solve_mapping_with_limits(
    input: &MapInput<'_>,
    budget: &SolveBudget,
    config: &SolverConfig,
    deadline: &RunDeadline,
) -> Result<Mapping, MapError> {
    solve_mapping_seeded(input, budget, config, deadline, None)
}

/// [`solve_mapping_with_limits`] with an optional cross-cell warm-start
/// seed — the [`Mapping::ilp_seed`] exported by a structurally similar
/// solve (e.g. an adjacent sweep cell over the same NF). The seed is
/// verified against this cell's model before use and silently dropped
/// when it does not fit; acceptance is visible in the mapping's
/// `stats.cell_warm_hits` / `cell_warm_misses` counters.
pub fn solve_mapping_seeded(
    input: &MapInput<'_>,
    budget: &SolveBudget,
    config: &SolverConfig,
    deadline: &RunDeadline,
    seed: Option<&clara_ilp::IlpSeed>,
) -> Result<Mapping, MapError> {
    match solve_mapping_ilp(input, budget, config, deadline, seed) {
        Ok(mapping) => Ok(mapping),
        Err(err @ (MapError::Infeasible(_) | MapError::Solver(SolveError::Limit))) => {
            greedy_map(input).map_err(|_| err)
        }
        Err(other) => Err(other),
    }
}

/// Build and solve the ILP itself (no fallback).
fn solve_mapping_ilp(
    input: &MapInput<'_>,
    budget: &SolveBudget,
    config: &SolverConfig,
    deadline: &RunDeadline,
    seed: Option<&clara_ilp::IlpSeed>,
) -> Result<Mapping, MapError> {
    let graph = input.graph;
    let params = input.params;
    let ctx = CostCtx::from_input(input);
    if input.state_hit.len() != input.states.len() {
        return Err(MapError::BadInput(format!(
            "state_hit has {} rows for {} states",
            input.state_hit.len(),
            input.states.len()
        )));
    }

    let mut model = Model::minimize();
    let mut objective = LinExpr::constant(params.hub_overhead);

    // x[i] -> (unit option, var).
    let mut x: Vec<Vec<(UnitChoice, Var)>> = Vec::with_capacity(graph.nodes.len());
    for node in &graph.nodes {
        let mut units = eligible_units(node, params);
        if input.forbid_accels {
            units.retain(|u| !matches!(u, UnitChoice::Accel(_)));
        }
        let mut row = Vec::new();
        for unit in units {
            let compute = node_compute_cost(node, unit, &ctx);
            if compute.is_infinite() {
                continue;
            }
            let v = model.binary(format!("x_n{}_{}", node.id.0, unit));
            objective += (node.weight * compute) * v;
            row.push((unit, v));
        }
        if row.is_empty() {
            return Err(MapError::Infeasible(format!(
                "node {} ({}) has no unit option",
                node.id.0, node.kind
            )));
        }
        // Π: each node on exactly one unit.
        model.constraint(
            LinExpr::sum(row.iter().map(|(_, v)| LinExpr::from(*v))),
            Rel::Eq,
            1.0,
        );
        x.push(row);
    }

    // y[s][m] for placeable regions that fit.
    let mut y: Vec<Vec<(usize, Var)>> = Vec::with_capacity(input.states.len());
    for (s, spec) in input.states.iter().enumerate() {
        let pin = input.pinned.iter().find(|(ps, _)| *ps == s).map(|(_, m)| *m);
        let mut row = Vec::new();
        for (m, region) in params.mems.iter().enumerate() {
            if !region.placeable {
                continue;
            }
            if pin.is_some_and(|pm| pm != m) {
                continue;
            }
            let budget = if region.name.starts_with("ctm") {
                region.capacity as f64 * CTM_STATE_FRACTION
            } else {
                region.capacity as f64
            };
            if spec.size_bytes as f64 > budget {
                continue;
            }
            row.push((m, model.binary(format!("y_s{s}_m{m}"))));
        }
        if row.is_empty() {
            return Err(MapError::Infeasible(format!(
                "state `{}` ({} B) fits in no region",
                spec.name, spec.size_bytes
            )));
        }
        // Γ: exactly one placement.
        model.constraint(
            LinExpr::sum(row.iter().map(|(_, v)| LinExpr::from(*v))),
            Rel::Eq,
            1.0,
        );
        y.push(row);
    }

    // Γ capacity: per region, sum of placed state sizes within budget.
    for (m, region) in params.mems.iter().enumerate() {
        if !region.placeable {
            continue;
        }
        let mut expr = LinExpr::zero();
        let mut any = false;
        for (s, row) in y.iter().enumerate() {
            if let Some((_, v)) = row.iter().find(|(mi, _)| *mi == m) {
                expr += input.states[s].size_bytes as f64 * *v;
                any = true;
            }
        }
        if any {
            let budget = if region.name.starts_with("ctm") {
                region.capacity as f64 * CTM_STATE_FRACTION
            } else {
                region.capacity as f64
            };
            model.constraint(expr, Rel::Le, budget);
        }
    }

    // Cross terms: node i touching state s, on unit u, with s in region m.
    for (i, node) in graph.nodes.iter().enumerate() {
        for state in node.touched_states() {
            let s = state.0 as usize;
            if s >= input.states.len() {
                return Err(MapError::BadInput(format!(
                    "node {} references unknown state {s}",
                    node.id.0
                )));
            }
            for &(unit, xv) in &x[i] {
                for &(m, yv) in &y[s] {
                    let access = state_access_cost(node, s, m, unit, &input.states, &ctx);
                    if access == 0.0 {
                        continue;
                    }
                    let w =
                        model.num_var(format!("w_n{}_{}_s{s}_m{m}", node.id.0, unit), 0.0, 1.0);
                    // w >= x + y - 1  <=>  x + y - w <= 1
                    model.constraint(xv + yv - w, Rel::Le, 1.0);
                    objective += (node.weight * access) * w;
                }
            }
        }
    }

    // Π pipeline-order constraints on pipelined NICs: a dataflow edge
    // a -> b must not move backwards through the stages.
    if params.pipelined {
        let stage_of = |unit: UnitChoice| -> f64 {
            match unit {
                UnitChoice::Stage(s) => s as f64,
                UnitChoice::Npu => 3.0, // aux core sits at the tail
                UnitChoice::Accel(_) => 0.0,
            }
        };
        for &(a, b) in &graph.edges {
            let sa = LinExpr::sum(
                x[a.0].iter().map(|&(u, v)| stage_of(u) * v),
            );
            let sb = LinExpr::sum(
                x[b.0].iter().map(|&(u, v)| stage_of(u) * v),
            );
            model.constraint(sa - sb, Rel::Le, 0.0);
        }
    }

    // Θ queue/utilization constraints: accelerators are single servers;
    // the NPU pool has total_threads servers.
    let freq_hz = params.freq_ghz * 1e9;
    for kind in [AccelKind::Checksum, AccelKind::Crypto, AccelKind::FlowCache, AccelKind::Lpm] {
        if !params.accels.contains_key(&kind) {
            continue;
        }
        let mut expr = LinExpr::zero();
        let mut any = false;
        for (i, node) in graph.nodes.iter().enumerate() {
            for &(unit, v) in &x[i] {
                if unit == UnitChoice::Accel(kind) {
                    let service = node_compute_cost(node, unit, &ctx);
                    expr += (node.weight * service * input.rate_pps) * v;
                    any = true;
                }
            }
        }
        if any {
            model.constraint(expr, Rel::Le, MAX_UTILIZATION * freq_hz);
        }
    }
    {
        let mut expr = LinExpr::zero();
        for (i, node) in graph.nodes.iter().enumerate() {
            for &(unit, v) in &x[i] {
                if matches!(unit, UnitChoice::Npu | UnitChoice::Stage(_)) {
                    let compute = node_compute_cost(node, unit, &ctx);
                    expr += (node.weight * compute * input.rate_pps) * v;
                }
            }
        }
        model.constraint(
            expr,
            Rel::Le,
            MAX_UTILIZATION * freq_hz * params.total_threads as f64,
        );
    }

    model.objective(objective);
    let solution = model
        .solve_seeded(budget, config, deadline, seed)
        .map_err(MapError::from)?;

    let node_unit: Vec<UnitChoice> = x
        .iter()
        .map(|row| {
            row.iter()
                .find(|(_, v)| solution.value(*v) > 0.5)
                .map(|(u, _)| *u)
                .ok_or_else(|| {
                    MapError::Internal("Σx = 1 violated: node without a unit choice".into())
                })
        })
        .collect::<Result<_, _>>()?;
    let state_mem: Vec<usize> = y
        .iter()
        .map(|row| {
            row.iter()
                .find(|(_, v)| solution.value(*v) > 0.5)
                .map(|(m, _)| *m)
                .ok_or_else(|| {
                    MapError::Internal("Σy = 1 violated: state without a placement".into())
                })
        })
        .collect::<Result<_, _>>()?;

    let quality = if solution.is_proven_optimal() {
        MappingQuality::Optimal
    } else {
        MappingQuality::Incumbent
    };
    Ok(Mapping {
        node_unit,
        state_mem,
        latency_cycles: solution.objective(),
        quality,
        stats: solution.stats().clone(),
        ilp_seed: Some(solution.export_seed()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{StateClass, StateSpec};
    use clara_dataflow::extract;
    use clara_lnic::profiles;
    use clara_microbench::{extract_parameters, NicParameters};
    use std::sync::OnceLock;

    fn params() -> &'static NicParameters {
        static P: OnceLock<NicParameters> = OnceLock::new();
        P.get_or_init(|| extract_parameters(&profiles::netronome_agilio_cx40()))
    }

    fn graph_of(src: &str) -> clara_dataflow::DataflowGraph {
        extract(&clara_cir::lower(&clara_lang::frontend(src).unwrap()).unwrap())
    }

    fn uniform_hits(states: usize, params: &NicParameters, h: f64) -> Vec<Vec<f64>> {
        vec![vec![h; params.mems.len()]; states]
    }

    fn input<'a>(
        graph: &'a clara_dataflow::DataflowGraph,
        states: Vec<StateSpec>,
        params: &'a NicParameters,
        hits: Vec<Vec<f64>>,
    ) -> MapInput<'a> {
        MapInput {
            graph,
            states,
            params,
            avg_payload: 300.0,
            rate_pps: 60_000.0,
            state_hit: hits,
            fc_hit: 0.8,
            dpi_hit: 0.2,
            forbid_accels: false,
            pinned: vec![],
        }
    }

    #[test]
    fn nat_maps_checksum_to_accelerator_and_table_to_fast_memory() {
        // Checksum verification happens at ingress, BEFORE the rewrite:
        // accelerator-eligible.
        let src = r#"nf nat {
            state flow_table: map<u64, u64>[65536];
            fn handle(pkt: packet) -> action {
                dpdk.parse_headers(pkt);
                let ck: u16 = checksum(pkt);
                let key: u64 = hash(pkt.src_ip, pkt.src_port);
                let entry: u64 = flow_table.lookup(key);
                if (entry == 0) {
                    entry = key & 0xffff;
                    flow_table.insert(key, entry);
                }
                pkt.set_src_ip(entry);
                return forward;
            } }"#;
        let graph = graph_of(src);
        let p = params();
        let states = vec![StateSpec {
            name: "flow_table".into(),
            class: StateClass::ExactMatch,
            entries: 65536,
            size_bytes: 65536 * 24,
        }];
        let hits = uniform_hits(1, p, 0.5);
        let inp = input(&graph, states, p, hits);
        let mapping = solve_mapping(&inp).unwrap();

        // The paper's §3.4 example: checksum to the accelerator, the flow
        // table in a fast-enough region (1.5 MB fits IMEM's 4 MB).
        let ck_node = graph
            .nodes
            .iter()
            .position(|n| n.kind == clara_dataflow::NodeKind::Checksum)
            .unwrap();
        assert_eq!(
            mapping.node_unit[ck_node],
            UnitChoice::Accel(AccelKind::Checksum),
            "{}",
            mapping.report(&inp)
        );
        let mem = &p.mems[mapping.state_mem[0]].name;
        assert!(mem == "imem" || mem.starts_with("ctm"), "placed in {mem}");
        assert!(mapping.latency_cycles > 0.0);
    }

    #[test]
    fn post_rewrite_checksum_forced_to_software() {
        // Recomputing the checksum AFTER rewriting headers cannot use the
        // ingress engine (it saw the original bytes).
        let src = r#"nf nat {
            fn handle(pkt: packet) -> action {
                dpdk.parse_headers(pkt);
                pkt.set_src_ip(12345);
                let ck: u16 = checksum(pkt);
                return forward;
            } }"#;
        let graph = graph_of(src);
        let p = params();
        let inp = input(&graph, vec![], p, vec![]);
        let mapping = solve_mapping(&inp).unwrap();
        let ck_node = graph
            .nodes
            .iter()
            .position(|n| n.kind == clara_dataflow::NodeKind::Checksum)
            .unwrap();
        assert!(graph.nodes[ck_node].after_rewrite);
        assert_eq!(mapping.node_unit[ck_node], UnitChoice::Npu);
    }

    #[test]
    fn oversized_table_forced_to_emem() {
        let src = r#"nf fw {
            state conns: map<u64, u64>[4000000];
            fn handle(pkt: packet) -> action {
                let v: u64 = conns.lookup(hash(pkt.src_ip));
                if (v == 0) { return drop; }
                return forward;
            } }"#;
        let graph = graph_of(src);
        let p = params();
        let states = vec![StateSpec {
            name: "conns".into(),
            class: StateClass::ExactMatch,
            entries: 4_000_000,
            size_bytes: 4_000_000 * 24, // 96 MB: only EMEM fits
        }];
        let hits = uniform_hits(1, p, 0.1);
        let inp = input(&graph, states, p, hits);
        let mapping = solve_mapping(&inp).unwrap();
        assert_eq!(p.mems[mapping.state_mem[0]].name, "emem");
    }

    #[test]
    fn impossible_state_is_infeasible() {
        let src = r#"nf big {
            state huge: map<u64, u64>[1000];
            fn handle(pkt: packet) -> action {
                let v: u64 = huge.lookup(1);
                return forward;
            } }"#;
        let graph = graph_of(src);
        let p = params();
        let states = vec![StateSpec {
            name: "huge".into(),
            class: StateClass::ExactMatch,
            entries: 1000,
            size_bytes: 100 << 30, // 100 GB fits nowhere
        }];
        let hits = uniform_hits(1, p, 0.0);
        let inp = input(&graph, states, p, hits);
        assert!(matches!(solve_mapping(&inp).unwrap_err(), MapError::Infeasible(_)));
    }

    #[test]
    fn saturated_accelerator_spills_to_npu() {
        // At 60 kpps the crypto engine is fine; at 2 Mpps with 1400-byte
        // payloads its utilization exceeds 1 and Θ pushes crypto to NPUs.
        let src = r#"nf ipsec {
            fn handle(pkt: packet) -> action {
                aes_encrypt(pkt);
                return forward;
            } }"#;
        let graph = graph_of(src);
        let p = params();
        let mk = |rate: f64| MapInput {
            graph: &graph,
            states: vec![],
            params: p,
            avg_payload: 1400.0,
            rate_pps: rate,
            state_hit: vec![],
            fc_hit: 0.0,
            dpi_hit: 0.2,
            forbid_accels: false,
            pinned: vec![],
        };
        let crypto_node = graph
            .nodes
            .iter()
            .position(|n| n.kind == clara_dataflow::NodeKind::Crypto)
            .unwrap();
        let low = solve_mapping(&mk(60_000.0)).unwrap();
        assert_eq!(low.node_unit[crypto_node], UnitChoice::Accel(AccelKind::Crypto));
        let high = solve_mapping(&mk(2_000_000.0)).unwrap();
        assert_eq!(high.node_unit[crypto_node], UnitChoice::Npu);
    }

    #[test]
    fn pipelined_nic_respects_stage_order() {
        let asic = extract_parameters(&profiles::pipeline_asic());
        let src = r#"nf router {
            state routes: map<u64, u64>[1000];
            fn handle(pkt: packet) -> action {
                dpdk.parse_headers(pkt);
                let nh: u64 = routes.lookup(pkt.dst_ip);
                pkt.set_dst_ip(nh);
                return forward;
            } }"#;
        let graph = graph_of(src);
        let states = vec![StateSpec {
            name: "routes".into(),
            class: StateClass::ExactMatch,
            entries: 1000,
            size_bytes: 24_000,
        }];
        let hits = vec![vec![0.5; asic.mems.len()]];
        let inp = MapInput {
            graph: &graph,
            states,
            params: &asic,
            avg_payload: 300.0,
            rate_pps: 60_000.0,
            state_hit: hits,
            fc_hit: 0.0,
            dpi_hit: 0.2,
            forbid_accels: false,
            pinned: vec![],
        };
        let mapping = solve_mapping(&inp).unwrap();
        // Along every dataflow edge, stages never decrease.
        let stage = |u: UnitChoice| match u {
            UnitChoice::Stage(s) => s,
            UnitChoice::Npu => 3,
            UnitChoice::Accel(_) => 0,
        };
        for &(a, b) in &graph.edges {
            assert!(
                stage(mapping.node_unit[a.0]) <= stage(mapping.node_unit[b.0]),
                "edge {a:?} -> {b:?} violates pipeline order in {:?}",
                mapping.node_unit
            );
        }
    }

    #[test]
    fn budget_of_one_falls_back_to_greedy() {
        // The acceptance bar for the anytime ladder: a node budget of 1
        // still yields a *feasible* mapping, honestly tagged as greedy.
        let src = r#"nf nat {
            state flow_table: map<u64, u64>[65536];
            fn handle(pkt: packet) -> action {
                dpdk.parse_headers(pkt);
                let ck: u16 = checksum(pkt);
                let key: u64 = hash(pkt.src_ip, pkt.src_port);
                let entry: u64 = flow_table.lookup(key);
                if (entry == 0) { flow_table.insert(key, entry); }
                return forward;
            } }"#;
        let graph = graph_of(src);
        let p = params();
        let states = vec![StateSpec {
            name: "flow_table".into(),
            class: StateClass::ExactMatch,
            entries: 65536,
            size_bytes: 65536 * 24,
        }];
        let hits = uniform_hits(1, p, 0.5);
        let inp = input(&graph, states, p, hits);

        let starved = solve_mapping_with_budget(&inp, &SolveBudget::nodes(1)).unwrap();
        assert_eq!(starved.quality, MappingQuality::GreedyFallback);
        assert_eq!(starved.node_unit.len(), graph.nodes.len());
        assert!(starved.state_mem.iter().all(|&m| m < p.mems.len()));

        // The default budget proves optimality and the mapping is
        // unchanged from plain solve_mapping.
        let full = solve_mapping(&inp).unwrap();
        assert_eq!(full.quality, MappingQuality::Optimal);
        let explicit = solve_mapping_with_budget(&inp, &SolveBudget::default()).unwrap();
        assert_eq!(explicit, full);
    }

    #[test]
    fn report_states_solution_quality() {
        let src = r#"nf pass {
            fn handle(pkt: packet) -> action { return forward; } }"#;
        let graph = graph_of(src);
        let p = params();
        let inp = input(&graph, vec![], p, vec![]);
        let mapping = solve_mapping(&inp).unwrap();
        assert!(mapping.report(&inp).contains("solution quality: optimal"));
    }

    #[test]
    fn hit_ratio_shifts_placement() {
        // A table that fits in both IMEM and EMEM: with a high EMEM cache
        // hit ratio EMEM (150 cyc effective) beats IMEM (250); with a low
        // one it does not.
        let src = r#"nf fw {
            state conns: map<u64, u64>[100000];
            fn handle(pkt: packet) -> action {
                let v: u64 = conns.lookup(hash(pkt.src_ip));
                if (v == 0) { return drop; }
                return forward;
            } }"#;
        let graph = graph_of(src);
        let p = params();
        let states = |_: ()| {
            vec![StateSpec {
                name: "conns".into(),
                class: StateClass::ExactMatch,
                entries: 100_000,
                size_bytes: 100_000 * 24, // 2.4 MB: too big for CTM budget
            }]
        };
        let emem_idx = p.mems.iter().position(|m| m.name == "emem").unwrap();
        let mk = |hit: f64| {
            let mut hits = uniform_hits(1, p, 0.0);
            hits[0][emem_idx] = hit;
            MapInput {
                graph: &graph,
                states: states(()),
                params: p,
                avg_payload: 300.0,
                rate_pps: 60_000.0,
                state_hit: hits,
                fc_hit: 0.0,
                dpi_hit: 0.2,
                forbid_accels: false,
                pinned: vec![],
            }
        };
        let hot = solve_mapping(&mk(0.95)).unwrap();
        assert_eq!(p.mems[hot.state_mem[0]].name, "emem");
        let cold = solve_mapping(&mk(0.0)).unwrap();
        assert_eq!(p.mems[cold.state_mem[0]].name, "imem");
    }
}
