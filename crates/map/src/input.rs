//! Mapping inputs and outputs.

use clara_lnic::AccelKind;
use clara_microbench::NicParameters;
use core::fmt;

/// Coarse classification of NF state, driving engine eligibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateClass {
    /// Exact-match map (flow-cache-engine eligible).
    ExactMatch,
    /// Longest-prefix-match rules (LPM engine / flow cache eligible; the
    /// software fallback is a linear match/action scan).
    Lpm,
    /// Counters / sketches.
    Counter,
    /// Dense array.
    Array,
}

/// One NF state table as the mapper sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct StateSpec {
    /// Source-level name.
    pub name: String,
    /// Class.
    pub class: StateClass,
    /// Entries / rules / buckets.
    pub entries: u64,
    /// Footprint in bytes.
    pub size_bytes: usize,
}

/// Everything the mapper needs.
#[derive(Debug, Clone)]
pub struct MapInput<'a> {
    /// The extracted dataflow graph (weights annotated for the workload).
    pub graph: &'a clara_dataflow::DataflowGraph,
    /// State tables, indexed by `StateId` order.
    pub states: Vec<StateSpec>,
    /// Measured NIC parameters.
    pub params: &'a NicParameters,
    /// Mean transport payload size of the workload, bytes.
    pub avg_payload: f64,
    /// Offered rate in packets per second (drives the Θ constraints).
    pub rate_pps: f64,
    /// Expected hit ratio of `state s` placed in `params.mems[m]`'s
    /// cache: `state_hit[s][m]` (1.0 for uncached regions is ignored;
    /// the effective-latency blend handles it).
    pub state_hit: Vec<Vec<f64>>,
    /// Expected flow-cache hit ratio for this workload.
    pub fc_hit: f64,
    /// Expected cache-hit ratio of DPI automaton accesses.
    pub dpi_hit: f64,
    /// Porting-strategy constraint: when true, no node may map to a
    /// domain-specific accelerator (the developer's "software-only"
    /// strategy, §2.3's customizable offloading strategies).
    pub forbid_accels: bool,
    /// Developer-pinned placements: `(state index, region index)` pairs
    /// that the solver must honor.
    pub pinned: Vec<(usize, usize)>,
}

/// Where a dataflow node landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitChoice {
    /// A general-purpose core (NPU / ARM).
    Npu,
    /// A pipelined header-engine stage with this stage number.
    Stage(usize),
    /// A domain-specific accelerator.
    Accel(AccelKind),
}

impl fmt::Display for UnitChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitChoice::Npu => write!(f, "npu"),
            UnitChoice::Stage(s) => write!(f, "stage{s}"),
            UnitChoice::Accel(k) => write!(f, "{k}-accel"),
        }
    }
}

/// How trustworthy a [`Mapping`] is — the degradation ladder the solver
/// walks when its budget runs out (Optimal → Incumbent → GreedyFallback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingQuality {
    /// Branch-and-bound ran to completion: proven optimal.
    Optimal,
    /// The node budget ran out; this is the best integer-feasible
    /// incumbent found. Feasible, but optimality is unproven.
    Incumbent,
    /// The ILP was infeasible or produced no incumbent in budget; the
    /// greedy first-fit mapper supplied this answer. Feasible for
    /// placement, but it ignores shared-resource utilization.
    GreedyFallback,
}

impl fmt::Display for MappingQuality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingQuality::Optimal => write!(f, "optimal"),
            MappingQuality::Incumbent => write!(f, "incumbent (budget exhausted)"),
            MappingQuality::GreedyFallback => write!(f, "greedy fallback"),
        }
    }
}

/// The solved mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    /// Unit choice per dataflow node (same order as `graph.nodes`).
    pub node_unit: Vec<UnitChoice>,
    /// Chosen region per state: index into `params.mems`.
    pub state_mem: Vec<usize>,
    /// The objective: expected per-packet latency in cycles (including
    /// the fixed per-packet hub overhead).
    pub latency_cycles: f64,
    /// Confidence in this mapping (see [`MappingQuality`]).
    pub quality: MappingQuality,
    /// Solver telemetry (nodes explored, pivots, warm-start hits, the
    /// incumbent trajectory). All-zero for greedy-fallback mappings.
    /// Deterministic, so it never breaks `Mapping` equality between
    /// identically-configured solves.
    pub stats: clara_ilp::SolveStats,
    /// Warm-start seed for the next structurally similar solve (the
    /// solved point plus the incumbent's LP basis). `None` for greedy
    /// fallbacks, which have no ILP solution to export. Deterministic
    /// like `stats`.
    pub ilp_seed: Option<clara_ilp::IlpSeed>,
}

impl Mapping {
    /// Human-readable report (one line per node and per state).
    pub fn report(&self, input: &MapInput<'_>) -> String {
        let mut out = String::new();
        for (node, unit) in input.graph.nodes.iter().zip(&self.node_unit) {
            out.push_str(&format!("node {:>2} {:<18} -> {}\n", node.id.0, node.kind.to_string(), unit));
        }
        for (s, &m) in input.states.iter().zip(&self.state_mem) {
            out.push_str(&format!(
                "state {:<12} ({} B) -> {}\n",
                s.name, s.size_bytes, input.params.mems[m].name
            ));
        }
        out.push_str(&format!("expected latency: {:.0} cycles/packet\n", self.latency_cycles));
        out.push_str(&format!("solution quality: {}\n", self.quality));
        out
    }
}

/// Errors from mapping.
#[derive(Debug, Clone, PartialEq)]
pub enum MapError {
    /// The ILP was infeasible (e.g. state too large for every region).
    Infeasible(String),
    /// The underlying solver failed.
    Solver(clara_ilp::SolveError),
    /// A [`clara_ilp::RunDeadline`] expired before any feasible mapping
    /// was found. Deliberately *not* folded into the greedy fallback:
    /// supervision layers need "ran out of time" kept distinct from
    /// "proved infeasible" so retries and reports stay truthful.
    TimedOut,
    /// Input shape error.
    BadInput(String),
    /// An internal invariant was violated (a bug, reported instead of
    /// panicking).
    Internal(String),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Infeasible(m) => write!(f, "mapping infeasible: {m}"),
            MapError::Solver(e) => write!(f, "ILP solver error: {e}"),
            MapError::TimedOut => write!(f, "mapping deadline exceeded"),
            MapError::BadInput(m) => write!(f, "bad mapping input: {m}"),
            MapError::Internal(m) => write!(f, "internal mapping error: {m}"),
        }
    }
}

impl std::error::Error for MapError {}

impl From<clara_ilp::SolveError> for MapError {
    fn from(e: clara_ilp::SolveError) -> Self {
        match e {
            clara_ilp::SolveError::Infeasible => MapError::Infeasible("no feasible placement".into()),
            clara_ilp::SolveError::TimedOut => MapError::TimedOut,
            other => MapError::Solver(other),
        }
    }
}
