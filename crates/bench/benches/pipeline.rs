//! Criterion benchmarks of the solve→sweep hot path: the same work the
//! `pipeline_bench` emitter times, under criterion's statistics. Each
//! benchmark has a `baseline` (seed-equivalent dense solver, independent
//! sequential predictions) and an `optimized` (flat tableau + warm
//! starts + memoization, shared-preparation sweep) variant, so the
//! reported ratio is the fast path's speedup.

use clara_bench::{solver_stress_model, sweep_grid, sweep_scenarios};
use clara_core::{run_sweep, SolveBudget, SolverConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn ilp_single_solve(c: &mut Criterion) {
    let model = solver_stress_model(14, 5);
    let budget = SolveBudget::unlimited();
    let mut group = c.benchmark_group("ilp_single_solve");
    group.bench_function("baseline", |b| {
        b.iter(|| {
            black_box(&model)
                .solve_with_config(&budget, &SolverConfig::baseline())
                .unwrap()
        })
    });
    group.bench_function("optimized", |b| {
        b.iter(|| {
            black_box(&model)
                .solve_with_config(&budget, &SolverConfig::default())
                .unwrap()
        })
    });
    group.finish();
}

fn sweep_64(c: &mut Criterion) {
    let clara = clara_bench::clara();
    let module = clara
        .analyze(&clara_core::nfs::vnf::source(
            clara_core::nfs::vnf::AUTOMATON_ENTRIES,
            clara_core::nfs::vnf::STAT_BUCKETS,
        ))
        .expect("VNF source compiles")
        .module;
    let grid = sweep_grid(4);
    let base = sweep_scenarios(&module, clara.params(), &grid, SolverConfig::baseline());
    let fast = sweep_scenarios(&module, clara.params(), &grid, SolverConfig::default());
    let mut group = c.benchmark_group("sweep_64");
    group.bench_function("baseline", |b| {
        b.iter(|| {
            for sc in &base {
                clara_predict::predict_with_options(
                    sc.module,
                    sc.params,
                    &sc.workload,
                    sc.options.clone(),
                )
                .unwrap();
            }
        })
    });
    group.bench_function("optimized", |b| {
        b.iter(|| {
            for r in run_sweep(black_box(&fast), 0) {
                r.unwrap();
            }
        })
    });
    group.finish();
}

criterion_group!(benches, ilp_single_solve, sweep_64);
criterion_main!(benches);
