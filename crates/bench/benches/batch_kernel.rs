//! Criterion benchmarks of the batched stage-cost kernel: the same
//! 64-cell DPI simulation grid the `pipeline_bench` emitter times,
//! measured per configuration so the speedup decomposes — exact
//! per-packet costing, scalar memoization, the batched struct-of-arrays
//! kernel, and the batched kernel fed by the rate-independent trace
//! cache. Every variant is bit-identical to exact (pinned by the
//! identity corpus and property tests); only the time differs.

use clara_core::sim::{
    simulate_configured, simulate_streamed, FaultPlan, SimConfig, SimScratch, Watchdog,
};
use clara_workload::TraceCache;
use criterion::{criterion_group, criterion_main, Criterion};

fn batch_kernel(c: &mut Criterion) {
    let grid = clara_bench::sweep_grid(4);
    let packets = 500;
    let program = clara_core::nfs::dpi::ported(65_536, "imem");
    let nic = clara_bench::netronome();
    let faults = FaultPlan::none();
    let wd = Watchdog::new();

    let mut group = c.benchmark_group("nicsim_grid_64x500");

    group.bench_function("exact", |b| {
        b.iter(|| {
            for wl in &grid {
                let trace = wl.to_trace(packets, 42);
                simulate_configured(nic, &program, &trace, &faults, &wd, &SimConfig::exact())
                    .unwrap();
            }
        })
    });

    let scalar = SimConfig { batch: false, ..SimConfig::default() };
    let mut scratch = SimScratch::new();
    group.bench_function("scalar_memoized", |b| {
        b.iter(|| {
            for wl in &grid {
                simulate_streamed(
                    nic,
                    &program,
                    wl.to_trace_stream(packets, 42),
                    &faults,
                    &wd,
                    &scalar,
                    &mut scratch,
                )
                .unwrap();
            }
        })
    });

    group.bench_function("batched", |b| {
        b.iter(|| {
            for wl in &grid {
                simulate_streamed(
                    nic,
                    &program,
                    wl.to_trace_stream(packets, 42),
                    &faults,
                    &wd,
                    &SimConfig::default(),
                    &mut scratch,
                )
                .unwrap();
            }
        })
    });

    let cache = TraceCache::new();
    group.bench_function("batched+trace_cache", |b| {
        b.iter(|| {
            for wl in &grid {
                simulate_streamed(
                    nic,
                    &program,
                    cache.stream(wl, packets, 42),
                    &faults,
                    &wd,
                    &SimConfig::default(),
                    &mut scratch,
                )
                .unwrap();
            }
        })
    });

    group.finish();
}

criterion_group!(benches, batch_kernel);
criterion_main!(benches);
