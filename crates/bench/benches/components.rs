//! Criterion benchmarks of Clara's components: how fast is the tool
//! itself? (The figure/table harnesses under `src/bin/` regenerate the
//! paper's *results*; these measure the *machinery*.)

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

fn frontend(c: &mut Criterion) {
    let src = clara_core::nfs::vnf::source(1 << 20, 4096);
    let mut group = c.benchmark_group("frontend");
    group.throughput(Throughput::Bytes(src.len() as u64));
    group.bench_function("parse+check+lower (vnf)", |b| {
        b.iter(|| {
            let ast = clara_lang::frontend(black_box(&src)).unwrap();
            clara_cir::lower(&ast).unwrap()
        })
    });
    group.finish();
}

fn dataflow_extraction(c: &mut Criterion) {
    let src = clara_core::nfs::vnf::source(1 << 20, 4096);
    let module = clara_cir::lower(&clara_lang::frontend(&src).unwrap()).unwrap();
    c.bench_function("dataflow extract (vnf)", |b| {
        b.iter(|| clara_dataflow::extract(black_box(&module)))
    });
}

fn ilp_solver(c: &mut Criterion) {
    // A representative 0/1 assignment problem: 12 tasks x 6 units with a
    // capacity side constraint.
    c.bench_function("ilp solve 12x6 assignment", |b| {
        b.iter_batched(
            || {
                let mut m = clara_ilp::Model::minimize();
                let mut vars = Vec::new();
                for t in 0..12 {
                    let row: Vec<_> =
                        (0..6).map(|u| m.binary(format!("x{t}_{u}"))).collect();
                    m.constraint(
                        clara_ilp::LinExpr::sum(row.iter().map(|&v| clara_ilp::LinExpr::from(v))),
                        clara_ilp::Rel::Eq,
                        1.0,
                    );
                    vars.push(row);
                }
                let mut obj = clara_ilp::LinExpr::zero();
                for (t, row) in vars.iter().enumerate() {
                    for (u, &v) in row.iter().enumerate() {
                        obj += (((t * 7 + u * 13) % 10 + 1) as f64) * v;
                    }
                }
                // Capacity: unit 0 takes at most 3 tasks.
                m.constraint(
                    clara_ilp::LinExpr::sum(vars.iter().map(|r| clara_ilp::LinExpr::from(r[0]))),
                    clara_ilp::Rel::Le,
                    3.0,
                );
                m.objective(obj);
                m
            },
            |m| m.solve().unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn simulator(c: &mut Criterion) {
    let nic = clara_core::profiles::netronome_agilio_cx40();
    let program = clara_core::nfs::nat::ported();
    let trace = clara_core::WorkloadProfile::paper_default().to_trace(2_000, 42);
    let mut group = c.benchmark_group("nicsim");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("simulate NAT 2k packets", |b| {
        b.iter(|| clara_core::sim::simulate(black_box(&nic), black_box(&program), black_box(&trace)).unwrap())
    });
    group.finish();
}

fn prediction(c: &mut Criterion) {
    let clara = clara_bench::clara(); // parameters extracted once
    let src = clara_core::nfs::nat::source();
    let module = clara.analyze(&src).unwrap().module;
    let wl = clara_core::WorkloadProfile::paper_default();
    c.bench_function("predict NAT (mapping ILP + pricing)", |b| {
        b.iter(|| clara.predict_module(black_box(&module), black_box(&wl)).unwrap())
    });
}

fn packet_and_pcap(c: &mut Criterion) {
    let trace = clara_core::WorkloadProfile::paper_default().to_trace(1_000, 7);
    let mut group = c.benchmark_group("workload");
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("pcap write+read 1k packets", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            clara_workload::pcap::write_pcap(&mut buf, black_box(&trace)).unwrap();
            clara_workload::pcap::read_pcap(&buf[..]).unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    frontend,
    dataflow_extraction,
    ilp_solver,
    simulator,
    prediction,
    packet_and_pcap
);
criterion_main!(benches);
