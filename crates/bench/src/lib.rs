//! Benchmark harnesses regenerating every table and figure of the Clara
//! paper.
//!
//! Each figure/table has a binary under `src/bin/` that prints the same
//! rows/series the paper reports; this library holds the shared
//! experiment drivers so the binaries and the integration tests agree on
//! exactly what is measured.
//!
//! | artifact | binary |
//! |---|---|
//! | Figure 1 (variability) | `fig1_variability` |
//! | Figure 3a (LPM)        | `fig3a_lpm` |
//! | Figure 3b (VNF)        | `fig3b_vnf` |
//! | Figure 3c (NAT)        | `fig3c_nat` |
//! | §4 accuracy (12/3/7 %) | `table_accuracy` |
//! | §3.2 parameter table   | `table_params` |
//! | §6 throughput ext.     | `ext_throughput` |
//! | §3.5 interference ext. | `ext_interference` |
//! | §6 partial offload ext.| `ext_partial_offload` |
//! | NIC selection ext.     | `ext_nic_selection` |
//! | ablations              | `ablation_*` |

use clara_core::nfs;
use clara_core::sim::{simulate, NicProgram};
use clara_core::{Clara, Lnic, WorkloadProfile};
use clara_predict::{predict_with_options, PredictOptions};
use std::sync::OnceLock;

/// Packets per simulated point (the paper averages over 1M packets on
/// hardware; the simulator converges much sooner).
pub const SIM_PACKETS: usize = 4_000;

/// The Netronome profile (built once).
pub fn netronome() -> &'static Lnic {
    static NIC: OnceLock<Lnic> = OnceLock::new();
    NIC.get_or_init(clara_core::profiles::netronome_agilio_cx40)
}

/// Clara with extracted parameters (built once — the paper's "one-time
/// effort per SmartNIC").
pub fn clara() -> &'static Clara {
    static C: OnceLock<Clara> = OnceLock::new();
    C.get_or_init(|| Clara::new(netronome()))
}

/// One predicted-vs-actual point of a Figure-3 sweep.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// The sweep variable (table entries or payload bytes).
    pub x: f64,
    /// Clara's prediction, cycles.
    pub predicted: f64,
    /// Simulator ("hardware") measurement, cycles.
    pub actual: f64,
}

impl Point {
    /// Relative error of the prediction.
    pub fn rel_error(&self) -> f64 {
        (self.predicted - self.actual).abs() / self.actual
    }
}

/// Mean absolute relative error over a series (the §4 inaccuracy metric).
pub fn mean_error(points: &[Point]) -> f64 {
    points.iter().map(Point::rel_error).sum::<f64>() / points.len().max(1) as f64
}

/// Steady-state mean simulated latency of a ported program.
pub fn actual_cycles(program: &NicProgram, workload: &WorkloadProfile, packets: usize) -> f64 {
    let trace = workload.to_trace(packets, 42);
    let result = simulate(netronome(), program, &trace).expect("port must simulate");
    // Steady state: discard the cold-start half, as the paper's 1M-packet
    // averages do implicitly.
    let tail = &result.latencies[result.latencies.len() / 2..];
    tail.iter().sum::<u64>() as f64 / tail.len().max(1) as f64
}

/// Figure 3a: LPM latency vs number of table entries, predicted vs
/// actual. The ported strategy is the software match/action scan (no
/// flow cache), as in the paper's sweep.
pub fn fig3a_series() -> Vec<Point> {
    let workload = WorkloadProfile::paper_default();
    (1..=6)
        .map(|i| {
            let entries = i * 5_000u64;
            let module = clara()
                .analyze(&nfs::lpm::source(entries))
                .expect("LPM source compiles")
                .module;
            let predicted = predict_with_options(
                &module,
                clara().params(),
                &workload,
                PredictOptions {
                    software_only: true,
                    // The paper's sweep keeps the match/action rules in
                    // DRAM; pin the same placement the port uses.
                    pin_state: vec![("routes".into(), "emem".into())],
                    ..PredictOptions::default()
                },
            )
            .expect("prediction succeeds")
            .avg_latency_cycles;
            let actual = actual_cycles(&nfs::lpm::ported_scan(entries), &workload, 1_500);
            Point { x: entries as f64, predicted, actual }
        })
        .collect()
}

/// Figure 3b: VNF chain latency vs payload size, predicted vs actual.
pub fn fig3b_series() -> Vec<Point> {
    let module = clara()
        .analyze(&nfs::vnf::source(
            nfs::vnf::AUTOMATON_ENTRIES,
            nfs::vnf::STAT_BUCKETS,
        ))
        .expect("VNF source compiles")
        .module;
    let program = nfs::vnf::ported();
    (1..=7)
        .map(|i| {
            let payload = 200.0 * i as f64;
            let workload = WorkloadProfile {
                avg_payload: payload,
                max_payload: payload as usize,
                ..WorkloadProfile::paper_default()
            };
            let predicted = clara()
                .predict_module(&module, &workload)
                .expect("prediction succeeds")
                .avg_latency_cycles;
            let actual = actual_cycles(&program, &workload, 2_000);
            Point { x: payload, predicted, actual }
        })
        .collect()
}

/// Figure 3c: NAT latency vs payload size, predicted vs actual.
pub fn fig3c_series() -> Vec<Point> {
    let module = clara()
        .analyze(&nfs::nat::source())
        .expect("NAT source compiles")
        .module;
    let program = nfs::nat::ported();
    (1..=7)
        .map(|i| {
            let payload = 200.0 * i as f64;
            let workload = WorkloadProfile {
                avg_payload: payload,
                max_payload: payload as usize,
                ..WorkloadProfile::paper_default()
            };
            let predicted = clara()
                .predict_module(&module, &workload)
                .expect("prediction succeeds")
                .avg_latency_cycles;
            let actual = actual_cycles(&program, &workload, SIM_PACKETS);
            Point { x: payload, predicted, actual }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Pipeline hot-path benchmark helpers (solver fast path + sweep).
// Shared by `benches/pipeline.rs` and the `pipeline_bench` emitter so
// both measure exactly the same work.
// ---------------------------------------------------------------------------

/// A generalized-assignment ILP sized to force a substantive
/// branch-and-bound tree: `tasks` tasks onto `units` units, each unit
/// with a knapsack capacity. Pure assignment polytopes are integral (the
/// LP relaxation already lands on integers, so nothing branches); the
/// capacity rows break integrality, and the resulting tree of closely
/// related LP re-solves is exactly what the warm-start/memoization fast
/// path accelerates.
pub fn solver_stress_model(tasks: usize, units: usize) -> clara_ilp::Model {
    // Deterministic LCG so every run benchmarks the same instance.
    let mut seed = 0x2545_F491_4F6C_DD1Du64;
    let mut next = move |m: u64| {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (seed >> 33) % m
    };

    let mut model = clara_ilp::Model::minimize();
    let mut x = Vec::with_capacity(tasks);
    let mut weights = Vec::with_capacity(tasks);
    for t in 0..tasks {
        let row: Vec<_> = (0..units).map(|u| model.binary(format!("x{t}_{u}"))).collect();
        model.constraint(
            clara_ilp::LinExpr::sum(row.iter().map(|&v| clara_ilp::LinExpr::from(v))),
            clara_ilp::Rel::Eq,
            1.0,
        );
        x.push(row);
        weights.push((next(9) + 1) as f64);
    }
    // Tight capacities: ~15% slack over a perfectly balanced packing.
    let capacity = (weights.iter().sum::<f64>() / units as f64 * 1.15).ceil();
    for u in 0..units {
        model.constraint(
            clara_ilp::LinExpr::sum(
                x.iter().zip(&weights).map(|(row, &w)| w * clara_ilp::LinExpr::from(row[u])),
            ),
            clara_ilp::Rel::Le,
            capacity,
        );
    }
    let mut obj = clara_ilp::LinExpr::zero();
    for row in &x {
        for &v in row {
            obj += (next(50) + 1) as f64 * v;
        }
    }
    model.objective(obj);
    model
}

/// The pipeline bench's workload grid: `per_axis`³ cells over rate ×
/// payload × flow count (4 per axis = the headline 64-cell sweep).
pub fn sweep_grid(per_axis: usize) -> Vec<WorkloadProfile> {
    let rates = [20_000.0, 60_000.0, 200_000.0, 600_000.0];
    let payloads = [100.0, 300.0, 700.0, 1400.0];
    let flows = [100usize, 1_000, 10_000, 100_000];
    let n = per_axis.clamp(1, 4);
    let mut grid = Vec::with_capacity(n * n * n);
    for &rate in &rates[..n] {
        for &payload in &payloads[..n] {
            for &f in &flows[..n] {
                grid.push(WorkloadProfile {
                    rate_pps: rate,
                    avg_payload: payload,
                    max_payload: payload as usize,
                    flows: f,
                    ..WorkloadProfile::paper_default()
                });
            }
        }
    }
    grid
}

/// Sweep scenarios over one module for `grid`, all under `solver`.
pub fn sweep_scenarios<'a>(
    module: &'a clara_core::CirModule,
    params: &'a clara_core::NicParameters,
    grid: &[WorkloadProfile],
    solver: clara_core::SolverConfig,
) -> Vec<clara_core::SweepScenario<'a>> {
    grid.iter()
        .map(|wl| clara_core::SweepScenario {
            label: format!("rate={} payload={} flows={}", wl.rate_pps, wl.avg_payload, wl.flows),
            module,
            params,
            workload: wl.clone(),
            options: clara_core::PredictOptions { solver, ..Default::default() },
        })
        .collect()
}

/// Render a predicted/actual series as an aligned text table.
pub fn render_series(title: &str, x_label: &str, unit: &str, points: &[Point]) -> String {
    let mut out = format!(
        "{title}\n{:>12}  {:>16}  {:>16}  {:>7}\n",
        x_label, "Predicted", "Actual", "err"
    );
    for p in points {
        out.push_str(&format!(
            "{:>12}  {:>14.1} {unit}  {:>14.1} {unit}  {:>6.1}%\n",
            p.x,
            p.predicted,
            p.actual,
            p.rel_error() * 100.0
        ));
    }
    out.push_str(&format!("mean abs. error: {:.1}%\n", mean_error(points) * 100.0));
    out
}
