//! Benchmark harnesses regenerating every table and figure of the Clara
//! paper.
//!
//! Each figure/table has a binary under `src/bin/` that prints the same
//! rows/series the paper reports; this library holds the shared
//! experiment drivers so the binaries and the integration tests agree on
//! exactly what is measured.
//!
//! | artifact | binary |
//! |---|---|
//! | Figure 1 (variability) | `fig1_variability` |
//! | Figure 3a (LPM)        | `fig3a_lpm` |
//! | Figure 3b (VNF)        | `fig3b_vnf` |
//! | Figure 3c (NAT)        | `fig3c_nat` |
//! | §4 accuracy (12/3/7 %) | `table_accuracy` |
//! | §3.2 parameter table   | `table_params` |
//! | §6 throughput ext.     | `ext_throughput` |
//! | §3.5 interference ext. | `ext_interference` |
//! | §6 partial offload ext.| `ext_partial_offload` |
//! | NIC selection ext.     | `ext_nic_selection` |
//! | ablations              | `ablation_*` |

use clara_core::nfs;
use clara_core::sim::{simulate, NicProgram};
use clara_core::{Clara, Lnic, WorkloadProfile};
use clara_predict::{predict_with_options, PredictOptions};
use std::sync::OnceLock;

/// Packets per simulated point (the paper averages over 1M packets on
/// hardware; the simulator converges much sooner).
pub const SIM_PACKETS: usize = 4_000;

/// The Netronome profile (built once).
pub fn netronome() -> &'static Lnic {
    static NIC: OnceLock<Lnic> = OnceLock::new();
    NIC.get_or_init(clara_core::profiles::netronome_agilio_cx40)
}

/// Clara with extracted parameters (built once — the paper's "one-time
/// effort per SmartNIC").
pub fn clara() -> &'static Clara {
    static C: OnceLock<Clara> = OnceLock::new();
    C.get_or_init(|| Clara::new(netronome()))
}

/// One predicted-vs-actual point of a Figure-3 sweep.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// The sweep variable (table entries or payload bytes).
    pub x: f64,
    /// Clara's prediction, cycles.
    pub predicted: f64,
    /// Simulator ("hardware") measurement, cycles.
    pub actual: f64,
}

impl Point {
    /// Relative error of the prediction.
    pub fn rel_error(&self) -> f64 {
        (self.predicted - self.actual).abs() / self.actual
    }
}

/// Mean absolute relative error over a series (the §4 inaccuracy metric).
pub fn mean_error(points: &[Point]) -> f64 {
    points.iter().map(Point::rel_error).sum::<f64>() / points.len().max(1) as f64
}

/// Steady-state mean simulated latency of a ported program.
pub fn actual_cycles(program: &NicProgram, workload: &WorkloadProfile, packets: usize) -> f64 {
    let trace = workload.to_trace(packets, 42);
    let result = simulate(netronome(), program, &trace).expect("port must simulate");
    // Steady state: discard the cold-start half, as the paper's 1M-packet
    // averages do implicitly.
    let tail = &result.latencies[result.latencies.len() / 2..];
    tail.iter().sum::<u64>() as f64 / tail.len().max(1) as f64
}

/// Figure 3a: LPM latency vs number of table entries, predicted vs
/// actual. The ported strategy is the software match/action scan (no
/// flow cache), as in the paper's sweep.
pub fn fig3a_series() -> Vec<Point> {
    let workload = WorkloadProfile::paper_default();
    (1..=6)
        .map(|i| {
            let entries = i * 5_000u64;
            let module = clara()
                .analyze(&nfs::lpm::source(entries))
                .expect("LPM source compiles")
                .module;
            let predicted = predict_with_options(
                &module,
                clara().params(),
                &workload,
                PredictOptions {
                    software_only: true,
                    // The paper's sweep keeps the match/action rules in
                    // DRAM; pin the same placement the port uses.
                    pin_state: vec![("routes".into(), "emem".into())],
                    ..PredictOptions::default()
                },
            )
            .expect("prediction succeeds")
            .avg_latency_cycles;
            let actual = actual_cycles(&nfs::lpm::ported_scan(entries), &workload, 1_500);
            Point { x: entries as f64, predicted, actual }
        })
        .collect()
}

/// Figure 3b: VNF chain latency vs payload size, predicted vs actual.
pub fn fig3b_series() -> Vec<Point> {
    let module = clara()
        .analyze(&nfs::vnf::source(
            nfs::vnf::AUTOMATON_ENTRIES,
            nfs::vnf::STAT_BUCKETS,
        ))
        .expect("VNF source compiles")
        .module;
    let program = nfs::vnf::ported();
    (1..=7)
        .map(|i| {
            let payload = 200.0 * i as f64;
            let workload = WorkloadProfile {
                avg_payload: payload,
                max_payload: payload as usize,
                ..WorkloadProfile::paper_default()
            };
            let predicted = clara()
                .predict_module(&module, &workload)
                .expect("prediction succeeds")
                .avg_latency_cycles;
            let actual = actual_cycles(&program, &workload, 2_000);
            Point { x: payload, predicted, actual }
        })
        .collect()
}

/// Figure 3c: NAT latency vs payload size, predicted vs actual.
pub fn fig3c_series() -> Vec<Point> {
    let module = clara()
        .analyze(&nfs::nat::source())
        .expect("NAT source compiles")
        .module;
    let program = nfs::nat::ported();
    (1..=7)
        .map(|i| {
            let payload = 200.0 * i as f64;
            let workload = WorkloadProfile {
                avg_payload: payload,
                max_payload: payload as usize,
                ..WorkloadProfile::paper_default()
            };
            let predicted = clara()
                .predict_module(&module, &workload)
                .expect("prediction succeeds")
                .avg_latency_cycles;
            let actual = actual_cycles(&program, &workload, SIM_PACKETS);
            Point { x: payload, predicted, actual }
        })
        .collect()
}

/// Render a predicted/actual series as an aligned text table.
pub fn render_series(title: &str, x_label: &str, unit: &str, points: &[Point]) -> String {
    let mut out = format!(
        "{title}\n{:>12}  {:>16}  {:>16}  {:>7}\n",
        x_label, "Predicted", "Actual", "err"
    );
    for p in points {
        out.push_str(&format!(
            "{:>12}  {:>14.1} {unit}  {:>14.1} {unit}  {:>6.1}%\n",
            p.x,
            p.predicted,
            p.actual,
            p.rel_error() * 100.0
        ));
    }
    out.push_str(&format!("mean abs. error: {:.1}%\n", mean_error(points) * 100.0));
    out
}
