//! §6 extension: throughput prediction. Clara's idealized sustainable
//! rate (from utilization bounds) vs the simulator's achieved rate as
//! offered load sweeps past saturation.

use clara_core::sim::simulate;
use clara_core::WorkloadProfile;

fn main() {
    let clara = clara_bench::clara();
    let nic = clara_bench::netronome();
    // A compute-heavy NF so saturation is reachable at sane rates: DPI
    // over 1400-byte payloads.
    let src = clara_core::nfs::dpi::source(65_536);
    let program = clara_core::nfs::dpi::ported(65_536, "emem");

    let base = WorkloadProfile {
        avg_payload: 1400.0,
        max_payload: 1400,
        flows: 50_000,
        ..WorkloadProfile::paper_default()
    };
    let predicted = clara.predict(&src, &base).expect("prediction");
    println!(
        "predicted sustainable throughput: {:.2} Mpps (bottleneck: {})",
        predicted.throughput_pps / 1e6,
        predicted.bottleneck
    );
    println!("{:>12} {:>14} {:>10}", "offered", "achieved", "drops");
    for mult in [0.25, 0.5, 0.75, 1.0, 1.5, 2.0] {
        let rate = predicted.throughput_pps * mult;
        let wl = WorkloadProfile { rate_pps: rate, ..base.clone() };
        let trace = wl.to_trace(8_000, 21);
        let r = simulate(nic, &program, &trace).expect("simulates");
        println!(
            "{:>9.2} Mpps {:>11.2} Mpps {:>9}",
            rate / 1e6,
            r.achieved_pps / 1e6,
            r.dropped
        );
    }
    println!("(achieved should track offered below the prediction and flatten above it)");
}
