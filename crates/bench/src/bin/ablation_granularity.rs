//! Ablation: pattern-matched dataflow nodes vs raw basic blocks. Counts
//! how much the coarsening shrinks the ILP and whether accelerator
//! eligibility survives (raw basic blocks of a straight-line NF would
//! fuse parse/checksum/lookup into one unmappable unit).

use clara_dataflow::NodeKind;

fn main() {
    let corpus: Vec<(&str, String)> = vec![
        ("nat", clara_core::nfs::nat::source()),
        ("dpi", clara_core::nfs::dpi::source(65_536)),
        ("fw", clara_core::nfs::firewall::source(65_536)),
        ("lpm", clara_core::nfs::lpm::source(10_000)),
        ("hh", clara_core::nfs::heavy_hitter::source(4_096)),
        ("vnf", clara_core::nfs::vnf::source(1 << 20, 4_096)),
    ];
    println!(
        "{:<6} {:>8} {:>8} {:>10} {:>22}",
        "NF", "blocks", "nodes", "ILP vars*", "accel-eligible nodes"
    );
    for (name, src) in corpus {
        let analysis = clara_bench::clara().analyze(&src).expect("compiles");
        let blocks = analysis.module.handle.blocks.len();
        let nodes = analysis.graph.nodes.len();
        let eligible = analysis
            .graph
            .nodes
            .iter()
            .filter(|n| {
                matches!(
                    n.kind,
                    NodeKind::Checksum
                        | NodeKind::Crypto
                        | NodeKind::TableLookup(_)
                        | NodeKind::LpmLookup(_)
                )
            })
            .count();
        // x-vars scale with units per node (~3); block-granular mapping
        // would use blocks x units instead.
        println!(
            "{:<6} {:>8} {:>8} {:>4} vs {:>3} {:>22}",
            name,
            blocks,
            nodes,
            nodes * 3,
            blocks * 3,
            eligible
        );
    }
    println!("*approximate: nodes x mean unit options; raw-block mapping also loses");
    println!(" anchor separation (a straight-line block holds parse+lookup+rewrite).");
}
