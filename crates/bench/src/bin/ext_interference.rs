//! §3.5 extension: interference between co-resident NFs via LNIC slicing.
//! A memory-hungry firewall predicted solo vs sharing the NIC with a
//! cache-polluting neighbour.

use clara_core::{SliceSpec, WorkloadProfile};

fn main() {
    let clara = clara_bench::clara();
    let src = clara_core::nfs::firewall::source(1 << 20);
    let module = clara.analyze(&src).expect("fw compiles").module;
    let wl = WorkloadProfile { flows: 120_000, ..WorkloadProfile::paper_default() };

    let solo = clara_core::predict_sliced(
        &module,
        clara.params(),
        &wl,
        SliceSpec { thread_frac: 1.0, cache_frac: 1.0 },
    )
    .expect("solo");
    println!("firewall (1M-entry conn table, 120k flows):");
    println!(
        "  solo       : {:>8.0} cycles, {:>8.2} Mpps max (bottleneck: {})",
        solo.avg_latency_cycles,
        solo.throughput_pps / 1e6,
        solo.bottleneck
    );
    for (label, slice) in [
        ("half NIC  ", SliceSpec::half()),
        ("fifth NIC ", SliceSpec { thread_frac: 0.2, cache_frac: 0.2 }),
    ] {
        let shared = clara_core::predict_sliced(&module, clara.params(), &wl, slice)
            .expect("sliced");
        println!(
            "  {label}: {:>8.0} cycles ({:+.1}%), {:>8.2} Mpps max (bottleneck: {})",
            shared.avg_latency_cycles,
            (shared.avg_latency_cycles / solo.avg_latency_cycles - 1.0) * 100.0,
            shared.throughput_pps / 1e6,
            shared.bottleneck
        );
    }
    println!(
        "(cache contention raises latency; the mapper may also switch units — watch the bottleneck)"
    );
}
