//! Solve→sweep hot-path benchmark: seed-equivalent baseline vs the fast
//! path, emitted as `BENCH_pipeline.json`.
//!
//! Two measurements:
//!
//! 1. **`ilp_single_solve`** — one budgeted branch-and-bound solve of a
//!    generalized-assignment instance, dense seed solver
//!    ([`SolverConfig::baseline`]) vs flat tableau + warm starts +
//!    relaxation memoization ([`SolverConfig::default`]).
//! 2. **`sweep_64`** — the 4×4×4 prediction grid over the VNF chain.
//!    Baseline is what the seed code would do: one independent
//!    sequential `predict` per cell with the dense solver. Optimized is
//!    the sweep subsystem: shared rate-independent preparation (class
//!    profiles, Zipf cache model) + the fast solver, fanned across
//!    worker threads. The parallel path is also checked bit-identical
//!    against a sequential run of the same configuration.
//!
//! ```text
//! pipeline_bench [--quick] [-o BENCH_pipeline.json]
//! ```
//!
//! `--quick` shrinks the instance and runs each side once (CI smoke);
//! the default takes the median of repeated runs.

use clara_bench::{solver_stress_model, sweep_grid, sweep_scenarios};
use clara_core::{run_sweep, Prediction, SolveBudget, SolverConfig};
use std::time::Instant;

fn median_ms(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..runs.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "-o")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_pipeline.json");

    // --- 1. single budgeted ILP solve -----------------------------------
    let (tasks, units) = if quick { (10, 4) } else { (14, 5) };
    let runs = if quick { 1 } else { 5 };
    let model = solver_stress_model(tasks, units);
    let budget = SolveBudget::unlimited();
    eprintln!("ilp_single_solve: {tasks} tasks x {units} units, {runs} run(s)/side");

    let baseline = SolverConfig::baseline();
    let fast = SolverConfig::default();
    let sol_base = model.solve_with_config(&budget, &baseline).expect("baseline solves");
    let sol_fast = model.solve_with_config(&budget, &fast).expect("fast path solves");
    assert!(
        (sol_base.objective() - sol_fast.objective()).abs() < 1e-6,
        "objective mismatch: baseline {} vs fast {}",
        sol_base.objective(),
        sol_fast.objective()
    );
    let ilp_base_ms = median_ms(runs, || {
        model.solve_with_config(&budget, &baseline).unwrap();
    });
    let ilp_fast_ms = median_ms(runs, || {
        model.solve_with_config(&budget, &fast).unwrap();
    });
    let ilp_speedup = ilp_base_ms / ilp_fast_ms;
    eprintln!("  baseline {ilp_base_ms:.2} ms  optimized {ilp_fast_ms:.2} ms  ({ilp_speedup:.2}x)");

    // --- 2. prediction sweep --------------------------------------------
    let per_axis = if quick { 2 } else { 4 };
    let sweep_runs = if quick { 1 } else { 3 };
    let grid = sweep_grid(per_axis);
    eprintln!("sweep_{}: extracting NIC parameters...", grid.len());
    let clara = clara_bench::clara();
    let module = clara
        .analyze(&clara_core::nfs::vnf::source(
            clara_core::nfs::vnf::AUTOMATON_ENTRIES,
            clara_core::nfs::vnf::STAT_BUCKETS,
        ))
        .expect("VNF source compiles")
        .module;
    let base_scenarios = sweep_scenarios(&module, clara.params(), &grid, SolverConfig::baseline());
    let fast_scenarios = sweep_scenarios(&module, clara.params(), &grid, SolverConfig::default());

    // Seed behavior: independent sequential predictions, nothing shared.
    let sweep_base_ms = median_ms(sweep_runs, || {
        for sc in &base_scenarios {
            clara_predict::predict_with_options(sc.module, sc.params, &sc.workload, sc.options.clone())
                .expect("baseline sweep cell predicts");
        }
    });
    let sweep_fast_ms = median_ms(sweep_runs, || {
        for r in run_sweep(&fast_scenarios, 0) {
            r.expect("fast sweep cell predicts");
        }
    });
    let sweep_speedup = sweep_base_ms / sweep_fast_ms;
    eprintln!(
        "  baseline(seq) {sweep_base_ms:.0} ms  optimized(par) {sweep_fast_ms:.0} ms  ({sweep_speedup:.2}x)"
    );

    // Determinism: parallel output must be bit-identical to sequential.
    let seq: Vec<Prediction> =
        run_sweep(&fast_scenarios, 1).into_iter().map(|r| r.unwrap()).collect();
    let par: Vec<Prediction> =
        run_sweep(&fast_scenarios, 4).into_iter().map(|r| r.unwrap()).collect();
    let identical = seq.iter().zip(&par).all(|(a, b)| {
        a.avg_latency_cycles.to_bits() == b.avg_latency_cycles.to_bits()
            && a.throughput_pps.to_bits() == b.throughput_pps.to_bits()
            && a.mapping.node_unit == b.mapping.node_unit
            && a.mapping.state_mem == b.mapping.state_mem
    });
    assert!(identical, "parallel sweep diverged from sequential");
    eprintln!("  parallel output bit-identical to sequential: yes");

    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let json = format!(
        r#"{{
  "bench": "pipeline",
  "quick": {quick},
  "threads_available": {threads},
  "ilp_single_solve": {{
    "tasks": {tasks},
    "units": {units},
    "baseline_ms": {ilp_base_ms:.3},
    "optimized_ms": {ilp_fast_ms:.3},
    "speedup": {ilp_speedup:.2}
  }},
  "sweep": {{
    "cells": {cells},
    "baseline_sequential_ms": {sweep_base_ms:.1},
    "optimized_parallel_ms": {sweep_fast_ms:.1},
    "speedup": {sweep_speedup:.2},
    "parallel_identical_to_sequential": {identical}
  }}
}}
"#,
        cells = grid.len(),
    );
    std::fs::write(out_path, &json).expect("write benchmark json");
    eprintln!("wrote {out_path}");
    print!("{json}");
}
