//! Solve→sweep hot-path benchmark: seed-equivalent baseline vs the fast
//! path, emitted as `BENCH_pipeline.json` + `BENCH_nicsim.json`.
//!
//! Three measurements:
//!
//! 1. **`ilp_single_solve`** — one budgeted branch-and-bound solve of a
//!    generalized-assignment instance, dense seed solver
//!    ([`SolverConfig::baseline`]) vs flat tableau + warm starts +
//!    relaxation memoization ([`SolverConfig::default`]).
//! 2. **`sweep_64`** — the 4×4×4 prediction grid over the VNF chain.
//!    Baseline is what the seed code would do: one independent
//!    sequential `predict` per cell with the dense solver. Optimized is
//!    the sweep subsystem: shared rate-independent preparation (class
//!    profiles, Zipf cache model) + the fast solver, fanned across
//!    worker threads. The parallel path is also checked bit-identical
//!    against a sequential run of the same configuration.
//! 3. **`nicsim_sweep_64`** — the same grid simulated as "Actual"
//!    curves: DPI's per-byte automaton scan (uncached IMEM). Baseline is
//!    the seed simulator path — materialize each cell's trace, fresh
//!    allocations, exact per-packet stage costs. Optimized is the
//!    streamed + signature-memoized + scratch-reusing path, checked
//!    bit-identical to exact on every cell (emitted as
//!    `BENCH_nicsim.json`).
//!
//! ```text
//! pipeline_bench [--quick] [-o BENCH_pipeline.json] [--sim-o BENCH_nicsim.json]
//! ```
//!
//! `--quick` shrinks the instance and runs each side once (CI smoke);
//! the default takes the median of repeated runs.

use clara_bench::{solver_stress_model, sweep_grid, sweep_scenarios};
use clara_core::sim::{
    simulate_configured, simulate_streamed, simulate_streamed_instrumented, CostCache, FaultPlan,
    SimConfig, SimInstruments, SimScratch, Watchdog,
};
use clara_core::{run_sweep, Prediction, SolveBudget, SolverConfig};
use clara_workload::TraceCache;
use std::sync::Arc;
use std::time::Instant;

fn median_ms(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..runs.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "-o")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_pipeline.json");
    let sim_out_path = args
        .iter()
        .position(|a| a == "--sim-o")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_nicsim.json");
    // Worker-thread override for the parallel sweep phase. The recorded
    // value lands in the JSON so a reader can tell a 1-CPU container run
    // from a 16-core workstation run without guessing.
    let threads_override = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse::<usize>().expect("--threads takes a number"));
    let threads_available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let recorded_with_threads = threads_override.unwrap_or(threads_available);

    // --- 1. single budgeted ILP solve -----------------------------------
    // Pinned instance: the recorded speedup is only comparable across
    // PRs when (tasks, units, runs) and the solver configs match — the
    // emitted JSON names them in `config`. (PR 4's recording showed 39x
    // from an anomalously slow baseline run on a loaded container; the
    // stable ratio for this instance is ~14-15x, see `note`.)
    let (tasks, units) = if quick { (10, 4) } else { (14, 5) };
    let runs = if quick { 1 } else { 9 };
    let model = solver_stress_model(tasks, units);
    let budget = SolveBudget::unlimited();
    eprintln!("ilp_single_solve: {tasks} tasks x {units} units, {runs} run(s)/side");

    let baseline = SolverConfig::baseline();
    let fast = SolverConfig::default();
    let sol_base = model.solve_with_config(&budget, &baseline).expect("baseline solves");
    let sol_fast = model.solve_with_config(&budget, &fast).expect("fast path solves");
    assert!(
        (sol_base.objective() - sol_fast.objective()).abs() < 1e-6,
        "objective mismatch: baseline {} vs fast {}",
        sol_base.objective(),
        sol_fast.objective()
    );
    let ilp_base_ms = median_ms(runs, || {
        model.solve_with_config(&budget, &baseline).unwrap();
    });
    let ilp_fast_ms = median_ms(runs, || {
        model.solve_with_config(&budget, &fast).unwrap();
    });
    let ilp_speedup = ilp_base_ms / ilp_fast_ms;
    eprintln!("  baseline {ilp_base_ms:.2} ms  optimized {ilp_fast_ms:.2} ms  ({ilp_speedup:.2}x)");

    // --- 2. prediction sweep --------------------------------------------
    let per_axis = if quick { 2 } else { 4 };
    let sweep_runs = if quick { 1 } else { 3 };
    let grid = sweep_grid(per_axis);
    eprintln!("sweep_{}: extracting NIC parameters...", grid.len());
    let clara = clara_bench::clara();
    let module = clara
        .analyze(&clara_core::nfs::vnf::source(
            clara_core::nfs::vnf::AUTOMATON_ENTRIES,
            clara_core::nfs::vnf::STAT_BUCKETS,
        ))
        .expect("VNF source compiles")
        .module;
    let base_scenarios = sweep_scenarios(&module, clara.params(), &grid, SolverConfig::baseline());
    let fast_scenarios = sweep_scenarios(&module, clara.params(), &grid, SolverConfig::default());

    // Seed behavior: independent sequential predictions, nothing shared.
    let sweep_base_ms = median_ms(sweep_runs, || {
        for sc in &base_scenarios {
            clara_predict::predict_with_options(sc.module, sc.params, &sc.workload, sc.options.clone())
                .expect("baseline sweep cell predicts");
        }
    });
    let sweep_fast_ms = median_ms(sweep_runs, || {
        for r in run_sweep(&fast_scenarios, threads_override.unwrap_or(0)) {
            r.expect("fast sweep cell predicts");
        }
    });
    let sweep_speedup = sweep_base_ms / sweep_fast_ms;
    eprintln!(
        "  baseline(seq) {sweep_base_ms:.0} ms  optimized(par) {sweep_fast_ms:.0} ms  ({sweep_speedup:.2}x)"
    );

    // Determinism: parallel output must be bit-identical to sequential.
    let seq: Vec<Prediction> =
        run_sweep(&fast_scenarios, 1).into_iter().map(|r| r.unwrap()).collect();
    let par: Vec<Prediction> =
        run_sweep(&fast_scenarios, 4).into_iter().map(|r| r.unwrap()).collect();
    let identical = seq.iter().zip(&par).all(|(a, b)| {
        a.avg_latency_cycles.to_bits() == b.avg_latency_cycles.to_bits()
            && a.throughput_pps.to_bits() == b.throughput_pps.to_bits()
            && a.mapping.node_unit == b.mapping.node_unit
            && a.mapping.state_mem == b.mapping.state_mem
    });
    assert!(identical, "parallel sweep diverged from sequential");
    eprintln!("  parallel output bit-identical to sequential: yes");

    // Cross-cell warm starting: every non-donor cell of each prep group
    // should have accepted its donor's seed. Zero hits means the seeds
    // silently fell back — fail loudly instead of shipping a benchmark
    // that quietly measures the cold path.
    let cell_warm_hits: u64 = par.iter().map(|p| p.mapping.stats.cell_warm_hits).sum();
    let cell_warm_misses: u64 = par.iter().map(|p| p.mapping.stats.cell_warm_misses).sum();
    assert!(
        cell_warm_hits > 0,
        "no sweep cell accepted a cross-cell warm start (hits=0, misses={cell_warm_misses})"
    );
    eprintln!("  cross-cell warm starts: {cell_warm_hits} hits / {cell_warm_misses} misses");

    // --- 3. simulator validation sweep ----------------------------------
    // The same 4×4×4 grid, but as the "Actual" side of a validation run:
    // every cell simulated through DPI's per-byte automaton scan with the
    // transition table in uncached IMEM — the workload class the
    // signature memoization collapses from O(payload) to O(1) per packet.
    let sim_packets = if quick { 400 } else { 2_000 };
    let sim_runs = if quick { 1 } else { 3 };
    let sim_grid = sweep_grid(per_axis);
    let program = clara_core::nfs::dpi::ported(65_536, "imem");
    let nic = clara_bench::netronome();
    let faults = FaultPlan::none();
    let wd = Watchdog::new();
    eprintln!(
        "nicsim_sweep_{}: {sim_packets} packets/cell, {sim_runs} run(s)/side",
        sim_grid.len()
    );

    // Seed behavior: materialize each cell's trace and pay the exact
    // per-packet stage costs with fresh allocations per run.
    let sim_base_ms = median_ms(sim_runs, || {
        for wl in &sim_grid {
            let trace = wl.to_trace(sim_packets, 42);
            simulate_configured(nic, &program, &trace, &faults, &wd, &SimConfig::exact())
                .expect("baseline cell simulates");
        }
    });
    // Optimized: streamed traces, batched+memoized stage costs, one
    // scratch reused across all 64 cells, rate-independent trace
    // bodies shared across the rate axis (the grid's 64 cells generate
    // only 16 distinct bodies; the other 48 replay with new timestamps),
    // and one shared CostCache across every cell and run — all cells
    // share a fingerprint here, so after the first cell each pure
    // (stage, unit, len) signature is a lookup, not a recompute. One
    // warm pass runs before timing: the recorded number is the
    // steady-state a sweep or serve session reaches after its first run.
    let mut scratch = SimScratch::new();
    let trace_cache = TraceCache::new();
    let cost_cache = Arc::new(CostCache::new());
    scratch.attach_cost_cache(Arc::clone(&cost_cache));
    let run_fast_grid = |scratch: &mut SimScratch| {
        for wl in &sim_grid {
            simulate_streamed(
                nic,
                &program,
                trace_cache.stream(wl, sim_packets, 42),
                &faults,
                &wd,
                &SimConfig::default(),
                scratch,
            )
            .expect("optimized cell simulates");
        }
    };
    run_fast_grid(&mut scratch);
    let sim_fast_ms = median_ms(sim_runs, || run_fast_grid(&mut scratch));
    let sim_speedup = sim_base_ms / sim_fast_ms;
    let sim_memo_hits = cost_cache.hits();
    let sim_memo_misses = cost_cache.misses();
    let sim_memo_hit_rate = cost_cache.hit_rate();
    assert!(
        sim_memo_hits > 0,
        "shared cost cache never hit across {sim_runs} sweep repetitions"
    );
    eprintln!(
        "  baseline(exact) {sim_base_ms:.0} ms  optimized {sim_fast_ms:.0} ms  ({sim_speedup:.2}x)  \
         cost cache {sim_memo_hits}/{} resolutions shared",
        sim_memo_hits + sim_memo_misses
    );

    // Fidelity: the optimized path must be bit-identical to the exact
    // path on every cell — latencies, counters, and float bits.
    let mut sim_identical = true;
    for wl in &sim_grid {
        let trace = wl.to_trace(sim_packets, 42);
        let exact = simulate_configured(nic, &program, &trace, &faults, &wd, &SimConfig::exact())
            .expect("exact cell simulates");
        let fast = simulate_streamed(
            nic,
            &program,
            trace_cache.stream(wl, sim_packets, 42),
            &faults,
            &wd,
            &SimConfig::default(),
            &mut scratch,
        )
        .expect("memoized cell simulates");
        sim_identical &= scratch.latencies() == exact.latencies.as_slice()
            && fast.completed == exact.completed
            && fast.dropped == exact.dropped
            && fast.flow_cache == exact.flow_cache
            && fast.emem_cache == exact.emem_cache
            && fast.energy_mj.to_bits() == exact.energy_mj.to_bits()
            && fast.achieved_pps.to_bits() == exact.achieved_pps.to_bits()
            && fast.p99_latency_cycles.to_bits() == exact.p99_latency_cycles.to_bits();
    }
    assert!(sim_identical, "memoized/streamed simulation diverged from the exact path");
    eprintln!("  memoized+streamed output bit-identical to exact: yes");

    // Telemetry: rerun the grid with full simulator instrumentation and
    // assert observation changed nothing — every counter conserved,
    // every result bit-identical to the uninstrumented run. The timing
    // row documents what instrumentation costs when you opt in (the
    // disabled sink is the `optimized_ms` row above: `simulate_streamed`
    // passes no instruments at all).
    let sim_tele_ms = median_ms(sim_runs, || {
        for wl in &sim_grid {
            let mut instr = SimInstruments::new();
            simulate_streamed_instrumented(
                nic,
                &program,
                trace_cache.stream(wl, sim_packets, 42),
                &faults,
                &wd,
                &SimConfig::default(),
                &mut scratch,
                &mut instr,
            )
            .expect("instrumented cell simulates");
        }
    });
    let mut tele_identical = true;
    let mut tele_conserved = true;
    let mut batch_packets = 0u64;
    for wl in &sim_grid {
        let plain = simulate_streamed(
            nic,
            &program,
            trace_cache.stream(wl, sim_packets, 42),
            &faults,
            &wd,
            &SimConfig::default(),
            &mut scratch,
        )
        .expect("plain cell simulates");
        let plain_latencies = scratch.latencies().to_vec();
        let mut instr = SimInstruments::new();
        let seen = simulate_streamed_instrumented(
            nic,
            &program,
            trace_cache.stream(wl, sim_packets, 42),
            &faults,
            &wd,
            &SimConfig::default(),
            &mut scratch,
            &mut instr,
        )
        .expect("instrumented cell simulates");
        tele_identical &= scratch.latencies() == plain_latencies.as_slice()
            && seen.completed == plain.completed
            && seen.dropped == plain.dropped
            && seen.flow_cache == plain.flow_cache
            && seen.emem_cache == plain.emem_cache
            && seen.energy_mj.to_bits() == plain.energy_mj.to_bits()
            && seen.achieved_pps.to_bits() == plain.achieved_pps.to_bits();
        tele_conserved &= instr.stats.conserved()
            && instr.stats.injected == seen.packets as u64
            && instr.stats.completed == seen.completed as u64;
        batch_packets += instr.stats.batch_packets;
    }
    assert!(tele_identical, "instrumented simulation diverged from the uninstrumented path");
    assert!(tele_conserved, "telemetry counters failed packet conservation");
    // Silent-fallback guard: the batched stage-cost kernel must have
    // actually costed packets, or `optimized_ms` is measuring the
    // scalar path while claiming the batched one.
    let batch_used = batch_packets > 0;
    assert!(batch_used, "batched stage-cost kernel was never used (batch_packets=0)");
    eprintln!(
        "  instrumented {sim_tele_ms:.0} ms, bit-identical to uninstrumented: yes, conserved: yes"
    );

    // --- 3b. partial batching: mixed pure/live program -------------------
    // The full-batch kernel refuses any program with a live stage; the
    // partial kernel splits the run instead: Fixed/PayloadPure stages go
    // through the column kernel, the flow-cache stage replays only its
    // hit/miss branch per packet. This program is the shape every
    // history-coupled NF has — pure parse + pure payload scan + one
    // flow-cache-fronted table — and the whole-run fallback would
    // re-pay the O(payload) scan per packet.
    use clara_core::sim::{MicroOp, NicProgram, Stage, StageUnit, TableCfg};
    let partial_program = NicProgram {
        name: "dpi-fc-mixed".into(),
        tables: vec![
            TableCfg {
                name: "automaton".into(),
                mem: "imem".into(),
                entry_bytes: 8,
                entries: 65_536,
                use_flow_cache: false,
            },
            TableCfg {
                name: "flow".into(),
                mem: "emem".into(),
                entry_bytes: 24,
                entries: 65_536,
                use_flow_cache: true,
            },
        ],
        stages: vec![
            Stage {
                name: "parse".into(),
                unit: StageUnit::Npu,
                ops: vec![MicroOp::ParseHeader, MicroOp::Hash { count: 1 }],
            },
            Stage {
                name: "scan".into(),
                unit: StageUnit::Npu,
                ops: vec![MicroOp::StreamPayload { table: Some(0), loop_overhead: 10 }],
            },
            Stage {
                name: "bind".into(),
                unit: StageUnit::Npu,
                ops: vec![MicroOp::TableLookup { table: 1 }, MicroOp::MetadataMod { count: 3 }],
            },
        ],
    };
    eprintln!("nicsim_partial_{}: mixed pure/live program", sim_grid.len());
    let partial_base_ms = median_ms(sim_runs, || {
        for wl in &sim_grid {
            let trace = wl.to_trace(sim_packets, 42);
            simulate_configured(nic, &partial_program, &trace, &faults, &wd, &SimConfig::exact())
                .expect("partial baseline cell simulates");
        }
    });
    let run_partial_grid = |scratch: &mut SimScratch| {
        for wl in &sim_grid {
            simulate_streamed(
                nic,
                &partial_program,
                trace_cache.stream(wl, sim_packets, 42),
                &faults,
                &wd,
                &SimConfig::default(),
                scratch,
            )
            .expect("partial optimized cell simulates");
        }
    };
    run_partial_grid(&mut scratch);
    let partial_fast_ms = median_ms(sim_runs, || run_partial_grid(&mut scratch));
    let partial_speedup = partial_base_ms / partial_fast_ms;

    // Fidelity + engagement: every cell bit-identical to exact, and the
    // partial kernel (not the scalar fallback) must have costed the
    // packets — `batch_partial_packets` is disjoint from `batch_packets`
    // by construction, so nonzero means the split actually ran.
    let mut partial_identical = true;
    let mut batch_partial_runs = 0u64;
    let mut batch_partial_packets = 0u64;
    for wl in &sim_grid {
        let trace = wl.to_trace(sim_packets, 42);
        let exact =
            simulate_configured(nic, &partial_program, &trace, &faults, &wd, &SimConfig::exact())
                .expect("partial exact cell simulates");
        let mut instr = SimInstruments::new();
        let fast = simulate_streamed_instrumented(
            nic,
            &partial_program,
            trace_cache.stream(wl, sim_packets, 42),
            &faults,
            &wd,
            &SimConfig::default(),
            &mut scratch,
            &mut instr,
        )
        .expect("partial optimized cell simulates");
        partial_identical &= scratch.latencies() == exact.latencies.as_slice()
            && fast.completed == exact.completed
            && fast.dropped == exact.dropped
            && fast.flow_cache == exact.flow_cache
            && fast.emem_cache == exact.emem_cache
            && fast.energy_mj.to_bits() == exact.energy_mj.to_bits()
            && fast.achieved_pps.to_bits() == exact.achieved_pps.to_bits()
            && fast.p99_latency_cycles.to_bits() == exact.p99_latency_cycles.to_bits();
        if instr.stats.batch_partial_packets > 0 {
            batch_partial_runs += 1;
            batch_partial_packets += instr.stats.batch_partial_packets;
        }
    }
    assert!(partial_identical, "partial-batched simulation diverged from the exact path");
    assert!(
        batch_partial_runs > 0,
        "partial kernel never engaged on a mixed program (batch_partial_runs=0)"
    );
    eprintln!(
        "  baseline(exact) {partial_base_ms:.0} ms  optimized {partial_fast_ms:.0} ms  \
         ({partial_speedup:.2}x)  partial runs {batch_partial_runs}, \
         packets {batch_partial_packets}, bit-identical: yes"
    );

    // Perf floor: this PR's acceptance bar. A regression that quietly
    // drops the sweep back toward the scalar path should fail the bench,
    // not ship a smaller number. Quick mode keeps a lower floor — tiny
    // cells are dominated by per-run fixed costs.
    let speedup_floor = if quick { 20.0 } else { 80.0 };
    let speedup_floor_met = sim_speedup >= speedup_floor;
    assert!(
        speedup_floor_met,
        "nicsim sweep speedup {sim_speedup:.2}x under the {speedup_floor:.0}x floor"
    );
    let sim_json = format!(
        r#"{{
  "bench": "nicsim",
  "quick": {quick},
  "threads_available": {threads_available},
  "recorded_with_threads": {recorded_with_threads},
  "program": "dpi (65536-state automaton, imem)",
  "sweep": {{
    "cells": {sim_cells},
    "packets_per_cell": {sim_packets},
    "baseline_exact_ms": {sim_base_ms:.1},
    "optimized_ms": {sim_fast_ms:.1},
    "speedup": {sim_speedup:.2},
    "speedup_floor": {speedup_floor:.0},
    "speedup_floor_met": {speedup_floor_met},
    "identical_to_exact": {sim_identical},
    "batch_used": {batch_used},
    "batch_packets": {batch_packets},
    "sim_memo_hits": {sim_memo_hits},
    "sim_memo_misses": {sim_memo_misses},
    "sim_memo_hit_rate": {sim_memo_hit_rate:.4},
    "trace_cache_bodies": {trace_bodies},
    "instrumented_ms": {sim_tele_ms:.1},
    "identical_with_telemetry": {tele_identical},
    "telemetry_conserved": {tele_conserved}
  }},
  "partial": {{
    "program": "parse(Fixed) + dpi-scan(PayloadPure) + fc-bind(Live)",
    "cells": {sim_cells},
    "packets_per_cell": {sim_packets},
    "baseline_exact_ms": {partial_base_ms:.1},
    "optimized_ms": {partial_fast_ms:.1},
    "speedup": {partial_speedup:.2},
    "batch_partial_runs": {batch_partial_runs},
    "batch_partial_packets": {batch_partial_packets},
    "identical_to_exact": {partial_identical}
  }},
  "warm_start": {{
    "cell_hits": {cell_warm_hits},
    "cell_misses": {cell_warm_misses}
  }}
}}
"#,
        sim_cells = sim_grid.len(),
        trace_bodies = trace_cache.len(),
    );
    std::fs::write(sim_out_path, &sim_json).expect("write nicsim benchmark json");
    eprintln!("wrote {sim_out_path}");

    let json = format!(
        r#"{{
  "bench": "pipeline",
  "quick": {quick},
  "threads_available": {threads_available},
  "recorded_with_threads": {recorded_with_threads},
  "ilp_single_solve": {{
    "config": "{tasks} tasks x {units} units, median of {runs}, baseline=dense+reference_lp, optimized=warm_start+memoize",
    "note": "single-threaded; stable ratio on this instance is ~14-15x — the 39x once recorded by PR 4 came from an anomalously slow baseline run, not a faster optimized path",
    "tasks": {tasks},
    "units": {units},
    "baseline_ms": {ilp_base_ms:.3},
    "optimized_ms": {ilp_fast_ms:.3},
    "speedup": {ilp_speedup:.2}
  }},
  "sweep": {{
    "cells": {cells},
    "baseline_sequential_ms": {sweep_base_ms:.1},
    "optimized_parallel_ms": {sweep_fast_ms:.1},
    "speedup": {sweep_speedup:.2},
    "parallel_identical_to_sequential": {identical},
    "cell_warm_hits": {cell_warm_hits},
    "cell_warm_misses": {cell_warm_misses}
  }}
}}
"#,
        cells = grid.len(),
    );
    std::fs::write(out_path, &json).expect("write benchmark json");
    eprintln!("wrote {out_path}");
    print!("{json}");
    print!("{sim_json}");
}
