//! Figure 1: performance variability of five network functions on the
//! Netronome profile. For each NF, 2-4 versions with the same core logic
//! (accelerator use, packet sizes, memory locations and flow
//! distributions, rule counts / flow cache, packet rates) are simulated,
//! and latencies are normalized against the fastest version.

use clara_core::sim::simulate;

fn main() {
    let nic = clara_bench::netronome();
    println!("Figure 1 — normalized latency of 2-4 versions per NF (log2 axis in the paper)");
    let mut overall: f64 = 1.0;
    for (nf, variants) in clara_core::nfs::fig1_variants() {
        let lat: Vec<(String, f64)> = variants
            .iter()
            .map(|v| {
                let trace = v.workload.to_trace(2_000, 7);
                let r = simulate(nic, &v.program, &trace).expect("variant simulates");
                (v.label.clone(), r.avg_latency_cycles)
            })
            .collect();
        let fastest = lat.iter().map(|(_, l)| *l).fold(f64::INFINITY, f64::min);
        println!("{nf}:");
        for (label, l) in &lat {
            println!("  {:<22} {:>12.0} cycles   {:>6.2}x", label, l, l / fastest);
            overall = overall.max(l / fastest);
        }
    }
    println!("\nlargest within-NF spread: {overall:.1}x (paper: up to 13.8x)");

    // §2.1's stronger claim, reported separately because it dwarfs the
    // figure's axis: the flow cache vs software match/action in DRAM.
    let wl = clara_core::WorkloadProfile::paper_default();
    let trace = wl.to_trace(2_000, 7);
    let scan = simulate(nic, &clara_core::nfs::lpm::ported_scan(30_000), &trace)
        .unwrap()
        .avg_latency_cycles;
    let fc = simulate(nic, &clara_core::nfs::lpm::ported_flow_cache(30_000), &trace)
        .unwrap()
        .avg_latency_cycles;
    println!(
        "§2.1 check — LPM flow cache {fc:.0} cyc vs DRAM match/action {scan:.0} cyc: {:.0}x (\"orders of magnitude\")",
        scan / fc
    );
}
