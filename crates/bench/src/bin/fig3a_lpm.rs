//! Figure 3a: LPM latency vs number of table entries (predicted vs
//! actual on the simulator substrate).

fn main() {
    let points = clara_bench::fig3a_series();
    let kcycles: Vec<_> = points
        .iter()
        .map(|p| clara_bench::Point { x: p.x, predicted: p.predicted / 1000.0, actual: p.actual / 1000.0 })
        .collect();
    print!(
        "{}",
        clara_bench::render_series(
            "Figure 3a — LPM: latency vs table entries (K cycles)",
            "entries",
            "Kcyc",
            &kcycles
        )
    );
}
