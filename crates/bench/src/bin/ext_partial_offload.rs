//! §6 extension: partial offloading. Every prefix cut of the DPI chain
//! priced across NIC / PCIe / host.

use clara_core::{HostParams, WorkloadProfile};

fn main() {
    let clara = clara_bench::clara();
    let src = clara_core::nfs::dpi::source(1 << 20);
    let module = clara.analyze(&src).expect("dpi compiles").module;
    let wl = WorkloadProfile {
        avg_payload: 1400.0,
        max_payload: 1400,
        ..WorkloadProfile::paper_default()
    };
    let plans =
        clara_core::predict_partial(&module, clara.params(), &wl, HostParams::default())
            .expect("plans");
    println!("partial-offload plans for DPI (1M-state automaton, 1400B payloads):");
    println!("{:>5} {:>14} {:>8}", "cut", "latency", "PCIe?");
    let best = plans
        .iter()
        .min_by(|a, b| a.latency_ns.partial_cmp(&b.latency_ns).unwrap())
        .unwrap()
        .cut;
    for p in &plans {
        println!(
            "{:>5} {:>11.2} µs {:>8}{}",
            p.cut,
            p.latency_ns / 1000.0,
            if p.crosses_pcie { "yes" } else { "no" },
            if p.cut == best { "   <- best" } else { "" }
        );
    }
    println!("(cut = number of dataflow nodes kept on the NIC; the rest run on the host)");
}
