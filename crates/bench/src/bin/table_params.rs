//! §3.2 / §2.1 parameter tables: what the microbenchmark suite extracted
//! vs the values the paper reports for the Netronome Agilio.

use clara_lnic::AccelKind;

fn main() {
    let p = clara_bench::clara().params();
    println!("Extracted NIC parameters for {} (paper values in parentheses)", p.nic_name);
    println!("-- compute (§3.2) --");
    println!("  header parse        {:>8.1} cycles   (≈150)", p.parse_header);
    println!("  metadata mod        {:>8.1} cycles   (2-5)", p.metadata_mod);
    println!("  flow hash           {:>8.1} cycles", p.hash);
    println!("  float (emulated)    {:>8.1} cycles", p.float_op);
    println!("  threads             {:>8}          (8 per NPU)", p.total_threads);
    println!("-- memory (§3.2) --");
    for m in &p.mems {
        let cache = m
            .cache
            .as_ref()
            .map(|c| format!("cache ≈{:.1} MB @ {:.0} cyc", c.capacity / 1e6, c.hit_latency))
            .unwrap_or_else(|| "no cache".into());
        println!(
            "  {:<16} {:>8.1} cycles, {:>6.2} cyc/B bulk, {}",
            m.name, m.latency, m.bulk_per_byte, cache
        );
    }
    println!("  (paper: LMEM 1-3, CTM 50, IMEM ≤250, EMEM ≤500 + 3 MB cache)");
    println!("-- flow cache (§2.1) --");
    println!("  hit cost            {:>8.1} cycles", p.flow_cache_hit);
    println!("  capacity estimate   {:>8.0} entries", p.flow_cache_entries);
    println!("-- checksum (§2.1: 1000 B ≈ 300 cycles at ingress; +1700 on NPU) --");
    if let Some(a) = p.accels.get(&AccelKind::Checksum) {
        println!("  accelerator @1000B  {:>8.1} cycles", a.base + a.per_byte * 1000.0);
    }
    println!(
        "  software   @1000B  {:>8.1} cycles",
        p.checksum_sw.base + p.checksum_sw.per_byte * 1040.0
    );
    println!("-- accelerator service curves --");
    for (kind, a) in &p.accels {
        println!("  {:<12} base {:>6.1} + {:>5.3} cyc/B", kind.to_string(), a.base, a.per_byte);
    }
}
