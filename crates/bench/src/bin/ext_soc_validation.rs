//! §6 extension: "it would be interesting to consider a wider range of
//! SmartNICs in Clara" — the Figure-3-style prediction-vs-actual
//! discipline repeated on the SoC profile (ARM-style cores, conventional
//! cache hierarchy, run-to-completion).
//!
//! The ports differ from the Netronome ones exactly the way a real
//! porter's would: state goes to `l2-sram`/`dram`, there is no flow
//! cache or checksum engine, and checksums run in software on cores
//! with a much lower per-byte cost.

use clara_core::sim::{simulate, MicroOp, NicProgram, Stage, StageUnit, TableCfg};
use clara_core::{nfs, Clara, WorkloadProfile};

/// NAT hand-ported to the SoC: conn table in DRAM (1.5 MB exceeds the
/// 1 MB L2), software checksum.
fn nat_port_soc() -> NicProgram {
    NicProgram {
        name: "nat-soc".into(),
        tables: vec![TableCfg {
            name: "flow_table".into(),
            mem: "dram".into(),
            entry_bytes: 24,
            entries: nfs::nat::TABLE_ENTRIES,
            use_flow_cache: false,
        }],
        stages: vec![Stage {
            name: "translate".into(),
            unit: StageUnit::Npu,
            ops: vec![
                MicroOp::ParseHeader,
                MicroOp::Hash { count: 1 },
                MicroOp::TableLookup { table: 0 },
                MicroOp::MetadataMod { count: 3 },
                MicroOp::ChecksumSw,
            ],
        }],
    }
}

/// Firewall hand-ported to the SoC: small conn table in L2 SRAM.
fn fw_port_soc(entries: u64) -> NicProgram {
    NicProgram {
        name: "fw-soc".into(),
        tables: vec![TableCfg {
            name: "conns".into(),
            mem: "l2-sram".into(),
            entry_bytes: 24,
            entries,
            use_flow_cache: false,
        }],
        stages: vec![Stage {
            name: "conntrack".into(),
            unit: StageUnit::Npu,
            ops: vec![
                MicroOp::ParseHeader,
                MicroOp::Hash { count: 1 },
                MicroOp::TableLookup { table: 0 },
            ],
        }],
    }
}

fn steady(nic: &clara_core::Lnic, prog: &NicProgram, wl: &WorkloadProfile) -> f64 {
    let trace = wl.to_trace(3_000, 42);
    let r = simulate(nic, prog, &trace).expect("port simulates");
    let tail = &r.latencies[r.latencies.len() / 2..];
    tail.iter().sum::<u64>() as f64 / tail.len().max(1) as f64
}

fn main() {
    let nic = clara_core::profiles::soc_armada();
    println!("extracting parameters for {} ...", nic.name);
    let clara = Clara::new(&nic);

    println!(
        "\n{:<28} {:>12} {:>12} {:>7}",
        "experiment", "predicted", "actual", "err"
    );
    let mut errs = Vec::new();

    // NAT payload sweep (the SoC has no checksum engine; Clara must
    // price the software path).
    let nat = clara.analyze(&nfs::nat::source()).expect("nat compiles").module;
    for payload in [200.0, 800.0, 1400.0] {
        let wl = WorkloadProfile {
            avg_payload: payload,
            max_payload: payload as usize,
            ..WorkloadProfile::paper_default()
        };
        let predicted = clara.predict_module(&nat, &wl).expect("predicts").avg_latency_cycles;
        let actual = steady(&nic, &nat_port_soc(), &wl);
        let err = (predicted - actual).abs() / actual;
        errs.push(err);
        println!(
            "{:<28} {:>9.0} cy {:>9.0} cy {:>6.1}%",
            format!("NAT @{payload}B"),
            predicted,
            actual,
            err * 100.0
        );
    }

    // Firewall flow-count sweep (cache behaviour of the DRAM-backed L2).
    let fw = clara.analyze(&nfs::firewall::source(16_384)).expect("fw compiles").module;
    for flows in [500usize, 8_000] {
        let wl = WorkloadProfile { flows, ..WorkloadProfile::paper_default() };
        let predicted = clara.predict_module(&fw, &wl).expect("predicts").avg_latency_cycles;
        let actual = steady(&nic, &fw_port_soc(16_384), &wl);
        let err = (predicted - actual).abs() / actual;
        errs.push(err);
        println!(
            "{:<28} {:>9.0} cy {:>9.0} cy {:>6.1}%",
            format!("FW @{flows} flows"),
            predicted,
            actual,
            err * 100.0
        );
    }
    let mean = errs.iter().sum::<f64>() / errs.len() as f64;
    println!("\nmean abs. error on {}: {:.1}%", nic.name, mean * 100.0);
    println!("(the same pipeline, parameters re-extracted for a different architecture)");
}
