//! §1/§6 extension: "identify suitable SmartNIC models for her
//! workloads" — one NF predicted across all built-in LNIC profiles.

use clara_core::{Clara, WorkloadProfile};

fn main() {
    let src = clara_core::nfs::nat::source();
    let wl = WorkloadProfile::paper_default();
    println!("NAT @ 60 kpps, 300B payloads — which NIC?");
    println!("{:<24} {:>12} {:>12} {:>14}", "NIC", "latency", "throughput", "energy/pkt");
    for nic in clara_core::profiles::all_profiles() {
        let clara = Clara::new(&nic);
        match clara.predict(&src, &wl) {
            Ok(p) => println!(
                "{:<24} {:>9.2} µs {:>9.2} Mpps {:>11.1} nJ",
                nic.name,
                p.avg_latency_ns / 1000.0,
                p.throughput_pps / 1e6,
                p.energy_nj_per_packet
            ),
            Err(e) => println!("{:<24} unsuitable: {e}", nic.name),
        }
    }
}
