//! Ablation: the analytical cache model vs always-hit / always-miss
//! assumptions, scored by Figure-3b prediction error.

use clara_core::WorkloadProfile;

fn main() {
    // The real model's error:
    let full = clara_bench::mean_error(&clara_bench::fig3b_series());

    // Degenerate models: force every cache estimate to hit / miss by
    // editing the extracted parameters.
    let mut always_hit = clara_bench::clara().params().clone();
    for m in &mut always_hit.mems {
        if let Some(c) = &mut m.cache {
            c.capacity = f64::INFINITY;
        }
    }
    let mut always_miss = clara_bench::clara().params().clone();
    for m in &mut always_miss.mems {
        m.cache = None;
    }

    let module = clara_bench::clara()
        .analyze(&clara_core::nfs::vnf::source(
            clara_core::nfs::vnf::AUTOMATON_ENTRIES,
            clara_core::nfs::vnf::STAT_BUCKETS,
        ))
        .unwrap()
        .module;
    let program = clara_core::nfs::vnf::ported();
    let mut errs = [0.0f64; 2];
    let mut n = 0;
    for i in 1..=7 {
        let payload = 200.0 * i as f64;
        let wl = WorkloadProfile {
            avg_payload: payload,
            max_payload: payload as usize,
            ..WorkloadProfile::paper_default()
        };
        let actual = clara_bench::actual_cycles(&program, &wl, 1_000);
        for (j, params) in [&always_hit, &always_miss].into_iter().enumerate() {
            let p = clara_predict::predict(&module, params, &wl).unwrap();
            errs[j] += ((p.avg_latency_cycles - actual) / actual).abs();
        }
        n += 1;
    }
    println!("Figure-3b mean prediction error by cache model:");
    println!("  analytical (occupancy) : {:>6.1}%", full * 100.0);
    println!("  always-hit             : {:>6.1}%", errs[0] / n as f64 * 100.0);
    println!("  always-miss            : {:>6.1}%", errs[1] / n as f64 * 100.0);
}
