//! `clara serve` daemon benchmark, emitted as `BENCH_serve.json`.
//!
//! Three phases against in-process servers with pre-seeded targets:
//!
//! 1. **steady** — N clients issue sequential `predict` requests over
//!    the wire and every reply is checked bit-identical to the one-shot
//!    [`clara_core::Clara::predict`] path. Reports throughput and p50/p95/p99
//!    request latency plus the session cache's hit rate (after the
//!    first request per workload class, everything should hit).
//! 2. **validate reuse** — one client issues repeated `validate` jobs
//!    for the same (NF, NIC) pair. The session-owned shared
//!    [`CostCache`](clara_core::sim::CostCache) means only the very
//!    first cell of the very first request pays the pure stage costs;
//!    every later cell — across requests — replays them. Asserts the
//!    steady-state `sim_memo_hit_rate` clears 0.9 and that every served
//!    cell is bit-identical to a local
//!    [`clara_core::run_validation_sweep`] with the same pinned
//!    configuration.
//! 3. **overload** — a deliberately tiny server (one worker, chaos
//!    slowing every job) is offered 2x its queue capacity in concurrent
//!    clients. Reports the shed rate and asserts it is nonzero: a
//!    benchmark where admission control never fires is measuring the
//!    wrong thing.
//!
//! ```text
//! serve_bench [--quick] [-o BENCH_serve.json] [--threads N]
//! ```
//!
//! `--quick` shrinks request counts for CI smoke. Any correctness
//! failure (wire drift, memo-rate collapse, zero shed, non-ok replies)
//! panics, so the exit code is nonzero exactly when the numbers are
//! untrustworthy.

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use clara_core::serve::json::Value;
use clara_core::serve::{reply_codes, ChaosConfig, Client, ServeConfig, Server};
use clara_core::{
    run_validation_sweep, Prediction, ValidationConfig, ValidationResult, WorkloadProfile,
};

fn code_of(reply: &Value) -> u64 {
    reply.get("code").and_then(Value::as_u64).expect("reply has a code")
}

fn assert_bit_identical(reply: &Value, direct: &Prediction) {
    for (key, want) in [
        ("avg_latency_cycles", direct.avg_latency_cycles),
        ("avg_latency_ns", direct.avg_latency_ns),
        ("throughput_pps", direct.throughput_pps),
        ("energy_nj_per_packet", direct.energy_nj_per_packet),
    ] {
        let got = reply
            .get(key)
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("reply missing `{key}`: {reply:?}"));
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "`{key}` drifted over the wire: served {got:?}, one-shot {want:?}"
        );
    }
}

fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "-o")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_serve.json");
    // Worker-thread override for the steady server. The recorded value
    // lands in the JSON so a reader can tell a 1-CPU container run from
    // a 16-core workstation run without guessing (the overload server
    // keeps its pinned single worker — that phase is about admission
    // control, not parallelism).
    let threads_override = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse::<usize>().expect("--threads takes a number"));
    let threads_available = thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let recorded_with_threads = threads_override.unwrap_or(threads_available);

    eprintln!("serve_bench: extracting NIC parameters...");
    let clara = clara_bench::clara();
    let params = Arc::new(clara.params().clone());
    let nat_source = clara_core::nfs::by_name("nat").expect("corpus has nat").0;
    let direct = clara
        .predict(&nat_source, &WorkloadProfile::paper_default())
        .expect("one-shot prediction succeeds");

    // --- 1. steady state -------------------------------------------------
    let clients = if quick { 2 } else { 4 };
    let per_client = if quick { 15 } else { 150 };
    let server = Server::start(ServeConfig {
        workers: threads_override.unwrap_or(0),
        queue_cap: 64,
        read_timeout_ms: 30_000,
        ..ServeConfig::default()
    })
    .expect("server starts");
    server.seed_target("netronome", clara_bench::netronome().clone(), Arc::clone(&params));
    let addr = server.addr();
    eprintln!("steady: {clients} clients x {per_client} requests on {addr}");

    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let direct = direct.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                let mut latencies_us = Vec::with_capacity(per_client);
                for _ in 0..per_client {
                    let t = Instant::now();
                    let reply = client
                        .request(r#"{"op":"predict","nf":"nat"}"#)
                        .expect("steady request succeeds");
                    latencies_us.push(t.elapsed().as_micros() as u64);
                    assert_eq!(code_of(&reply), 0, "{reply:?}");
                    assert_bit_identical(&reply, &direct);
                }
                latencies_us
            })
        })
        .collect();
    let mut latencies: Vec<u64> =
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect();
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    latencies.sort_unstable();
    let total = clients * per_client;
    let throughput_rps = total as f64 / (wall_ms / 1e3);
    let (p50, p95, p99) = (
        percentile_us(&latencies, 0.50),
        percentile_us(&latencies, 0.95),
        percentile_us(&latencies, 0.99),
    );
    // Server-side view of the same phase, from the daemon's own
    // service-time histogram (the `stats` op). Client latency = queue
    // wait + service + wire overhead, so the server-side p50/p99 must
    // sit at or below the client-side numbers (modulo the histogram's
    // documented 6.25% bucket error plus a fixed 500 µs scheduling
    // allowance) while still accounting for a meaningful share of them.
    let mut stats_client = Client::connect(addr).expect("stats client connects");
    let stats_reply = stats_client.request(r#"{"op":"stats"}"#).expect("stats op succeeds");
    let hist_u64 = |hist: &str, field: &str| -> u64 {
        stats_reply
            .get(hist)
            .and_then(|h| h.get(field))
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("stats reply missing `{hist}.{field}`: {stats_reply:?}"))
    };
    let server_p50 = hist_u64("service_us", "p50");
    let server_p99 = hist_u64("service_us", "p99");
    let queue_p50 = hist_u64("queue_wait_us", "p50");
    assert_eq!(
        hist_u64("service_us", "count"),
        total as u64,
        "service histogram missed jobs: {stats_reply:?}"
    );
    let bound = |client_side: u64| (client_side as f64 * 1.0625) as u64 + 500;
    assert!(
        server_p50 <= bound(p50) && server_p99 <= bound(p99),
        "server-side percentiles exceed the client view: \
         server p50 {server_p50} / p99 {server_p99} vs client p50 {p50} / p99 {p99} (µs)"
    );
    // The converse bound only makes sense while the client p50 is
    // service-dominated; loopback TCP artifacts (delayed-ACK clusters
    // around tens of ms) can dominate small-request tails on loaded
    // machines, and those milliseconds are not the server's to explain.
    if p50 < 10_000 {
        assert!(
            (server_p50 + queue_p50) * 4 + 2_000 >= p50,
            "server-side p50 ({server_p50} µs service + {queue_p50} µs queue wait) explains \
             under a quarter of the client p50 ({p50} µs) — the histogram is measuring the wrong thing"
        );
    } else {
        eprintln!("  note: client p50 {p50} µs is wire-dominated; skipping the lower-bound agreement check");
    }
    server.shutdown();
    let steady = server.join();
    let lookups = steady.prepared_hits + steady.prepared_misses;
    let hit_rate = if lookups == 0 { 0.0 } else { steady.prepared_hits as f64 / lookups as f64 };
    assert_eq!(steady.completed, total as u64, "lost replies: {steady:?}");
    assert!(
        hit_rate > 0.9,
        "session cache barely hit ({hit_rate:.2}); the steady phase is measuring prepares"
    );
    eprintln!(
        "  {total} requests in {wall_ms:.0} ms  ({throughput_rps:.0} req/s)  \
         p50 {p50} us  p95 {p95} us  p99 {p99} us  cache hit rate {hit_rate:.3}"
    );
    eprintln!(
        "  server-side view: service p50 {server_p50} us  p99 {server_p99} us  \
         queue wait p50 {queue_p50} us (agrees with the client view)"
    );
    eprintln!("  every reply bit-identical to the one-shot pipeline: yes");

    // --- 2. validate reuse -----------------------------------------------
    // Repeated validate jobs for the same (NF, NIC) against one server.
    // Each request is a whole validation sweep (one simulated cell per
    // rate); the NfSession's shared CostCache carries the pure stage
    // costs across requests, so only the first cell of the first request
    // computes them. Integer rates round-trip the wire exactly, keeping
    // the served grid bit-identical to the local reference sweep. DPI
    // with the automaton in uncached IMEM is the workload class where
    // re-costing would hurt most: payload-pure signatures that each walk
    // the memory model O(payload) deep.
    let v_requests = if quick { 3 } else { 6 };
    let v_rates: Vec<u64> = if quick {
        vec![20_000, 40_000, 60_000, 80_000]
    } else {
        (1..=8).map(|i| i * 15_000).collect()
    };
    let v_packets = if quick { 300usize } else { 1_500 };
    let v_seed = 42u64;
    let (nf_text, v_program) = clara_core::nfs::by_name("dpi-imem").expect("corpus has dpi-imem");
    let v_module = clara.analyze(&nf_text).expect("dpi-imem compiles").module;
    let v_grid: Vec<WorkloadProfile> = v_rates
        .iter()
        .map(|&rate| {
            let mut wl = WorkloadProfile::paper_default();
            wl.rate_pps = rate as f64;
            wl
        })
        .collect();
    // The server's validate path pins threads: 1 and attaches the
    // session cache; the reference run pins the same knobs (a fresh
    // cache — shared-layer reuse must not be needed for the numbers).
    let v_config = ValidationConfig {
        threads: 1,
        packets: v_packets,
        seed: v_seed,
        ..ValidationConfig::default()
    };
    let local = run_validation_sweep(
        &v_module,
        &params,
        clara_bench::netronome(),
        &v_program,
        &v_grid,
        &v_config,
    );
    let local_cells: Vec<_> = local
        .cells
        .iter()
        .map(|c| match c {
            ValidationResult::Ok(cell) => cell,
            ValidationResult::Failed(why) => panic!("local reference cell failed: {why}"),
        })
        .collect();

    let server = Server::start(ServeConfig {
        queue_cap: 64,
        read_timeout_ms: 60_000,
        ..ServeConfig::default()
    })
    .expect("validate server starts");
    server.seed_target("netronome", clara_bench::netronome().clone(), Arc::clone(&params));
    let addr = server.addr();
    eprintln!(
        "validate: {v_requests} requests x {} cells x {v_packets} packets on {addr}",
        v_rates.len()
    );
    let rates_json =
        v_rates.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
    let request = format!(
        r#"{{"op":"validate","nf":"dpi-imem","rates":[{rates_json}],"packets":{v_packets},"seed":{v_seed}}}"#
    );
    let started = Instant::now();
    let mut client = Client::connect(addr).expect("validate client connects");
    for _ in 0..v_requests {
        let reply = client.request(&request).expect("validate request succeeds");
        assert_eq!(code_of(&reply), 0, "{reply:?}");
        let cells = reply
            .get("cells")
            .and_then(Value::as_arr)
            .expect("validate reply has cells");
        assert_eq!(cells.len(), local_cells.len(), "cell count drifted");
        for (served, want) in cells.iter().zip(&local_cells) {
            assert_eq!(served.get("ok").and_then(Value::as_bool), Some(true), "{served:?}");
            for (key, want_bits) in [
                ("predicted_cycles", want.predicted_cycles.to_bits()),
                ("actual_cycles", want.actual_cycles.to_bits()),
            ] {
                let got = served
                    .get(key)
                    .and_then(Value::as_f64)
                    .unwrap_or_else(|| panic!("cell missing `{key}`: {served:?}"));
                assert_eq!(
                    got.to_bits(),
                    want_bits,
                    "served `{key}` diverged from the local sweep at rate {}",
                    want.rate_pps
                );
            }
        }
    }
    let validate_wall_ms = started.elapsed().as_secs_f64() * 1e3;
    server.shutdown();
    let vstats = server.join();
    let sim_lookups = vstats.sim_memo_hits + vstats.sim_memo_misses;
    let sim_memo_hit_rate =
        if sim_lookups == 0 { 0.0 } else { vstats.sim_memo_hits as f64 / sim_lookups as f64 };
    assert!(
        sim_memo_hit_rate > 0.9,
        "cross-request stage-cost reuse collapsed: {} hits / {} misses (rate {:.3})",
        vstats.sim_memo_hits,
        vstats.sim_memo_misses,
        sim_memo_hit_rate
    );
    assert!(
        vstats.sim_cost_views >= 1,
        "no fingerprint view interned by the validate session: {vstats:?}"
    );
    eprintln!(
        "  {} cells over {validate_wall_ms:.0} ms  sim memo {}/{} shared (rate {:.3}, {} view(s))",
        v_requests * v_rates.len(),
        vstats.sim_memo_hits,
        sim_lookups,
        sim_memo_hit_rate,
        vstats.sim_cost_views
    );
    eprintln!("  every served cell bit-identical to the local sweep: yes");
    let v_cells = v_rates.len();
    let (v_hits, v_misses, v_views) =
        (vstats.sim_memo_hits, vstats.sim_memo_misses, vstats.sim_cost_views);

    // --- 3. overload -----------------------------------------------------
    // One worker, every job slowed 25 ms by chaos, queue of 4: offering
    // 2x the queue capacity in concurrent clients (each firing
    // back-to-back) must shed. Panic/kill/truncate chaos stays off so
    // every reply is readable and the shed rate is attributable to
    // admission control alone.
    let queue_cap = 4usize;
    let concurrency = 2 * queue_cap;
    let per_conn = if quick { 8 } else { 40 };
    let chaos = ChaosConfig {
        panic_per_mille: 0,
        kill_per_mille: 0,
        slow_per_mille: 1_000,
        truncate_per_mille: 0,
        slow_ms: 25,
        ..ChaosConfig::with_seed(7)
    };
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_cap,
        read_timeout_ms: 30_000,
        chaos: Some(chaos),
        ..ServeConfig::default()
    })
    .expect("overload server starts");
    server.seed_target("netronome", clara_bench::netronome().clone(), Arc::clone(&params));
    let addr = server.addr();
    eprintln!("overload: {concurrency} clients x {per_conn} requests, 1 worker, queue {queue_cap}");

    let started = Instant::now();
    let handles: Vec<_> = (0..concurrency)
        .map(|_| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                let mut hints_ms: Vec<u64> = Vec::new();
                let (mut served, mut shed) = (0u64, 0u64);
                for _ in 0..per_conn {
                    let reply = client
                        .request(r#"{"op":"predict","nf":"nat"}"#)
                        .expect("overload request gets a reply");
                    match code_of(&reply) {
                        0 => served += 1,
                        code if code == u64::from(reply_codes::OVERLOADED) => {
                            shed += 1;
                            hints_ms.push(
                                reply
                                    .get("retry_after_ms")
                                    .and_then(Value::as_u64)
                                    .expect("overloaded reply carries a retry hint"),
                            );
                        }
                        other => panic!("unexpected reply code {other}: {reply:?}"),
                    }
                }
                (served, shed, hints_ms)
            })
        })
        .collect();
    let mut served = 0u64;
    let mut shed = 0u64;
    let mut hints_ms: Vec<u64> = Vec::new();
    for h in handles {
        let (s, d, hints) = h.join().expect("overload client thread");
        served += s;
        shed += d;
        hints_ms.extend(hints);
    }
    let overload_wall_ms = started.elapsed().as_secs_f64() * 1e3;
    server.shutdown();
    let overload = server.join();
    let offered = (concurrency * per_conn) as u64;
    let shed_rate = shed as f64 / offered as f64;
    assert_eq!(served + shed, offered, "lost replies under overload: {overload:?}");
    assert!(
        shed > 0,
        "no request shed at 2x queue capacity — admission control never fired"
    );
    assert!(hints_ms.iter().all(|&h| h >= 1), "retry hints must be at least 1 ms");
    hints_ms.sort_unstable();
    let hint_p50 = percentile_us(&hints_ms, 0.50);
    eprintln!(
        "  offered {offered} over {overload_wall_ms:.0} ms: served {served}, shed {shed} \
         (rate {shed_rate:.3}), median retry hint {hint_p50} ms"
    );

    let json = format!(
        r#"{{
  "bench": "serve",
  "quick": {quick},
  "threads_available": {threads_available},
  "recorded_with_threads": {recorded_with_threads},
  "steady": {{
    "clients": {clients},
    "requests": {total},
    "wall_ms": {wall_ms:.1},
    "throughput_rps": {throughput_rps:.1},
    "latency_p50_us": {p50},
    "latency_p95_us": {p95},
    "latency_p99_us": {p99},
    "server_service_p50_us": {server_p50},
    "server_service_p99_us": {server_p99},
    "server_queue_wait_p50_us": {queue_p50},
    "server_client_agreement": true,
    "prepared_hit_rate": {hit_rate:.4},
    "bit_identical_to_oneshot": true
  }},
  "validate": {{
    "requests": {v_requests},
    "cells_per_request": {v_cells},
    "packets_per_cell": {v_packets},
    "wall_ms": {validate_wall_ms:.1},
    "sim_memo_hits": {v_hits},
    "sim_memo_misses": {v_misses},
    "sim_memo_hit_rate": {sim_memo_hit_rate:.4},
    "sim_cost_views": {v_views},
    "bit_identical_to_local_sweep": true
  }},
  "overload": {{
    "workers": 1,
    "queue_cap": {queue_cap},
    "concurrency": {concurrency},
    "offered": {offered},
    "served": {served},
    "shed": {shed},
    "shed_rate": {shed_rate:.4},
    "median_retry_hint_ms": {hint_p50}
  }}
}}
"#,
    );
    std::fs::write(out_path, &json).expect("write serve benchmark json");
    eprintln!("wrote {out_path}");
    print!("{json}");
}
