//! Ablation: the M/D/1 queueing term on vs off, at low load and near the
//! crypto accelerator's saturation point.

use clara_core::sim::simulate;
use clara_core::WorkloadProfile;

fn main() {
    let clara = clara_bench::clara();
    let nic = clara_bench::netronome();
    let src = r#"nf ipsec {
        fn handle(pkt: packet) -> action {
            aes_encrypt(pkt);
            return forward;
        } }"#;
    let program = clara_core::sim::NicProgram {
        name: "ipsec".into(),
        tables: vec![],
        stages: vec![clara_core::sim::Stage {
            name: "aes".into(),
            unit: clara_core::sim::StageUnit::Accel(clara_lnic::AccelKind::Crypto),
            ops: vec![clara_core::sim::MicroOp::AccelCall {
                bytes: clara_core::sim::BytesSpec::Payload,
            }],
        }],
    };
    println!("{:>10} {:>12} {:>12} {:>12}", "rate", "pred+queue", "pred-queue", "actual");
    for rate in [50_000.0, 200_000.0, 350_000.0, 450_000.0] {
        let wl = WorkloadProfile {
            rate_pps: rate,
            avg_payload: 1400.0,
            max_payload: 1400,
            ..WorkloadProfile::paper_default()
        };
        let with = clara.predict(src, &wl).unwrap().avg_latency_cycles;
        // "Queueing off": predict at a negligible rate but price the same
        // payloads (the M/D/1 term vanishes as rho -> 0).
        let wl0 = WorkloadProfile { rate_pps: 1_000.0, ..wl.clone() };
        let without = clara.predict(src, &wl0).unwrap().avg_latency_cycles;
        // Poisson arrivals: the M/D/1 term models stochastic traffic; a
        // constant-bit-rate trace would never queue below saturation.
        let trace = clara_core::TraceGenerator::new(31)
            .packets(6_000)
            .flows(wl.flows)
            .rate_pps(rate)
            .arrival(clara_core::Arrival::Poisson)
            .sizes(clara_core::SizeDist::Fixed(1400))
            .syn_on_first(false)
            .generate();
        let actual = simulate(nic, &program, &trace).unwrap().avg_latency_cycles;
        println!(
            "{:>7.0}kpps {:>12.0} {:>12.0} {:>12.0}",
            rate / 1000.0,
            with,
            without,
            actual
        );
    }
    println!("(near saturation the queueing term is what keeps predictions honest)");
}
