//! Ablation: the ILP mapping vs a greedy locally-optimal baseline.
//!
//! Greedy picks each node's individually cheapest unit and ignores the
//! queueing (Θ) constraints. At high packet rates that saturates the
//! single crypto engine; the ILP spills crypto to the NPU pool instead.
//! Both mappings are then *simulated* to show the real consequence.

use clara_core::sim::{simulate, BytesSpec, MicroOp, NicProgram, Stage, StageUnit};
use clara_core::WorkloadProfile;
use clara_map::{greedy_map, solve_mapping, MapInput, UnitChoice};
use clara_predict::enumerate_classes;

fn main() {
    let clara = clara_bench::clara();
    let nic = clara_bench::netronome();
    let src = r#"nf ipsec {
        fn handle(pkt: packet) -> action {
            dpdk.parse_headers(pkt);
            aes_encrypt(pkt);
            return forward;
        } }"#;
    let analysis = clara.analyze(src).expect("compiles");
    // 1 Mpps of 1400-byte packets: the crypto engine (≈1600 cycles per
    // packet at 0.8 GHz -> 500 kpps capacity) cannot keep up.
    let wl = WorkloadProfile {
        rate_pps: 1_000_000.0,
        avg_payload: 1400.0,
        max_payload: 1400,
        ..WorkloadProfile::paper_default()
    };
    let classes = enumerate_classes(&analysis.module, &wl);
    let mut graph = analysis.graph.clone();
    for node in &mut graph.nodes {
        node.weight = classes
            .iter()
            .map(|c| {
                c.share
                    * node
                        .blocks
                        .iter()
                        .map(|b| c.block_weights.get(b.0 as usize).copied().unwrap_or(0.0))
                        .fold(0.0, f64::max)
            })
            .sum();
    }
    let input = MapInput {
        graph: &graph,
        states: vec![],
        params: clara.params(),
        avg_payload: wl.avg_payload,
        rate_pps: wl.rate_pps,
        state_hit: vec![],
        fc_hit: 0.0,
        dpi_hit: 0.2,
        forbid_accels: false,
        pinned: vec![],
    };
    let ilp = solve_mapping(&input).expect("ILP solves");
    let greedy = greedy_map(&input).expect("greedy maps");

    let crypto_node = graph
        .nodes
        .iter()
        .position(|n| n.kind == clara_dataflow::NodeKind::Crypto)
        .expect("crypto node");
    println!("ipsec @ 1 Mpps, 1400B payloads — where does AES go?");
    println!(
        "  ILP    : {} (objective {:>6.0} cyc/pkt)",
        ilp.node_unit[crypto_node], ilp.latency_cycles
    );
    println!(
        "  greedy : {} (objective {:>6.0} cyc/pkt)",
        greedy.node_unit[crypto_node], greedy.latency_cycles
    );

    // Simulate the two ports the mappings imply.
    let port = |crypto_on_accel: bool| -> NicProgram {
        let crypto_stage = if crypto_on_accel {
            Stage {
                name: "aes".into(),
                unit: StageUnit::Accel(clara_lnic::AccelKind::Crypto),
                ops: vec![MicroOp::AccelCall { bytes: BytesSpec::Payload }],
            }
        } else {
            // Software AES: ~8x the plain streaming rate on the NPU.
            Stage {
                name: "aes-sw".into(),
                unit: StageUnit::Npu,
                ops: vec![MicroOp::StreamPayload { table: None, loop_overhead: 14 }],
            }
        };
        NicProgram {
            name: "ipsec".into(),
            tables: vec![],
            stages: vec![
                Stage {
                    name: "parse".into(),
                    unit: StageUnit::Npu,
                    ops: vec![MicroOp::ParseHeader],
                },
                crypto_stage,
            ],
        }
    };
    let trace = wl.to_trace(6_000, 33);
    for (label, mapping_unit) in [
        ("ILP port", ilp.node_unit[crypto_node]),
        ("greedy port", greedy.node_unit[crypto_node]),
    ] {
        let on_accel = matches!(mapping_unit, UnitChoice::Accel(_));
        let r = simulate(nic, &port(on_accel), &trace).expect("simulates");
        println!(
            "  {label:<12} ({mapping_unit}) simulated: avg {:>9.0} cyc, p99 {:>9.0} cyc, achieved {:>5.2} Mpps, drops {}",
            r.avg_latency_cycles,
            r.p99_latency_cycles,
            r.achieved_pps / 1e6,
            r.dropped
        );
    }
    println!("(greedy ignores Θ: the single crypto engine saturates and queueing explodes)");
}
