//! Figure 3c: NAT latency vs payload size (predicted vs actual).

fn main() {
    let points = clara_bench::fig3c_series();
    print!(
        "{}",
        clara_bench::render_series(
            "Figure 3c — NAT: latency vs packet payload size (cycles)",
            "payload (B)",
            "cyc",
            &points
        )
    );
}
