//! §4 accuracy table: mean prediction inaccuracy per NF
//! (paper: LPM 12%, VNF 3%, NAT 7%).

fn main() {
    println!("Prediction inaccuracy (mean abs. relative error, §4)");
    println!("{:<6} {:>10} {:>10}", "NF", "this repo", "paper");
    let lpm = clara_bench::mean_error(&clara_bench::fig3a_series());
    println!("{:<6} {:>9.1}% {:>10}", "LPM", lpm * 100.0, "12%");
    let vnf = clara_bench::mean_error(&clara_bench::fig3b_series());
    println!("{:<6} {:>9.1}% {:>10}", "VNF", vnf * 100.0, "3%");
    let nat = clara_bench::mean_error(&clara_bench::fig3c_series());
    println!("{:<6} {:>9.1}% {:>10}", "NAT", nat * 100.0, "7%");
}
