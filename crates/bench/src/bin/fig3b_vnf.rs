//! Figure 3b: VNF chain (DPI + metering + header mods + flow stats)
//! latency vs payload size (predicted vs actual).

fn main() {
    let points = clara_bench::fig3b_series();
    let kcycles: Vec<_> = points
        .iter()
        .map(|p| clara_bench::Point { x: p.x, predicted: p.predicted / 1000.0, actual: p.actual / 1000.0 })
        .collect();
    print!(
        "{}",
        clara_bench::render_series(
            "Figure 3b — VNF: latency vs packet payload size (K cycles)",
            "payload (B)",
            "Kcyc",
            &kcycles
        )
    );
}
