//! The Internet checksum (RFC 1071) and incremental updates (RFC 1624).
//!
//! Used for the IPv4 header checksum and the TCP/UDP checksums (the latter
//! over a pseudo-header). The incremental form is what a NAT uses on the
//! fast path: rewriting one 32-bit address only requires folding the
//! difference into the existing checksum instead of re-summing the packet.

/// One's-complement sum of a byte slice, without the final inversion.
///
/// Odd-length inputs are padded with a zero byte, per RFC 1071.
pub fn sum(data: &[u8]) -> u32 {
    let mut acc: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        acc += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Fold a 32-bit accumulator into 16 bits of one's-complement sum.
pub fn fold(mut acc: u32) -> u16 {
    while acc > 0xffff {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    acc as u16
}

/// Compute the Internet checksum of `data`: the one's complement of the
/// one's-complement sum.
pub fn checksum(data: &[u8]) -> u16 {
    !fold(sum(data))
}

/// Combine several partial one's-complement sums (e.g. pseudo-header plus
/// segment) into a final checksum.
pub fn combine(sums: &[u32]) -> u16 {
    !fold(sums.iter().copied().fold(0u32, |a, b| a + (b & 0xffff) + (b >> 16)))
}

/// The one's-complement sum of the TCP/UDP pseudo-header.
///
/// `proto` is the IP protocol number and `len` the transport segment length
/// (header plus payload) in bytes.
pub fn pseudo_header_sum(src: [u8; 4], dst: [u8; 4], proto: u8, len: u16) -> u32 {
    sum(&src) + sum(&dst) + u32::from(proto) + u32::from(len)
}

/// Incrementally update a checksum after a 16-bit field changed from `old`
/// to `new`, per RFC 1624 (eqn. 3): `HC' = ~(~HC + ~m + m')`.
pub fn incremental_update(current: u16, old: u16, new: u16) -> u16 {
    let acc = u32::from(!current) + u32::from(!old) + u32::from(new);
    !fold(acc)
}

/// Incrementally update a checksum after a 32-bit field (e.g. an IPv4
/// address) changed, by applying [`incremental_update`] to each half.
pub fn incremental_update_u32(current: u16, old: u32, new: u32) -> u16 {
    let step = incremental_update(current, (old >> 16) as u16, (new >> 16) as u16);
    incremental_update(step, old as u16, new as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example from RFC 1071 §3.
    #[test]
    fn rfc1071_example() {
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(fold(sum(&data)), 0xddf2);
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn zero_length_is_all_ones() {
        assert_eq!(checksum(&[]), 0xffff);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xab]), checksum(&[0xab, 0x00]));
    }

    #[test]
    fn verifying_includes_own_checksum() {
        // Inserting the checksum into the data and re-summing yields 0.
        let mut data = vec![0x45, 0x00, 0x00, 0x28, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06, 0, 0];
        let ck = checksum(&data);
        data[10] = (ck >> 8) as u8;
        data[11] = ck as u8;
        assert_eq!(fold(sum(&data)), 0xffff);
    }

    #[test]
    fn incremental_matches_recompute_16() {
        let mut data: Vec<u8> = (0u8..40).collect();
        let before = checksum(&data);
        // Change the 16-bit field at offset 6.
        let old = u16::from_be_bytes([data[6], data[7]]);
        let new: u16 = 0xcafe;
        data[6..8].copy_from_slice(&new.to_be_bytes());
        let after = checksum(&data);
        assert_eq!(incremental_update(before, old, new), after);
    }

    #[test]
    fn incremental_matches_recompute_32() {
        let mut data: Vec<u8> = (0u8..40).map(|b| b.wrapping_mul(7)).collect();
        let before = checksum(&data);
        let old = u32::from_be_bytes([data[12], data[13], data[14], data[15]]);
        let new: u32 = 0x0a00_0001;
        data[12..16].copy_from_slice(&new.to_be_bytes());
        let after = checksum(&data);
        assert_eq!(incremental_update_u32(before, old, new), after);
    }

    #[test]
    fn combine_matches_concatenated() {
        let a = [1u8, 2, 3, 4];
        let b = [9u8, 8, 7, 6];
        let concat: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(combine(&[sum(&a), sum(&b)]), checksum(&concat));
    }

    #[test]
    fn pseudo_header_known_value() {
        // 10.0.0.1 -> 10.0.0.2, TCP, 20 bytes.
        let s = pseudo_header_sum([10, 0, 0, 1], [10, 0, 0, 2], 6, 20);
        // 0x0a00 + 0x0001 + 0x0a00 + 0x0002 + 0x0006 + 0x0014
        assert_eq!(s, 0x0a00 + 0x0001 + 0x0a00 + 0x0002 + 0x0006 + 0x0014);
    }

    #[test]
    fn fold_handles_large_accumulators() {
        assert_eq!(fold(0xffff_ffff), 0xffff);
        assert_eq!(fold(0x1_0000), 1);
        assert_eq!(fold(0), 0);
    }
}
