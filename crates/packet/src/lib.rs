//! Packet formats, parsing, building, and checksums for Clara.
//!
//! This crate provides the wire-format substrate used throughout Clara:
//! zero-copy views over Ethernet II, IPv4, TCP, and UDP headers, packet
//! builders, the Internet checksum (including incremental updates per
//! RFC 1624), and flow identification (five-tuples and flow hashing).
//!
//! The design follows the smoltcp idiom: a header type wraps a byte slice
//! (`Ipv4Packet<&[u8]>`), field accessors read/write big-endian fields at
//! fixed offsets, and `check_len` validates buffer bounds before any
//! accessor may panic.
//!
//! # Example
//!
//! ```
//! use clara_packet::{PacketSpec, Proto, build_packet, parse_packet};
//!
//! let spec = PacketSpec::tcp([10, 0, 0, 1], [10, 0, 0, 2], 1234, 80, 128);
//! let bytes = build_packet(&spec);
//! let parsed = parse_packet(&bytes).unwrap();
//! assert_eq!(parsed.proto, Proto::Tcp);
//! assert_eq!(parsed.payload_len, 128);
//! ```

pub mod checksum;
pub mod ether;
pub mod flow;
pub mod ipv4;
pub mod tcp;
pub mod udp;

mod build;

pub use build::{build_packet, parse_packet, PacketSpec, ParsedPacket};
pub use checksum::{checksum, combine, incremental_update, pseudo_header_sum};
pub use ether::{EtherType, EthernetFrame, ETHERNET_HEADER_LEN};
pub use flow::{flow_hash, FiveTuple};
pub use ipv4::{Ipv4Packet, IPV4_HEADER_LEN};
pub use tcp::{TcpFlags, TcpPacket, TCP_HEADER_LEN};
pub use udp::{UdpPacket, UDP_HEADER_LEN};

use core::fmt;

/// Errors returned while parsing packet headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The buffer is too short to contain the header (or the length field
    /// claims more data than is present).
    Truncated,
    /// A header field holds a value this crate does not support
    /// (e.g. an IPv4 IHL below 5, or a non-IPv4 version number).
    Malformed,
    /// A verified checksum did not match.
    BadChecksum,
    /// The protocol is not one Clara models (only IPv4/TCP/UDP are).
    Unsupported,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Truncated => write!(f, "buffer too short for header"),
            Error::Malformed => write!(f, "malformed header field"),
            Error::BadChecksum => write!(f, "checksum mismatch"),
            Error::Unsupported => write!(f, "unsupported protocol"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used by all fallible packet operations.
pub type Result<T> = core::result::Result<T, Error>;

/// Transport protocols modelled by Clara.
///
/// The simulator and predictor only distinguish TCP and UDP (the paper's
/// workload profiles are phrased as "80% TCP vs 20% UDP"); everything else
/// is `Other` and treated as opaque payload by the NFs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Proto {
    /// Transmission Control Protocol (IP protocol 6).
    Tcp,
    /// User Datagram Protocol (IP protocol 17).
    Udp,
    /// Any other IP protocol, carried with its protocol number.
    Other(u8),
}

impl Proto {
    /// The IP protocol number for this protocol.
    pub fn number(self) -> u8 {
        match self {
            Proto::Tcp => 6,
            Proto::Udp => 17,
            Proto::Other(n) => n,
        }
    }

    /// Classify an IP protocol number.
    pub fn from_number(n: u8) -> Self {
        match n {
            6 => Proto::Tcp,
            17 => Proto::Udp,
            other => Proto::Other(other),
        }
    }
}

impl fmt::Display for Proto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Proto::Tcp => write!(f, "TCP"),
            Proto::Udp => write!(f, "UDP"),
            Proto::Other(n) => write!(f, "proto({n})"),
        }
    }
}

/// Read a big-endian `u16` at `offset`.
///
/// Panics if the slice is too short; callers must `check_len` first.
#[inline]
pub(crate) fn get_u16(data: &[u8], offset: usize) -> u16 {
    u16::from_be_bytes([data[offset], data[offset + 1]])
}

/// Write a big-endian `u16` at `offset`.
#[inline]
pub(crate) fn set_u16(data: &mut [u8], offset: usize, value: u16) {
    data[offset..offset + 2].copy_from_slice(&value.to_be_bytes());
}

/// Read a big-endian `u32` at `offset`.
#[inline]
pub(crate) fn get_u32(data: &[u8], offset: usize) -> u32 {
    u32::from_be_bytes([
        data[offset],
        data[offset + 1],
        data[offset + 2],
        data[offset + 3],
    ])
}

/// Write a big-endian `u32` at `offset`.
#[inline]
pub(crate) fn set_u32(data: &mut [u8], offset: usize, value: u32) {
    data[offset..offset + 4].copy_from_slice(&value.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proto_roundtrip() {
        assert_eq!(Proto::from_number(6), Proto::Tcp);
        assert_eq!(Proto::from_number(17), Proto::Udp);
        assert_eq!(Proto::from_number(1), Proto::Other(1));
        for n in 0..=255u8 {
            assert_eq!(Proto::from_number(n).number(), n);
        }
    }

    #[test]
    fn proto_display() {
        assert_eq!(Proto::Tcp.to_string(), "TCP");
        assert_eq!(Proto::Udp.to_string(), "UDP");
        assert_eq!(Proto::Other(89).to_string(), "proto(89)");
    }

    #[test]
    fn endian_helpers() {
        let mut buf = [0u8; 8];
        set_u16(&mut buf, 1, 0xbeef);
        assert_eq!(get_u16(&buf, 1), 0xbeef);
        assert_eq!(buf[1], 0xbe);
        set_u32(&mut buf, 4, 0xdead_beef);
        assert_eq!(get_u32(&buf, 4), 0xdead_beef);
        assert_eq!(buf[4], 0xde);
    }

    #[test]
    fn error_display() {
        assert!(Error::Truncated.to_string().contains("short"));
        assert!(Error::BadChecksum.to_string().contains("checksum"));
    }
}
