//! TCP header view and builder.

use crate::checksum;
use crate::{get_u16, get_u32, set_u16, set_u32, Error, Result};

/// Length of a TCP header without options (data offset = 5).
pub const TCP_HEADER_LEN: usize = 20;

/// TCP flag bits (low byte of the flags field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag bit.
    pub const FIN: u8 = 0x01;
    /// SYN flag bit.
    pub const SYN: u8 = 0x02;
    /// RST flag bit.
    pub const RST: u8 = 0x04;
    /// PSH flag bit.
    pub const PSH: u8 = 0x08;
    /// ACK flag bit.
    pub const ACK: u8 = 0x10;

    /// Whether SYN is set.
    pub fn syn(self) -> bool {
        self.0 & Self::SYN != 0
    }

    /// Whether ACK is set.
    pub fn ack(self) -> bool {
        self.0 & Self::ACK != 0
    }

    /// Whether FIN is set.
    pub fn fin(self) -> bool {
        self.0 & Self::FIN != 0
    }

    /// Whether RST is set.
    pub fn rst(self) -> bool {
        self.0 & Self::RST != 0
    }
}

/// A read/write view over a TCP segment (header + payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TcpPacket<T> {
    /// Wrap a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        TcpPacket { buffer }
    }

    /// Wrap a buffer and validate the data offset against its length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let packet = Self::new_unchecked(buffer);
        packet.check_len()?;
        Ok(packet)
    }

    /// Validate minimum length and that the data offset fits the buffer.
    pub fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < TCP_HEADER_LEN {
            return Err(Error::Truncated);
        }
        let off = usize::from(data[12] >> 4) * 4;
        if off < TCP_HEADER_LEN {
            return Err(Error::Malformed);
        }
        if off > data.len() {
            return Err(Error::Truncated);
        }
        Ok(())
    }

    /// Consume the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 0)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 2)
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        get_u32(self.buffer.as_ref(), 4)
    }

    /// Acknowledgment number.
    pub fn ack_no(&self) -> u32 {
        get_u32(self.buffer.as_ref(), 8)
    }

    /// Header length in bytes (data offset × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[12] >> 4) * 4
    }

    /// Flag bits.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags(self.buffer.as_ref()[13])
    }

    /// Receive window.
    pub fn window(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 14)
    }

    /// Checksum field.
    pub fn checksum_field(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 16)
    }

    /// Payload bytes after the header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len()..]
    }

    /// Verify the TCP checksum over pseudo-header + segment.
    pub fn verify_checksum(&self, src: [u8; 4], dst: [u8; 4]) -> bool {
        let seg = self.buffer.as_ref();
        let pseudo = checksum::pseudo_header_sum(src, dst, 6, seg.len() as u16);
        checksum::fold(pseudo + checksum::sum(seg)) == 0xffff
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpPacket<T> {
    /// Set the source port.
    pub fn set_src_port(&mut self, port: u16) {
        set_u16(self.buffer.as_mut(), 0, port);
    }

    /// Set the destination port.
    pub fn set_dst_port(&mut self, port: u16) {
        set_u16(self.buffer.as_mut(), 2, port);
    }

    /// Set the sequence number.
    pub fn set_seq(&mut self, seq: u32) {
        set_u32(self.buffer.as_mut(), 4, seq);
    }

    /// Set the acknowledgment number.
    pub fn set_ack_no(&mut self, ack: u32) {
        set_u32(self.buffer.as_mut(), 8, ack);
    }

    /// Set the data offset for a 20-byte header.
    pub fn set_header_len_min(&mut self) {
        self.buffer.as_mut()[12] = 5 << 4;
    }

    /// Set the flag bits.
    pub fn set_flags(&mut self, flags: TcpFlags) {
        self.buffer.as_mut()[13] = flags.0;
    }

    /// Set the receive window.
    pub fn set_window(&mut self, window: u16) {
        set_u16(self.buffer.as_mut(), 14, window);
    }

    /// Set the checksum field.
    pub fn set_checksum_field(&mut self, ck: u16) {
        set_u16(self.buffer.as_mut(), 16, ck);
    }

    /// Compute and store the checksum (over pseudo-header + segment).
    pub fn fill_checksum(&mut self, src: [u8; 4], dst: [u8; 4]) {
        self.set_checksum_field(0);
        let seg = self.buffer.as_ref();
        let pseudo = checksum::pseudo_header_sum(src, dst, 6, seg.len() as u16);
        let ck = checksum::combine(&[pseudo, checksum::sum(seg)]);
        self.set_checksum_field(ck);
    }

    /// Mutable payload bytes after the header.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let off = self.header_len();
        &mut self.buffer.as_mut()[off..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: [u8; 4] = [10, 0, 0, 1];
    const DST: [u8; 4] = [10, 0, 0, 2];

    fn sample(payload: &[u8], flags: u8) -> Vec<u8> {
        let mut buf = vec![0u8; TCP_HEADER_LEN + payload.len()];
        {
            let mut t = TcpPacket::new_unchecked(&mut buf[..]);
            t.set_src_port(1234);
            t.set_dst_port(80);
            t.set_seq(0x01020304);
            t.set_ack_no(0x05060708);
            t.set_header_len_min();
            t.set_flags(TcpFlags(flags));
            t.set_window(65535);
            t.payload_mut().copy_from_slice(payload);
            t.fill_checksum(SRC, DST);
        }
        buf
    }

    #[test]
    fn roundtrip_fields() {
        let buf = sample(b"hello", TcpFlags::SYN | TcpFlags::ACK);
        let t = TcpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(t.src_port(), 1234);
        assert_eq!(t.dst_port(), 80);
        assert_eq!(t.seq(), 0x01020304);
        assert_eq!(t.ack_no(), 0x05060708);
        assert_eq!(t.header_len(), 20);
        assert!(t.flags().syn() && t.flags().ack());
        assert!(!t.flags().fin() && !t.flags().rst());
        assert_eq!(t.window(), 65535);
        assert_eq!(t.payload(), b"hello");
        assert!(t.verify_checksum(SRC, DST));
    }

    #[test]
    fn checksum_detects_payload_corruption() {
        let mut buf = sample(b"hello", 0);
        *buf.last_mut().unwrap() ^= 1;
        let t = TcpPacket::new_checked(&buf[..]).unwrap();
        assert!(!t.verify_checksum(SRC, DST));
    }

    #[test]
    fn checksum_covers_pseudo_header() {
        let buf = sample(b"", TcpFlags::SYN);
        let t = TcpPacket::new_checked(&buf[..]).unwrap();
        assert!(t.verify_checksum(SRC, DST));
        assert!(!t.verify_checksum([1, 1, 1, 1], DST));
    }

    #[test]
    fn odd_payload_length_checksums() {
        let buf = sample(b"abc", 0);
        let t = TcpPacket::new_checked(&buf[..]).unwrap();
        assert!(t.verify_checksum(SRC, DST));
    }

    #[test]
    fn length_validation() {
        assert_eq!(
            TcpPacket::new_checked(&[0u8; 19][..]).unwrap_err(),
            Error::Truncated
        );
        let mut buf = [0u8; 20];
        buf[12] = 4 << 4; // data offset 16 bytes, below minimum
        assert_eq!(TcpPacket::new_checked(&buf[..]).unwrap_err(), Error::Malformed);
        buf[12] = 8 << 4; // data offset 32 > 20-byte buffer
        assert_eq!(TcpPacket::new_checked(&buf[..]).unwrap_err(), Error::Truncated);
    }
}
