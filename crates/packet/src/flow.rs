//! Flow identification: five-tuples and flow hashing.
//!
//! NFs in the Clara corpus key their state on the classic five-tuple. The
//! hash defined here is an FNV-1a variant chosen for determinism across
//! runs (the simulator's cache behaviour must be reproducible for a given
//! seed, so `std::collections` hashers with random state are unsuitable).

use crate::Proto;
use core::fmt;

/// The classic transport five-tuple identifying a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: [u8; 4],
    /// Destination IPv4 address.
    pub dst_ip: [u8; 4],
    /// Source transport port (0 for non-TCP/UDP).
    pub src_port: u16,
    /// Destination transport port (0 for non-TCP/UDP).
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: Proto,
}

impl FiveTuple {
    /// Construct a five-tuple.
    pub fn new(
        src_ip: [u8; 4],
        dst_ip: [u8; 4],
        src_port: u16,
        dst_port: u16,
        proto: Proto,
    ) -> Self {
        FiveTuple { src_ip, dst_ip, src_port, dst_port, proto }
    }

    /// The reverse direction of this flow (for connection tracking).
    pub fn reversed(&self) -> Self {
        FiveTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }

    /// Deterministic 64-bit hash of this tuple.
    ///
    /// [`flow_hash`] (FNV-1a) followed by a splitmix64 finalizer: FNV-1a's
    /// low bits avalanche poorly, and flow tables index buckets with
    /// `hash % n`, so the finalizer matters for spread.
    pub fn hash64(&self) -> u64 {
        let mut bytes = [0u8; 13];
        bytes[0..4].copy_from_slice(&self.src_ip);
        bytes[4..8].copy_from_slice(&self.dst_ip);
        bytes[8..10].copy_from_slice(&self.src_port.to_be_bytes());
        bytes[10..12].copy_from_slice(&self.dst_port.to_be_bytes());
        bytes[12] = self.proto.number();
        mix64(flow_hash(&bytes))
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{}.{}.{}:{} -> {}.{}.{}.{}:{} {}",
            self.src_ip[0],
            self.src_ip[1],
            self.src_ip[2],
            self.src_ip[3],
            self.src_port,
            self.dst_ip[0],
            self.dst_ip[1],
            self.dst_ip[2],
            self.dst_ip[3],
            self.dst_port,
            self.proto,
        )
    }
}

/// Deterministic FNV-1a 64-bit hash.
///
/// Stable across platforms and runs; used for flow-table indexing in both
/// the simulator and the predictor so that their notions of "which bucket
/// does this flow land in" agree.
pub fn flow_hash(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// splitmix64 finalizer: full-avalanche bit mixer.
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple() -> FiveTuple {
        FiveTuple::new([10, 0, 0, 1], [10, 0, 0, 2], 1234, 80, Proto::Tcp)
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let t = tuple();
        let r = t.reversed();
        assert_eq!(r.src_ip, t.dst_ip);
        assert_eq!(r.dst_port, t.src_port);
        assert_eq!(r.reversed(), t);
    }

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(tuple().hash64(), tuple().hash64());
    }

    #[test]
    fn hash_differs_across_fields() {
        let base = tuple();
        let mut other = base;
        other.src_port = 1235;
        assert_ne!(base.hash64(), other.hash64());
        let mut other = base;
        other.proto = Proto::Udp;
        assert_ne!(base.hash64(), other.hash64());
        let mut other = base;
        other.dst_ip = [10, 0, 0, 3];
        assert_ne!(base.hash64(), other.hash64());
    }

    #[test]
    fn fnv_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(flow_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(flow_hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(flow_hash(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn display_formats_tuple() {
        let s = tuple().to_string();
        assert_eq!(s, "10.0.0.1:1234 -> 10.0.0.2:80 TCP");
    }

    #[test]
    fn hashes_spread_over_buckets() {
        // 10k sequential flows should touch most of 1024 buckets; a weak
        // hash would clump.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u32 {
            let t = FiveTuple::new(
                [10, 0, (i >> 8) as u8, i as u8],
                [10, 1, 0, 1],
                (1000 + (i % 5000)) as u16,
                80,
                Proto::Tcp,
            );
            seen.insert((t.hash64() % 1024) as u16);
        }
        assert!(seen.len() > 1000, "only {} of 1024 buckets hit", seen.len());
    }
}
