//! Whole-packet construction and parsing.
//!
//! [`PacketSpec`] is the abstract description used by workload generators;
//! [`build_packet`] turns it into real wire bytes (Ethernet/IPv4/TCP|UDP
//! with valid checksums) and [`parse_packet`] recovers the description
//! from wire bytes (e.g. when reading a pcap trace).

use crate::ether::{EtherType, EthernetFrame, ETHERNET_HEADER_LEN};
use crate::flow::FiveTuple;
use crate::ipv4::{Ipv4Packet, IPV4_HEADER_LEN};
use crate::tcp::{TcpFlags, TcpPacket, TCP_HEADER_LEN};
use crate::udp::{UdpPacket, UDP_HEADER_LEN};
use crate::{Error, Proto, Result};

/// Abstract description of a packet to synthesize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketSpec {
    /// Flow five-tuple.
    pub flow: FiveTuple,
    /// Transport payload length in bytes.
    pub payload_len: usize,
    /// TCP flags (ignored for UDP).
    pub tcp_flags: TcpFlags,
    /// First payload byte pattern seed; payload byte `i` is
    /// `seed.wrapping_add(i as u8)`, so DPI workloads see varied content.
    pub payload_seed: u8,
}

impl PacketSpec {
    /// A TCP packet with the given endpoints and payload length.
    pub fn tcp(
        src_ip: [u8; 4],
        dst_ip: [u8; 4],
        src_port: u16,
        dst_port: u16,
        payload_len: usize,
    ) -> Self {
        PacketSpec {
            flow: FiveTuple::new(src_ip, dst_ip, src_port, dst_port, Proto::Tcp),
            payload_len,
            tcp_flags: TcpFlags(TcpFlags::ACK),
            payload_seed: 0,
        }
    }

    /// A UDP packet with the given endpoints and payload length.
    pub fn udp(
        src_ip: [u8; 4],
        dst_ip: [u8; 4],
        src_port: u16,
        dst_port: u16,
        payload_len: usize,
    ) -> Self {
        PacketSpec {
            flow: FiveTuple::new(src_ip, dst_ip, src_port, dst_port, Proto::Udp),
            payload_len,
            tcp_flags: TcpFlags::default(),
            payload_seed: 0,
        }
    }

    /// Mark this (TCP) packet as a SYN.
    pub fn with_syn(mut self) -> Self {
        self.tcp_flags = TcpFlags(TcpFlags::SYN);
        self
    }

    /// Set the payload pattern seed.
    pub fn with_payload_seed(mut self, seed: u8) -> Self {
        self.payload_seed = seed;
        self
    }

    /// Total wire length of the frame this spec builds.
    pub fn wire_len(&self) -> usize {
        let transport = match self.flow.proto {
            Proto::Tcp => TCP_HEADER_LEN,
            Proto::Udp => UDP_HEADER_LEN,
            Proto::Other(_) => 0,
        };
        ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + transport + self.payload_len
    }
}

/// The result of parsing a wire frame back into a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedPacket {
    /// Flow five-tuple.
    pub flow: FiveTuple,
    /// Transport protocol (same as `flow.proto`, for convenience).
    pub proto: Proto,
    /// Transport payload length in bytes.
    pub payload_len: usize,
    /// TCP flags (zero for UDP).
    pub tcp_flags: TcpFlags,
    /// Total frame length on the wire.
    pub wire_len: usize,
}

/// Build wire bytes (Ethernet/IPv4/transport, valid checksums) from a spec.
pub fn build_packet(spec: &PacketSpec) -> Vec<u8> {
    let mut buf = vec![0u8; spec.wire_len()];

    let mut eth = EthernetFrame::new_unchecked(&mut buf[..]);
    eth.set_dst_mac([0x02, 0, 0, 0, 0, 0x02]);
    eth.set_src_mac([0x02, 0, 0, 0, 0, 0x01]);
    eth.set_ethertype(EtherType::Ipv4);

    let ip_total = (spec.wire_len() - ETHERNET_HEADER_LEN) as u16;
    let mut ip = Ipv4Packet::new_unchecked(eth.payload_mut());
    ip.set_version_ihl();
    ip.set_total_len(ip_total);
    ip.set_ident((spec.flow.hash64() & 0xffff) as u16);
    ip.set_dont_fragment();
    ip.set_ttl(64);
    ip.set_proto(spec.flow.proto);
    ip.set_src_addr(spec.flow.src_ip);
    ip.set_dst_addr(spec.flow.dst_ip);
    ip.fill_checksum();

    let (src, dst) = (spec.flow.src_ip, spec.flow.dst_ip);
    match spec.flow.proto {
        Proto::Tcp => {
            let mut tcp = TcpPacket::new_unchecked(ip.payload_mut());
            tcp.set_src_port(spec.flow.src_port);
            tcp.set_dst_port(spec.flow.dst_port);
            tcp.set_seq(1);
            tcp.set_ack_no(if spec.tcp_flags.ack() { 1 } else { 0 });
            tcp.set_header_len_min();
            tcp.set_flags(spec.tcp_flags);
            tcp.set_window(65535);
            fill_payload(tcp.payload_mut(), spec.payload_seed);
            tcp.fill_checksum(src, dst);
        }
        Proto::Udp => {
            let mut udp = UdpPacket::new_unchecked(ip.payload_mut());
            udp.set_src_port(spec.flow.src_port);
            udp.set_dst_port(spec.flow.dst_port);
            udp.set_len_field((UDP_HEADER_LEN + spec.payload_len) as u16);
            fill_payload(udp.payload_mut(), spec.payload_seed);
            udp.fill_checksum(src, dst);
        }
        Proto::Other(_) => {
            fill_payload(ip.payload_mut(), spec.payload_seed);
        }
    }
    buf
}

fn fill_payload(payload: &mut [u8], seed: u8) {
    for (i, b) in payload.iter_mut().enumerate() {
        *b = seed.wrapping_add(i as u8);
    }
}

/// Parse a wire frame (as produced by [`build_packet`] or read from a pcap)
/// back into a [`ParsedPacket`].
pub fn parse_packet(frame: &[u8]) -> Result<ParsedPacket> {
    let eth = EthernetFrame::new_checked(frame)?;
    if eth.ethertype() != EtherType::Ipv4 {
        return Err(Error::Unsupported);
    }
    let ip = Ipv4Packet::new_checked(eth.payload())?;
    let proto = ip.proto();
    let (src_port, dst_port, payload_len, tcp_flags) = match proto {
        Proto::Tcp => {
            let tcp = TcpPacket::new_checked(ip.payload())?;
            (
                tcp.src_port(),
                tcp.dst_port(),
                tcp.payload().len(),
                tcp.flags(),
            )
        }
        Proto::Udp => {
            let udp = UdpPacket::new_checked(ip.payload())?;
            (
                udp.src_port(),
                udp.dst_port(),
                udp.payload().len(),
                TcpFlags::default(),
            )
        }
        Proto::Other(_) => (0, 0, ip.payload().len(), TcpFlags::default()),
    };
    Ok(ParsedPacket {
        flow: FiveTuple::new(ip.src_addr(), ip.dst_addr(), src_port, dst_port, proto),
        proto,
        payload_len,
        tcp_flags,
        wire_len: frame.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_roundtrip() {
        let spec = PacketSpec::tcp([10, 0, 0, 1], [10, 0, 0, 2], 40000, 443, 300).with_syn();
        let bytes = build_packet(&spec);
        assert_eq!(bytes.len(), spec.wire_len());
        let parsed = parse_packet(&bytes).unwrap();
        assert_eq!(parsed.flow, spec.flow);
        assert_eq!(parsed.payload_len, 300);
        assert!(parsed.tcp_flags.syn());
    }

    #[test]
    fn udp_roundtrip() {
        let spec = PacketSpec::udp([1, 2, 3, 4], [5, 6, 7, 8], 9999, 53, 64);
        let bytes = build_packet(&spec);
        let parsed = parse_packet(&bytes).unwrap();
        assert_eq!(parsed.flow, spec.flow);
        assert_eq!(parsed.proto, Proto::Udp);
        assert_eq!(parsed.payload_len, 64);
    }

    #[test]
    fn built_checksums_verify() {
        let spec = PacketSpec::tcp([10, 9, 8, 7], [6, 5, 4, 3], 1, 2, 77);
        let bytes = build_packet(&spec);
        let eth = EthernetFrame::new_checked(&bytes[..]).unwrap();
        let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
        assert!(ip.verify_checksum());
        let tcp = TcpPacket::new_checked(ip.payload()).unwrap();
        assert!(tcp.verify_checksum(ip.src_addr(), ip.dst_addr()));
    }

    #[test]
    fn payload_pattern_varies_with_seed() {
        let a = build_packet(&PacketSpec::udp([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, 16));
        let b = build_packet(
            &PacketSpec::udp([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, 16).with_payload_seed(42),
        );
        assert_ne!(a, b);
    }

    #[test]
    fn non_ipv4_rejected() {
        let mut bytes = build_packet(&PacketSpec::udp([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, 8));
        bytes[12] = 0x86;
        bytes[13] = 0xdd; // IPv6 ethertype
        assert_eq!(parse_packet(&bytes).unwrap_err(), Error::Unsupported);
    }

    #[test]
    fn zero_payload_ok() {
        let spec = PacketSpec::tcp([10, 0, 0, 1], [10, 0, 0, 2], 1, 2, 0);
        let parsed = parse_packet(&build_packet(&spec)).unwrap();
        assert_eq!(parsed.payload_len, 0);
    }

    #[test]
    fn other_proto_builds_and_parses() {
        let mut spec = PacketSpec::udp([9, 9, 9, 9], [8, 8, 8, 8], 0, 0, 32);
        spec.flow.proto = Proto::Other(47); // GRE
        let parsed = parse_packet(&build_packet(&spec)).unwrap();
        assert_eq!(parsed.proto, Proto::Other(47));
        assert_eq!(parsed.payload_len, 32);
    }
}
