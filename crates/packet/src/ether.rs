//! Ethernet II frame view and builder.

use crate::{get_u16, set_u16, Error, Result};

/// Length of an Ethernet II header (dst MAC, src MAC, ethertype).
pub const ETHERNET_HEADER_LEN: usize = 14;

/// Well-known EtherType values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806).
    Arp,
    /// IPv6 (0x86DD).
    Ipv6,
    /// Anything else, carried verbatim.
    Other(u16),
}

impl EtherType {
    /// The 16-bit wire value.
    pub fn value(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Ipv6 => 0x86dd,
            EtherType::Other(v) => v,
        }
    }

    /// Classify a wire value.
    pub fn from_value(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x86dd => EtherType::Ipv6,
            other => EtherType::Other(other),
        }
    }
}

/// A read/write view over an Ethernet II frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthernetFrame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> EthernetFrame<T> {
    /// Wrap a buffer without checking its length.
    pub fn new_unchecked(buffer: T) -> Self {
        EthernetFrame { buffer }
    }

    /// Wrap a buffer, ensuring it is long enough to hold the header.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let frame = Self::new_unchecked(buffer);
        frame.check_len()?;
        Ok(frame)
    }

    /// Ensure the buffer holds at least a full header.
    pub fn check_len(&self) -> Result<()> {
        if self.buffer.as_ref().len() < ETHERNET_HEADER_LEN {
            Err(Error::Truncated)
        } else {
            Ok(())
        }
    }

    /// Consume the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Destination MAC address.
    pub fn dst_mac(&self) -> [u8; 6] {
        let d = self.buffer.as_ref();
        [d[0], d[1], d[2], d[3], d[4], d[5]]
    }

    /// Source MAC address.
    pub fn src_mac(&self) -> [u8; 6] {
        let d = self.buffer.as_ref();
        [d[6], d[7], d[8], d[9], d[10], d[11]]
    }

    /// EtherType field.
    pub fn ethertype(&self) -> EtherType {
        EtherType::from_value(get_u16(self.buffer.as_ref(), 12))
    }

    /// The bytes following the Ethernet header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[ETHERNET_HEADER_LEN..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> EthernetFrame<T> {
    /// Set the destination MAC address.
    pub fn set_dst_mac(&mut self, mac: [u8; 6]) {
        self.buffer.as_mut()[0..6].copy_from_slice(&mac);
    }

    /// Set the source MAC address.
    pub fn set_src_mac(&mut self, mac: [u8; 6]) {
        self.buffer.as_mut()[6..12].copy_from_slice(&mac);
    }

    /// Set the EtherType field.
    pub fn set_ethertype(&mut self, ty: EtherType) {
        set_u16(self.buffer.as_mut(), 12, ty.value());
    }

    /// Mutable access to the bytes following the header.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[ETHERNET_HEADER_LEN..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethertype_roundtrip() {
        for ty in [
            EtherType::Ipv4,
            EtherType::Arp,
            EtherType::Ipv6,
            EtherType::Other(0x1234),
        ] {
            assert_eq!(EtherType::from_value(ty.value()), ty);
        }
    }

    #[test]
    fn too_short_rejected() {
        assert_eq!(
            EthernetFrame::new_checked(&[0u8; 13][..]).unwrap_err(),
            Error::Truncated
        );
        assert!(EthernetFrame::new_checked(&[0u8; 14][..]).is_ok());
    }

    #[test]
    fn field_roundtrip() {
        let mut buf = [0u8; 20];
        let mut frame = EthernetFrame::new_checked(&mut buf[..]).unwrap();
        frame.set_dst_mac([1, 2, 3, 4, 5, 6]);
        frame.set_src_mac([7, 8, 9, 10, 11, 12]);
        frame.set_ethertype(EtherType::Ipv4);
        frame.payload_mut().fill(0xaa);

        assert_eq!(frame.dst_mac(), [1, 2, 3, 4, 5, 6]);
        assert_eq!(frame.src_mac(), [7, 8, 9, 10, 11, 12]);
        assert_eq!(frame.ethertype(), EtherType::Ipv4);
        assert_eq!(frame.payload(), &[0xaa; 6]);
    }

    #[test]
    fn into_inner_returns_buffer() {
        let buf = vec![0u8; 14];
        let frame = EthernetFrame::new_checked(buf).unwrap();
        assert_eq!(frame.into_inner().len(), 14);
    }
}
