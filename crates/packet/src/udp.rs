//! UDP header view and builder.

use crate::checksum;
use crate::{get_u16, set_u16, Error, Result};

/// Length of a UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// A read/write view over a UDP datagram (header + payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpPacket<T> {
    /// Wrap a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        UdpPacket { buffer }
    }

    /// Wrap a buffer and validate the length field against it.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let packet = Self::new_unchecked(buffer);
        packet.check_len()?;
        Ok(packet)
    }

    /// Validate minimum length and the UDP length field.
    pub fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < UDP_HEADER_LEN {
            return Err(Error::Truncated);
        }
        let len = usize::from(get_u16(data, 4));
        if len < UDP_HEADER_LEN {
            return Err(Error::Malformed);
        }
        if len > data.len() {
            return Err(Error::Truncated);
        }
        Ok(())
    }

    /// Consume the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 0)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 2)
    }

    /// UDP length field (header + payload).
    pub fn len_field(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 4)
    }

    /// Checksum field.
    pub fn checksum_field(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 6)
    }

    /// Payload bytes (bounded by the UDP length field).
    pub fn payload(&self) -> &[u8] {
        let len = usize::from(self.len_field());
        &self.buffer.as_ref()[UDP_HEADER_LEN..len]
    }

    /// Verify the checksum over pseudo-header + datagram.
    ///
    /// An all-zero checksum field means "no checksum" in UDP over IPv4 and
    /// is accepted.
    pub fn verify_checksum(&self, src: [u8; 4], dst: [u8; 4]) -> bool {
        if self.checksum_field() == 0 {
            return true;
        }
        let len = usize::from(self.len_field());
        let dgram = &self.buffer.as_ref()[..len];
        let pseudo = checksum::pseudo_header_sum(src, dst, 17, len as u16);
        checksum::fold(pseudo + checksum::sum(dgram)) == 0xffff
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpPacket<T> {
    /// Set the source port.
    pub fn set_src_port(&mut self, port: u16) {
        set_u16(self.buffer.as_mut(), 0, port);
    }

    /// Set the destination port.
    pub fn set_dst_port(&mut self, port: u16) {
        set_u16(self.buffer.as_mut(), 2, port);
    }

    /// Set the UDP length field.
    pub fn set_len_field(&mut self, len: u16) {
        set_u16(self.buffer.as_mut(), 4, len);
    }

    /// Set the checksum field.
    pub fn set_checksum_field(&mut self, ck: u16) {
        set_u16(self.buffer.as_mut(), 6, ck);
    }

    /// Compute and store the checksum. Per RFC 768, a computed checksum of
    /// zero is transmitted as `0xffff`.
    pub fn fill_checksum(&mut self, src: [u8; 4], dst: [u8; 4]) {
        self.set_checksum_field(0);
        let len = usize::from(self.len_field());
        let dgram = &self.buffer.as_ref()[..len];
        let pseudo = checksum::pseudo_header_sum(src, dst, 17, len as u16);
        let ck = checksum::combine(&[pseudo, checksum::sum(dgram)]);
        self.set_checksum_field(if ck == 0 { 0xffff } else { ck });
    }

    /// Mutable payload bytes.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let len = usize::from(self.len_field());
        &mut self.buffer.as_mut()[UDP_HEADER_LEN..len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: [u8; 4] = [192, 168, 0, 1];
    const DST: [u8; 4] = [192, 168, 0, 9];

    fn sample(payload: &[u8]) -> Vec<u8> {
        let mut buf = vec![0u8; UDP_HEADER_LEN + payload.len()];
        {
            let mut u = UdpPacket::new_unchecked(&mut buf[..]);
            u.set_src_port(5353);
            u.set_dst_port(53);
            u.set_len_field((UDP_HEADER_LEN + payload.len()) as u16);
            u.payload_mut().copy_from_slice(payload);
            u.fill_checksum(SRC, DST);
        }
        buf
    }

    #[test]
    fn roundtrip_fields() {
        let buf = sample(b"query");
        let u = UdpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(u.src_port(), 5353);
        assert_eq!(u.dst_port(), 53);
        assert_eq!(u.len_field(), 13);
        assert_eq!(u.payload(), b"query");
        assert!(u.verify_checksum(SRC, DST));
    }

    #[test]
    fn zero_checksum_accepted() {
        let mut buf = sample(b"x");
        let mut u = UdpPacket::new_unchecked(&mut buf[..]);
        u.set_checksum_field(0);
        let u = UdpPacket::new_checked(&buf[..]).unwrap();
        assert!(u.verify_checksum(SRC, DST));
    }

    #[test]
    fn corruption_detected() {
        let mut buf = sample(b"payload");
        *buf.last_mut().unwrap() ^= 0x40;
        let u = UdpPacket::new_checked(&buf[..]).unwrap();
        assert!(!u.verify_checksum(SRC, DST));
    }

    #[test]
    fn length_validation() {
        assert_eq!(
            UdpPacket::new_checked(&[0u8; 7][..]).unwrap_err(),
            Error::Truncated
        );
        let mut buf = [0u8; 8];
        buf[5] = 4; // UDP length 4 < 8
        assert_eq!(UdpPacket::new_checked(&buf[..]).unwrap_err(), Error::Malformed);
        buf[5] = 20; // UDP length 20 > 8-byte buffer
        assert_eq!(UdpPacket::new_checked(&buf[..]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn payload_bounded_by_len_field() {
        let mut buf = sample(b"abcd");
        buf.extend_from_slice(&[0u8; 6]); // Ethernet padding
        let u = UdpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(u.payload(), b"abcd");
    }
}
