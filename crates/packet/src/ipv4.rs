//! IPv4 header view and builder.

use crate::checksum;
use crate::{get_u16, get_u32, set_u16, Error, Proto, Result};

/// Length of an IPv4 header without options (IHL = 5).
pub const IPV4_HEADER_LEN: usize = 20;

/// A read/write view over an IPv4 packet (header + payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wrap a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Ipv4Packet { buffer }
    }

    /// Wrap a buffer and validate version, IHL, and length fields.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let packet = Self::new_unchecked(buffer);
        packet.check_len()?;
        Ok(packet)
    }

    /// Validate version, IHL, and that `total_len` fits in the buffer.
    pub fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < IPV4_HEADER_LEN {
            return Err(Error::Truncated);
        }
        if data[0] >> 4 != 4 {
            return Err(Error::Malformed);
        }
        let ihl = usize::from(data[0] & 0x0f) * 4;
        if ihl < IPV4_HEADER_LEN {
            return Err(Error::Malformed);
        }
        let total = usize::from(get_u16(data, 2));
        if total < ihl || total > data.len() {
            return Err(Error::Truncated);
        }
        Ok(())
    }

    /// Consume the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[0] & 0x0f) * 4
    }

    /// Total packet length (header + payload) from the length field.
    pub fn total_len(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 2)
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 4)
    }

    /// Time-to-live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[8]
    }

    /// Transport protocol.
    pub fn proto(&self) -> Proto {
        Proto::from_number(self.buffer.as_ref()[9])
    }

    /// Header checksum field.
    pub fn header_checksum(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 10)
    }

    /// Source address.
    pub fn src_addr(&self) -> [u8; 4] {
        let d = self.buffer.as_ref();
        [d[12], d[13], d[14], d[15]]
    }

    /// Destination address.
    pub fn dst_addr(&self) -> [u8; 4] {
        let d = self.buffer.as_ref();
        [d[16], d[17], d[18], d[19]]
    }

    /// Source address as a `u32` (host order), convenient for LPM keys.
    pub fn src_addr_u32(&self) -> u32 {
        get_u32(self.buffer.as_ref(), 12)
    }

    /// Destination address as a `u32` (host order), convenient for LPM keys.
    pub fn dst_addr_u32(&self) -> u32 {
        get_u32(self.buffer.as_ref(), 16)
    }

    /// Verify the header checksum.
    pub fn verify_checksum(&self) -> bool {
        let hdr = &self.buffer.as_ref()[..self.header_len()];
        checksum::fold(checksum::sum(hdr)) == 0xffff
    }

    /// The transport payload (bytes between header and `total_len`).
    pub fn payload(&self) -> &[u8] {
        let hl = self.header_len();
        let total = usize::from(self.total_len());
        &self.buffer.as_ref()[hl..total]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    /// Initialize version/IHL for a 20-byte header and zero DSCP/ECN.
    pub fn set_version_ihl(&mut self) {
        self.buffer.as_mut()[0] = 0x45;
        self.buffer.as_mut()[1] = 0;
    }

    /// Set the total length field.
    pub fn set_total_len(&mut self, len: u16) {
        set_u16(self.buffer.as_mut(), 2, len);
    }

    /// Set the identification field.
    pub fn set_ident(&mut self, ident: u16) {
        set_u16(self.buffer.as_mut(), 4, ident);
    }

    /// Set flags and fragment offset to "don't fragment, offset 0".
    pub fn set_dont_fragment(&mut self) {
        set_u16(self.buffer.as_mut(), 6, 0x4000);
    }

    /// Set the TTL.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[8] = ttl;
    }

    /// Set the transport protocol.
    pub fn set_proto(&mut self, proto: Proto) {
        self.buffer.as_mut()[9] = proto.number();
    }

    /// Set the header checksum field.
    pub fn set_header_checksum(&mut self, ck: u16) {
        set_u16(self.buffer.as_mut(), 10, ck);
    }

    /// Set the source address.
    pub fn set_src_addr(&mut self, addr: [u8; 4]) {
        self.buffer.as_mut()[12..16].copy_from_slice(&addr);
    }

    /// Set the destination address.
    pub fn set_dst_addr(&mut self, addr: [u8; 4]) {
        self.buffer.as_mut()[16..20].copy_from_slice(&addr);
    }

    /// Recompute and store the header checksum.
    pub fn fill_checksum(&mut self) {
        self.set_header_checksum(0);
        let hl = self.header_len();
        let ck = checksum::checksum(&self.buffer.as_ref()[..hl]);
        self.set_header_checksum(ck);
    }

    /// Mutable access to the transport payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let hl = self.header_len();
        let total = usize::from(self.total_len());
        &mut self.buffer.as_mut()[hl..total]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(payload_len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; IPV4_HEADER_LEN + payload_len];
        {
            let mut p = Ipv4Packet::new_unchecked(&mut buf[..]);
            p.set_version_ihl();
            p.set_total_len((IPV4_HEADER_LEN + payload_len) as u16);
            p.set_ident(0x1c46);
            p.set_dont_fragment();
            p.set_ttl(64);
            p.set_proto(Proto::Tcp);
            p.set_src_addr([10, 0, 0, 1]);
            p.set_dst_addr([10, 0, 0, 2]);
            p.fill_checksum();
        }
        buf
    }

    #[test]
    fn roundtrip_fields() {
        let buf = sample(8);
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.header_len(), 20);
        assert_eq!(p.total_len(), 28);
        assert_eq!(p.ident(), 0x1c46);
        assert_eq!(p.ttl(), 64);
        assert_eq!(p.proto(), Proto::Tcp);
        assert_eq!(p.src_addr(), [10, 0, 0, 1]);
        assert_eq!(p.dst_addr(), [10, 0, 0, 2]);
        assert_eq!(p.src_addr_u32(), 0x0a000001);
        assert_eq!(p.payload().len(), 8);
        assert!(p.verify_checksum());
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut buf = sample(0);
        buf[12] ^= 0xff; // flip a source-address byte
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(!p.verify_checksum());
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = sample(0);
        buf[0] = 0x65; // version 6
        assert_eq!(Ipv4Packet::new_checked(&buf[..]).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn rejects_bad_ihl() {
        let mut buf = sample(0);
        buf[0] = 0x44; // IHL 4 -> 16 bytes, below minimum
        assert_eq!(Ipv4Packet::new_checked(&buf[..]).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn rejects_total_len_beyond_buffer() {
        let mut buf = sample(0);
        buf[3] = 200; // total_len = 200 > buffer
        assert_eq!(Ipv4Packet::new_checked(&buf[..]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn rejects_short_buffer() {
        assert_eq!(
            Ipv4Packet::new_checked(&[0u8; 10][..]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn payload_respects_total_len() {
        // Buffer longer than total_len (e.g. Ethernet padding): payload stops
        // at total_len.
        let mut buf = sample(4);
        buf.extend_from_slice(&[0xee; 10]);
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.payload().len(), 4);
    }

    #[test]
    fn incremental_nat_rewrite_matches_refill() {
        // Rewrite the source address the way a NAT does and check that the
        // RFC 1624 incremental update agrees with a full recompute.
        let mut buf = sample(16);
        let (old, ck) = {
            let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
            (p.src_addr_u32(), p.header_checksum())
        };
        let new = u32::from_be_bytes([192, 168, 1, 77]);
        let incr = crate::checksum::incremental_update_u32(ck, old, new);

        let mut p = Ipv4Packet::new_unchecked(&mut buf[..]);
        p.set_src_addr([192, 168, 1, 77]);
        p.fill_checksum();
        assert_eq!(p.header_checksum(), incr);
    }
}
