//! Property tests: build/parse round-trips and checksum invariants.

use clara_packet::{
    build_packet, checksum, incremental_update, parse_packet, FiveTuple, PacketSpec, Proto,
    TcpFlags,
};
use proptest::prelude::*;

fn arb_ip() -> impl Strategy<Value = [u8; 4]> {
    any::<[u8; 4]>()
}

fn arb_spec() -> impl Strategy<Value = PacketSpec> {
    (
        arb_ip(),
        arb_ip(),
        any::<u16>(),
        any::<u16>(),
        0usize..1460,
        any::<bool>(),
        any::<bool>(),
        any::<u8>(),
    )
        .prop_map(|(src, dst, sp, dp, len, is_tcp, syn, seed)| {
            let mut spec = if is_tcp {
                let s = PacketSpec::tcp(src, dst, sp, dp, len);
                if syn {
                    s.with_syn()
                } else {
                    s
                }
            } else {
                PacketSpec::udp(src, dst, sp, dp, len)
            };
            spec.payload_seed = seed;
            spec
        })
}

proptest! {
    /// build -> parse recovers the five-tuple, protocol, and payload length.
    #[test]
    fn build_parse_roundtrip(spec in arb_spec()) {
        let bytes = build_packet(&spec);
        prop_assert_eq!(bytes.len(), spec.wire_len());
        let parsed = parse_packet(&bytes).unwrap();
        prop_assert_eq!(parsed.flow, spec.flow);
        prop_assert_eq!(parsed.payload_len, spec.payload_len);
        if spec.flow.proto == Proto::Tcp {
            prop_assert_eq!(parsed.tcp_flags.syn(), spec.tcp_flags.syn());
        } else {
            prop_assert_eq!(parsed.tcp_flags, TcpFlags::default());
        }
    }

    /// The checksum of any buffer with its own checksum folded in sums to
    /// 0xffff (the receiver-side verification identity).
    #[test]
    fn checksum_self_verifies(data in proptest::collection::vec(any::<u8>(), 2..256)) {
        let mut data = data;
        let even = data.len() & !1;
        let ck = checksum(&data[..even]);
        data[0] = 0; // placeholder for where a checksum field would go
        // Simpler identity: sum(data) + checksum(data) folds to 0xffff.
        let ck2 = checksum(&data);
        let total = clara_packet::checksum::fold(
            clara_packet::checksum::sum(&data) + u32::from(ck2),
        );
        prop_assert_eq!(total, 0xffff);
        let _ = ck;
    }

    /// Incremental checksum update equals full recomputation for any
    /// 16-bit field change at any even offset.
    #[test]
    fn incremental_equals_recompute(
        data in proptest::collection::vec(any::<u8>(), 4..128),
        idx in 0usize..62,
        new in any::<u16>(),
    ) {
        let mut data = data;
        if data.len() % 2 == 1 { data.pop(); }
        let idx = (idx * 2) % (data.len() - 1);
        let idx = idx & !1;
        let before = checksum(&data);
        let old = u16::from_be_bytes([data[idx], data[idx + 1]]);
        data[idx..idx + 2].copy_from_slice(&new.to_be_bytes());
        let after = checksum(&data);
        prop_assert_eq!(incremental_update(before, old, new), after);
    }

    /// Flow hash: reversing twice is the identity, and the hash only
    /// depends on field values.
    #[test]
    fn flow_reverse_involution(
        src in arb_ip(), dst in arb_ip(), sp in any::<u16>(), dp in any::<u16>()
    ) {
        let t = FiveTuple::new(src, dst, sp, dp, Proto::Tcp);
        prop_assert_eq!(t.reversed().reversed(), t);
        prop_assert_eq!(t.hash64(), FiveTuple::new(src, dst, sp, dp, Proto::Tcp).hash64());
    }
}
