//! Property test: on small random 0/1 ILPs, branch-and-bound must agree
//! with exhaustive enumeration.

use clara_ilp::{LinExpr, Model, Rel, SolveError};
use proptest::prelude::*;

/// A small random 0/1 problem: n vars, m "≤" constraints with small
/// integer coefficients, and an integer objective.
#[derive(Debug, Clone)]
struct Problem {
    n: usize,
    cons: Vec<(Vec<i8>, i16)>,
    obj: Vec<i8>,
    maximize: bool,
}

fn arb_problem() -> impl Strategy<Value = Problem> {
    (2usize..6, 1usize..5).prop_flat_map(|(n, m)| {
        (
            proptest::collection::vec(
                (
                    proptest::collection::vec(-4i8..5, n),
                    -6i16..20,
                ),
                m,
            ),
            proptest::collection::vec(-5i8..6, n),
            any::<bool>(),
        )
            .prop_map(move |(cons, obj, maximize)| Problem { n, cons, obj, maximize })
    })
}

fn brute_force(p: &Problem) -> Option<f64> {
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << p.n) {
        let x: Vec<f64> = (0..p.n)
            .map(|i| if mask & (1 << i) != 0 { 1.0 } else { 0.0 })
            .collect();
        let feasible = p.cons.iter().all(|(coeffs, rhs)| {
            let lhs: f64 = coeffs.iter().zip(&x).map(|(&c, v)| c as f64 * v).sum();
            lhs <= *rhs as f64 + 1e-9
        });
        if !feasible {
            continue;
        }
        let val: f64 = p.obj.iter().zip(&x).map(|(&c, v)| c as f64 * v).sum();
        best = Some(match best {
            None => val,
            Some(b) => {
                if p.maximize {
                    b.max(val)
                } else {
                    b.min(val)
                }
            }
        });
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn bnb_matches_bruteforce(p in arb_problem()) {
        let mut m = if p.maximize { Model::maximize() } else { Model::minimize() };
        let vars: Vec<_> = (0..p.n).map(|i| m.binary(format!("x{i}"))).collect();
        for (coeffs, rhs) in &p.cons {
            let expr = LinExpr::sum(
                coeffs.iter().zip(&vars).map(|(&c, &v)| c as f64 * v),
            );
            m.constraint(expr, Rel::Le, *rhs as f64);
        }
        m.objective(LinExpr::sum(
            p.obj.iter().zip(&vars).map(|(&c, &v)| c as f64 * v),
        ));

        match (m.solve(), brute_force(&p)) {
            (Ok(sol), Some(expected)) => {
                prop_assert!(
                    (sol.objective() - expected).abs() < 1e-6,
                    "solver {} vs brute force {}", sol.objective(), expected
                );
                // The reported assignment must itself be feasible.
                for (coeffs, rhs) in &p.cons {
                    let lhs: f64 = coeffs
                        .iter()
                        .zip(&vars)
                        .map(|(&c, &v)| c as f64 * sol.value(v))
                        .sum();
                    prop_assert!(lhs <= *rhs as f64 + 1e-6);
                }
                for &v in &vars {
                    let val = sol.value(v);
                    prop_assert!((val - val.round()).abs() < 1e-6);
                }
            }
            (Err(SolveError::Infeasible), None) => {}
            (got, expected) => {
                return Err(TestCaseError::fail(format!(
                    "solver {got:?} vs brute force {expected:?}"
                )));
            }
        }
    }
}
