//! Differential property tests: the fast solve path (flat tableau,
//! warm-started branch-and-bound, relaxation memoization — the
//! [`clara_ilp::SolverConfig`] default) must agree with the seed's dense
//! reference solver ([`SolverConfig::baseline`]) on randomized problems.
//!
//! Assignments may legitimately differ when optima tie; the *optimal
//! value* and the feasible/infeasible classification may not.

use clara_ilp::{LinExpr, Model, Rel, SolveBudget, SolverConfig, SolveError};
use proptest::prelude::*;

/// A small random LP/ILP: `n` vars bounded in `[0, ub]`, `m` "≤"
/// constraints with small integer coefficients, integer objective.
#[derive(Debug, Clone)]
struct Problem {
    n: usize,
    ubs: Vec<u8>,
    cons: Vec<(Vec<i8>, i16)>,
    obj: Vec<i8>,
    maximize: bool,
}

fn arb_problem(max_ub: u8) -> impl Strategy<Value = Problem> {
    (2usize..7, 1usize..6).prop_flat_map(move |(n, m)| {
        (
            proptest::collection::vec(1..=max_ub, n),
            proptest::collection::vec(
                (proptest::collection::vec(-4i8..5, n), -8i16..25),
                m,
            ),
            proptest::collection::vec(-5i8..6, n),
            any::<bool>(),
        )
            .prop_map(move |(ubs, cons, obj, maximize)| Problem {
                n,
                ubs,
                cons,
                obj,
                maximize,
            })
    })
}

/// Build the model with continuous (`relaxed = true`) or 0/1-style
/// integer variables.
fn build(p: &Problem, relaxed: bool) -> Model {
    let mut m = if p.maximize { Model::maximize() } else { Model::minimize() };
    let vars: Vec<_> = (0..p.n)
        .map(|i| {
            if relaxed {
                m.num_var(format!("x{i}"), 0.0, p.ubs[i] as f64)
            } else {
                m.int_var(format!("x{i}"), 0, p.ubs[i] as i64)
            }
        })
        .collect();
    for (coeffs, rhs) in &p.cons {
        let expr = LinExpr::sum(coeffs.iter().zip(&vars).map(|(&c, &v)| c as f64 * v));
        m.constraint(expr, Rel::Le, *rhs as f64);
    }
    m.objective(LinExpr::sum(
        p.obj.iter().zip(&vars).map(|(&c, &v)| c as f64 * v),
    ));
    m
}

/// Solve with both configurations and compare classifications and
/// optimal values.
fn differential(m: &Model) -> Result<(), TestCaseError> {
    let budget = SolveBudget::unlimited();
    let fast = m.solve_with_config(&budget, &SolverConfig::default());
    let reference = m.solve_with_config(&budget, &SolverConfig::baseline());
    match (fast, reference) {
        (Ok(f), Ok(r)) => {
            prop_assert!(
                (f.objective() - r.objective()).abs() < 1e-6,
                "fast {} vs reference {}",
                f.objective(),
                r.objective()
            );
        }
        (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
        (f, r) => {
            return Err(TestCaseError::fail(format!(
                "classification mismatch: fast {f:?} vs reference {r:?}"
            )));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Pure LPs (all variables continuous): one simplex solve per
    /// config, so this pins the flat tableau against the dense solver
    /// with no branching involved.
    #[test]
    fn lp_flat_tableau_matches_dense_reference(p in arb_problem(6)) {
        differential(&build(&p, true))?;
    }

    /// Integer problems: the fast path re-solves child nodes warm from
    /// the parent basis and memoizes repeated bound vectors; the
    /// reference re-solves every node cold and dense. Same optimum
    /// either way.
    #[test]
    fn ilp_warm_started_bnb_matches_reference(p in arb_problem(3)) {
        differential(&build(&p, false))?;
    }
}
