//! The modelling layer: variables, constraints, objective, and solve
//! entry point.

use crate::branch;
use crate::deadline::RunDeadline;
use crate::expr::{LinExpr, Var};
use crate::simplex::{self, counters, Basis, LpResult, Row};
use clara_telemetry::SolveStats;
use core::fmt;

/// Relation between a linear expression and its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rel {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

/// Objective sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Sense {
    Minimize,
    Maximize,
}

#[derive(Debug, Clone)]
pub(crate) struct VarDef {
    pub name: String,
    pub lo: f64,
    pub hi: f64,
    pub integer: bool,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub expr: LinExpr,
    pub rel: Rel,
    pub rhs: f64,
}

/// Errors from solving.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The constraints admit no (integer-)feasible point.
    Infeasible,
    /// The objective is unbounded.
    Unbounded,
    /// Branch-and-bound node or simplex iteration limits were exceeded.
    Limit,
    /// A cooperative [`RunDeadline`] expired (or its cancel token was
    /// raised) before any integer-feasible point was found. When an
    /// incumbent exists at expiry, it is returned unproven instead.
    TimedOut,
    /// A variable was declared with inconsistent bounds (`lo > hi`) or a
    /// non-finite bound where one is required.
    BadBounds(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "problem is infeasible"),
            SolveError::Unbounded => write!(f, "objective is unbounded"),
            SolveError::Limit => write!(f, "solver limits exceeded"),
            SolveError::TimedOut => write!(f, "solve deadline exceeded"),
            SolveError::BadBounds(v) => write!(f, "bad bounds on variable {v}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Deterministic resource budget for branch-and-bound.
///
/// The solver counts node expansions (LP relaxations solved) and stops
/// once the budget is exhausted, returning its best incumbent so far —
/// an *anytime* solve. The count is deterministic for a given model, so
/// budgeted runs are reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveBudget {
    /// Maximum branch-and-bound node expansions.
    pub max_nodes: usize,
}

impl SolveBudget {
    /// The default node budget (generous: the paper-eval NFs need well
    /// under a thousand nodes).
    pub const DEFAULT_NODES: usize = 200_000;

    /// A budget of exactly `max_nodes` node expansions.
    pub fn nodes(max_nodes: usize) -> Self {
        SolveBudget { max_nodes }
    }

    /// No node limit.
    pub fn unlimited() -> Self {
        SolveBudget { max_nodes: usize::MAX }
    }
}

impl Default for SolveBudget {
    fn default() -> Self {
        SolveBudget { max_nodes: Self::DEFAULT_NODES }
    }
}

/// Algorithmic knobs for the LP/ILP solver, orthogonal to
/// [`SolveBudget`] (which caps *how much* work is done; this selects
/// *how* it is done).
///
/// The default enables every hot-path optimisation. [`baseline()`]
/// reproduces the seed solver — dense tableau, cold solve per
/// branch-and-bound node, no memoization — and exists so the benchmark
/// harness and differential tests can compare against the original
/// behaviour without checking out an old commit.
///
/// [`baseline()`]: SolverConfig::baseline
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverConfig {
    /// Re-solve branch-and-bound children from the parent's optimal
    /// basis (dual simplex) instead of from scratch.
    pub warm_start: bool,
    /// Cache LP relaxations keyed by the node's bound vector, so
    /// re-expanded subproblems cost a hash lookup.
    pub memoize: bool,
    /// Route every relaxation through the preserved seed solver
    /// ([`crate::reference`]) instead of the flat tableau.
    pub reference_lp: bool,
}

impl SolverConfig {
    /// Seed-equivalent behaviour: dense solver, no warm starts, no
    /// memoization.
    pub fn baseline() -> Self {
        SolverConfig { warm_start: false, memoize: false, reference_lp: true }
    }
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig { warm_start: true, memoize: true, reference_lp: false }
    }
}

/// A cross-solve warm-start seed: the solution point (and, when
/// branch-and-bound found one, the optimal LP basis behind it) of a
/// previously solved, structurally similar model.
///
/// Sweeps produce long runs of models that share variables and
/// constraints and differ only in coefficients — neighboring grid cells
/// of a prediction sweep, for instance. Passing the previous cell's seed
/// to [`Model::solve_seeded`] lets branch-and-bound start with a
/// verified incumbent (pruning from node one) and a warm root basis
/// instead of solving cold.
///
/// Safety: the receiving solve *verifies* the seed against its own
/// bounds, integrality, and constraints before using it, and recomputes
/// the objective under its own coefficients; the simplex layer
/// independently re-verifies the basis against the actual rows. A seed
/// from an arbitrarily different model is therefore at worst a counted
/// miss, never a wrong answer.
#[derive(Debug, Clone, PartialEq)]
pub struct IlpSeed {
    pub(crate) values: Vec<f64>,
    pub(crate) basis: Option<Basis>,
}

impl IlpSeed {
    /// Number of variables in the donor model (a seed only ever matches
    /// a model with the same count).
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }
}

/// A solved assignment.
#[derive(Debug, Clone)]
pub struct Solution {
    values: Vec<f64>,
    objective: f64,
    proven_optimal: bool,
    stats: SolveStats,
    /// Basis behind the final incumbent, when branch-and-bound produced
    /// one — exported through [`Solution::export_seed`].
    seed_basis: Option<Basis>,
}

impl Solution {
    /// The value of a variable.
    pub fn value(&self, var: Var) -> f64 {
        self.values[var.index()]
    }

    /// The value of a variable rounded to the nearest integer (convenient
    /// for binaries).
    pub fn int_value(&self, var: Var) -> i64 {
        self.values[var.index()].round() as i64
    }

    /// Evaluate an arbitrary expression under this solution.
    pub fn eval(&self, expr: &LinExpr) -> f64 {
        expr.eval(&self.values)
    }

    /// The objective value (in the model's declared sense).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Whether branch-and-bound ran to completion (`true`) or stopped on
    /// a [`SolveBudget`] with this solution as its best incumbent
    /// (`false`). Pure LP solves are always proven optimal.
    pub fn is_proven_optimal(&self) -> bool {
        self.proven_optimal
    }

    /// Solver telemetry for this solve: LP relaxations run, simplex
    /// pivots, warm-start hits/misses, and the incumbent-objective
    /// trajectory. Deterministic (counts work, never wall-clock), so
    /// identical solves report identical stats.
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// Package this solution as a warm-start seed for the next
    /// structurally similar solve (see [`IlpSeed`]).
    pub fn export_seed(&self) -> IlpSeed {
        IlpSeed { values: self.values.clone(), basis: self.seed_basis.clone() }
    }

    pub(crate) fn new(values: Vec<f64>, objective: f64) -> Self {
        Solution {
            values,
            objective,
            proven_optimal: true,
            stats: SolveStats::default(),
            seed_basis: None,
        }
    }

    pub(crate) fn incumbent(values: Vec<f64>, objective: f64) -> Self {
        Solution {
            values,
            objective,
            proven_optimal: false,
            stats: SolveStats::default(),
            seed_basis: None,
        }
    }

    pub(crate) fn with_stats(mut self, stats: SolveStats) -> Self {
        self.stats = stats;
        self
    }

    pub(crate) fn with_seed_basis(mut self, basis: Option<Basis>) -> Self {
        self.seed_basis = basis;
        self
    }
}

/// An (integer) linear program under construction.
///
/// See the crate-level example. Variables are created through
/// [`Model::binary`], [`Model::int_var`], and [`Model::num_var`];
/// constraints through [`Model::constraint`]; the objective through
/// [`Model::objective`]; then [`Model::solve`].
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) vars: Vec<VarDef>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) objective: LinExpr,
    pub(crate) sense: Sense,
}

impl Model {
    /// A model that minimizes its objective.
    pub fn minimize() -> Self {
        Model {
            vars: Vec::new(),
            constraints: Vec::new(),
            objective: LinExpr::zero(),
            sense: Sense::Minimize,
        }
    }

    /// A model that maximizes its objective.
    pub fn maximize() -> Self {
        Model { sense: Sense::Maximize, ..Model::minimize() }
    }

    /// A 0/1 integer variable.
    pub fn binary(&mut self, name: impl Into<String>) -> Var {
        self.add_var(name.into(), 0.0, 1.0, true)
    }

    /// An integer variable with inclusive bounds.
    pub fn int_var(&mut self, name: impl Into<String>, lo: i64, hi: i64) -> Var {
        self.add_var(name.into(), lo as f64, hi as f64, true)
    }

    /// A continuous variable with bounds (`hi` may be `f64::INFINITY`).
    pub fn num_var(&mut self, name: impl Into<String>, lo: f64, hi: f64) -> Var {
        self.add_var(name.into(), lo, hi, false)
    }

    fn add_var(&mut self, name: String, lo: f64, hi: f64, integer: bool) -> Var {
        self.vars.push(VarDef { name, lo, hi, integer });
        Var(self.vars.len() - 1)
    }

    /// Number of variables declared so far.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Add `expr rel rhs`.
    pub fn constraint(&mut self, expr: impl Into<LinExpr>, rel: Rel, rhs: f64) {
        let mut expr = expr.into();
        // Fold the expression's constant into the rhs.
        let constant = expr.constant_part();
        let rhs = rhs - constant;
        expr = expr - LinExpr::constant(constant);
        self.constraints.push(Constraint { expr, rel, rhs });
    }

    /// Set the objective expression.
    pub fn objective(&mut self, expr: impl Into<LinExpr>) {
        self.objective = expr.into();
    }

    /// Solve the model: LP directly if no integer variables, otherwise
    /// branch-and-bound over the LP relaxation (with the default
    /// [`SolveBudget`]).
    pub fn solve(&self) -> Result<Solution, SolveError> {
        self.solve_with_budget(&SolveBudget::default())
    }

    /// Solve under an explicit node-expansion budget. When the budget
    /// runs out with an incumbent in hand, that incumbent is returned
    /// (check [`Solution::is_proven_optimal`]); with no incumbent, the
    /// solve fails with [`SolveError::Limit`].
    pub fn solve_with_budget(&self, budget: &SolveBudget) -> Result<Solution, SolveError> {
        self.solve_with_config(budget, &SolverConfig::default())
    }

    /// Solve under an explicit budget and [`SolverConfig`].
    pub fn solve_with_config(
        &self,
        budget: &SolveBudget,
        config: &SolverConfig,
    ) -> Result<Solution, SolveError> {
        self.solve_with_limits(budget, config, &RunDeadline::none())
    }

    /// Solve under an explicit budget, [`SolverConfig`], and cooperative
    /// [`RunDeadline`]. An expired deadline degrades exactly like an
    /// exhausted budget: the best incumbent is returned unproven, or —
    /// with no incumbent — the solve fails with [`SolveError::TimedOut`].
    pub fn solve_with_limits(
        &self,
        budget: &SolveBudget,
        config: &SolverConfig,
        deadline: &RunDeadline,
    ) -> Result<Solution, SolveError> {
        self.solve_seeded(budget, config, deadline, None)
    }

    /// [`Model::solve_with_limits`] with an optional cross-solve warm
    /// start: the previous structurally similar solve's [`IlpSeed`]
    /// (from [`Solution::export_seed`]) becomes the initial incumbent
    /// and root basis after verification against *this* model. A
    /// rejected seed (wrong shape, infeasible here) is counted as a
    /// `cell_warm_miss` and the solve proceeds exactly as unseeded.
    /// Pure-LP models and [`SolverConfig::baseline`] ignore the seed.
    pub fn solve_seeded(
        &self,
        budget: &SolveBudget,
        config: &SolverConfig,
        deadline: &RunDeadline,
        seed: Option<&IlpSeed>,
    ) -> Result<Solution, SolveError> {
        for v in &self.vars {
            if v.lo > v.hi || v.lo.is_nan() || v.hi.is_nan() || v.lo == f64::INFINITY {
                return Err(SolveError::BadBounds(v.name.clone()));
            }
            if v.integer && (!v.lo.is_finite() || !v.hi.is_finite()) {
                return Err(SolveError::BadBounds(format!(
                    "{} (integer variables need finite bounds)",
                    v.name
                )));
            }
        }
        if self.vars.iter().any(|v| v.integer) {
            branch::solve_ilp(self, budget.max_nodes, config, deadline, seed)
        } else {
            let bounds: Vec<(f64, f64)> = self.vars.iter().map(|v| (v.lo, v.hi)).collect();
            let lp_base = counters::snapshot();
            let solved = if config.reference_lp {
                self.solve_relaxation_reference(&bounds)
            } else {
                self.solve_relaxation_limited(&bounds, deadline)
            };
            let lp = counters::since(lp_base);
            solved.map(|(values, objective)| {
                Solution::new(values, objective).with_stats(SolveStats {
                    lp_solves: lp.lp_solves,
                    simplex_pivots: lp.pivots,
                    warm_start_hits: lp.warm_hits,
                    warm_start_misses: lp.warm_misses,
                    proven_optimal: true,
                    ..SolveStats::default()
                })
            })
        }
    }

    /// Lower the model to canonical non-negative simplex form under the
    /// given per-variable bounds: shift `x = lo + x'` for finite lower
    /// bounds, split `x = x⁺ − x⁻` for free variables, and express
    /// finite upper bounds as extra `≤` rows.
    fn build_relaxation(&self, bounds: &[(f64, f64)]) -> BuiltRelaxation {
        let n = self.vars.len();
        let mut col_of: Vec<(usize, Option<usize>)> = Vec::with_capacity(n); // (plus, minus)
        let mut num_cols = 0usize;
        for &(lo, _) in bounds {
            if lo.is_finite() {
                col_of.push((num_cols, None));
                num_cols += 1;
            } else {
                col_of.push((num_cols, Some(num_cols + 1)));
                num_cols += 2;
            }
        }

        let project = |expr: &LinExpr, rhs: &mut f64, coeffs: &mut Vec<f64>| {
            for (var, c) in expr.terms() {
                let (lo, _) = bounds[var.index()];
                let (plus, minus) = col_of[var.index()];
                coeffs[plus] += c;
                if let Some(mi) = minus {
                    coeffs[mi] -= c;
                } else {
                    *rhs -= c * lo;
                }
            }
        };

        let mut rows: Vec<Row> = Vec::with_capacity(self.constraints.len() + n);
        for con in &self.constraints {
            let mut coeffs = vec![0.0; num_cols];
            let mut rhs = con.rhs;
            project(&con.expr, &mut rhs, &mut coeffs);
            rows.push(Row { coeffs, rel: con.rel, rhs });
        }
        // Upper bounds as rows: x' <= hi - lo (finite hi only).
        let mut ub_var_of_row = Vec::new();
        for (i, &(lo, hi)) in bounds.iter().enumerate() {
            if hi.is_finite() {
                let mut coeffs = vec![0.0; num_cols];
                let (plus, minus) = col_of[i];
                coeffs[plus] = 1.0;
                let rhs = if let Some(mi) = minus {
                    coeffs[mi] = -1.0;
                    hi
                } else {
                    hi - lo
                };
                rows.push(Row { coeffs, rel: Rel::Le, rhs });
                ub_var_of_row.push(i);
            }
        }

        // Objective in shifted space (its constant offset is irrelevant:
        // the caller re-evaluates the original objective at the optimum).
        let mut obj = vec![0.0; num_cols];
        for (var, c) in self.objective.terms() {
            let (plus, minus) = col_of[var.index()];
            let sign = if self.sense == Sense::Maximize { -c } else { c };
            obj[plus] += sign;
            if let Some(mi) = minus {
                obj[mi] -= sign;
            }
        }

        BuiltRelaxation { col_of, num_cols, rows, obj, ub_var_of_row }
    }

    /// Map a simplex optimum back into original variable space and
    /// evaluate the objective there.
    fn lift(&self, bounds: &[(f64, f64)], col_of: &[(usize, Option<usize>)], x: &[f64]) -> (Vec<f64>, f64) {
        let n = self.vars.len();
        let mut values = vec![0.0; n];
        for i in 0..n {
            let (lo, _) = bounds[i];
            let (plus, minus) = col_of[i];
            values[i] = match minus {
                Some(mi) => x[plus] - x[mi],
                None => lo + x[plus],
            };
        }
        let objective = self.objective.eval(&values);
        (values, objective)
    }

    /// Solve the LP relaxation under explicit per-variable bounds and a
    /// cooperative deadline, returning values in original variable space
    /// and the objective in the model's sense.
    pub(crate) fn solve_relaxation_limited(
        &self,
        bounds: &[(f64, f64)],
        deadline: &RunDeadline,
    ) -> Result<(Vec<f64>, f64), SolveError> {
        let b = self.build_relaxation(bounds);
        match simplex::solve_lp_limited(b.num_cols, &b.rows, &b.obj, None, deadline).0 {
            LpResult::Optimal { x, .. } => Ok(self.lift(bounds, &b.col_of, &x)),
            LpResult::Infeasible => Err(SolveError::Infeasible),
            LpResult::Unbounded => Err(SolveError::Unbounded),
            LpResult::IterationLimit => Err(SolveError::Limit),
            LpResult::TimedOut => Err(SolveError::TimedOut),
        }
    }

    /// [`Model::solve_relaxation_limited`] through the preserved seed
    /// solver (which takes no deadline).
    pub(crate) fn solve_relaxation_reference(
        &self,
        bounds: &[(f64, f64)],
    ) -> Result<(Vec<f64>, f64), SolveError> {
        let b = self.build_relaxation(bounds);
        match crate::reference::solve_lp(b.num_cols, &b.rows, &b.obj) {
            LpResult::Optimal { x, .. } => Ok(self.lift(bounds, &b.col_of, &x)),
            LpResult::Infeasible => Err(SolveError::Infeasible),
            LpResult::Unbounded => Err(SolveError::Unbounded),
            // The seed solver takes no deadline; its iteration cap is the
            // only way it stops early, and TimedOut is unreachable.
            LpResult::IterationLimit | LpResult::TimedOut => Err(SolveError::Limit),
        }
    }

    /// Build the reusable relaxation template for branch-and-bound. The
    /// coefficient matrix, row relations, and objective depend only on
    /// the *finiteness pattern* of the bounds — which branch-and-bound
    /// never changes (it only tightens finite integer bounds) — so per
    /// node only the right-hand sides need rebinding.
    pub(crate) fn relax_workspace(&self, bounds: &[(f64, f64)]) -> RelaxWorkspace {
        let built = self.build_relaxation(bounds);
        let n_con = self.constraints.len();
        let base_rhs: Vec<f64> = self.constraints.iter().map(|c| c.rhs).collect();
        let mut shift_terms = Vec::new();
        for (r, con) in self.constraints.iter().enumerate() {
            for (var, c) in con.expr.terms() {
                if col_minus(&built.col_of, var.index()).is_none() {
                    shift_terms.push((r, var.index(), c));
                }
            }
        }
        let pattern: Vec<(bool, bool)> = bounds
            .iter()
            .map(|&(lo, hi)| (lo.is_finite(), hi.is_finite()))
            .collect();
        RelaxWorkspace {
            col_of: built.col_of,
            num_cols: built.num_cols,
            rows: built.rows,
            obj: built.obj,
            ub_var_of_row: built.ub_var_of_row,
            n_con,
            base_rhs,
            shift_terms,
            pattern,
        }
    }

    /// Solve a relaxation through the workspace, optionally warm-started
    /// from a previous optimal basis. Falls back to the one-shot path
    /// when the bounds no longer fit the template.
    pub(crate) fn solve_relaxation_warm(
        &self,
        ws: &mut RelaxWorkspace,
        bounds: &[(f64, f64)],
        warm: Option<&Basis>,
        deadline: &RunDeadline,
    ) -> Result<(Vec<f64>, f64, Option<Basis>), SolveError> {
        if !ws.matches(bounds) {
            return self
                .solve_relaxation_limited(bounds, deadline)
                .map(|(v, o)| (v, o, None));
        }
        ws.bind(bounds);
        match simplex::solve_lp_limited(ws.num_cols, &ws.rows, &ws.obj, warm, deadline) {
            (LpResult::Optimal { x, .. }, basis) => {
                let (values, objective) = self.lift(bounds, &ws.col_of, &x);
                Ok((values, objective, basis))
            }
            (LpResult::Infeasible, _) => Err(SolveError::Infeasible),
            (LpResult::Unbounded, _) => Err(SolveError::Unbounded),
            (LpResult::IterationLimit, _) => Err(SolveError::Limit),
            (LpResult::TimedOut, _) => Err(SolveError::TimedOut),
        }
    }
}

#[inline]
fn col_minus(col_of: &[(usize, Option<usize>)], i: usize) -> Option<usize> {
    col_of[i].1
}

/// A lowered relaxation: canonical rows/objective plus the variable →
/// column mapping needed to lift solutions back.
struct BuiltRelaxation {
    col_of: Vec<(usize, Option<usize>)>,
    num_cols: usize,
    rows: Vec<Row>,
    obj: Vec<f64>,
    /// For each upper-bound row (appended after the constraints, in
    /// order): the variable it bounds.
    ub_var_of_row: Vec<usize>,
}

/// A relaxation template reused across branch-and-bound nodes: the
/// coefficients and objective are built once; [`RelaxWorkspace::bind`]
/// rewrites only the right-hand sides for a node's bounds. This removes
/// the per-node `Vec<Row>` rebuild that dominated seed solve time.
pub(crate) struct RelaxWorkspace {
    col_of: Vec<(usize, Option<usize>)>,
    num_cols: usize,
    rows: Vec<Row>,
    obj: Vec<f64>,
    ub_var_of_row: Vec<usize>,
    n_con: usize,
    /// Raw constraint rhs before lower-bound shifting.
    base_rhs: Vec<f64>,
    /// `(row, var, coeff)` triples with finite-lo vars: each solve
    /// subtracts `coeff · lo(var)` from `rows[row].rhs`.
    shift_terms: Vec<(usize, usize, f64)>,
    /// `(lo finite, hi finite)` per variable at build time.
    pattern: Vec<(bool, bool)>,
}

impl RelaxWorkspace {
    /// Whether `bounds` has the same finiteness pattern the template was
    /// built for. Always true within a branch-and-bound run; checked
    /// anyway so a mismatch degrades to a rebuild instead of garbage.
    fn matches(&self, bounds: &[(f64, f64)]) -> bool {
        bounds.len() == self.pattern.len()
            && bounds
                .iter()
                .zip(&self.pattern)
                .all(|(&(lo, hi), &(lf, hf))| lo.is_finite() == lf && hi.is_finite() == hf)
    }

    /// Rewrite the right-hand sides for a node's bounds.
    fn bind(&mut self, bounds: &[(f64, f64)]) {
        for (row, &rhs) in self.rows[..self.n_con].iter_mut().zip(&self.base_rhs) {
            row.rhs = rhs;
        }
        for &(r, v, c) in &self.shift_terms {
            self.rows[r].rhs -= c * bounds[v].0;
        }
        for (k, &v) in self.ub_var_of_row.iter().enumerate() {
            let (lo, hi) = bounds[v];
            self.rows[self.n_con + k].rhs =
                if self.col_of[v].1.is_some() { hi } else { hi - lo };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_lp_with_bounds() {
        // min 2x + 3y s.t. x + y >= 10, 1 <= x <= 8, 0 <= y <= 20.
        let mut m = Model::minimize();
        let x = m.num_var("x", 1.0, 8.0);
        let y = m.num_var("y", 0.0, 20.0);
        m.constraint(x + y, Rel::Ge, 10.0);
        m.objective(2.0 * x + 3.0 * y);
        let s = m.solve().unwrap();
        // Cheapest: push x to its max 8, y = 2 -> 16 + 6 = 22.
        assert!((s.value(x) - 8.0).abs() < 1e-6);
        assert!((s.value(y) - 2.0).abs() < 1e-6);
        assert!((s.objective() - 22.0).abs() < 1e-6);
    }

    #[test]
    fn maximize_sense() {
        let mut m = Model::maximize();
        let x = m.num_var("x", 0.0, 5.0);
        m.objective(3.0 * x + 1.0);
        let s = m.solve().unwrap();
        assert!((s.objective() - 16.0).abs() < 1e-6);
    }

    #[test]
    fn nonzero_lower_bounds_shift_correctly() {
        // min x + y, x >= 3, y >= 4, x + y >= 10.
        let mut m = Model::minimize();
        let x = m.num_var("x", 3.0, f64::INFINITY);
        let y = m.num_var("y", 4.0, f64::INFINITY);
        m.constraint(x + y, Rel::Ge, 10.0);
        m.objective(x + y);
        let s = m.solve().unwrap();
        assert!((s.objective() - 10.0).abs() < 1e-6);
        assert!(s.value(x) >= 3.0 - 1e-9);
        assert!(s.value(y) >= 4.0 - 1e-9);
    }

    #[test]
    fn free_variable_split() {
        // min |style| problem: x free, x >= -7 via constraint; min x -> -7.
        let mut m = Model::minimize();
        let x = m.num_var("x", f64::NEG_INFINITY, f64::INFINITY);
        m.constraint(x, Rel::Ge, -7.0);
        m.objective(x);
        let s = m.solve().unwrap();
        assert!((s.value(x) + 7.0).abs() < 1e-6);
    }

    #[test]
    fn constant_in_constraint_folds_into_rhs() {
        // (x + 5) <= 8  =>  x <= 3.
        let mut m = Model::maximize();
        let x = m.num_var("x", 0.0, 100.0);
        m.constraint(x + 5.0, Rel::Le, 8.0);
        m.objective(LinExpr::from(x));
        let s = m.solve().unwrap();
        assert!((s.value(x) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn bad_bounds_rejected() {
        let mut m = Model::minimize();
        let _x = m.num_var("x", 5.0, 1.0);
        assert!(matches!(m.solve().unwrap_err(), SolveError::BadBounds(_)));

        let mut m = Model::minimize();
        let _y = m.int_var("y", 0, 10);
        m.vars[0].hi = f64::INFINITY;
        assert!(matches!(m.solve().unwrap_err(), SolveError::BadBounds(_)));
    }

    #[test]
    fn infeasible_lp_reported() {
        let mut m = Model::minimize();
        let x = m.num_var("x", 0.0, 1.0);
        m.constraint(LinExpr::from(x), Rel::Ge, 2.0);
        m.objective(LinExpr::from(x));
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_lp_reported() {
        let mut m = Model::maximize();
        let x = m.num_var("x", 0.0, f64::INFINITY);
        m.objective(LinExpr::from(x));
        assert_eq!(m.solve().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn solution_eval_arbitrary_expression() {
        let mut m = Model::minimize();
        let x = m.num_var("x", 2.0, 2.0);
        let y = m.num_var("y", 3.0, 3.0);
        m.objective(x + y);
        let s = m.solve().unwrap();
        let e = 10.0 * x + y + 1.0;
        assert!((s.eval(&e) - 24.0).abs() < 1e-6);
    }

    /// Every `SolverConfig` corner must agree on a model with equality,
    /// inequality, continuous, and integer structure.
    #[test]
    fn solver_configs_agree() {
        let mut m = Model::minimize();
        let a = m.int_var("a", 0, 10);
        let b = m.int_var("b", 0, 10);
        let y = m.num_var("y", 0.0, 4.5);
        m.constraint(3.0 * a + 2.0 * b + y, Rel::Ge, 13.0);
        m.constraint(a + b, Rel::Le, 8.0);
        m.objective(7.0 * a + 5.0 * b + 2.0 * y);
        let budget = SolveBudget::default();
        let baseline = m.solve_with_config(&budget, &SolverConfig::baseline()).unwrap();
        for &(warm, memo) in &[(false, false), (true, false), (false, true), (true, true)] {
            let cfg = SolverConfig { warm_start: warm, memoize: memo, reference_lp: false };
            let s = m.solve_with_config(&budget, &cfg).unwrap();
            assert!(
                (s.objective() - baseline.objective()).abs() < 1e-6,
                "config {cfg:?}: {} vs baseline {}",
                s.objective(),
                baseline.objective()
            );
        }
    }

    /// The workspace + warm path must agree with the one-shot relaxation
    /// on a mid-tree bound vector.
    #[test]
    fn workspace_rebind_matches_one_shot() {
        let mut m = Model::minimize();
        let a = m.int_var("a", 0, 10);
        let b = m.int_var("b", 0, 10);
        m.constraint(3.0 * a + 2.0 * b, Rel::Ge, 13.0);
        m.objective(7.0 * a + 5.0 * b);
        let root: Vec<(f64, f64)> = m.vars.iter().map(|v| (v.lo, v.hi)).collect();
        let mut ws = m.relax_workspace(&root);

        let unlimited = RunDeadline::none();
        let (v0, o0, basis) =
            m.solve_relaxation_warm(&mut ws, &root, None, &unlimited).unwrap();
        let (v0_ref, o0_ref) = m.solve_relaxation_limited(&root, &unlimited).unwrap();
        assert!((o0 - o0_ref).abs() < 1e-6, "{v0:?} vs {v0_ref:?}");

        let child = vec![(2.0, 10.0), (0.0, 3.0)];
        let (_, o1, _) = m
            .solve_relaxation_warm(&mut ws, &child, basis.as_ref(), &unlimited)
            .unwrap();
        let (_, o1_ref) = m.solve_relaxation_limited(&child, &unlimited).unwrap();
        assert!((o1 - o1_ref).abs() < 1e-6);
    }

    /// An expired deadline with no incumbent fails with `TimedOut`; a
    /// generous deadline changes nothing about the solve.
    #[test]
    fn deadline_semantics() {
        let mut m = Model::maximize();
        let x = m.binary("x");
        let y = m.binary("y");
        m.constraint(2.0 * x + 2.0 * y, Rel::Le, 3.0);
        m.objective(x + y);
        let budget = SolveBudget::default();
        let cfg = SolverConfig::default();

        let expired = RunDeadline::within(std::time::Duration::from_millis(0));
        assert_eq!(
            m.solve_with_limits(&budget, &cfg, &expired).unwrap_err(),
            SolveError::TimedOut
        );

        let generous = RunDeadline::within(std::time::Duration::from_secs(3600));
        let s = m.solve_with_limits(&budget, &cfg, &generous).unwrap();
        assert!(s.is_proven_optimal());
        assert_eq!(s.objective().round(), 1.0);
    }

    /// A raised cancel token behaves like an expired deadline.
    #[test]
    fn cancel_token_stops_solve() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let mut m = Model::minimize();
        let x = m.int_var("x", 0, 10);
        m.constraint(LinExpr::from(x), Rel::Ge, 1.0);
        m.objective(LinExpr::from(x));
        let token = Arc::new(AtomicBool::new(true));
        let d = RunDeadline::none().with_cancel(token);
        assert_eq!(
            m.solve_with_limits(&SolveBudget::default(), &SolverConfig::default(), &d)
                .unwrap_err(),
            SolveError::TimedOut
        );
    }
}
