//! The modelling layer: variables, constraints, objective, and solve
//! entry point.

use crate::branch;
use crate::expr::{LinExpr, Var};
use crate::simplex::{self, LpResult, Row};
use core::fmt;

/// Relation between a linear expression and its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rel {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

/// Objective sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Sense {
    Minimize,
    Maximize,
}

#[derive(Debug, Clone)]
pub(crate) struct VarDef {
    pub name: String,
    pub lo: f64,
    pub hi: f64,
    pub integer: bool,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub expr: LinExpr,
    pub rel: Rel,
    pub rhs: f64,
}

/// Errors from solving.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The constraints admit no (integer-)feasible point.
    Infeasible,
    /// The objective is unbounded.
    Unbounded,
    /// Branch-and-bound node or simplex iteration limits were exceeded.
    Limit,
    /// A variable was declared with inconsistent bounds (`lo > hi`) or a
    /// non-finite bound where one is required.
    BadBounds(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "problem is infeasible"),
            SolveError::Unbounded => write!(f, "objective is unbounded"),
            SolveError::Limit => write!(f, "solver limits exceeded"),
            SolveError::BadBounds(v) => write!(f, "bad bounds on variable {v}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Deterministic resource budget for branch-and-bound.
///
/// The solver counts node expansions (LP relaxations solved) and stops
/// once the budget is exhausted, returning its best incumbent so far —
/// an *anytime* solve. The count is deterministic for a given model, so
/// budgeted runs are reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveBudget {
    /// Maximum branch-and-bound node expansions.
    pub max_nodes: usize,
}

impl SolveBudget {
    /// The default node budget (generous: the paper-eval NFs need well
    /// under a thousand nodes).
    pub const DEFAULT_NODES: usize = 200_000;

    /// A budget of exactly `max_nodes` node expansions.
    pub fn nodes(max_nodes: usize) -> Self {
        SolveBudget { max_nodes }
    }

    /// No node limit.
    pub fn unlimited() -> Self {
        SolveBudget { max_nodes: usize::MAX }
    }
}

impl Default for SolveBudget {
    fn default() -> Self {
        SolveBudget { max_nodes: Self::DEFAULT_NODES }
    }
}

/// A solved assignment.
#[derive(Debug, Clone)]
pub struct Solution {
    values: Vec<f64>,
    objective: f64,
    proven_optimal: bool,
}

impl Solution {
    /// The value of a variable.
    pub fn value(&self, var: Var) -> f64 {
        self.values[var.index()]
    }

    /// The value of a variable rounded to the nearest integer (convenient
    /// for binaries).
    pub fn int_value(&self, var: Var) -> i64 {
        self.values[var.index()].round() as i64
    }

    /// Evaluate an arbitrary expression under this solution.
    pub fn eval(&self, expr: &LinExpr) -> f64 {
        expr.eval(&self.values)
    }

    /// The objective value (in the model's declared sense).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Whether branch-and-bound ran to completion (`true`) or stopped on
    /// a [`SolveBudget`] with this solution as its best incumbent
    /// (`false`). Pure LP solves are always proven optimal.
    pub fn is_proven_optimal(&self) -> bool {
        self.proven_optimal
    }

    pub(crate) fn new(values: Vec<f64>, objective: f64) -> Self {
        Solution { values, objective, proven_optimal: true }
    }

    pub(crate) fn incumbent(values: Vec<f64>, objective: f64) -> Self {
        Solution { values, objective, proven_optimal: false }
    }
}

/// An (integer) linear program under construction.
///
/// See the crate-level example. Variables are created through
/// [`Model::binary`], [`Model::int_var`], and [`Model::num_var`];
/// constraints through [`Model::constraint`]; the objective through
/// [`Model::objective`]; then [`Model::solve`].
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) vars: Vec<VarDef>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) objective: LinExpr,
    pub(crate) sense: Sense,
}

impl Model {
    /// A model that minimizes its objective.
    pub fn minimize() -> Self {
        Model {
            vars: Vec::new(),
            constraints: Vec::new(),
            objective: LinExpr::zero(),
            sense: Sense::Minimize,
        }
    }

    /// A model that maximizes its objective.
    pub fn maximize() -> Self {
        Model { sense: Sense::Maximize, ..Model::minimize() }
    }

    /// A 0/1 integer variable.
    pub fn binary(&mut self, name: impl Into<String>) -> Var {
        self.add_var(name.into(), 0.0, 1.0, true)
    }

    /// An integer variable with inclusive bounds.
    pub fn int_var(&mut self, name: impl Into<String>, lo: i64, hi: i64) -> Var {
        self.add_var(name.into(), lo as f64, hi as f64, true)
    }

    /// A continuous variable with bounds (`hi` may be `f64::INFINITY`).
    pub fn num_var(&mut self, name: impl Into<String>, lo: f64, hi: f64) -> Var {
        self.add_var(name.into(), lo, hi, false)
    }

    fn add_var(&mut self, name: String, lo: f64, hi: f64, integer: bool) -> Var {
        self.vars.push(VarDef { name, lo, hi, integer });
        Var(self.vars.len() - 1)
    }

    /// Number of variables declared so far.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Add `expr rel rhs`.
    pub fn constraint(&mut self, expr: impl Into<LinExpr>, rel: Rel, rhs: f64) {
        let mut expr = expr.into();
        // Fold the expression's constant into the rhs.
        let constant = expr.constant_part();
        let rhs = rhs - constant;
        expr = expr - LinExpr::constant(constant);
        self.constraints.push(Constraint { expr, rel, rhs });
    }

    /// Set the objective expression.
    pub fn objective(&mut self, expr: impl Into<LinExpr>) {
        self.objective = expr.into();
    }

    /// Solve the model: LP directly if no integer variables, otherwise
    /// branch-and-bound over the LP relaxation (with the default
    /// [`SolveBudget`]).
    pub fn solve(&self) -> Result<Solution, SolveError> {
        self.solve_with_budget(&SolveBudget::default())
    }

    /// Solve under an explicit node-expansion budget. When the budget
    /// runs out with an incumbent in hand, that incumbent is returned
    /// (check [`Solution::is_proven_optimal`]); with no incumbent, the
    /// solve fails with [`SolveError::Limit`].
    pub fn solve_with_budget(&self, budget: &SolveBudget) -> Result<Solution, SolveError> {
        for v in &self.vars {
            if v.lo > v.hi || v.lo.is_nan() || v.hi.is_nan() || v.lo == f64::INFINITY {
                return Err(SolveError::BadBounds(v.name.clone()));
            }
            if v.integer && (!v.lo.is_finite() || !v.hi.is_finite()) {
                return Err(SolveError::BadBounds(format!(
                    "{} (integer variables need finite bounds)",
                    v.name
                )));
            }
        }
        if self.vars.iter().any(|v| v.integer) {
            branch::solve_ilp(self, budget.max_nodes)
        } else {
            let bounds: Vec<(f64, f64)> = self.vars.iter().map(|v| (v.lo, v.hi)).collect();
            self.solve_relaxation(&bounds).map(|(values, objective)| {
                Solution::new(values, objective)
            })
        }
    }

    /// Solve the LP relaxation under explicit per-variable bounds,
    /// returning values in original variable space and the objective in
    /// the model's sense.
    pub(crate) fn solve_relaxation(
        &self,
        bounds: &[(f64, f64)],
    ) -> Result<(Vec<f64>, f64), SolveError> {
        let n = self.vars.len();
        // Shift: x = lo + x', x' >= 0. Lower bounds of -inf are split as
        // x = x_plus - x_minus.
        let mut col_of: Vec<(usize, Option<usize>)> = Vec::with_capacity(n); // (plus, minus)
        let mut num_cols = 0usize;
        for &(lo, _) in bounds {
            if lo.is_finite() {
                col_of.push((num_cols, None));
                num_cols += 1;
            } else {
                col_of.push((num_cols, Some(num_cols + 1)));
                num_cols += 2;
            }
        }

        let project = |expr: &LinExpr, rows_rhs: &mut f64, coeffs: &mut Vec<f64>| {
            for (var, c) in expr.terms() {
                let (lo, _) = bounds[var.index()];
                let (plus, minus) = col_of[var.index()];
                coeffs[plus] += c;
                if let Some(mi) = minus {
                    coeffs[mi] -= c;
                } else {
                    *rows_rhs -= c * lo;
                }
            }
        };

        let mut rows: Vec<Row> = Vec::with_capacity(self.constraints.len() + n);
        for con in &self.constraints {
            let mut coeffs = vec![0.0; num_cols];
            let mut rhs = con.rhs;
            project(&con.expr, &mut rhs, &mut coeffs);
            rows.push(Row { coeffs, rel: con.rel, rhs });
        }
        // Upper bounds as rows: x' <= hi - lo (finite hi only).
        for (i, &(lo, hi)) in bounds.iter().enumerate() {
            if hi.is_finite() {
                let mut coeffs = vec![0.0; num_cols];
                let (plus, minus) = col_of[i];
                coeffs[plus] = 1.0;
                if let Some(mi) = minus {
                    coeffs[mi] = -1.0;
                    rows.push(Row { coeffs, rel: Rel::Le, rhs: hi });
                } else {
                    rows.push(Row { coeffs, rel: Rel::Le, rhs: hi - lo });
                }
            }
        }

        // Objective in shifted space (constant tracked separately).
        let mut obj = vec![0.0; num_cols];
        let mut obj_const = self.objective.constant_part();
        for (var, c) in self.objective.terms() {
            let (lo, _) = bounds[var.index()];
            let (plus, minus) = col_of[var.index()];
            let sign = if self.sense == Sense::Maximize { -c } else { c };
            obj[plus] += sign;
            if let Some(mi) = minus {
                obj[mi] -= sign;
            } else {
                obj_const += c * lo;
            }
        }

        match simplex::solve_lp(num_cols, &rows, &obj) {
            LpResult::Optimal { x, .. } => {
                let mut values = vec![0.0; n];
                for i in 0..n {
                    let (lo, _) = bounds[i];
                    let (plus, minus) = col_of[i];
                    values[i] = match minus {
                        Some(mi) => x[plus] - x[mi],
                        None => lo + x[plus],
                    };
                }
                let objective = self.objective.eval(&values);
                let _ = obj_const;
                Ok((values, objective))
            }
            LpResult::Infeasible => Err(SolveError::Infeasible),
            LpResult::Unbounded => Err(SolveError::Unbounded),
            LpResult::IterationLimit => Err(SolveError::Limit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_lp_with_bounds() {
        // min 2x + 3y s.t. x + y >= 10, 1 <= x <= 8, 0 <= y <= 20.
        let mut m = Model::minimize();
        let x = m.num_var("x", 1.0, 8.0);
        let y = m.num_var("y", 0.0, 20.0);
        m.constraint(x + y, Rel::Ge, 10.0);
        m.objective(2.0 * x + 3.0 * y);
        let s = m.solve().unwrap();
        // Cheapest: push x to its max 8, y = 2 -> 16 + 6 = 22.
        assert!((s.value(x) - 8.0).abs() < 1e-6);
        assert!((s.value(y) - 2.0).abs() < 1e-6);
        assert!((s.objective() - 22.0).abs() < 1e-6);
    }

    #[test]
    fn maximize_sense() {
        let mut m = Model::maximize();
        let x = m.num_var("x", 0.0, 5.0);
        m.objective(3.0 * x + 1.0);
        let s = m.solve().unwrap();
        assert!((s.objective() - 16.0).abs() < 1e-6);
    }

    #[test]
    fn nonzero_lower_bounds_shift_correctly() {
        // min x + y, x >= 3, y >= 4, x + y >= 10.
        let mut m = Model::minimize();
        let x = m.num_var("x", 3.0, f64::INFINITY);
        let y = m.num_var("y", 4.0, f64::INFINITY);
        m.constraint(x + y, Rel::Ge, 10.0);
        m.objective(x + y);
        let s = m.solve().unwrap();
        assert!((s.objective() - 10.0).abs() < 1e-6);
        assert!(s.value(x) >= 3.0 - 1e-9);
        assert!(s.value(y) >= 4.0 - 1e-9);
    }

    #[test]
    fn free_variable_split() {
        // min |style| problem: x free, x >= -7 via constraint; min x -> -7.
        let mut m = Model::minimize();
        let x = m.num_var("x", f64::NEG_INFINITY, f64::INFINITY);
        m.constraint(x, Rel::Ge, -7.0);
        m.objective(x);
        let s = m.solve().unwrap();
        assert!((s.value(x) + 7.0).abs() < 1e-6);
    }

    #[test]
    fn constant_in_constraint_folds_into_rhs() {
        // (x + 5) <= 8  =>  x <= 3.
        let mut m = Model::maximize();
        let x = m.num_var("x", 0.0, 100.0);
        m.constraint(x + 5.0, Rel::Le, 8.0);
        m.objective(LinExpr::from(x));
        let s = m.solve().unwrap();
        assert!((s.value(x) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn bad_bounds_rejected() {
        let mut m = Model::minimize();
        let _x = m.num_var("x", 5.0, 1.0);
        assert!(matches!(m.solve().unwrap_err(), SolveError::BadBounds(_)));

        let mut m = Model::minimize();
        let _y = m.int_var("y", 0, 10);
        m.vars[0].hi = f64::INFINITY;
        assert!(matches!(m.solve().unwrap_err(), SolveError::BadBounds(_)));
    }

    #[test]
    fn infeasible_lp_reported() {
        let mut m = Model::minimize();
        let x = m.num_var("x", 0.0, 1.0);
        m.constraint(LinExpr::from(x), Rel::Ge, 2.0);
        m.objective(LinExpr::from(x));
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_lp_reported() {
        let mut m = Model::maximize();
        let x = m.num_var("x", 0.0, f64::INFINITY);
        m.objective(LinExpr::from(x));
        assert_eq!(m.solve().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn solution_eval_arbitrary_expression() {
        let mut m = Model::minimize();
        let x = m.num_var("x", 2.0, 2.0);
        let y = m.num_var("y", 3.0, 3.0);
        m.objective(x + y);
        let s = m.solve().unwrap();
        let e = 10.0 * x + y + 1.0;
        assert!((s.eval(&e) - 24.0).abs() < 1e-6);
    }
}
