//! Cooperative wall-clock deadlines and cancellation.
//!
//! A [`RunDeadline`] bounds *how long* a solve may run, orthogonal to
//! [`crate::SolveBudget`] (which bounds *how much* work is done, in
//! deterministic node counts). Budgets give reproducible cutoffs;
//! deadlines give hard latency guarantees for interactive sweeps where a
//! degenerate cell must not hang a worker thread.
//!
//! The deadline is checked cooperatively at loop boundaries — every
//! branch-and-bound node expansion and every ~64 simplex pivots — so an
//! expired deadline surfaces within microseconds, not mid-pivot. The
//! optional cancel token lets a supervisor revoke a whole batch of
//! solves at once (e.g. `--fail-fast` after the first hard failure).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A wall-clock budget plus an optional shared cancellation token.
///
/// `Default` (and [`RunDeadline::none`]) never expires; checks against
/// it are branch-predictable no-ops, so unlimited callers pay nothing.
#[derive(Debug, Clone, Default)]
pub struct RunDeadline {
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
}

impl RunDeadline {
    /// No deadline and no cancel token: never expires.
    pub fn none() -> Self {
        RunDeadline::default()
    }

    /// Expire `budget` from now.
    pub fn within(budget: Duration) -> Self {
        RunDeadline { deadline: Some(Instant::now() + budget), cancel: None }
    }

    /// Expire `ms` milliseconds from now; `None` means no deadline.
    pub fn within_ms(ms: Option<u64>) -> Self {
        match ms {
            Some(ms) => RunDeadline::within(Duration::from_millis(ms)),
            None => RunDeadline::none(),
        }
    }

    /// Attach a shared cancel token; [`RunDeadline::expired`] becomes
    /// true as soon as the token is set, regardless of the clock.
    pub fn with_cancel(mut self, token: Arc<AtomicBool>) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Whether neither a clock deadline nor a cancel token is armed.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.cancel.is_none()
    }

    /// Whether the cancel token (if any) has been raised. Distinguishes
    /// "the batch was revoked" from "this solve ran out of time".
    pub fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
    }

    /// Whether this solve should stop now: cancelled or past deadline.
    pub fn expired(&self) -> bool {
        if self.cancelled() {
            return true;
        }
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let d = RunDeadline::none();
        assert!(d.is_unlimited());
        assert!(!d.expired());
        assert!(!d.cancelled());
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let d = RunDeadline::within(Duration::from_millis(0));
        assert!(!d.is_unlimited());
        assert!(d.expired());
        assert!(!d.cancelled(), "clock expiry is not cancellation");
    }

    #[test]
    fn generous_budget_not_yet_expired() {
        let d = RunDeadline::within(Duration::from_secs(3600));
        assert!(!d.expired());
    }

    #[test]
    fn within_ms_none_is_unlimited() {
        assert!(RunDeadline::within_ms(None).is_unlimited());
        assert!(RunDeadline::within_ms(Some(0)).expired());
    }

    #[test]
    fn cancel_token_expires_without_clock() {
        let token = Arc::new(AtomicBool::new(false));
        let d = RunDeadline::none().with_cancel(Arc::clone(&token));
        assert!(!d.expired());
        token.store(true, Ordering::Relaxed);
        assert!(d.expired());
        assert!(d.cancelled());
    }
}
