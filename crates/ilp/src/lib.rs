//! A from-scratch (integer) linear programming solver for Clara.
//!
//! Clara estimates the best NF-to-NIC mapping "by encoding a set of ILP
//! constraints ... and invoking a solver to find an optimal solution that
//! maximizes performance" (§3.4). This crate is that solver:
//!
//! * [`Model`] — a small modelling layer: named continuous / integer /
//!   binary variables, linear constraints, and a linear objective.
//! * A dense **two-phase simplex** for LP (relaxations), with Bland's rule
//!   to guarantee termination.
//! * **Branch-and-bound** over the integer variables: best-first on the
//!   relaxation bound, branching on the most fractional variable.
//!
//! The mapping problems Clara produces are small (tens of binary
//! variables), so a dense tableau is the right engineering trade-off:
//! simple, auditable, and fast enough by orders of magnitude. The
//! tableau is stored flat (one allocation, row-major) and re-solves in
//! branch-and-bound are warm-started from the parent basis and memoized
//! by bound vector; [`SolverConfig::baseline`] switches all of that off
//! and runs the preserved seed solver ([`mod@reference`]) for differential
//! testing and benchmarking.
//!
//! # Example: a 0/1 knapsack
//!
//! ```
//! use clara_ilp::{Model, Rel};
//!
//! let mut m = Model::maximize();
//! let a = m.binary("a");
//! let b = m.binary("b");
//! let c = m.binary("c");
//! // weights 3, 4, 5; capacity 7; values 4, 5, 6
//! m.constraint(3.0 * a + 4.0 * b + 5.0 * c, Rel::Le, 7.0);
//! m.objective(4.0 * a + 5.0 * b + 6.0 * c);
//! let sol = m.solve().unwrap();
//! assert_eq!(sol.objective().round(), 9.0); // take a and b
//! assert_eq!(sol.value(a).round(), 1.0);
//! assert_eq!(sol.value(c).round(), 0.0);
//! ```

pub mod deadline;
pub mod expr;
pub mod model;
pub mod simplex;

mod branch;
mod tableau;

#[doc(hidden)]
pub mod reference;

pub use clara_telemetry::SolveStats;
pub use deadline::RunDeadline;
pub use expr::{LinExpr, Var};
pub use model::{IlpSeed, Model, Rel, SolveBudget, SolveError, Solution, SolverConfig};
