//! The seed dense two-phase simplex, preserved verbatim.
//!
//! This is the original `Vec<Vec<f64>>` Bland's-rule solver the flat
//! warm-started tableau in [`crate::simplex`] replaced. It is kept for
//! two jobs:
//!
//! 1. **Differential oracle** — property tests solve randomized LPs/ILPs
//!    with both solvers and require matching optima within `TOL`.
//! 2. **Benchmark baseline** — `SolverConfig::baseline()` routes all
//!    branch-and-bound relaxations through this solver (with per-node
//!    rebuilds, no warm starts, no memoization), so `BENCH_pipeline.json`
//!    records speedups against the true pre-optimization pipeline.
//!
//! Not part of the supported API surface.

use crate::model::Rel;
use crate::simplex::{LpResult, Row, TOL};

/// Solve `min objective·x` s.t. `rows`, `x ≥ 0` with the seed solver.
pub fn solve_lp(num_vars: usize, rows: &[Row], objective: &[f64]) -> LpResult {
    assert_eq!(objective.len(), num_vars);
    Tableau::new(num_vars, rows).solve(objective)
}

struct Tableau {
    /// `tab[i]` is row i: n structural + slack/surplus + artificial
    /// columns, then the rhs in the last position.
    tab: Vec<Vec<f64>>,
    basis: Vec<usize>,
    num_vars: usize,
    /// Total columns excluding rhs.
    width: usize,
    /// Column indices of artificial variables.
    artificial: Vec<usize>,
}

impl Tableau {
    fn new(num_vars: usize, rows: &[Row]) -> Self {
        // Normalize rhs >= 0.
        let mut norm: Vec<Row> = rows.to_vec();
        for r in &mut norm {
            if r.rhs < 0.0 {
                for c in &mut r.coeffs {
                    *c = -*c;
                }
                r.rhs = -r.rhs;
                r.rel = match r.rel {
                    Rel::Le => Rel::Ge,
                    Rel::Ge => Rel::Le,
                    Rel::Eq => Rel::Eq,
                };
            }
        }
        let m = norm.len();
        let n_slack = norm.iter().filter(|r| r.rel != Rel::Eq).count();
        // Artificials are needed for Ge and Eq rows.
        let n_art = norm.iter().filter(|r| r.rel != Rel::Le).count();
        let width = num_vars + n_slack + n_art;

        let mut tab = vec![vec![0.0; width + 1]; m];
        let mut basis = vec![0usize; m];
        let mut artificial = Vec::with_capacity(n_art);
        let mut slack_col = num_vars;
        let mut art_col = num_vars + n_slack;

        for (i, r) in norm.iter().enumerate() {
            assert_eq!(r.coeffs.len(), num_vars, "row width mismatch");
            tab[i][..num_vars].copy_from_slice(&r.coeffs);
            tab[i][width] = r.rhs;
            match r.rel {
                Rel::Le => {
                    tab[i][slack_col] = 1.0;
                    basis[i] = slack_col;
                    slack_col += 1;
                }
                Rel::Ge => {
                    tab[i][slack_col] = -1.0; // surplus
                    slack_col += 1;
                    tab[i][art_col] = 1.0;
                    basis[i] = art_col;
                    artificial.push(art_col);
                    art_col += 1;
                }
                Rel::Eq => {
                    tab[i][art_col] = 1.0;
                    basis[i] = art_col;
                    artificial.push(art_col);
                    art_col += 1;
                }
            }
        }
        Tableau { tab, basis, num_vars, width, artificial }
    }

    fn solve(mut self, objective: &[f64]) -> LpResult {
        // Phase 1: minimize the sum of artificial variables.
        if !self.artificial.is_empty() {
            let mut phase1 = vec![0.0; self.width];
            for &a in &self.artificial {
                phase1[a] = 1.0;
            }
            match self.optimize(&phase1, &[]) {
                Status::Optimal => {}
                Status::Unbounded => return LpResult::Infeasible, // cannot happen, defensive
                Status::IterationLimit => return LpResult::IterationLimit,
            }
            let phase1_obj = self.current_objective(&phase1);
            if phase1_obj > 1e-7 {
                return LpResult::Infeasible;
            }
            self.evict_artificials();
        }

        // Phase 2: original objective, artificials barred from entering.
        let mut full_obj = vec![0.0; self.width];
        full_obj[..self.num_vars].copy_from_slice(objective);
        let barred = self.artificial.clone();
        match self.optimize(&full_obj, &barred) {
            Status::Optimal => {}
            Status::Unbounded => return LpResult::Unbounded,
            Status::IterationLimit => return LpResult::IterationLimit,
        }

        let mut x = vec![0.0; self.num_vars];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.num_vars {
                x[b] = self.tab[i][self.width];
            }
        }
        let objective_value = objective
            .iter()
            .zip(&x)
            .map(|(c, v)| c * v)
            .sum::<f64>();
        LpResult::Optimal { x, objective: objective_value }
    }

    /// Objective value of the current basic solution under `costs`.
    fn current_objective(&self, costs: &[f64]) -> f64 {
        self.basis
            .iter()
            .enumerate()
            .map(|(i, &b)| costs[b] * self.tab[i][self.width])
            .sum()
    }

    /// Pivot basic artificial variables out where possible; drop redundant
    /// rows where not.
    fn evict_artificials(&mut self) {
        let art_set: std::collections::HashSet<usize> =
            self.artificial.iter().copied().collect();
        let mut row = 0;
        while row < self.tab.len() {
            if art_set.contains(&self.basis[row]) {
                // Find a non-artificial column with a non-zero entry.
                let col = (0..self.width)
                    .find(|j| !art_set.contains(j) && self.tab[row][*j].abs() > TOL);
                match col {
                    Some(j) => self.pivot(row, j),
                    None => {
                        // Row is 0 = 0: redundant constraint.
                        self.tab.remove(row);
                        self.basis.remove(row);
                        continue;
                    }
                }
            }
            row += 1;
        }
    }

    /// Run simplex iterations under `costs` until optimal/unbounded.
    /// Columns in `barred` may never enter the basis.
    fn optimize(&mut self, costs: &[f64], barred: &[usize]) -> Status {
        let barred: std::collections::HashSet<usize> = barred.iter().copied().collect();
        let max_iters = 20_000 + 200 * (self.width + self.tab.len());
        for _ in 0..max_iters {
            // Reduced costs: rc_j = c_j - c_B · column_j (tableau form).
            let entering = (0..self.width)
                .filter(|j| !barred.contains(j))
                .find(|&j| {
                    let rc = costs[j]
                        - self
                            .basis
                            .iter()
                            .enumerate()
                            .map(|(i, &b)| costs[b] * self.tab[i][j])
                            .sum::<f64>();
                    rc < -TOL
                });
            let Some(j) = entering else { return Status::Optimal };

            // Ratio test with Bland tie-break.
            let mut pivot_row: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..self.tab.len() {
                let a = self.tab[i][j];
                if a > TOL {
                    let ratio = self.tab[i][self.width] / a;
                    let better = ratio < best_ratio - TOL
                        || (ratio < best_ratio + TOL
                            && pivot_row
                                .map(|r| self.basis[i] < self.basis[r])
                                .unwrap_or(true));
                    if better {
                        best_ratio = ratio;
                        pivot_row = Some(i);
                    }
                }
            }
            let Some(r) = pivot_row else { return Status::Unbounded };
            self.pivot(r, j);
        }
        Status::IterationLimit
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let pivot = self.tab[row][col];
        debug_assert!(pivot.abs() > TOL, "pivot on (near-)zero element");
        for v in &mut self.tab[row] {
            *v /= pivot;
        }
        for i in 0..self.tab.len() {
            if i == row {
                continue;
            }
            let factor = self.tab[i][col];
            if factor.abs() <= TOL {
                continue;
            }
            for j in 0..=self.width {
                self.tab[i][j] -= factor * self.tab[row][j];
            }
        }
        self.basis[row] = col;
    }
}

enum Status {
    Optimal,
    Unbounded,
    IterationLimit,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_solves_textbook_lp() {
        let rows = vec![
            Row { coeffs: vec![1.0, 0.0], rel: Rel::Le, rhs: 4.0 },
            Row { coeffs: vec![0.0, 2.0], rel: Rel::Le, rhs: 12.0 },
            Row { coeffs: vec![3.0, 2.0], rel: Rel::Le, rhs: 18.0 },
        ];
        match solve_lp(2, &rows, &[-3.0, -5.0]) {
            LpResult::Optimal { objective, .. } => assert!((objective + 36.0).abs() < 1e-6),
            other => panic!("{other:?}"),
        }
    }
}
