//! A minimal flat row-major matrix for the simplex tableau.
//!
//! The seed solver stored the tableau as `Vec<Vec<f64>>`; every pivot
//! chased one heap pointer per row. [`FlatMat`] keeps all entries in one
//! contiguous allocation so row operations are straight slice arithmetic
//! and the whole working set prefetches well.

/// A dense row-major matrix backed by a single `Vec<f64>`.
#[derive(Debug, Clone)]
pub(crate) struct FlatMat {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl FlatMat {
    /// An all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        FlatMat { data: vec![0.0; rows * cols], rows, cols }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[cfg(test)]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `a` together with an immutable view of row `b`
    /// (`a != b`) — the split borrow every elimination step needs.
    #[inline]
    pub fn row_pair_mut(&mut self, a: usize, b: usize) -> (&mut [f64], &[f64]) {
        debug_assert!(a != b && a < self.rows && b < self.rows);
        let cols = self.cols;
        if a < b {
            let (lo, hi) = self.data.split_at_mut(b * cols);
            (&mut lo[a * cols..(a + 1) * cols], &hi[..cols])
        } else {
            let (lo, hi) = self.data.split_at_mut(a * cols);
            (&mut hi[..cols], &lo[b * cols..(b + 1) * cols])
        }
    }

    /// Drop row `r`, shifting later rows up (used only when phase 1
    /// detects a redundant constraint — rare, so O(n) is fine).
    pub fn remove_row(&mut self, r: usize) {
        debug_assert!(r < self.rows);
        let cols = self.cols;
        self.data.copy_within((r + 1) * cols.., r * cols);
        self.data.truncate((self.rows - 1) * cols);
        self.rows -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_indexing() {
        let mut m = FlatMat::zeros(2, 3);
        m.set(0, 1, 5.0);
        m.set(1, 2, 7.0);
        assert_eq!(m.at(0, 1), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 7.0]);
        m.row_mut(0)[0] = 1.0;
        assert_eq!(m.at(0, 0), 1.0);
    }

    #[test]
    fn row_pair_split_borrows_both_orders() {
        let mut m = FlatMat::zeros(3, 2);
        m.set(0, 0, 1.0);
        m.set(2, 0, 3.0);
        {
            let (a, b) = m.row_pair_mut(0, 2);
            a[1] = b[0];
        }
        assert_eq!(m.at(0, 1), 3.0);
        {
            let (a, b) = m.row_pair_mut(2, 0);
            a[1] = b[0];
        }
        assert_eq!(m.at(2, 1), 1.0);
    }

    #[test]
    fn remove_row_shifts_later_rows_up() {
        let mut m = FlatMat::zeros(3, 2);
        for r in 0..3 {
            m.set(r, 0, r as f64);
        }
        m.remove_row(1);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.at(0, 0), 0.0);
        assert_eq!(m.at(1, 0), 2.0);
    }
}
