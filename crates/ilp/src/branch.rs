//! Branch-and-bound over the LP relaxation.
//!
//! Best-first search: nodes are ordered by their parent relaxation bound,
//! so the most promising subtree is explored first and the incumbent
//! converges quickly. Branching selects the most fractional integer
//! variable.
//!
//! Hot-path structure (all switchable via [`SolverConfig`]):
//!
//! - one [`RelaxWorkspace`] per solve holds the lowered coefficient
//!   matrix; each node only rebinds right-hand sides;
//! - children re-solve from their parent's optimal basis (dual simplex
//!   warm start) instead of running phase 1 from scratch;
//! - relaxations are memoized by the node's bound vector, so a bound
//!   vector reached along two branching paths is solved once.

use crate::deadline::RunDeadline;
use crate::model::{IlpSeed, Model, Rel, RelaxWorkspace, Sense, Solution, SolveError, SolverConfig};
use crate::simplex::{counters, Basis};
use clara_telemetry::SolveStats;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::rc::Rc;

const INT_TOL: f64 = 1e-6;

/// Tolerance for accepting a cross-solve seed as feasible. Matches the
/// simplex feasibility tolerance: a point this close to every constraint
/// would also be accepted as an LP vertex.
const FEAS_TOL: f64 = 1e-6;

/// Stop inserting into the relaxation memo past this many entries: the
/// map is a speed-up, not a correctness requirement, and unbounded
/// growth on huge trees would trade memory for little extra reuse.
const MEMO_CAP: usize = 65_536;

struct Node {
    bounds: Vec<(f64, f64)>,
    /// Relaxation bound inherited from the parent, in *minimization*
    /// orientation (lower is more promising).
    bound: f64,
    /// The parent's optimal basis, shared by both children.
    basis: Option<Rc<Basis>>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest bound pops first.
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
    }
}

/// A solved relaxation as cached/shared across the tree.
type Relaxed = Result<(Vec<f64>, f64, Option<Rc<Basis>>), SolveError>;

/// Memo key: the exact bit pattern of the bound vector.
fn bounds_key(bounds: &[(f64, f64)]) -> Vec<u64> {
    let mut key = Vec::with_capacity(bounds.len() * 2);
    for &(lo, hi) in bounds {
        key.push(lo.to_bits());
        key.push(hi.to_bits());
    }
    key
}

/// Verify a cross-solve seed against *this* model: same variable count,
/// finite values, integral on integer variables, within the root bounds,
/// and satisfying every constraint. Returns the integer-snapped point
/// with its objective under this model's coefficients (the donor's
/// objective is meaningless here — neighboring sweep cells share
/// structure, not costs). `None` means the seed is rejected and the
/// solve proceeds cold — acceptance is verify-or-fall-back, never trust.
fn verify_seed(model: &Model, bounds: &[(f64, f64)], seed: &IlpSeed) -> Option<(Vec<f64>, f64)> {
    if seed.values.len() != model.vars.len() {
        return None;
    }
    let mut x = seed.values.clone();
    for (i, v) in model.vars.iter().enumerate() {
        if !x[i].is_finite() {
            return None;
        }
        if v.integer {
            let r = x[i].round();
            if (x[i] - r).abs() > INT_TOL {
                return None;
            }
            x[i] = r;
        }
        let (lo, hi) = bounds[i];
        if x[i] < lo - FEAS_TOL || x[i] > hi + FEAS_TOL {
            return None;
        }
    }
    for con in &model.constraints {
        let lhs = con.expr.eval(&x);
        let ok = match con.rel {
            Rel::Le => lhs <= con.rhs + FEAS_TOL,
            Rel::Ge => lhs >= con.rhs - FEAS_TOL,
            Rel::Eq => (lhs - con.rhs).abs() <= FEAS_TOL,
        };
        if !ok {
            return None;
        }
    }
    let objective = model.objective.eval(&x);
    Some((x, objective))
}

/// Branch-and-bound with a deterministic node-expansion budget and a
/// cooperative wall-clock deadline.
///
/// Anytime behavior: when `max_nodes` expansions are spent — or the
/// [`RunDeadline`] expires — the best incumbent found so far is returned
/// (flagged unproven); only if *no* integer-feasible point was seen does
/// the solve fail, with [`SolveError::Limit`] for an exhausted budget or
/// [`SolveError::TimedOut`] for an expired deadline. An emptied heap
/// means the incumbent (if any) is proven optimal.
///
/// The deadline is checked before every node expansion and inside the
/// simplex pivot loops (except under `reference_lp`, where the preserved
/// seed solver runs undeadlined and only the node-granularity check
/// applies).
pub(crate) fn solve_ilp(
    model: &Model,
    max_nodes: usize,
    config: &SolverConfig,
    deadline: &RunDeadline,
    seed: Option<&IlpSeed>,
) -> Result<Solution, SolveError> {
    let sense_sign = match model.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let root_bounds: Vec<(f64, f64)> = model.vars.iter().map(|v| (v.lo, v.hi)).collect();

    let mut ws: Option<RelaxWorkspace> =
        (!config.reference_lp).then(|| model.relax_workspace(&root_bounds));
    let mut memo: HashMap<Vec<u64>, Relaxed> = HashMap::new();

    let mut incumbent: Option<(Vec<f64>, f64)> = None; // (values, min-oriented obj)
    // The basis behind the current incumbent, exported so the *next*
    // structurally similar solve can seed from this one.
    let mut incumbent_basis: Option<Rc<Basis>> = None;
    let mut nodes = 0usize;
    let mut exhausted = false;
    let mut timed_out = false;
    // Telemetry: LP-layer work is read as a thread-local delta around
    // the solve; node/memo/trajectory attribution is tracked here.
    // Deterministic — keyed on node counts, never wall-clock.
    let lp_base = counters::snapshot();
    let mut memo_hits = 0u64;
    let mut cell_warm_hits = 0u64;
    let mut cell_warm_misses = 0u64;
    let mut trajectory: Vec<(u64, f64)> = Vec::new();

    // Cross-solve seeding: verify the donor point against this model; on
    // acceptance it becomes the initial incumbent (an upper bound that
    // prunes from node one) and its basis warm-starts the root
    // relaxation. The simplex layer re-verifies any warm basis against
    // the actual rows (`satisfies`) and falls back to a cold solve, so a
    // stale donor basis costs a miss, never a wrong answer. Under
    // `reference_lp` the seed is ignored entirely: the baseline config
    // must reproduce the seed solver's behaviour exactly.
    let mut root_basis: Option<Rc<Basis>> = None;
    if let Some(seed) = seed {
        if config.reference_lp {
            // Neither hit nor miss: the baseline never looks at seeds.
        } else {
            match verify_seed(model, &root_bounds, seed) {
                Some((snapped, objective)) => {
                    let min_obj = sense_sign * objective;
                    trajectory.push((0, objective));
                    incumbent = Some((snapped, min_obj));
                    incumbent_basis = seed.basis.clone().map(Rc::new);
                    root_basis = incumbent_basis.clone();
                    cell_warm_hits = 1;
                }
                None => cell_warm_misses = 1,
            }
        }
    }

    let mut heap = BinaryHeap::new();
    heap.push(Node { bounds: root_bounds, bound: f64::NEG_INFINITY, basis: root_basis });

    while let Some(node) = heap.pop() {
        if deadline.expired() {
            timed_out = true;
            break;
        }
        nodes += 1;
        if nodes > max_nodes {
            exhausted = true;
            break;
        }
        // Bound-based prune (the heap may hold stale nodes).
        if let Some((_, best)) = &incumbent {
            if node.bound >= *best - INT_TOL {
                continue;
            }
        }
        let key = config.memoize.then(|| bounds_key(&node.bounds));
        let relaxed: Relaxed = match key.as_ref().and_then(|k| memo.get(k)) {
            Some(hit) => {
                memo_hits += 1;
                hit.clone()
            }
            None => {
                let fresh: Relaxed = match &mut ws {
                    Some(ws) => {
                        let warm = if config.warm_start { node.basis.as_deref() } else { None };
                        model
                            .solve_relaxation_warm(ws, &node.bounds, warm, deadline)
                            .map(|(v, o, b)| (v, o, b.map(Rc::new)))
                    }
                    None => model
                        .solve_relaxation_reference(&node.bounds)
                        .map(|(v, o)| (v, o, None)),
                };
                // A timeout says nothing about the subproblem, only about
                // the clock: never memoize it.
                if let Some(k) = key {
                    if memo.len() < MEMO_CAP && !matches!(fresh, Err(SolveError::TimedOut)) {
                        memo.insert(k, fresh.clone());
                    }
                }
                fresh
            }
        };
        let (values, objective, basis) = match relaxed {
            Ok(r) => r,
            Err(SolveError::Infeasible) => continue,
            Err(SolveError::Unbounded) => return Err(SolveError::Unbounded),
            Err(SolveError::TimedOut) => {
                timed_out = true;
                break;
            }
            Err(e) => return Err(e),
        };
        let min_obj = sense_sign * objective;
        if let Some((_, best)) = &incumbent {
            if min_obj >= *best - INT_TOL {
                continue;
            }
        }

        // Most fractional integer variable.
        let frac_var = model
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.integer)
            .map(|(i, _)| (i, (values[i] - values[i].round()).abs()))
            .filter(|(_, f)| *f > INT_TOL)
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal));

        match frac_var {
            None => {
                // Integer feasible: snap the integer values exactly.
                let mut snapped = values;
                for (i, v) in model.vars.iter().enumerate() {
                    if v.integer {
                        snapped[i] = snapped[i].round();
                    }
                }
                trajectory.push((nodes as u64, sense_sign * min_obj));
                incumbent = Some((snapped, min_obj));
                incumbent_basis = basis;
            }
            Some((i, _)) => {
                // One clone for the down-child; the up-child takes the
                // node's own vector and flips the single branched bound.
                let v = values[i];
                let (lo, hi) = node.bounds[i];
                let floor = v.floor();
                if floor >= lo {
                    let mut b = node.bounds.clone();
                    b[i] = (lo, floor);
                    heap.push(Node { bounds: b, bound: min_obj, basis: basis.clone() });
                }
                if floor + 1.0 <= hi {
                    let mut b = node.bounds;
                    b[i] = (floor + 1.0, hi);
                    heap.push(Node { bounds: b, bound: min_obj, basis });
                }
            }
        }
    }

    let lp = counters::since(lp_base);
    let stats = |proven: bool| SolveStats {
        nodes_explored: nodes as u64,
        lp_solves: lp.lp_solves,
        simplex_pivots: lp.pivots,
        warm_start_hits: lp.warm_hits,
        warm_start_misses: lp.warm_misses,
        memo_hits,
        cell_warm_hits,
        cell_warm_misses,
        incumbent_trajectory: trajectory.clone(),
        proven_optimal: proven,
    };
    let export_basis = incumbent_basis.map(|b| (*b).clone());
    match (incumbent, exhausted || timed_out) {
        (Some((values, min_obj)), false) => Ok(Solution::new(values, sense_sign * min_obj)
            .with_seed_basis(export_basis)
            .with_stats(stats(true))),
        // A donated seed accelerates a search; it never substitutes for
        // one. If the clock expired before a single node was explored,
        // returning the seed as "our" incumbent would mask the timeout,
        // so an instantly-expired solve fails exactly as it would cold.
        (Some((values, min_obj)), true) if nodes > 0 => {
            Ok(Solution::incumbent(values, sense_sign * min_obj)
                .with_seed_basis(export_basis)
                .with_stats(stats(false)))
        }
        (None, false) => Err(SolveError::Infeasible),
        (_, _) if timed_out => Err(SolveError::TimedOut),
        (_, _) => Err(SolveError::Limit),
    }
}

#[cfg(test)]
mod tests {
    use crate::{LinExpr, Model, Rel, SolveBudget, SolveError, SolverConfig};

    #[test]
    fn integer_rounding_matters() {
        // LP optimum is fractional; ILP must land on an integer point.
        // max x + y s.t. 2x + 2y <= 3, x, y in {0, 1} -> best is 1.
        let mut m = Model::maximize();
        let x = m.binary("x");
        let y = m.binary("y");
        m.constraint(2.0 * x + 2.0 * y, Rel::Le, 3.0);
        m.objective(x + y);
        let s = m.solve().unwrap();
        assert_eq!(s.objective().round(), 1.0);
        assert_eq!(s.int_value(x) + s.int_value(y), 1);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index loops mirror the matrix statement
    fn assignment_problem() {
        // 3 tasks x 3 machines, minimize total cost; classic assignment.
        let cost = [[4.0, 2.0, 8.0], [4.0, 3.0, 7.0], [3.0, 1.0, 6.0]];
        let mut m = Model::minimize();
        let mut x = vec![vec![]; 3];
        for t in 0..3 {
            for u in 0..3 {
                x[t].push(m.binary(format!("x{t}{u}")));
            }
        }
        for t in 0..3 {
            m.constraint(
                LinExpr::sum(x[t].iter().map(|&v| LinExpr::from(v))),
                Rel::Eq,
                1.0,
            );
        }
        for u in 0..3 {
            m.constraint(
                LinExpr::sum((0..3).map(|t| LinExpr::from(x[t][u]))),
                Rel::Le,
                1.0,
            );
        }
        let obj = LinExpr::sum(
            (0..3).flat_map(|t| (0..3).map(move |u| (t, u)))
                .map(|(t, u)| cost[t][u] * x[t][u]),
        );
        m.objective(obj);
        let s = m.solve().unwrap();
        // Optimal: t0->m1 (2), t1->m0 (4) or t1->m2 (7)... enumerate: best
        // is t0->1 (2), t2->0 (3), t1->2 (7) = 12, vs t0->1, t1->0 (4),
        // t2->2 (6) = 12; both 12.
        assert_eq!(s.objective().round(), 12.0);
        // Each task assigned exactly once.
        for t in 0..3 {
            let total: i64 = (0..3).map(|u| s.int_value(x[t][u])).sum();
            assert_eq!(total, 1);
        }
    }

    /// The generalized-assignment model the seeding tests share: 4
    /// tasks × 3 units, unit costs shifted by `cost_shift` so two
    /// instances are structurally identical but priced differently —
    /// exactly the relation between adjacent sweep cells.
    #[allow(clippy::needless_range_loop)] // index loops mirror the matrix statement
    fn seeded_model(cost_shift: f64) -> Model {
        let mut m = Model::minimize();
        let mut x = vec![vec![]; 4];
        for t in 0..4 {
            for u in 0..3 {
                x[t].push(m.binary(format!("x{t}{u}")));
            }
            m.constraint(
                LinExpr::sum(x[t].iter().map(|&v| LinExpr::from(v))),
                Rel::Eq,
                1.0,
            );
        }
        for u in 0..3 {
            m.constraint(
                LinExpr::sum((0..4).map(|t| LinExpr::from(x[t][u]))),
                Rel::Le,
                2.0,
            );
        }
        let obj = LinExpr::sum((0..4).flat_map(|t| (0..3).map(move |u| (t, u))).map(
            |(t, u)| (((t * 5 + u * 7) % 9 + 1) as f64 + cost_shift * (u as f64)) * x[t][u],
        ));
        m.objective(obj);
        m
    }

    #[test]
    fn seeded_solve_counts_a_hit_and_agrees_with_cold() {
        use crate::{RunDeadline, SolveBudget};
        let donor = seeded_model(0.0);
        let cold = donor.solve().unwrap();
        let seed = cold.export_seed();

        // A structurally identical model with shifted costs: the seed
        // is feasible here, so it must verify (hit) and the seeded
        // optimum must equal the cold optimum of the receiving model.
        let receiver = seeded_model(0.3);
        let unseeded = receiver.solve().unwrap();
        let seeded = receiver
            .solve_seeded(
                &SolveBudget::unlimited(),
                &SolverConfig::default(),
                &RunDeadline::none(),
                Some(&seed),
            )
            .unwrap();
        assert_eq!(seeded.stats().cell_warm_hits, 1);
        assert_eq!(seeded.stats().cell_warm_misses, 0);
        assert!(seeded.is_proven_optimal());
        assert!(
            (seeded.objective() - unseeded.objective()).abs() < 1e-6,
            "seeded {} vs cold {}",
            seeded.objective(),
            unseeded.objective()
        );
    }

    #[test]
    fn bad_seed_is_a_counted_miss_not_an_error() {
        use crate::{IlpSeed, RunDeadline, SolveBudget};
        let m = seeded_model(0.0);
        let cold = m.solve().unwrap();
        // Wrong variable count: rejected before anything else.
        let bad = IlpSeed { values: vec![1.0; 3], basis: None };
        let s = m
            .solve_seeded(
                &SolveBudget::unlimited(),
                &SolverConfig::default(),
                &RunDeadline::none(),
                Some(&bad),
            )
            .unwrap();
        assert_eq!(s.stats().cell_warm_hits, 0);
        assert_eq!(s.stats().cell_warm_misses, 1);
        assert!((s.objective() - cold.objective()).abs() < 1e-6);

        // Right shape, infeasible point (violates the Eq rows): also a
        // miss, also the cold answer.
        let infeasible = IlpSeed { values: vec![0.0; 12], basis: None };
        let s = m
            .solve_seeded(
                &SolveBudget::unlimited(),
                &SolverConfig::default(),
                &RunDeadline::none(),
                Some(&infeasible),
            )
            .unwrap();
        assert_eq!(s.stats().cell_warm_hits, 0);
        assert_eq!(s.stats().cell_warm_misses, 1);
        assert!((s.objective() - cold.objective()).abs() < 1e-6);
    }

    #[test]
    fn baseline_config_ignores_seeds_entirely() {
        use crate::{RunDeadline, SolveBudget};
        let m = seeded_model(0.0);
        let seed = m.solve().unwrap().export_seed();
        let s = m
            .solve_seeded(
                &SolveBudget::unlimited(),
                &SolverConfig::baseline(),
                &RunDeadline::none(),
                Some(&seed),
            )
            .unwrap();
        // The reference path neither accepts nor rejects: no counters.
        assert_eq!(s.stats().cell_warm_hits, 0);
        assert_eq!(s.stats().cell_warm_misses, 0);
    }

    #[test]
    fn seed_never_masks_an_expired_deadline() {
        use crate::{RunDeadline, SolveBudget};
        let m = seeded_model(0.0);
        let seed = m.solve().unwrap().export_seed();
        // Deadline already expired: even with a verified seed in hand,
        // zero nodes were explored, so the solve must report the
        // timeout exactly as an unseeded solve would.
        let err = m
            .solve_seeded(
                &SolveBudget::unlimited(),
                &SolverConfig::default(),
                &RunDeadline::within_ms(Some(0)),
                Some(&seed),
            )
            .unwrap_err();
        assert_eq!(err, SolveError::TimedOut);
    }

    #[test]
    fn integer_infeasible_detected() {
        // 0.4 <= x <= 0.6 has LP solutions but no integer ones.
        let mut m = Model::minimize();
        let x = m.int_var("x", 0, 10);
        m.constraint(LinExpr::from(x), Rel::Ge, 0.4);
        m.constraint(LinExpr::from(x), Rel::Le, 0.6);
        m.objective(LinExpr::from(x));
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn general_integer_variables() {
        // min 7a + 5b s.t. 3a + 2b >= 13, a,b in [0, 10] integer.
        let mut m = Model::minimize();
        let a = m.int_var("a", 0, 10);
        let b = m.int_var("b", 0, 10);
        m.constraint(3.0 * a + 2.0 * b, Rel::Ge, 13.0);
        m.objective(7.0 * a + 5.0 * b);
        let s = m.solve().unwrap();
        // Candidates: a=1,b=5 -> 32; a=3,b=2 -> 31; a=2? 3*2+2b>=13 -> b>=3.5 -> b=4 -> 34.
        assert_eq!(s.objective().round(), 31.0);
        assert_eq!(s.int_value(a), 3);
        assert_eq!(s.int_value(b), 2);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 2x + y, x binary, 0 <= y <= 1.5 continuous, x + y <= 2.
        let mut m = Model::maximize();
        let x = m.binary("x");
        let y = m.num_var("y", 0.0, 1.5);
        m.constraint(x + y, Rel::Le, 2.0);
        m.objective(2.0 * x + y);
        let s = m.solve().unwrap();
        assert_eq!(s.int_value(x), 1);
        assert!((s.value(y) - 1.0).abs() < 1e-6);
        assert!((s.objective() - 3.0).abs() < 1e-6);
    }

    /// A knapsack whose LP relaxation is fractional at the root: one
    /// node cannot prove anything, so a budget of 1 yields `Limit`, a
    /// tight-but-larger budget yields an unproven incumbent, and the
    /// default budget proves the same optimum.
    fn knapsack() -> (Model, f64) {
        let mut m = Model::maximize();
        let weights = [4.0, 3.0, 5.0, 6.0, 2.0, 7.0];
        let values = [7.0, 4.0, 8.0, 9.0, 3.0, 10.0];
        let mut obj = LinExpr::zero();
        let mut cap = LinExpr::zero();
        for (i, (&w, &v)) in weights.iter().zip(&values).enumerate() {
            let x = m.binary(format!("x{i}"));
            obj += v * x;
            cap += w * x;
        }
        m.constraint(cap, Rel::Le, 11.0);
        m.objective(obj);
        (m, 18.0) // x0 + x2 + x4 (4+5+2=11) -> 7+8+3 = 18
    }

    #[test]
    fn budget_of_one_cannot_prove_fractional_roots() {
        let (m, _) = knapsack();
        assert_eq!(
            m.solve_with_budget(&SolveBudget::nodes(1)).unwrap_err(),
            SolveError::Limit
        );
    }

    #[test]
    fn exhausted_budget_returns_best_incumbent() {
        let (m, optimal) = knapsack();
        // Find the smallest budget that yields any incumbent; it must be
        // feasible and flagged unproven or proven-equal-to-optimal.
        let mut found = false;
        for budget in 2..40 {
            if let Ok(s) = m.solve_with_budget(&SolveBudget::nodes(budget)) {
                found = true;
                assert!(s.objective() <= optimal + 1e-6);
                if !s.is_proven_optimal() {
                    // An anytime answer: feasible, not necessarily optimal.
                    assert!(s.objective() > 0.0);
                }
                break;
            }
        }
        assert!(found, "no budget up to 40 nodes produced an incumbent");
    }

    #[test]
    fn default_budget_proves_optimality() {
        let (m, optimal) = knapsack();
        let s = m.solve().unwrap();
        assert!(s.is_proven_optimal());
        assert!((s.objective() - optimal).abs() < 1e-6);
    }

    #[test]
    fn unlimited_budget_matches_default() {
        let (m, optimal) = knapsack();
        let s = m.solve_with_budget(&SolveBudget::unlimited()).unwrap();
        assert!(s.is_proven_optimal());
        assert!((s.objective() - optimal).abs() < 1e-6);
    }

    #[test]
    fn equality_pinned_binaries() {
        let mut m = Model::minimize();
        let xs: Vec<_> = (0..5).map(|i| m.binary(format!("x{i}"))).collect();
        m.constraint(
            LinExpr::sum(xs.iter().map(|&v| LinExpr::from(v))),
            Rel::Eq,
            3.0,
        );
        m.objective(LinExpr::sum(
            xs.iter().enumerate().map(|(i, &v)| (i as f64 + 1.0) * v),
        ));
        let s = m.solve().unwrap();
        // Choose the three cheapest: 1 + 2 + 3 = 6.
        assert_eq!(s.objective().round(), 6.0);
    }

    /// The knapsack tree under every config corner lands on the same
    /// proven optimum.
    #[test]
    fn knapsack_agrees_across_configs() {
        let (m, optimal) = knapsack();
        let budget = SolveBudget::default();
        for cfg in [
            SolverConfig::baseline(),
            SolverConfig::default(),
            SolverConfig { warm_start: true, memoize: false, reference_lp: false },
            SolverConfig { warm_start: false, memoize: true, reference_lp: false },
        ] {
            let s = m.solve_with_config(&budget, &cfg).unwrap();
            assert!(s.is_proven_optimal(), "{cfg:?}");
            assert!((s.objective() - optimal).abs() < 1e-6, "{cfg:?}: {}", s.objective());
        }
    }
}
