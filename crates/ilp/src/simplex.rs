//! Dense two-phase simplex.
//!
//! Solves `min c·x` subject to linear constraints and `x ≥ 0`. The
//! [`crate::Model`] layer is responsible for shifting general lower
//! bounds to zero and expressing upper bounds as constraint rows, so this
//! module only handles the canonical non-negative form.
//!
//! Pivoting uses Bland's rule (smallest-index entering column, smallest
//! basis-index ratio tie-break), which guarantees termination even on
//! degenerate problems at a modest performance cost — the right choice
//! for the small mapping ILPs Clara generates.

use crate::model::Rel;

/// Numerical tolerance for feasibility and optimality tests.
pub const TOL: f64 = 1e-9;

/// Outcome of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpResult {
    /// An optimal solution: variable values and objective.
    Optimal {
        /// Values of the structural variables.
        x: Vec<f64>,
        /// Objective value.
        objective: f64,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// The iteration cap was exceeded (should not happen with Bland's
    /// rule; kept as a defensive backstop).
    IterationLimit,
}

/// One constraint row: dense coefficients over the structural variables,
/// a relation, and a right-hand side.
#[derive(Debug, Clone)]
pub struct Row {
    /// Dense coefficients, one per structural variable.
    pub coeffs: Vec<f64>,
    /// Relation between `coeffs · x` and `rhs`.
    pub rel: Rel,
    /// Right-hand side.
    pub rhs: f64,
}

/// Solve `min objective·x` s.t. `rows`, `x ≥ 0`.
pub fn solve_lp(num_vars: usize, rows: &[Row], objective: &[f64]) -> LpResult {
    assert_eq!(objective.len(), num_vars);
    Tableau::new(num_vars, rows).solve(objective)
}

struct Tableau {
    /// `tab[i]` is row i: n structural + slack/surplus + artificial
    /// columns, then the rhs in the last position.
    tab: Vec<Vec<f64>>,
    basis: Vec<usize>,
    num_vars: usize,
    /// Total columns excluding rhs.
    width: usize,
    /// Column indices of artificial variables.
    artificial: Vec<usize>,
}

impl Tableau {
    fn new(num_vars: usize, rows: &[Row]) -> Self {
        // Normalize rhs >= 0.
        let mut norm: Vec<Row> = rows.to_vec();
        for r in &mut norm {
            if r.rhs < 0.0 {
                for c in &mut r.coeffs {
                    *c = -*c;
                }
                r.rhs = -r.rhs;
                r.rel = match r.rel {
                    Rel::Le => Rel::Ge,
                    Rel::Ge => Rel::Le,
                    Rel::Eq => Rel::Eq,
                };
            }
        }
        let m = norm.len();
        let n_slack = norm.iter().filter(|r| r.rel != Rel::Eq).count();
        // Artificials are needed for Ge and Eq rows.
        let n_art = norm.iter().filter(|r| r.rel != Rel::Le).count();
        let width = num_vars + n_slack + n_art;

        let mut tab = vec![vec![0.0; width + 1]; m];
        let mut basis = vec![0usize; m];
        let mut artificial = Vec::with_capacity(n_art);
        let mut slack_col = num_vars;
        let mut art_col = num_vars + n_slack;

        for (i, r) in norm.iter().enumerate() {
            assert_eq!(r.coeffs.len(), num_vars, "row width mismatch");
            tab[i][..num_vars].copy_from_slice(&r.coeffs);
            tab[i][width] = r.rhs;
            match r.rel {
                Rel::Le => {
                    tab[i][slack_col] = 1.0;
                    basis[i] = slack_col;
                    slack_col += 1;
                }
                Rel::Ge => {
                    tab[i][slack_col] = -1.0; // surplus
                    slack_col += 1;
                    tab[i][art_col] = 1.0;
                    basis[i] = art_col;
                    artificial.push(art_col);
                    art_col += 1;
                }
                Rel::Eq => {
                    tab[i][art_col] = 1.0;
                    basis[i] = art_col;
                    artificial.push(art_col);
                    art_col += 1;
                }
            }
        }
        Tableau { tab, basis, num_vars, width, artificial }
    }

    fn solve(mut self, objective: &[f64]) -> LpResult {
        // Phase 1: minimize the sum of artificial variables.
        if !self.artificial.is_empty() {
            let mut phase1 = vec![0.0; self.width];
            for &a in &self.artificial {
                phase1[a] = 1.0;
            }
            match self.optimize(&phase1, &[]) {
                Status::Optimal => {}
                Status::Unbounded => return LpResult::Infeasible, // cannot happen, defensive
                Status::IterationLimit => return LpResult::IterationLimit,
            }
            let phase1_obj = self.current_objective(&phase1);
            if phase1_obj > 1e-7 {
                return LpResult::Infeasible;
            }
            self.evict_artificials();
        }

        // Phase 2: original objective, artificials barred from entering.
        let mut full_obj = vec![0.0; self.width];
        full_obj[..self.num_vars].copy_from_slice(objective);
        let barred = self.artificial.clone();
        match self.optimize(&full_obj, &barred) {
            Status::Optimal => {}
            Status::Unbounded => return LpResult::Unbounded,
            Status::IterationLimit => return LpResult::IterationLimit,
        }

        let mut x = vec![0.0; self.num_vars];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.num_vars {
                x[b] = self.tab[i][self.width];
            }
        }
        let objective_value = objective
            .iter()
            .zip(&x)
            .map(|(c, v)| c * v)
            .sum::<f64>();
        LpResult::Optimal { x, objective: objective_value }
    }

    /// Objective value of the current basic solution under `costs`.
    fn current_objective(&self, costs: &[f64]) -> f64 {
        self.basis
            .iter()
            .enumerate()
            .map(|(i, &b)| costs[b] * self.tab[i][self.width])
            .sum()
    }

    /// Pivot basic artificial variables out where possible; drop redundant
    /// rows where not.
    fn evict_artificials(&mut self) {
        let art_set: std::collections::HashSet<usize> =
            self.artificial.iter().copied().collect();
        let mut row = 0;
        while row < self.tab.len() {
            if art_set.contains(&self.basis[row]) {
                // Find a non-artificial column with a non-zero entry.
                let col = (0..self.width)
                    .find(|j| !art_set.contains(j) && self.tab[row][*j].abs() > TOL);
                match col {
                    Some(j) => self.pivot(row, j),
                    None => {
                        // Row is 0 = 0: redundant constraint.
                        self.tab.remove(row);
                        self.basis.remove(row);
                        continue;
                    }
                }
            }
            row += 1;
        }
    }

    /// Run simplex iterations under `costs` until optimal/unbounded.
    /// Columns in `barred` may never enter the basis.
    fn optimize(&mut self, costs: &[f64], barred: &[usize]) -> Status {
        let barred: std::collections::HashSet<usize> = barred.iter().copied().collect();
        let max_iters = 20_000 + 200 * (self.width + self.tab.len());
        for _ in 0..max_iters {
            // Reduced costs: rc_j = c_j - c_B · column_j (tableau form).
            let entering = (0..self.width)
                .filter(|j| !barred.contains(j))
                .find(|&j| {
                    let rc = costs[j]
                        - self
                            .basis
                            .iter()
                            .enumerate()
                            .map(|(i, &b)| costs[b] * self.tab[i][j])
                            .sum::<f64>();
                    rc < -TOL
                });
            let Some(j) = entering else { return Status::Optimal };

            // Ratio test with Bland tie-break.
            let mut pivot_row: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..self.tab.len() {
                let a = self.tab[i][j];
                if a > TOL {
                    let ratio = self.tab[i][self.width] / a;
                    let better = ratio < best_ratio - TOL
                        || (ratio < best_ratio + TOL
                            && pivot_row
                                .map(|r| self.basis[i] < self.basis[r])
                                .unwrap_or(true));
                    if better {
                        best_ratio = ratio;
                        pivot_row = Some(i);
                    }
                }
            }
            let Some(r) = pivot_row else { return Status::Unbounded };
            self.pivot(r, j);
        }
        Status::IterationLimit
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let pivot = self.tab[row][col];
        debug_assert!(pivot.abs() > TOL, "pivot on (near-)zero element");
        for v in &mut self.tab[row] {
            *v /= pivot;
        }
        for i in 0..self.tab.len() {
            if i == row {
                continue;
            }
            let factor = self.tab[i][col];
            if factor.abs() <= TOL {
                continue;
            }
            for j in 0..=self.width {
                self.tab[i][j] -= factor * self.tab[row][j];
            }
        }
        self.basis[row] = col;
    }
}

enum Status {
    Optimal,
    Unbounded,
    IterationLimit,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(coeffs: Vec<f64>, rel: Rel, rhs: f64) -> Row {
        Row { coeffs, rel, rhs }
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (as min of -obj).
        let rows = vec![
            row(vec![1.0, 0.0], Rel::Le, 4.0),
            row(vec![0.0, 2.0], Rel::Le, 12.0),
            row(vec![3.0, 2.0], Rel::Le, 18.0),
        ];
        match solve_lp(2, &rows, &[-3.0, -5.0]) {
            LpResult::Optimal { x, objective } => {
                assert!((x[0] - 2.0).abs() < 1e-6, "x = {x:?}");
                assert!((x[1] - 6.0).abs() < 1e-6);
                assert!((objective + 36.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn equality_and_ge_need_phase1() {
        // min x + y s.t. x + y = 10, x >= 3, y >= 2.
        let rows = vec![
            row(vec![1.0, 1.0], Rel::Eq, 10.0),
            row(vec![1.0, 0.0], Rel::Ge, 3.0),
            row(vec![0.0, 1.0], Rel::Ge, 2.0),
        ];
        match solve_lp(2, &rows, &[1.0, 1.0]) {
            LpResult::Optimal { objective, .. } => assert!((objective - 10.0).abs() < 1e-6),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn detects_infeasible() {
        // x <= 1 and x >= 2.
        let rows = vec![
            row(vec![1.0], Rel::Le, 1.0),
            row(vec![1.0], Rel::Ge, 2.0),
        ];
        assert_eq!(solve_lp(1, &rows, &[1.0]), LpResult::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        // min -x s.t. x >= 1 (x can grow forever).
        let rows = vec![row(vec![1.0], Rel::Ge, 1.0)];
        assert_eq!(solve_lp(1, &rows, &[-1.0]), LpResult::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // -x <= -5  <=>  x >= 5; min x -> 5.
        let rows = vec![row(vec![-1.0], Rel::Le, -5.0)];
        match solve_lp(1, &rows, &[1.0]) {
            LpResult::Optimal { x, objective } => {
                assert!((x[0] - 5.0).abs() < 1e-6);
                assert!((objective - 5.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: several redundant constraints through the
        // same vertex.
        let rows = vec![
            row(vec![1.0, 1.0], Rel::Le, 1.0),
            row(vec![2.0, 2.0], Rel::Le, 2.0),
            row(vec![1.0, 0.0], Rel::Le, 1.0),
            row(vec![0.0, 1.0], Rel::Le, 1.0),
        ];
        match solve_lp(2, &rows, &[-1.0, -1.0]) {
            LpResult::Optimal { objective, .. } => assert!((objective + 1.0).abs() < 1e-6),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn redundant_equalities_handled() {
        // x + y = 4 stated twice; min x s.t. y <= 3 -> x = 1.
        let rows = vec![
            row(vec![1.0, 1.0], Rel::Eq, 4.0),
            row(vec![1.0, 1.0], Rel::Eq, 4.0),
            row(vec![0.0, 1.0], Rel::Le, 3.0),
        ];
        match solve_lp(2, &rows, &[1.0, 0.0]) {
            LpResult::Optimal { x, .. } => assert!((x[0] - 1.0).abs() < 1e-6, "{x:?}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn zero_constraint_problem() {
        // min x with no constraints -> x = 0.
        match solve_lp(1, &[], &[1.0]) {
            LpResult::Optimal { x, objective } => {
                assert_eq!(x[0], 0.0);
                assert_eq!(objective, 0.0);
            }
            other => panic!("{other:?}"),
        }
    }
}
