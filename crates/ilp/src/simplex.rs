//! Flat-tableau two-phase simplex with warm starts.
//!
//! Solves `min c·x` subject to linear constraints and `x ≥ 0`. The
//! [`crate::Model`] layer is responsible for shifting general lower
//! bounds to zero and expressing upper bounds as constraint rows, so this
//! module only handles the canonical non-negative form.
//!
//! Compared to the seed solver (preserved in [`crate::reference`]):
//!
//! - the tableau lives in one contiguous row-major allocation
//!   (`FlatMat`) instead of `Vec<Vec<f64>>`;
//! - the reduced-cost row is maintained incrementally across pivots
//!   instead of being recomputed (an O(m·width) scan) per iteration;
//! - the entering rule is Dantzig (most negative reduced cost), falling
//!   back to Bland's rule after a run of degenerate pivots so
//!   anti-cycling termination is preserved;
//! - [`solve_lp_warm`] can re-solve from a previous optimal [`Basis`]:
//!   branch-and-bound children differ from their parent only in the
//!   right-hand side, so the parent basis stays dual-feasible and a few
//!   dual-simplex pivots restore primal feasibility — no phase 1 at all.
//!   Any numerical trouble (singular basis, shape mismatch, iteration
//!   cap) silently falls back to the cold two-phase path.

use crate::deadline::RunDeadline;
use crate::model::Rel;
use crate::tableau::FlatMat;

/// Thread-local LP work counters, read by branch-and-bound to build a
/// [`clara_telemetry::SolveStats`] without threading an out-parameter
/// through every simplex signature.
///
/// Each counter is a plain [`std::cell::Cell`] increment — no atomics,
/// no allocation — so the hot pivot loop pays a single thread-local add.
/// A solve runs on one thread start to finish (sweep cells never migrate
/// mid-solve), so a snapshot/delta pair around a solve attributes work
/// exactly.
pub(crate) mod counters {
    use std::cell::Cell;

    thread_local! {
        static PIVOTS: Cell<u64> = const { Cell::new(0) };
        static LP_SOLVES: Cell<u64> = const { Cell::new(0) };
        static WARM_HITS: Cell<u64> = const { Cell::new(0) };
        static WARM_MISSES: Cell<u64> = const { Cell::new(0) };
    }

    /// A point-in-time reading of this thread's counters.
    #[derive(Debug, Clone, Copy, Default)]
    pub(crate) struct LpCounters {
        pub(crate) pivots: u64,
        pub(crate) lp_solves: u64,
        pub(crate) warm_hits: u64,
        pub(crate) warm_misses: u64,
    }

    /// Read the current totals.
    pub(crate) fn snapshot() -> LpCounters {
        LpCounters {
            pivots: PIVOTS.with(Cell::get),
            lp_solves: LP_SOLVES.with(Cell::get),
            warm_hits: WARM_HITS.with(Cell::get),
            warm_misses: WARM_MISSES.with(Cell::get),
        }
    }

    /// Work done since `base` was snapshotted (same thread).
    pub(crate) fn since(base: LpCounters) -> LpCounters {
        let now = snapshot();
        LpCounters {
            pivots: now.pivots.wrapping_sub(base.pivots),
            lp_solves: now.lp_solves.wrapping_sub(base.lp_solves),
            warm_hits: now.warm_hits.wrapping_sub(base.warm_hits),
            warm_misses: now.warm_misses.wrapping_sub(base.warm_misses),
        }
    }

    #[inline]
    pub(super) fn add_pivot() {
        PIVOTS.with(|c| c.set(c.get().wrapping_add(1)));
    }

    #[inline]
    pub(super) fn add_lp_solve() {
        LP_SOLVES.with(|c| c.set(c.get().wrapping_add(1)));
    }

    #[inline]
    pub(super) fn add_warm_hit() {
        WARM_HITS.with(|c| c.set(c.get().wrapping_add(1)));
    }

    #[inline]
    pub(super) fn add_warm_miss() {
        WARM_MISSES.with(|c| c.set(c.get().wrapping_add(1)));
    }
}

/// Numerical tolerance for feasibility and optimality tests.
pub const TOL: f64 = 1e-9;

/// Feasibility threshold for phase-1 residuals and dual-simplex rhs
/// checks (looser than the pivot tolerance, matching the seed solver).
const FEAS_TOL: f64 = 1e-7;

/// Consecutive degenerate pivots tolerated under the Dantzig rule before
/// switching to Bland's rule (which cannot cycle).
const DEGEN_SWITCH: usize = 64;

/// Pivot iterations between cooperative [`RunDeadline`] checks. Checking
/// involves a clock read, so it is amortized over a stride; 64 pivots on
/// mapping-sized tableaus are well under a millisecond, keeping deadline
/// overshoot negligible.
const DEADLINE_STRIDE: usize = 64;

/// Outcome of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpResult {
    /// An optimal solution: variable values and objective.
    Optimal {
        /// Values of the structural variables.
        x: Vec<f64>,
        /// Objective value.
        objective: f64,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// The iteration cap was exceeded (should not happen with the Bland
    /// fallback; kept as a defensive backstop).
    IterationLimit,
    /// A cooperative [`RunDeadline`] expired (or was cancelled) before
    /// the solve finished.
    TimedOut,
}

/// One constraint row: dense coefficients over the structural variables,
/// a relation, and a right-hand side.
#[derive(Debug, Clone)]
pub struct Row {
    /// Dense coefficients, one per structural variable.
    pub coeffs: Vec<f64>,
    /// Relation between `coeffs · x` and `rhs`.
    pub rel: Rel,
    /// Right-hand side.
    pub rhs: f64,
}

/// An optimal basis: the basic column index for each constraint row.
///
/// Returned by [`solve_lp_warm`] on optimal solves and accepted back as
/// a warm start for a problem with the *same rows and objective* but
/// different right-hand sides (the branch-and-bound child pattern).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    pub(crate) cols: Vec<usize>,
}

/// Solve `min objective·x` s.t. `rows`, `x ≥ 0`.
pub fn solve_lp(num_vars: usize, rows: &[Row], objective: &[f64]) -> LpResult {
    solve_lp_warm(num_vars, rows, objective, None).0
}

/// Like [`solve_lp`], optionally warm-starting from a previous optimal
/// basis, and returning the optimal basis (when one exists) for reuse.
pub fn solve_lp_warm(
    num_vars: usize,
    rows: &[Row],
    objective: &[f64],
    warm: Option<&Basis>,
) -> (LpResult, Option<Basis>) {
    solve_lp_limited(num_vars, rows, objective, warm, &RunDeadline::none())
}

/// Like [`solve_lp_warm`], under a cooperative [`RunDeadline`] checked
/// every `DEADLINE_STRIDE` pivots. An expired deadline yields
/// [`LpResult::TimedOut`] — including from the warm path, which must
/// *not* fall back to a full cold solve in that case (the fallback would
/// be exactly the unbounded work the deadline exists to prevent).
pub fn solve_lp_limited(
    num_vars: usize,
    rows: &[Row],
    objective: &[f64],
    warm: Option<&Basis>,
    deadline: &RunDeadline,
) -> (LpResult, Option<Basis>) {
    assert_eq!(objective.len(), num_vars);
    counters::add_lp_solve();
    if let Some(basis) = warm {
        if let Some(mut t) = Flat::build_warm(num_vars, rows, basis) {
            if let Some(out) = t.solve_warm(objective, deadline) {
                // The warm path only ever claims optimality or timeout
                // (everything else falls back to cold); accept an
                // optimality claim only if the point actually satisfies
                // the original rows.
                match &out.0 {
                    LpResult::Optimal { x, .. } if satisfies(rows, x) => {
                        counters::add_warm_hit();
                        return out;
                    }
                    LpResult::TimedOut => return out,
                    _ => {}
                }
            }
        }
        // Shape mismatch, singular basis, iteration cap, or a result
        // that failed verification: re-solve cold.
        counters::add_warm_miss();
    }
    Flat::build_cold(num_vars, rows).solve_cold(objective, deadline)
}

/// Does `x` satisfy every row, up to a tolerance scaled to the row?
fn satisfies(rows: &[Row], x: &[f64]) -> bool {
    rows.iter().all(|r| {
        let mut lhs = 0.0;
        let mut mag = 1.0 + r.rhs.abs();
        for (&c, &v) in r.coeffs.iter().zip(x) {
            lhs += c * v;
            mag += (c * v).abs();
        }
        let tol = FEAS_TOL * mag;
        match r.rel {
            Rel::Le => lhs <= r.rhs + tol,
            Rel::Ge => lhs >= r.rhs - tol,
            Rel::Eq => (lhs - r.rhs).abs() <= tol,
        }
    })
}

/// Per-row equilibration factor: sign-normalizes the rhs and scales the
/// row so its largest coefficient has magnitude 1. Mapping ILPs mix
/// O(1) assignment rows with O(10⁹)-scale utilization rows; without
/// scaling, the absolute pivot tolerances are meaningless on the big
/// rows and warm-start refactorization goes numerically blind.
#[inline]
fn row_scale(r: &Row) -> f64 {
    let max = r.coeffs.iter().fold(0.0f64, |m, c| m.max(c.abs()));
    let sign = if r.rhs < 0.0 { -1.0 } else { 1.0 };
    if max > 0.0 { sign / max } else { sign }
}

/// Relation of a row after rhs-sign normalization.
#[inline]
fn effective_rel(r: &Row) -> Rel {
    if r.rhs < 0.0 {
        match r.rel {
            Rel::Le => Rel::Ge,
            Rel::Ge => Rel::Le,
            Rel::Eq => Rel::Eq,
        }
    } else {
        r.rel
    }
}

struct Flat {
    /// `m × (width + 1)`: structural + slack/surplus (+ artificial in the
    /// cold path) columns, rhs in the last column.
    tab: FlatMat,
    basis: Vec<usize>,
    num_vars: usize,
    /// Total columns excluding rhs.
    width: usize,
    /// First artificial column; `== width` when there are none (warm
    /// tableaus never carry artificials). Columns `>= art_start` are
    /// barred from entering in phase 2.
    art_start: usize,
}

enum Status {
    Optimal,
    Unbounded,
    IterationLimit,
    TimedOut,
}

enum DualStatus {
    Feasible,
    Infeasible,
    IterationLimit,
    TimedOut,
}

impl Flat {
    /// Seed-compatible construction: slacks for inequality rows,
    /// artificials for (normalized) Ge/Eq rows.
    fn build_cold(num_vars: usize, rows: &[Row]) -> Flat {
        let m = rows.len();
        let n_slack = rows.iter().filter(|r| r.rel != Rel::Eq).count();
        let n_art = rows
            .iter()
            .filter(|r| effective_rel(r) != Rel::Le)
            .count();
        let art_start = num_vars + n_slack;
        let width = art_start + n_art;

        let mut tab = FlatMat::zeros(m, width + 1);
        let mut basis = vec![0usize; m];
        let mut slack_col = num_vars;
        let mut art_col = art_start;

        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.coeffs.len(), num_vars, "row width mismatch");
            let scale = row_scale(r);
            let dst = tab.row_mut(i);
            for (d, &c) in dst.iter_mut().zip(&r.coeffs) {
                *d = scale * c;
            }
            dst[width] = scale * r.rhs;
            match effective_rel(r) {
                Rel::Le => {
                    dst[slack_col] = 1.0;
                    basis[i] = slack_col;
                    slack_col += 1;
                }
                Rel::Ge => {
                    dst[slack_col] = -1.0; // surplus
                    slack_col += 1;
                    dst[art_col] = 1.0;
                    basis[i] = art_col;
                    art_col += 1;
                }
                Rel::Eq => {
                    dst[art_col] = 1.0;
                    basis[i] = art_col;
                    art_col += 1;
                }
            }
        }
        Flat { tab, basis, num_vars, width, art_start }
    }

    /// Construction for a warm re-solve: same column layout as the cold
    /// path but with no artificial block, then Gauss-Jordan reduction to
    /// the supplied basis. Returns `None` when the basis does not fit
    /// this problem (wrong row count, out-of-range column) or is
    /// (numerically) singular.
    fn build_warm(num_vars: usize, rows: &[Row], warm: &Basis) -> Option<Flat> {
        let m = rows.len();
        if warm.cols.len() != m {
            return None;
        }
        let n_slack = rows.iter().filter(|r| r.rel != Rel::Eq).count();
        let width = num_vars + n_slack;
        if warm.cols.iter().any(|&c| c >= width) {
            return None;
        }

        let mut tab = FlatMat::zeros(m, width + 1);
        let mut slack_col = num_vars;
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.coeffs.len(), num_vars, "row width mismatch");
            let scale = row_scale(r);
            let dst = tab.row_mut(i);
            for (d, &c) in dst.iter_mut().zip(&r.coeffs) {
                *d = scale * c;
            }
            dst[width] = scale * r.rhs;
            match effective_rel(r) {
                Rel::Le => {
                    dst[slack_col] = 1.0;
                    slack_col += 1;
                }
                Rel::Ge => {
                    dst[slack_col] = -1.0;
                    slack_col += 1;
                }
                Rel::Eq => {}
            }
        }

        let mut t = Flat { tab, basis: vec![usize::MAX; m], num_vars, width, art_start: width };

        // Gauss-Jordan to the warm basis, assigning each basis column to
        // the unassigned row where it pivots best (partial pivoting).
        let mut assigned = vec![false; m];
        for &c in &warm.cols {
            let mut best_row = None;
            let mut best_abs = FEAS_TOL; // refuse near-singular pivots
            for (i, &done) in assigned.iter().enumerate() {
                if !done {
                    let a = t.tab.at(i, c).abs();
                    if a > best_abs {
                        best_abs = a;
                        best_row = Some(i);
                    }
                }
            }
            let r = best_row?;
            t.pivot(r, c);
            t.basis[r] = c;
            assigned[r] = true;
        }
        Some(t)
    }

    /// Cold path: phase 1 (artificials) then phase 2.
    fn solve_cold(mut self, objective: &[f64], deadline: &RunDeadline) -> (LpResult, Option<Basis>) {
        if self.art_start < self.width {
            // Phase 1: minimize the sum of artificial variables. Their
            // reduced costs under the all-ones artificial cost vector:
            // rc_j = [j is artificial] − Σ_{i: basis(i) artificial} a_ij.
            let mut rc = vec![0.0; self.width];
            for r in &mut rc[self.art_start..] {
                *r = 1.0;
            }
            for (i, &b) in self.basis.iter().enumerate() {
                if b >= self.art_start {
                    let row = self.tab.row(i);
                    for (r, &a) in rc.iter_mut().zip(row) {
                        *r -= a;
                    }
                }
            }
            match self.primal(&mut rc, self.width, deadline) {
                Status::Optimal => {}
                // Phase 1 is bounded below by 0; defensive, as the seed.
                Status::Unbounded => return (LpResult::Infeasible, None),
                Status::IterationLimit => return (LpResult::IterationLimit, None),
                Status::TimedOut => return (LpResult::TimedOut, None),
            }
            let residual: f64 = self
                .basis
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b >= self.art_start)
                .map(|(i, _)| self.tab.at(i, self.width))
                .sum();
            if residual > FEAS_TOL {
                return (LpResult::Infeasible, None);
            }
            self.evict_artificials();
        }

        // Phase 2: original objective; artificials barred from entering.
        let mut rc = self.reduced_costs(objective);
        match self.primal(&mut rc, self.art_start, deadline) {
            Status::Optimal => {
                let (x, obj) = self.extract(objective);
                let basis = Basis { cols: self.basis };
                (LpResult::Optimal { x, objective: obj }, Some(basis))
            }
            Status::Unbounded => (LpResult::Unbounded, None),
            Status::IterationLimit => (LpResult::IterationLimit, None),
            Status::TimedOut => (LpResult::TimedOut, None),
        }
    }

    /// Warm path: dual simplex to restore primal feasibility, then a
    /// primal cleanup pass. `None` means "give up, re-solve cold";
    /// timeouts are returned as a result, never as `None`, so an expired
    /// deadline cannot trigger the (expensive) cold fallback.
    fn solve_warm(
        &mut self,
        objective: &[f64],
        deadline: &RunDeadline,
    ) -> Option<(LpResult, Option<Basis>)> {
        let mut rc = self.reduced_costs(objective);
        match self.dual_simplex(&mut rc, deadline) {
            DualStatus::Feasible => {}
            // In exact arithmetic this would be an infeasibility
            // certificate, but a refactorized tableau can be degraded
            // enough to fake one — let the cold path decide.
            DualStatus::Infeasible => return None,
            DualStatus::IterationLimit => return None,
            DualStatus::TimedOut => return Some((LpResult::TimedOut, None)),
        }
        match self.primal(&mut rc, self.width, deadline) {
            Status::Optimal => {
                // The maintained rc row can drift over a long pivot
                // sequence; re-derive it and re-check optimality and
                // feasibility before claiming anything.
                let fresh = self.reduced_costs(objective);
                if fresh.iter().any(|&r| r < -FEAS_TOL) {
                    return None;
                }
                if (0..self.tab.rows()).any(|i| self.tab.at(i, self.width) < -FEAS_TOL) {
                    return None;
                }
                let (x, obj) = self.extract(objective);
                let basis = Basis { cols: self.basis.clone() };
                Some((LpResult::Optimal { x, objective: obj }, Some(basis)))
            }
            // A child of a bounded parent cannot be unbounded; treat it
            // as numerical trouble like everything else.
            Status::Unbounded => None,
            Status::IterationLimit => None,
            Status::TimedOut => Some((LpResult::TimedOut, None)),
        }
    }

    fn max_iters(&self) -> usize {
        20_000 + 200 * (self.width + self.tab.rows())
    }

    /// Reduced costs of the current basis under the structural-variable
    /// cost vector `objective` (slack/artificial costs are zero).
    fn reduced_costs(&self, objective: &[f64]) -> Vec<f64> {
        let mut rc = vec![0.0; self.width];
        rc[..self.num_vars].copy_from_slice(objective);
        for (i, &b) in self.basis.iter().enumerate() {
            let cb = if b < self.num_vars { objective[b] } else { 0.0 };
            if cb != 0.0 {
                let row = self.tab.row(i);
                for (r, &a) in rc.iter_mut().zip(row) {
                    *r -= cb * a;
                }
            }
        }
        rc
    }

    /// Structural-variable values and objective of the current basis.
    fn extract(&self, objective: &[f64]) -> (Vec<f64>, f64) {
        let mut x = vec![0.0; self.num_vars];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.num_vars {
                x[b] = self.tab.at(i, self.width);
            }
        }
        let obj = objective.iter().zip(&x).map(|(c, v)| c * v).sum::<f64>();
        (x, obj)
    }

    /// Primal simplex with a maintained reduced-cost row. Entering rule
    /// is Dantzig; after [`DEGEN_SWITCH`] consecutive degenerate pivots
    /// it downgrades to Bland's rule until progress resumes. Columns
    /// `>= bar` may never enter.
    fn primal(&mut self, rc: &mut [f64], bar: usize, deadline: &RunDeadline) -> Status {
        let max_iters = self.max_iters();
        let mut degen_run = 0usize;
        let mut bland = false;
        for iter in 0..max_iters {
            if iter % DEADLINE_STRIDE == 0 && deadline.expired() {
                return Status::TimedOut;
            }
            let entering = if bland {
                rc[..bar].iter().position(|&r| r < -TOL)
            } else {
                let mut best = None;
                let mut best_rc = -TOL;
                for (j, &r) in rc[..bar].iter().enumerate() {
                    if r < best_rc {
                        best_rc = r;
                        best = Some(j);
                    }
                }
                best
            };
            let Some(j) = entering else { return Status::Optimal };

            // Ratio test; smallest-basis-index tie-break (Bland).
            let mut pivot_row: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..self.tab.rows() {
                let a = self.tab.at(i, j);
                if a > TOL {
                    let ratio = self.tab.at(i, self.width) / a;
                    let better = ratio < best_ratio - TOL
                        || (ratio < best_ratio + TOL
                            && pivot_row
                                .map(|r| self.basis[i] < self.basis[r])
                                .unwrap_or(true));
                    if better {
                        best_ratio = ratio;
                        pivot_row = Some(i);
                    }
                }
            }
            let Some(r) = pivot_row else { return Status::Unbounded };
            if best_ratio.abs() <= TOL {
                degen_run += 1;
                if degen_run >= DEGEN_SWITCH {
                    bland = true;
                }
            } else {
                degen_run = 0;
                bland = false;
            }
            self.pivot_rc(r, j, rc);
        }
        Status::IterationLimit
    }

    /// Dual simplex: the basis is (near-)dual-feasible but some rhs may
    /// be negative. Leaving row is the most negative rhs; entering
    /// column minimizes `rc_j / |a_rj|` over `a_rj < 0`.
    fn dual_simplex(&mut self, rc: &mut [f64], deadline: &RunDeadline) -> DualStatus {
        let max_iters = self.max_iters();
        for iter in 0..max_iters {
            if iter % DEADLINE_STRIDE == 0 && deadline.expired() {
                return DualStatus::TimedOut;
            }
            let mut leaving = None;
            let mut most_neg = -FEAS_TOL;
            for i in 0..self.tab.rows() {
                let b = self.tab.at(i, self.width);
                if b < most_neg {
                    most_neg = b;
                    leaving = Some(i);
                }
            }
            let Some(r) = leaving else { return DualStatus::Feasible };

            let mut entering = None;
            let mut best_ratio = f64::INFINITY;
            {
                let row = self.tab.row(r);
                for (j, &a) in row[..self.width].iter().enumerate() {
                    if a < -TOL {
                        // Warm bases are dual-feasible only up to
                        // tolerance; clamp so the ratio stays sane.
                        let ratio = rc[j].max(0.0) / -a;
                        if ratio < best_ratio - TOL {
                            best_ratio = ratio;
                            entering = Some(j);
                        }
                    }
                }
            }
            // Row says Σ a_rj·x_j = rhs_r < 0 with every a_rj ≥ 0 and
            // x ≥ 0: the child LP is infeasible.
            let Some(j) = entering else { return DualStatus::Infeasible };
            self.pivot_rc(r, j, rc);
        }
        DualStatus::IterationLimit
    }

    /// Pivot basic artificial variables out where possible; drop
    /// redundant rows where not. (Cold path only.)
    fn evict_artificials(&mut self) {
        let mut row = 0;
        while row < self.tab.rows() {
            if self.basis[row] >= self.art_start {
                let col = (0..self.art_start)
                    .find(|&j| self.tab.at(row, j).abs() > TOL);
                match col {
                    Some(j) => {
                        self.pivot(row, j);
                        self.basis[row] = j;
                    }
                    None => {
                        // Row is 0 = 0: redundant constraint.
                        self.tab.remove_row(row);
                        self.basis.remove(row);
                        continue;
                    }
                }
            }
            row += 1;
        }
    }

    /// Gauss-Jordan pivot on `(row, col)`; does not touch `basis`.
    fn pivot(&mut self, row: usize, col: usize) {
        let p = self.tab.at(row, col);
        debug_assert!(p.abs() > TOL, "pivot on (near-)zero element");
        let inv = 1.0 / p;
        for v in self.tab.row_mut(row) {
            *v *= inv;
        }
        for i in 0..self.tab.rows() {
            if i == row {
                continue;
            }
            let factor = self.tab.at(i, col);
            if factor.abs() <= TOL {
                continue;
            }
            let (dst, src) = self.tab.row_pair_mut(i, row);
            for (d, &s) in dst.iter_mut().zip(src) {
                *d -= factor * s;
            }
            dst[col] = 0.0; // eliminate exactly, no roundoff residue
        }
    }

    /// Pivot and keep the maintained reduced-cost row in sync. Every
    /// primal and dual simplex pivot funnels through here, so this is
    /// the single telemetry choke point for pivot counting.
    fn pivot_rc(&mut self, row: usize, col: usize, rc: &mut [f64]) {
        counters::add_pivot();
        let factor = rc[col];
        self.pivot(row, col);
        if factor != 0.0 {
            let src = self.tab.row(row);
            for (r, &s) in rc.iter_mut().zip(src) {
                *r -= factor * s;
            }
        }
        rc[col] = 0.0;
        self.basis[row] = col;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(coeffs: Vec<f64>, rel: Rel, rhs: f64) -> Row {
        Row { coeffs, rel, rhs }
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (as min of -obj).
        let rows = vec![
            row(vec![1.0, 0.0], Rel::Le, 4.0),
            row(vec![0.0, 2.0], Rel::Le, 12.0),
            row(vec![3.0, 2.0], Rel::Le, 18.0),
        ];
        match solve_lp(2, &rows, &[-3.0, -5.0]) {
            LpResult::Optimal { x, objective } => {
                assert!((x[0] - 2.0).abs() < 1e-6, "x = {x:?}");
                assert!((x[1] - 6.0).abs() < 1e-6);
                assert!((objective + 36.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn equality_and_ge_need_phase1() {
        // min x + y s.t. x + y = 10, x >= 3, y >= 2.
        let rows = vec![
            row(vec![1.0, 1.0], Rel::Eq, 10.0),
            row(vec![1.0, 0.0], Rel::Ge, 3.0),
            row(vec![0.0, 1.0], Rel::Ge, 2.0),
        ];
        match solve_lp(2, &rows, &[1.0, 1.0]) {
            LpResult::Optimal { objective, .. } => assert!((objective - 10.0).abs() < 1e-6),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn detects_infeasible() {
        // x <= 1 and x >= 2.
        let rows = vec![
            row(vec![1.0], Rel::Le, 1.0),
            row(vec![1.0], Rel::Ge, 2.0),
        ];
        assert_eq!(solve_lp(1, &rows, &[1.0]), LpResult::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        // min -x s.t. x >= 1 (x can grow forever).
        let rows = vec![row(vec![1.0], Rel::Ge, 1.0)];
        assert_eq!(solve_lp(1, &rows, &[-1.0]), LpResult::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // -x <= -5  <=>  x >= 5; min x -> 5.
        let rows = vec![row(vec![-1.0], Rel::Le, -5.0)];
        match solve_lp(1, &rows, &[1.0]) {
            LpResult::Optimal { x, objective } => {
                assert!((x[0] - 5.0).abs() < 1e-6);
                assert!((objective - 5.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: several redundant constraints through the
        // same vertex.
        let rows = vec![
            row(vec![1.0, 1.0], Rel::Le, 1.0),
            row(vec![2.0, 2.0], Rel::Le, 2.0),
            row(vec![1.0, 0.0], Rel::Le, 1.0),
            row(vec![0.0, 1.0], Rel::Le, 1.0),
        ];
        match solve_lp(2, &rows, &[-1.0, -1.0]) {
            LpResult::Optimal { objective, .. } => assert!((objective + 1.0).abs() < 1e-6),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn redundant_equalities_handled() {
        // x + y = 4 stated twice; min x s.t. y <= 3 -> x = 1.
        let rows = vec![
            row(vec![1.0, 1.0], Rel::Eq, 4.0),
            row(vec![1.0, 1.0], Rel::Eq, 4.0),
            row(vec![0.0, 1.0], Rel::Le, 3.0),
        ];
        match solve_lp(2, &rows, &[1.0, 0.0]) {
            LpResult::Optimal { x, .. } => assert!((x[0] - 1.0).abs() < 1e-6, "{x:?}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn zero_constraint_problem() {
        // min x with no constraints -> x = 0.
        match solve_lp(1, &[], &[1.0]) {
            LpResult::Optimal { x, objective } => {
                assert_eq!(x[0], 0.0);
                assert_eq!(objective, 0.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn warm_restart_after_rhs_tightening() {
        // The branch-and-bound pattern: solve, tighten one rhs, re-solve
        // from the optimal basis. max 3x + 5y from the textbook problem,
        // then tighten x <= 4 to x <= 1 (optimum slides to x=1, y=6).
        let mut rows = vec![
            row(vec![1.0, 0.0], Rel::Le, 4.0),
            row(vec![0.0, 2.0], Rel::Le, 12.0),
            row(vec![3.0, 2.0], Rel::Le, 18.0),
        ];
        let obj = [-3.0, -5.0];
        let (first, basis) = solve_lp_warm(2, &rows, &obj, None);
        assert!(matches!(first, LpResult::Optimal { .. }));
        let basis = basis.expect("optimal solve returns a basis");

        rows[0].rhs = 1.0;
        let (warm, warm_basis) = solve_lp_warm(2, &rows, &obj, Some(&basis));
        match warm {
            LpResult::Optimal { x, objective } => {
                assert!((x[0] - 1.0).abs() < 1e-6, "x = {x:?}");
                assert!((x[1] - 6.0).abs() < 1e-6);
                assert!((objective + 33.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
        assert!(warm_basis.is_some());
    }

    #[test]
    fn warm_restart_detects_infeasible_child() {
        // min x s.t. x <= 9, x >= 5 — then tighten x <= 2 (infeasible).
        let mut rows = vec![
            row(vec![1.0], Rel::Le, 9.0),
            row(vec![1.0], Rel::Ge, 5.0),
        ];
        let (first, basis) = solve_lp_warm(1, &rows, &[1.0], None);
        assert!(matches!(first, LpResult::Optimal { .. }));
        rows[0].rhs = 2.0;
        let (warm, _) = solve_lp_warm(1, &rows, &[1.0], basis.as_ref());
        assert_eq!(warm, LpResult::Infeasible);
    }

    #[test]
    fn expired_deadline_times_out_cold_and_warm() {
        let rows = vec![
            row(vec![1.0, 0.0], Rel::Le, 4.0),
            row(vec![0.0, 2.0], Rel::Le, 12.0),
            row(vec![3.0, 2.0], Rel::Le, 18.0),
        ];
        let obj = [-3.0, -5.0];
        let (first, basis) = solve_lp_warm(2, &rows, &obj, None);
        assert!(matches!(first, LpResult::Optimal { .. }));

        let expired = RunDeadline::within(std::time::Duration::from_millis(0));
        let (cold, b) = solve_lp_limited(2, &rows, &obj, None, &expired);
        assert_eq!(cold, LpResult::TimedOut);
        assert!(b.is_none());

        // The warm path must report the timeout rather than silently
        // re-solving cold (which would defeat the deadline).
        let (warm, b) = solve_lp_limited(2, &rows, &obj, basis.as_ref(), &expired);
        assert_eq!(warm, LpResult::TimedOut);
        assert!(b.is_none());
    }

    #[test]
    fn mismatched_warm_basis_falls_back_to_cold() {
        let rows = vec![row(vec![1.0, 0.0], Rel::Le, 4.0)];
        // A basis from a different (3-row) problem: wrong length.
        let stale = Basis { cols: vec![2, 3, 4] };
        let (res, _) = solve_lp_warm(2, &rows, &[-1.0, 0.0], Some(&stale));
        match res {
            LpResult::Optimal { objective, .. } => assert!((objective + 4.0).abs() < 1e-6),
            other => panic!("{other:?}"),
        }
    }
}
