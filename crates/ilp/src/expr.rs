//! Linear expressions over model variables.
//!
//! Supports natural arithmetic: `2.0 * x + y - 3.0`, `expr += x`, sums of
//! iterators, etc. Coefficients for a repeated variable are merged.

use core::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A variable handle issued by [`crate::Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) usize);

impl Var {
    /// The variable's index within its model.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A linear expression: `Σ coeff·var + constant`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    /// `(variable index, coefficient)` pairs; kept merged and sorted.
    pub(crate) terms: Vec<(usize, f64)>,
    /// Constant offset.
    pub(crate) constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(value: f64) -> Self {
        LinExpr { terms: Vec::new(), constant: value }
    }

    /// A single term `coeff * var`.
    pub fn term(var: Var, coeff: f64) -> Self {
        LinExpr { terms: vec![(var.0, coeff)], constant: 0.0 }
    }

    /// The coefficient of `var` (0 if absent).
    pub fn coeff(&self, var: Var) -> f64 {
        self.terms
            .iter()
            .find(|(i, _)| *i == var.0)
            .map(|(_, c)| *c)
            .unwrap_or(0.0)
    }

    /// The constant offset.
    pub fn constant_part(&self) -> f64 {
        self.constant
    }

    /// Non-zero terms as `(Var, coeff)`.
    pub fn terms(&self) -> impl Iterator<Item = (Var, f64)> + '_ {
        self.terms.iter().map(|&(i, c)| (Var(i), c))
    }

    /// Merge duplicate variables and drop zero coefficients.
    pub(crate) fn normalize(&mut self) {
        self.terms.sort_by_key(|&(i, _)| i);
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(self.terms.len());
        for &(i, c) in &self.terms {
            match merged.last_mut() {
                Some((j, acc)) if *j == i => *acc += c,
                _ => merged.push((i, c)),
            }
        }
        merged.retain(|&(_, c)| c != 0.0);
        self.terms = merged;
    }

    /// Sum an iterator of expressions.
    pub fn sum<I: IntoIterator<Item = LinExpr>>(items: I) -> Self {
        let mut acc = LinExpr::zero();
        for e in items {
            acc += e;
        }
        acc
    }

    /// Evaluate the expression given a dense assignment indexed by
    /// variable index.
    pub fn eval(&self, assignment: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|&(i, c)| c * assignment[i])
                .sum::<f64>()
    }
}

impl From<Var> for LinExpr {
    fn from(v: Var) -> Self {
        LinExpr::term(v, 1.0)
    }
}

impl From<f64> for LinExpr {
    fn from(c: f64) -> Self {
        LinExpr::constant(c)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self.terms.extend(rhs.terms);
        self.constant += rhs.constant;
        self.normalize();
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        self.terms.extend(rhs.terms);
        self.constant += rhs.constant;
        self.normalize();
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + (-rhs)
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        for (_, c) in &mut self.terms {
            *c = -*c;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<LinExpr> for f64 {
    type Output = LinExpr;
    fn mul(self, mut rhs: LinExpr) -> LinExpr {
        for (_, c) in &mut rhs.terms {
            *c *= self;
        }
        rhs.constant *= self;
        rhs.normalize();
        rhs
    }
}

impl Mul<Var> for f64 {
    type Output = LinExpr;
    fn mul(self, rhs: Var) -> LinExpr {
        LinExpr::term(rhs, self)
    }
}

impl Add<Var> for LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: Var) -> LinExpr {
        self + LinExpr::from(rhs)
    }
}

impl Add<LinExpr> for Var {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        LinExpr::from(self) + rhs
    }
}

impl Add<Var> for Var {
    type Output = LinExpr;
    fn add(self, rhs: Var) -> LinExpr {
        LinExpr::from(self) + LinExpr::from(rhs)
    }
}

impl Add<f64> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: f64) -> LinExpr {
        self.constant += rhs;
        self
    }
}

impl Sub<f64> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: f64) -> LinExpr {
        self.constant -= rhs;
        self
    }
}

impl Sub<Var> for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: Var) -> LinExpr {
        self - LinExpr::from(rhs)
    }
}

impl Sub<Var> for Var {
    type Output = LinExpr;
    fn sub(self, rhs: Var) -> LinExpr {
        LinExpr::from(self) - LinExpr::from(rhs)
    }
}

impl Add<f64> for Var {
    type Output = LinExpr;
    fn add(self, rhs: f64) -> LinExpr {
        LinExpr::from(self) + rhs
    }
}

impl Sub<f64> for Var {
    type Output = LinExpr;
    fn sub(self, rhs: f64) -> LinExpr {
        LinExpr::from(self) - rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_merges_terms() {
        let x = Var(0);
        let y = Var(1);
        let e = 2.0 * x + y + 3.0 * x - 1.5;
        assert_eq!(e.coeff(x), 5.0);
        assert_eq!(e.coeff(y), 1.0);
        assert_eq!(e.constant_part(), -1.5);
    }

    #[test]
    fn zero_coefficients_drop_out() {
        let x = Var(0);
        let e = 2.0 * x - 2.0 * x;
        assert_eq!(e.terms().count(), 0);
    }

    #[test]
    fn negation_and_subtraction() {
        let x = Var(0);
        let y = Var(1);
        let e = x - y;
        assert_eq!(e.coeff(x), 1.0);
        assert_eq!(e.coeff(y), -1.0);
        let n = -(2.0 * x + 1.0);
        assert_eq!(n.coeff(x), -2.0);
        assert_eq!(n.constant_part(), -1.0);
    }

    #[test]
    fn scaling() {
        let x = Var(0);
        let e = 3.0 * (2.0 * x + 4.0);
        assert_eq!(e.coeff(x), 6.0);
        assert_eq!(e.constant_part(), 12.0);
    }

    #[test]
    fn sum_of_exprs() {
        let vars: Vec<Var> = (0..4).map(Var).collect();
        let e = LinExpr::sum(vars.iter().map(|&v| LinExpr::from(v)));
        for &v in &vars {
            assert_eq!(e.coeff(v), 1.0);
        }
    }

    #[test]
    fn eval_with_assignment() {
        let x = Var(0);
        let y = Var(1);
        let e = 2.0 * x + 3.0 * y + 1.0;
        assert_eq!(e.eval(&[10.0, 100.0]), 321.0);
    }
}
