//! The `clara` command-line tool.
//!
//! ```text
//! clara extract --nic netronome -o nic.params     # one-time per NIC
//! clara analyze nf.nfc                            # IR + dataflow dump
//! clara predict nf.nfc --params nic.params --rate 60000 --payload 300
//! clara hints   nf.nfc --nic netronome
//! ```
//!
//! Argument parsing is hand-rolled (no CLI crates) and every failure
//! path prints usage.

use clara_core::{Clara, WorkloadProfile};
use std::process::ExitCode;

const USAGE: &str = "\
clara — performance clarity for SmartNIC offloading

USAGE:
  clara extract --nic <profile> [-o <file>]
  clara analyze <nf.nfc>
  clara predict <nf.nfc> (--nic <profile> | --params <file>) [workload flags]
  clara hints   <nf.nfc> (--nic <profile> | --params <file>) [workload flags]

NIC PROFILES:
  netronome | soc | asic        (built-in LNIC models)

WORKLOAD FLAGS (defaults = the paper's 60 kpps / 300 B / 1k flows):
  --rate <pps>        offered load in packets per second
  --payload <bytes>   mean transport payload
  --flows <n>         concurrent flows
  --tcp <0..1>        TCP share of packets
  --syn <0..1>        SYN share of TCP packets
  --zipf <alpha>      flow-popularity skew (0 = uniform)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("no command given".into());
    };
    match cmd.as_str() {
        "extract" => extract(&args[1..]),
        "analyze" => analyze(&args[1..]),
        "predict" => predict(&args[1..], false),
        "hints" => predict(&args[1..], true),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn nic_by_name(name: &str) -> Result<clara_core::Lnic, String> {
    Ok(match name {
        "netronome" => clara_core::profiles::netronome_agilio_cx40(),
        "soc" => clara_core::profiles::soc_armada(),
        "asic" => clara_core::profiles::pipeline_asic(),
        other => return Err(format!("unknown NIC profile `{other}`")),
    })
}

fn build_clara(args: &[String]) -> Result<Clara, String> {
    if let Some(path) = flag_value(args, "--params") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let params = clara_microbench::from_text(&text)
            .map_err(|e| format!("bad parameter file `{path}`: {e}"))?;
        return Ok(Clara::with_params(params));
    }
    let nic_name = flag_value(args, "--nic").ok_or("need --nic <profile> or --params <file>")?;
    eprintln!("extracting parameters for `{nic_name}` (one-time per NIC; use `clara extract` to cache)...");
    Ok(Clara::new(&nic_by_name(nic_name)?))
}

fn workload(args: &[String]) -> Result<WorkloadProfile, String> {
    let mut wl = WorkloadProfile::paper_default();
    let parse = |v: &str, what: &str| -> Result<f64, String> {
        v.parse().map_err(|_| format!("bad {what} `{v}`"))
    };
    if let Some(v) = flag_value(args, "--rate") {
        wl.rate_pps = parse(v, "--rate")?;
    }
    if let Some(v) = flag_value(args, "--payload") {
        wl.avg_payload = parse(v, "--payload")?;
        wl.max_payload = wl.avg_payload as usize;
    }
    if let Some(v) = flag_value(args, "--flows") {
        wl.flows = parse(v, "--flows")? as usize;
    }
    if let Some(v) = flag_value(args, "--tcp") {
        wl.tcp_share = parse(v, "--tcp")?;
    }
    if let Some(v) = flag_value(args, "--syn") {
        wl.syn_share = parse(v, "--syn")?;
    }
    if let Some(v) = flag_value(args, "--zipf") {
        wl.zipf_alpha = parse(v, "--zipf")?;
    }
    Ok(wl)
}

fn read_source(args: &[String]) -> Result<String, String> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--") && a.ends_with(".nfc"))
        .ok_or("need an NF source file (.nfc)")?;
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn extract(args: &[String]) -> Result<(), String> {
    let nic_name = flag_value(args, "--nic").ok_or("need --nic <profile>")?;
    let nic = nic_by_name(nic_name)?;
    eprintln!("running the microbenchmark suite against `{}`...", nic.name);
    let params = clara_core::extract_parameters(&nic);
    let text = clara_microbench::to_text(&params);
    match flag_value(args, "-o") {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn analyze(args: &[String]) -> Result<(), String> {
    let source = read_source(args)?;
    // Analysis needs no NIC parameters.
    let analysis = clara_core::analyze_source(&source).map_err(|e| e.to_string())?;
    println!("nf `{}`:", analysis.module.name);
    println!(
        "  {} basic blocks, {} instructions, {} state table(s), {} B of state",
        analysis.module.handle.blocks.len(),
        analysis.module.handle.num_instrs(),
        analysis.module.states.len(),
        analysis.module.states.iter().map(|s| s.size_bytes).sum::<usize>(),
    );
    println!("  dataflow graph ({} nodes):", analysis.graph.nodes.len());
    for node in &analysis.graph.nodes {
        let loop_note = match node.loop_bound {
            Some(b) => format!("  [loop: {b:?}]"),
            None => String::new(),
        };
        println!(
            "    {:>2}  {:<18} {:>3} ops{}",
            node.id.0,
            node.kind.to_string(),
            node.ops.total(),
            loop_note
        );
    }
    for (a, b) in &analysis.graph.edges {
        println!("    edge {} -> {}", a.0, b.0);
    }
    Ok(())
}

fn predict(args: &[String], hints: bool) -> Result<(), String> {
    let source = read_source(args)?;
    let clara = build_clara(args)?;
    let wl = workload(args)?;
    if hints {
        let text = clara.porting_hints(&source, &wl).map_err(|e| e.to_string())?;
        println!("{text}");
        return Ok(());
    }
    let p = clara.predict(&source, &wl).map_err(|e| e.to_string())?;
    println!("predicted on {}:", clara.params().nic_name);
    println!(
        "  avg latency : {:.0} cycles ({:.2} µs)",
        p.avg_latency_cycles,
        p.avg_latency_ns / 1000.0
    );
    for c in &p.per_class {
        println!(
            "    {:<8} {:>5.1}%  {:.0} cycles",
            c.name,
            c.share * 100.0,
            c.latency_cycles
        );
    }
    println!(
        "  throughput  : {:.2} Mpps (bottleneck: {})",
        p.throughput_pps / 1e6,
        p.bottleneck
    );
    println!("  energy      : {:.0} nJ/packet", p.energy_nj_per_packet);
    Ok(())
}
