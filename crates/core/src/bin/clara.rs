//! The `clara` command-line tool.
//!
//! ```text
//! clara extract --nic netronome -o nic.params     # one-time per NIC
//! clara analyze nf.nfc                            # IR + dataflow dump
//! clara predict nf.nfc --params nic.params --rate 60000 --payload 300
//! clara hints   nf.nfc --nic netronome
//! ```
//!
//! Argument parsing is hand-rolled (no CLI crates). Failures exit with a
//! category-specific code so scripts can tell bad invocations from bad
//! inputs: 2 = usage, 3 = file I/O, 4 = NF frontend error, 5 = lowering
//! error, 6 = prediction error, 7 = workload error. Supervised sweeps
//! additionally exit 8 when some cells failed and 9 when every cell
//! failed — the sweep itself completes and reports either way.

use clara_core::{
    run_sweep_supervised, run_validation_sweep, CellOutcome, CellResult, Clara, ClaraError,
    PredictOptions, RunClass, SupervisorConfig, SweepScenario, ValidationConfig, ValidationResult,
    WorkloadProfile,
};
use std::process::ExitCode;

const USAGE: &str = "\
clara — performance clarity for SmartNIC offloading

USAGE:
  clara extract --nic <profile> [-o <file>]
  clara analyze <nf.nfc>
  clara predict <nf.nfc> (--nic <profile> | --params <file>) [workload flags]
  clara hints   <nf.nfc> (--nic <profile> | --params <file>) [workload flags]
  clara sweep   <nf.nfc> (--nic <profile> | --params <file>) [sweep flags]
  clara validate <nf> [--nic <profile>] [validate flags]

NIC PROFILES:
  netronome | soc | asic        (built-in LNIC models)

CORPUS NFS (for `validate`, which needs the hand-ported form too):
  nat | dpi | firewall | lpm | hh | vnf

WORKLOAD FLAGS (defaults = the paper's 60 kpps / 300 B / 1k flows):
  --rate <pps>        offered load in packets per second
  --payload <bytes>   mean transport payload
  --flows <n>         concurrent flows
  --tcp <0..1>        TCP share of packets
  --syn <0..1>        SYN share of TCP packets
  --zipf <alpha>      flow-popularity skew (0 = uniform)

SWEEP FLAGS (defaults give a 4×4×4 = 64-cell grid):
  --rates <a,b,..>    rate axis       (default 20000,60000,200000,600000)
  --payloads <a,b,..> payload axis    (default 100,300,700,1400)
  --flows <a,b,..>    flow-count axis (default 100,1000,10000,100000)
  --threads <n>       worker threads; 0 = all cores, 1 = sequential (default 0)
  --deadline <ms>     per-cell wall-clock budget; expiring cells degrade or time out
  --checkpoint <file> save completed cells as they finish (atomic JSON)
  --resume <file>     load a checkpoint and recompute only unfinished cells
                      (also keeps checkpointing to the same file)
  --fail-fast         cancel remaining cells after the first failure
  --no-retry          skip the one retry of failed cells under a tighter budget

VALIDATE FLAGS (predicted-vs-simulated error per grid cell):
  --rates / --payloads / --flows   grid axes, as for sweep (default 4x4x4 = 64)
  --threads <n>       worker threads; 0 = all cores, 1 = sequential (default 0)
  --packets <n>       simulated packets per cell (default 4000)
  --seed <n>          trace-generation seed (default 42)
  --exact             run the simulator's unmemoized seed path (fidelity audit)
  -o <file>           write the per-cell JSON report here (`-` = stdout)

EXIT CODES:
  0 ok | 2 usage | 3 file I/O | 4 NF frontend | 5 lowering | 6 prediction | 7 workload
  8 sweep finished with some failed cells | 9 sweep finished with every cell failed
";

/// A categorized CLI failure; the category decides the exit code.
enum CliError {
    /// Bad invocation: unknown command/flag values, missing arguments.
    Usage(String),
    /// A file could not be read, written, or parsed as a parameter table.
    Io(String),
    /// The analysis/prediction pipeline rejected the inputs.
    Pipeline(ClaraError),
    /// A supervised sweep finished, but some cells failed. The table was
    /// already printed; the message is the one-line summary.
    SweepPartial(String),
    /// A supervised sweep finished with *every* cell failed.
    SweepFailed(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io(_) => 3,
            CliError::Pipeline(ClaraError::Frontend(_)) => 4,
            CliError::Pipeline(ClaraError::Lower(_)) => 5,
            CliError::Pipeline(ClaraError::Predict(_)) => 6,
            CliError::Pipeline(ClaraError::Workload(_)) => 7,
            CliError::SweepPartial(_) => 8,
            CliError::SweepFailed(_) => 9,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg)
            | CliError::Io(msg)
            | CliError::SweepPartial(msg)
            | CliError::SweepFailed(msg) => write!(f, "{msg}"),
            CliError::Pipeline(e) => write!(f, "{e}"),
        }
    }
}

impl From<ClaraError> for CliError {
    fn from(e: ClaraError) -> Self {
        CliError::Pipeline(e)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if matches!(e, CliError::Usage(_)) {
                eprintln!("\n{USAGE}");
            }
            ExitCode::from(e.exit_code())
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(cmd) = args.first() else {
        return Err(CliError::Usage("no command given".into()));
    };
    match cmd.as_str() {
        "extract" => extract(&args[1..]),
        "analyze" => analyze(&args[1..]),
        "predict" => predict(&args[1..], false),
        "hints" => predict(&args[1..], true),
        "sweep" => sweep(&args[1..]),
        "validate" => validate(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn nic_by_name(name: &str) -> Result<clara_core::Lnic, CliError> {
    Ok(match name {
        "netronome" => clara_core::profiles::netronome_agilio_cx40(),
        "soc" => clara_core::profiles::soc_armada(),
        "asic" => clara_core::profiles::pipeline_asic(),
        other => return Err(CliError::Usage(format!("unknown NIC profile `{other}`"))),
    })
}

fn build_clara(args: &[String]) -> Result<Clara, CliError> {
    if let Some(path) = flag_value(args, "--params") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Io(format!("cannot read `{path}`: {e}")))?;
        let params = clara_microbench::from_text(&text)
            .map_err(|e| CliError::Io(format!("bad parameter file `{path}`: {e}")))?;
        return Ok(Clara::with_params(params));
    }
    let nic_name = flag_value(args, "--nic")
        .ok_or_else(|| CliError::Usage("need --nic <profile> or --params <file>".into()))?;
    eprintln!("extracting parameters for `{nic_name}` (one-time per NIC; use `clara extract` to cache)...");
    Ok(Clara::new(&nic_by_name(nic_name)?))
}

fn workload(args: &[String]) -> Result<WorkloadProfile, CliError> {
    let mut wl = WorkloadProfile::paper_default();
    let parse = |v: &str, what: &str| -> Result<f64, CliError> {
        v.parse().map_err(|_| CliError::Usage(format!("bad {what} `{v}`")))
    };
    if let Some(v) = flag_value(args, "--rate") {
        wl.rate_pps = parse(v, "--rate")?;
    }
    if let Some(v) = flag_value(args, "--payload") {
        wl.avg_payload = parse(v, "--payload")?;
        wl.max_payload = wl.avg_payload as usize;
    }
    if let Some(v) = flag_value(args, "--flows") {
        wl.flows = parse(v, "--flows")? as usize;
    }
    if let Some(v) = flag_value(args, "--tcp") {
        wl.tcp_share = parse(v, "--tcp")?;
    }
    if let Some(v) = flag_value(args, "--syn") {
        wl.syn_share = parse(v, "--syn")?;
    }
    if let Some(v) = flag_value(args, "--zipf") {
        wl.zipf_alpha = parse(v, "--zipf")?;
    }
    // Reject NaN/negative rates, zero flows, out-of-range shares, ...
    // before they reach the predictor's arithmetic (exit code 7).
    wl.validate().map_err(ClaraError::from)?;
    Ok(wl)
}

fn read_source(args: &[String]) -> Result<String, CliError> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--") && a.ends_with(".nfc"))
        .ok_or_else(|| CliError::Usage("need an NF source file (.nfc)".into()))?;
    std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("cannot read `{path}`: {e}")))
}

fn extract(args: &[String]) -> Result<(), CliError> {
    let nic_name = flag_value(args, "--nic")
        .ok_or_else(|| CliError::Usage("need --nic <profile>".into()))?;
    let nic = nic_by_name(nic_name)?;
    eprintln!("running the microbenchmark suite against `{}`...", nic.name);
    let params = clara_core::extract_parameters(&nic);
    let text = clara_microbench::to_text(&params);
    match flag_value(args, "-o") {
        Some(path) => {
            std::fs::write(path, &text)
                .map_err(|e| CliError::Io(format!("cannot write `{path}`: {e}")))?;
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn analyze(args: &[String]) -> Result<(), CliError> {
    let source = read_source(args)?;
    // Analysis needs no NIC parameters.
    let analysis = clara_core::analyze_source(&source)?;
    println!("nf `{}`:", analysis.module.name);
    println!(
        "  {} basic blocks, {} instructions, {} state table(s), {} B of state",
        analysis.module.handle.blocks.len(),
        analysis.module.handle.num_instrs(),
        analysis.module.states.len(),
        analysis.module.states.iter().map(|s| s.size_bytes).sum::<usize>(),
    );
    println!("  dataflow graph ({} nodes):", analysis.graph.nodes.len());
    for node in &analysis.graph.nodes {
        let loop_note = match node.loop_bound {
            Some(b) => format!("  [loop: {b:?}]"),
            None => String::new(),
        };
        println!(
            "    {:>2}  {:<18} {:>3} ops{}",
            node.id.0,
            node.kind.to_string(),
            node.ops.total(),
            loop_note
        );
    }
    for (a, b) in &analysis.graph.edges {
        println!("    edge {} -> {}", a.0, b.0);
    }
    Ok(())
}

fn predict(args: &[String], hints: bool) -> Result<(), CliError> {
    let source = read_source(args)?;
    // Workload flags are validated before the (slow) parameter extraction.
    let wl = workload(args)?;
    let clara = build_clara(args)?;
    if hints {
        let text = clara.porting_hints(&source, &wl)?;
        println!("{text}");
        return Ok(());
    }
    let p = clara.predict(&source, &wl)?;
    println!("predicted on {}:", clara.params().nic_name);
    println!(
        "  avg latency : {:.0} cycles ({:.2} µs)",
        p.avg_latency_cycles,
        p.avg_latency_ns / 1000.0
    );
    for c in &p.per_class {
        println!(
            "    {:<8} {:>5.1}%  {:.0} cycles",
            c.name,
            c.share * 100.0,
            c.latency_cycles
        );
    }
    println!(
        "  throughput  : {:.2} Mpps (bottleneck: {})",
        p.throughput_pps / 1e6,
        p.bottleneck
    );
    println!("  energy      : {:.0} nJ/packet", p.energy_nj_per_packet);
    Ok(())
}

/// Parse a comma-separated numeric axis (e.g. `--rates 20000,60000`).
fn axis(args: &[String], name: &str, default: &[f64]) -> Result<Vec<f64>, CliError> {
    let Some(raw) = flag_value(args, name) else {
        return Ok(default.to_vec());
    };
    let vals: Vec<f64> = raw
        .split(',')
        .map(|v| v.trim().parse::<f64>())
        .collect::<Result<_, _>>()
        .map_err(|_| CliError::Usage(format!("bad {name} `{raw}`")))?;
    if vals.is_empty() {
        return Err(CliError::Usage(format!("{name} needs at least one value")));
    }
    Ok(vals)
}

fn sweep(args: &[String]) -> Result<(), CliError> {
    let source = read_source(args)?;
    let rates = axis(args, "--rates", &[20_000.0, 60_000.0, 200_000.0, 600_000.0])?;
    let payloads = axis(args, "--payloads", &[100.0, 300.0, 700.0, 1400.0])?;
    let flows = axis(args, "--flows", &[100.0, 1_000.0, 10_000.0, 100_000.0])?;
    let threads: usize = match flag_value(args, "--threads") {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::Usage(format!("bad --threads `{v}`")))?,
        None => 0,
    };
    let deadline_ms: Option<u64> = match flag_value(args, "--deadline") {
        Some(v) => Some(
            v.parse()
                .map_err(|_| CliError::Usage(format!("bad --deadline `{v}`")))?,
        ),
        None => None,
    };
    let config = SupervisorConfig {
        threads,
        deadline_ms,
        retry: !args.iter().any(|a| a == "--no-retry"),
        fail_fast: args.iter().any(|a| a == "--fail-fast"),
        checkpoint: flag_value(args, "--checkpoint").map(Into::into),
        resume: flag_value(args, "--resume").map(Into::into),
        ..SupervisorConfig::default()
    };

    // Every grid cell is validated before the (slow) parameter
    // extraction, so a bad axis value exits 7 without waiting.
    let mut grid = Vec::with_capacity(rates.len() * payloads.len() * flows.len());
    for &rate in &rates {
        for &payload in &payloads {
            for &n_flows in &flows {
                let mut wl = WorkloadProfile::paper_default();
                wl.rate_pps = rate;
                wl.avg_payload = payload;
                wl.max_payload = payload as usize;
                wl.flows = n_flows as usize;
                wl.validate().map_err(ClaraError::from)?;
                grid.push(wl);
            }
        }
    }

    let clara = build_clara(args)?;
    let analysis = clara_core::analyze_source(&source)?;
    let scenarios: Vec<SweepScenario<'_>> = grid
        .into_iter()
        .map(|wl| SweepScenario {
            label: format!(
                "{:>8} {:>7} {:>7}",
                wl.rate_pps as u64, wl.avg_payload as u64, wl.flows
            ),
            module: &analysis.module,
            params: clara.params(),
            workload: wl,
            options: PredictOptions::default(),
        })
        .collect();

    let sweep = run_sweep_supervised(&scenarios, &config)
        .map_err(|e| CliError::Io(e.to_string()))?;

    println!(
        "sweep of `{}` on {} ({} cells):",
        analysis.module.name,
        clara.params().nic_name,
        scenarios.len()
    );
    println!(
        "{:>8} {:>7} {:>7} | {:>12} {:>10} bottleneck",
        "rate", "payload", "flows", "lat(cyc)", "tput(Mpps)"
    );
    for (sc, res) in scenarios.iter().zip(&sweep.results) {
        match res {
            CellResult::Fresh(p) => println!(
                "{} | {:>12.0} {:>10.2} {}",
                sc.label,
                p.avg_latency_cycles,
                p.throughput_pps / 1e6,
                p.bottleneck
            ),
            CellResult::Resumed(s) => println!(
                "{} | {:>12.0} {:>10.2} {} (resumed)",
                sc.label,
                s.avg_latency_cycles,
                s.throughput_pps / 1e6,
                s.bottleneck
            ),
            CellResult::Failed(e) => println!("{} | failed: {e}", sc.label),
            CellResult::Skipped => println!("{} | skipped (run cancelled)", sc.label),
        }
    }

    let report = &sweep.report;
    let resumed = report
        .cells
        .iter()
        .filter(|c| matches!(c.outcome, CellOutcome::Resumed))
        .count();
    let summary = format!(
        "sweep: {} ok ({} resumed), {} failed",
        report.ok_count(),
        resumed,
        report.failed_count()
    );
    match report.class() {
        RunClass::AllOk => {
            println!("{summary}");
            Ok(())
        }
        RunClass::Partial => Err(CliError::SweepPartial(summary)),
        RunClass::AllFailed => Err(CliError::SweepFailed(summary)),
    }
}

/// The corpus NF named on the command line, in both forms validation
/// needs: unported source for the predictor, hand-ported program for
/// the simulator.
fn corpus_nf(name: &str) -> Result<(String, clara_core::sim::NicProgram), CliError> {
    use clara_core::nfs;
    Ok(match name {
        "nat" => (nfs::nat::source(), nfs::nat::ported()),
        "dpi" => (nfs::dpi::source(65_536), nfs::dpi::ported(65_536, "emem")),
        "firewall" | "fw" => (nfs::firewall::source(65_536), nfs::firewall::ported(65_536, "emem")),
        "lpm" => (nfs::lpm::source(10_000), nfs::lpm::ported_flow_cache(10_000)),
        "hh" | "heavy-hitter" => (nfs::heavy_hitter::source(4_096), nfs::heavy_hitter::ported(4_096)),
        "vnf" => (
            nfs::vnf::source(nfs::vnf::AUTOMATON_ENTRIES, nfs::vnf::STAT_BUCKETS),
            nfs::vnf::ported(),
        ),
        other => {
            return Err(CliError::Usage(format!(
                "unknown corpus NF `{other}` (try nat, dpi, firewall, lpm, hh, vnf)"
            )))
        }
    })
}

/// Escape a string for embedding in a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a validation run as the per-cell JSON artifact.
fn validation_json(
    nf: &str,
    nic: &str,
    config: &ValidationConfig,
    sweep: &clara_core::ValidationSweep,
) -> String {
    let mut cells = String::new();
    for (i, cell) in sweep.cells.iter().enumerate() {
        if i > 0 {
            cells.push_str(",\n");
        }
        match cell {
            ValidationResult::Ok(c) => cells.push_str(&format!(
                "    {{\"status\": \"ok\", \"rate_pps\": {}, \"payload\": {}, \"flows\": {}, \
                 \"predicted_cycles\": {:.3}, \"actual_cycles\": {:.3}, \"rel_error\": {:.6}, \
                 \"quality\": \"{}\", \"completed\": {}}}",
                c.rate_pps,
                c.avg_payload,
                c.flows,
                c.predicted_cycles,
                c.actual_cycles,
                c.rel_error(),
                json_escape(&c.quality),
                c.completed,
            )),
            ValidationResult::Failed(e) => cells.push_str(&format!(
                "    {{\"status\": \"failed\", \"error\": \"{}\"}}",
                json_escape(e)
            )),
        }
    }
    let mean = match sweep.mean_error() {
        Some(e) => format!("{e:.6}"),
        None => "null".into(),
    };
    format!(
        "{{\n  \"nf\": \"{}\",\n  \"nic\": \"{}\",\n  \"packets_per_cell\": {},\n  \
         \"seed\": {},\n  \"sim_path\": \"{}\",\n  \"mean_abs_rel_error\": {mean},\n  \
         \"cells\": [\n{cells}\n  ]\n}}\n",
        json_escape(nf),
        json_escape(nic),
        config.packets,
        config.seed,
        if config.sim.memoize { "memoized" } else { "exact" },
    )
}

fn validate(args: &[String]) -> Result<(), CliError> {
    // First positional argument = the NF name; skip flags and their values.
    let mut nf_name = None;
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a.starts_with('-') {
            // Every value-taking flag skips its operand; bare switches
            // (`--exact`) don't take one.
            i += if a == "--exact" { 1 } else { 2 };
        } else {
            nf_name = Some(a.clone());
            break;
        }
    }
    let nf_name = nf_name
        .ok_or_else(|| CliError::Usage("need a corpus NF name (e.g. `clara validate nat`)".into()))?;
    let (source, program) = corpus_nf(&nf_name)?;
    let rates = axis(args, "--rates", &[20_000.0, 60_000.0, 200_000.0, 600_000.0])?;
    let payloads = axis(args, "--payloads", &[100.0, 300.0, 700.0, 1400.0])?;
    let flows = axis(args, "--flows", &[100.0, 1_000.0, 10_000.0, 100_000.0])?;
    let parse_num = |name: &str, default: u64| -> Result<u64, CliError> {
        match flag_value(args, name) {
            Some(v) => v.parse().map_err(|_| CliError::Usage(format!("bad {name} `{v}`"))),
            None => Ok(default),
        }
    };
    let mut config = ValidationConfig {
        threads: parse_num("--threads", 0)? as usize,
        packets: parse_num("--packets", 4_000)? as usize,
        seed: parse_num("--seed", 42)?,
        ..ValidationConfig::default()
    };
    if args.iter().any(|a| a == "--exact") {
        config.sim = clara_core::sim::SimConfig::exact();
    }

    // Grid cells are validated before the (slow) parameter extraction.
    let mut grid = Vec::with_capacity(rates.len() * payloads.len() * flows.len());
    for &rate in &rates {
        for &payload in &payloads {
            for &n_flows in &flows {
                let mut wl = WorkloadProfile::paper_default();
                wl.rate_pps = rate;
                wl.avg_payload = payload;
                wl.max_payload = payload as usize;
                wl.flows = n_flows as usize;
                wl.validate().map_err(ClaraError::from)?;
                grid.push(wl);
            }
        }
    }

    // Simulation runs on an LNIC profile, so `--params` alone is not
    // enough here; the profile defaults to the paper's NIC.
    let nic = nic_by_name(flag_value(args, "--nic").unwrap_or("netronome"))?;
    let clara = if flag_value(args, "--params").is_some() {
        build_clara(args)?
    } else {
        eprintln!("extracting parameters for `{}`...", nic.name);
        Clara::new(&nic)
    };
    let analysis = clara_core::analyze_source(&source)?;
    program
        .validate()
        .map_err(|e| CliError::Io(format!("corpus program `{nf_name}` invalid: {e}")))?;

    let sweep = run_validation_sweep(
        &analysis.module,
        clara.params(),
        &nic,
        &program,
        &grid,
        &config,
    );

    println!(
        "validation of `{nf_name}` on {} ({} cells, {} packets/cell, {} path):",
        nic.name,
        grid.len(),
        config.packets,
        if config.sim.memoize { "memoized" } else { "exact" },
    );
    println!(
        "{:>8} {:>7} {:>7} | {:>12} {:>12} {:>7}",
        "rate", "payload", "flows", "predicted", "actual", "err"
    );
    for cell in &sweep.cells {
        match cell {
            ValidationResult::Ok(c) => println!(
                "{:>8} {:>7} {:>7} | {:>12.0} {:>12.0} {:>6.1}%",
                c.rate_pps as u64,
                c.avg_payload as u64,
                c.flows,
                c.predicted_cycles,
                c.actual_cycles,
                c.rel_error() * 100.0,
            ),
            ValidationResult::Failed(e) => println!("failed: {e}"),
        }
    }
    if let Some(mean) = sweep.mean_error() {
        println!("mean abs. error over healthy cells: {:.1}%", mean * 100.0);
    }

    if let Some(path) = flag_value(args, "-o") {
        let json = validation_json(&nf_name, &nic.name, &config, &sweep);
        if path == "-" {
            print!("{json}");
        } else {
            std::fs::write(path, &json)
                .map_err(|e| CliError::Io(format!("cannot write `{path}`: {e}")))?;
            eprintln!("wrote {path}");
        }
    }

    let summary = format!(
        "validate: {} ok, {} failed",
        sweep.report.ok_count(),
        sweep.report.failed_count()
    );
    match sweep.report.class() {
        RunClass::AllOk => {
            println!("{summary}");
            Ok(())
        }
        RunClass::Partial => Err(CliError::SweepPartial(summary)),
        RunClass::AllFailed => Err(CliError::SweepFailed(summary)),
    }
}
