//! The `clara` command-line tool.
//!
//! ```text
//! clara extract --nic netronome -o nic.params     # one-time per NIC
//! clara analyze nf.nfc                            # IR + dataflow dump
//! clara predict nf.nfc --params nic.params --rate 60000 --payload 300
//! clara hints   nf.nfc --nic netronome
//! ```
//!
//! Argument parsing is hand-rolled (no CLI crates). Failures exit with a
//! category-specific code so scripts can tell bad invocations from bad
//! inputs: 2 = usage, 3 = file I/O, 4 = NF frontend error, 5 = lowering
//! error, 6 = prediction error, 7 = workload error. Supervised sweeps
//! additionally exit 8 when some cells failed and 9 when every cell
//! failed — the sweep itself completes and reports either way.

use clara_core::{
    exit_codes, predict_with_sink, run_sweep_supervised, run_validation_sweep, CellOutcome,
    CellResult, Clara, ClaraError, PredictOptions, RunClass, Sink, SolveStats, SupervisorConfig,
    SweepScenario, TelemetryReport, ValidationConfig, ValidationResult, WorkloadProfile,
};
use std::process::ExitCode;

const USAGE: &str = "\
clara — performance clarity for SmartNIC offloading

USAGE:
  clara extract --nic <profile> [-o <file>]
  clara analyze <nf.nfc>
  clara predict <nf.nfc> (--nic <profile> | --params <file>) [workload flags]
  clara hints   <nf.nfc> (--nic <profile> | --params <file>) [workload flags]
  clara sweep   <nf.nfc> (--nic <profile> | --params <file>) [sweep flags]
  clara validate <nf> [--nic <profile>] [validate flags]
  clara profile <nf> [--nic <profile>] [profile flags]
  clara serve   [--nic <profile> | --params <file>] [serve flags]
  clara top     [--addr <host:port>] [top flags]

NIC PROFILES:
  netronome | soc | asic        (built-in LNIC models)

CORPUS NFS (for `validate`, which needs the hand-ported form too):
  nat | dpi | firewall | lpm | hh | vnf

WORKLOAD FLAGS (defaults = the paper's 60 kpps / 300 B / 1k flows):
  --rate <pps>        offered load in packets per second
  --payload <bytes>   mean transport payload
  --flows <n>         concurrent flows
  --tcp <0..1>        TCP share of packets
  --syn <0..1>        SYN share of TCP packets
  --zipf <alpha>      flow-popularity skew (0 = uniform)

SWEEP FLAGS (defaults give a 4×4×4 = 64-cell grid):
  --rates <a,b,..>    rate axis       (default 20000,60000,200000,600000)
  --payloads <a,b,..> payload axis    (default 100,300,700,1400)
  --flows <a,b,..>    flow-count axis (default 100,1000,10000,100000)
  --threads <n>       worker threads; 0 = all cores, 1 = sequential (default 0)
  --deadline <ms>     per-cell wall-clock budget; expiring cells degrade or time out
  --checkpoint <file> save completed cells as they finish (atomic JSON)
  --resume <file>     load a checkpoint and recompute only unfinished cells
                      (also keeps checkpointing to the same file)
  --fail-fast         cancel remaining cells after the first failure
  --no-retry          skip the one retry of failed cells under a tighter budget

VALIDATE FLAGS (predicted-vs-simulated error per grid cell):
  --rates / --payloads / --flows   grid axes, as for sweep (default 4x4x4 = 64)
  --threads <n>       worker threads; 0 = all cores, 1 = sequential (default 0)
  --packets <n>       simulated packets per cell (default 4000)
  --seed <n>          trace-generation seed (default 42)
  --exact             run the simulator's unmemoized seed path (fidelity audit)
  -o <file>           write the per-cell JSON report here (`-` = stdout)

PROFILE FLAGS (one-cell predict + instrumented simulate of a corpus NF):
  --packets <n>       simulated packets (default 2000)
  --seed <n>          trace-generation seed (default 42)
  --exact             run the simulator's unmemoized seed path
  --trace-packets <n> packets recorded in the stage timeline (default 32)
  --trace <file>      write a Chrome trace-event JSON of the first packets
                      (open in Perfetto or chrome://tracing)
  plus the workload flags above

SERVE FLAGS (a long-lived prediction daemon over length-prefixed JSON):
  --addr <host:port>  bind address (default 127.0.0.1:7421; port 0 = any)
  --workers <n>       worker threads; 0 = half the cores (default 0)
  --queue <n>         bounded job queue; beyond it requests are shed
                      with an `overloaded` reply (default 16)
  --deadline <ms>     default per-request deadline when a request sets
                      none (default: unlimited)
  --max-frame <bytes> largest accepted request frame (default 1 MiB)
  --idle-timeout <ms> close idle/stalled connections (default 5000)
  --chaos <seed>      inject worker panics, slow-downs, and truncated
                      replies, deterministically from the seed
  --telemetry <file>  flush server counters here on drain
  --metrics-addr <host:port>
                      serve a Prometheus text exposition over HTTP at
                      GET /metrics on this address (port 0 = any)
  --flight-capacity <n>
                      flight-recorder ring size in events (default 256;
                      0 disables recording)
  --flight-path <file>
                      dump the flight recorder as JSONL here on worker
                      panics and at drain
  Drain with SIGTERM/SIGINT or a `{\"op\":\"shutdown\"}` request: the
  daemon stops accepting, finishes (or deadlines out) admitted jobs,
  flushes telemetry, and exits 0.

TOP FLAGS (a live terminal dashboard polling a daemon's `stats` op):
  --addr <host:port>  daemon address (default 127.0.0.1:7421)
  --interval <ms>     poll period (default 1000)
  --iterations <n>    number of polls; 0 = until interrupted (default 0)
  --raw               print each stats reply as raw JSON, one per line
                      (`--iterations 1 --raw` = a one-shot scrape)

TELEMETRY (predict | sweep | validate | profile):
  --telemetry <file>  collect pipeline spans plus solver/simulator counters
                      and write a TelemetryReport JSON; observation only —
                      results are bit-identical with or without it
";

/// The full help text: the static usage block plus the exit-code table,
/// which is generated from [`exit_codes::TABLE`] so help, README, and
/// the process exit status can never disagree.
fn usage() -> String {
    format!("{USAGE}\nEXIT CODES:\n{}", exit_codes::table())
}

/// A categorized CLI failure; the category decides the exit code.
enum CliError {
    /// Bad invocation: unknown command/flag values, missing arguments.
    Usage(String),
    /// A file could not be read, written, or parsed as a parameter table.
    Io(String),
    /// The analysis/prediction pipeline rejected the inputs.
    Pipeline(ClaraError),
    /// A supervised sweep finished, but some cells failed. The table was
    /// already printed; the message is the one-line summary.
    SweepPartial(String),
    /// A supervised sweep finished with *every* cell failed.
    SweepFailed(String),
    /// The serve daemon could not start (bind failure etc.).
    Serve(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => exit_codes::USAGE,
            CliError::Io(_) => exit_codes::IO,
            CliError::Pipeline(ClaraError::Frontend(_)) => exit_codes::FRONTEND,
            CliError::Pipeline(ClaraError::Lower(_)) => exit_codes::LOWER,
            CliError::Pipeline(ClaraError::Predict(_)) => exit_codes::PREDICT,
            CliError::Pipeline(ClaraError::Workload(_)) => exit_codes::WORKLOAD,
            CliError::SweepPartial(_) => exit_codes::SWEEP_PARTIAL,
            CliError::SweepFailed(_) => exit_codes::SWEEP_FAILED,
            CliError::Serve(_) => exit_codes::SERVE,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg)
            | CliError::Io(msg)
            | CliError::SweepPartial(msg)
            | CliError::SweepFailed(msg)
            | CliError::Serve(msg) => write!(f, "{msg}"),
            CliError::Pipeline(e) => write!(f, "{e}"),
        }
    }
}

impl From<ClaraError> for CliError {
    fn from(e: ClaraError) -> Self {
        CliError::Pipeline(e)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if matches!(e, CliError::Usage(_)) {
                eprintln!("\n{}", usage());
            }
            ExitCode::from(e.exit_code())
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(cmd) = args.first() else {
        return Err(CliError::Usage("no command given".into()));
    };
    match cmd.as_str() {
        "extract" => extract(&args[1..]),
        "analyze" => analyze(&args[1..]),
        "predict" => predict(&args[1..], false),
        "hints" => predict(&args[1..], true),
        "sweep" => sweep(&args[1..]),
        "validate" => validate(&args[1..]),
        "profile" => profile(&args[1..]),
        "serve" => serve(&args[1..]),
        "top" => top(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn nic_by_name(name: &str) -> Result<clara_core::Lnic, CliError> {
    clara_core::profiles::by_name(name)
        .ok_or_else(|| CliError::Usage(format!("unknown NIC profile `{name}`")))
}

fn build_clara(args: &[String]) -> Result<Clara, CliError> {
    if let Some(path) = flag_value(args, "--params") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Io(format!("cannot read `{path}`: {e}")))?;
        let params = clara_microbench::from_text(&text)
            .map_err(|e| CliError::Io(format!("bad parameter file `{path}`: {e}")))?;
        return Ok(Clara::with_params(params));
    }
    let nic_name = flag_value(args, "--nic")
        .ok_or_else(|| CliError::Usage("need --nic <profile> or --params <file>".into()))?;
    eprintln!("extracting parameters for `{nic_name}` (one-time per NIC; use `clara extract` to cache)...");
    Ok(Clara::new(&nic_by_name(nic_name)?))
}

fn workload(args: &[String]) -> Result<WorkloadProfile, CliError> {
    let mut wl = WorkloadProfile::paper_default();
    let parse = |v: &str, what: &str| -> Result<f64, CliError> {
        v.parse().map_err(|_| CliError::Usage(format!("bad {what} `{v}`")))
    };
    if let Some(v) = flag_value(args, "--rate") {
        wl.rate_pps = parse(v, "--rate")?;
    }
    if let Some(v) = flag_value(args, "--payload") {
        wl.avg_payload = parse(v, "--payload")?;
        wl.max_payload = wl.avg_payload as usize;
    }
    if let Some(v) = flag_value(args, "--flows") {
        wl.flows = parse(v, "--flows")? as usize;
    }
    if let Some(v) = flag_value(args, "--tcp") {
        wl.tcp_share = parse(v, "--tcp")?;
    }
    if let Some(v) = flag_value(args, "--syn") {
        wl.syn_share = parse(v, "--syn")?;
    }
    if let Some(v) = flag_value(args, "--zipf") {
        wl.zipf_alpha = parse(v, "--zipf")?;
    }
    // Reject NaN/negative rates, zero flows, out-of-range shares, ...
    // before they reach the predictor's arithmetic (exit code 7).
    wl.validate().map_err(ClaraError::from)?;
    Ok(wl)
}

fn read_source(args: &[String]) -> Result<String, CliError> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--") && a.ends_with(".nfc"))
        .ok_or_else(|| CliError::Usage("need an NF source file (.nfc)".into()))?;
    std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("cannot read `{path}`: {e}")))
}

fn extract(args: &[String]) -> Result<(), CliError> {
    let nic_name = flag_value(args, "--nic")
        .ok_or_else(|| CliError::Usage("need --nic <profile>".into()))?;
    let nic = nic_by_name(nic_name)?;
    eprintln!("running the microbenchmark suite against `{}`...", nic.name);
    let params = clara_core::extract_parameters(&nic);
    let text = clara_microbench::to_text(&params);
    match flag_value(args, "-o") {
        Some(path) => {
            std::fs::write(path, &text)
                .map_err(|e| CliError::Io(format!("cannot write `{path}`: {e}")))?;
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn analyze(args: &[String]) -> Result<(), CliError> {
    let source = read_source(args)?;
    // Analysis needs no NIC parameters.
    let analysis = clara_core::analyze_source(&source)?;
    println!("nf `{}`:", analysis.module.name);
    println!(
        "  {} basic blocks, {} instructions, {} state table(s), {} B of state",
        analysis.module.handle.blocks.len(),
        analysis.module.handle.num_instrs(),
        analysis.module.states.len(),
        analysis.module.states.iter().map(|s| s.size_bytes).sum::<usize>(),
    );
    println!("  dataflow graph ({} nodes):", analysis.graph.nodes.len());
    for node in &analysis.graph.nodes {
        let loop_note = match node.loop_bound {
            Some(b) => format!("  [loop: {b:?}]"),
            None => String::new(),
        };
        println!(
            "    {:>2}  {:<18} {:>3} ops{}",
            node.id.0,
            node.kind.to_string(),
            node.ops.total(),
            loop_note
        );
    }
    for (a, b) in &analysis.graph.edges {
        println!("    edge {} -> {}", a.0, b.0);
    }
    Ok(())
}

/// Write a [`TelemetryReport`] to `path` (`-` = stdout).
fn write_telemetry(path: &str, report: &TelemetryReport) -> Result<(), CliError> {
    if path == "-" {
        print!("{}", report.to_json());
    } else {
        report.save(std::path::Path::new(path)).map_err(CliError::Io)?;
        eprintln!("wrote telemetry to {path}");
    }
    Ok(())
}

fn predict(args: &[String], hints: bool) -> Result<(), CliError> {
    let source = read_source(args)?;
    // Workload flags are validated before the (slow) parameter extraction.
    let wl = workload(args)?;
    let clara = build_clara(args)?;
    if hints {
        let text = clara.porting_hints(&source, &wl)?;
        println!("{text}");
        return Ok(());
    }
    // The disabled sink is a no-op, so the untelemetried path pays
    // nothing; the enabled path never perturbs the prediction.
    let telemetry_path = flag_value(args, "--telemetry");
    let mut sink = if telemetry_path.is_some() { Sink::memory() } else { Sink::disabled() };
    let analysis = sink.span("frontend+lower", || clara_core::analyze_source(&source))?;
    let p = predict_with_sink(
        &analysis.module,
        clara.params(),
        &wl,
        PredictOptions::default(),
        &mut sink,
    )
    .map_err(|e| CliError::Pipeline(ClaraError::from(e)))?;
    println!("predicted on {}:", clara.params().nic_name);
    println!(
        "  avg latency : {:.0} cycles ({:.2} µs)",
        p.avg_latency_cycles,
        p.avg_latency_ns / 1000.0
    );
    for c in &p.per_class {
        println!(
            "    {:<8} {:>5.1}%  {:.0} cycles",
            c.name,
            c.share * 100.0,
            c.latency_cycles
        );
    }
    println!(
        "  throughput  : {:.2} Mpps (bottleneck: {})",
        p.throughput_pps / 1e6,
        p.bottleneck
    );
    println!("  energy      : {:.0} nJ/packet", p.energy_nj_per_packet);
    if let Some(path) = telemetry_path {
        let report = TelemetryReport {
            solver: Some(p.mapping.stats.clone()),
            ..TelemetryReport::from_sink(&sink)
        }
        .with_context("command", "predict")
        .with_context("nf", &analysis.module.name)
        .with_context("nic", &clara.params().nic_name)
        .with_context("workload", &wl.summary());
        write_telemetry(path, &report)?;
    }
    Ok(())
}

/// Parse a comma-separated numeric axis (e.g. `--rates 20000,60000`).
fn axis(args: &[String], name: &str, default: &[f64]) -> Result<Vec<f64>, CliError> {
    let Some(raw) = flag_value(args, name) else {
        return Ok(default.to_vec());
    };
    let vals: Vec<f64> = raw
        .split(',')
        .map(|v| v.trim().parse::<f64>())
        .collect::<Result<_, _>>()
        .map_err(|_| CliError::Usage(format!("bad {name} `{raw}`")))?;
    if vals.is_empty() {
        return Err(CliError::Usage(format!("{name} needs at least one value")));
    }
    Ok(vals)
}

fn sweep(args: &[String]) -> Result<(), CliError> {
    let source = read_source(args)?;
    let rates = axis(args, "--rates", &[20_000.0, 60_000.0, 200_000.0, 600_000.0])?;
    let payloads = axis(args, "--payloads", &[100.0, 300.0, 700.0, 1400.0])?;
    let flows = axis(args, "--flows", &[100.0, 1_000.0, 10_000.0, 100_000.0])?;
    let threads: usize = match flag_value(args, "--threads") {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::Usage(format!("bad --threads `{v}`")))?,
        None => 0,
    };
    let deadline_ms: Option<u64> = match flag_value(args, "--deadline") {
        Some(v) => Some(
            v.parse()
                .map_err(|_| CliError::Usage(format!("bad --deadline `{v}`")))?,
        ),
        None => None,
    };
    let config = SupervisorConfig {
        threads,
        deadline_ms,
        retry: !args.iter().any(|a| a == "--no-retry"),
        fail_fast: args.iter().any(|a| a == "--fail-fast"),
        checkpoint: flag_value(args, "--checkpoint").map(Into::into),
        resume: flag_value(args, "--resume").map(Into::into),
        ..SupervisorConfig::default()
    };

    // Every grid cell is validated before the (slow) parameter
    // extraction, so a bad axis value exits 7 without waiting.
    let mut grid = Vec::with_capacity(rates.len() * payloads.len() * flows.len());
    for &rate in &rates {
        for &payload in &payloads {
            for &n_flows in &flows {
                let mut wl = WorkloadProfile::paper_default();
                wl.rate_pps = rate;
                wl.avg_payload = payload;
                wl.max_payload = payload as usize;
                wl.flows = n_flows as usize;
                wl.validate().map_err(ClaraError::from)?;
                grid.push(wl);
            }
        }
    }

    let clara = build_clara(args)?;
    let telemetry_path = flag_value(args, "--telemetry");
    let mut sink = if telemetry_path.is_some() { Sink::memory() } else { Sink::disabled() };
    let analysis = sink.span("frontend+lower", || clara_core::analyze_source(&source))?;
    let scenarios: Vec<SweepScenario<'_>> = grid
        .into_iter()
        .map(|wl| SweepScenario {
            label: format!(
                "{:>8} {:>7} {:>7}",
                wl.rate_pps as u64, wl.avg_payload as u64, wl.flows
            ),
            module: &analysis.module,
            params: clara.params(),
            workload: wl,
            options: PredictOptions::default(),
        })
        .collect();

    let sweep = sink
        .span("supervised-sweep", || run_sweep_supervised(&scenarios, &config))
        .map_err(|e| CliError::Io(e.to_string()))?;

    println!(
        "sweep of `{}` on {} ({} cells):",
        analysis.module.name,
        clara.params().nic_name,
        scenarios.len()
    );
    println!(
        "{:>8} {:>7} {:>7} | {:>12} {:>10} bottleneck",
        "rate", "payload", "flows", "lat(cyc)", "tput(Mpps)"
    );
    for (sc, res) in scenarios.iter().zip(&sweep.results) {
        match res {
            CellResult::Fresh(p) => println!(
                "{} | {:>12.0} {:>10.2} {}",
                sc.label,
                p.avg_latency_cycles,
                p.throughput_pps / 1e6,
                p.bottleneck
            ),
            CellResult::Resumed(s) => println!(
                "{} | {:>12.0} {:>10.2} {} (resumed)",
                sc.label,
                s.avg_latency_cycles,
                s.throughput_pps / 1e6,
                s.bottleneck
            ),
            CellResult::Failed(e) => println!("{} | failed: {e}", sc.label),
            CellResult::Skipped => println!("{} | skipped (run cancelled)", sc.label),
        }
    }

    let report = &sweep.report;
    let resumed = report
        .cells
        .iter()
        .filter(|c| matches!(c.outcome, CellOutcome::Resumed))
        .count();
    let summary = format!(
        "sweep: {} ok ({} resumed), {} failed",
        report.ok_count(),
        resumed,
        report.failed_count()
    );
    // Run-level solver stats: the sum over freshly computed cells
    // (resumed cells carry no mapping to account). Printed on every
    // sweep — the `cell-warm=` ratio is how a reader checks that
    // cross-cell warm starting actually engaged, not silently fell back.
    let mut solver: Option<SolveStats> = None;
    for res in &sweep.results {
        if let CellResult::Fresh(p) = res {
            match &mut solver {
                Some(s) => s.merge(&p.mapping.stats),
                None => solver = Some(p.mapping.stats.clone()),
            }
        }
    }
    if let Some(s) = &solver {
        println!("solver: {}", s.summary());
    }
    if let Some(path) = telemetry_path {
        sink.count("cells_ok", report.ok_count() as u64);
        sink.count("cells_failed", report.failed_count() as u64);
        let telemetry = TelemetryReport { solver, ..TelemetryReport::from_sink(&sink) }
            .with_context("command", "sweep")
            .with_context("nf", &analysis.module.name)
            .with_context("nic", &clara.params().nic_name)
            .with_context("cells", &scenarios.len().to_string());
        write_telemetry(path, &telemetry)?;
    }
    match report.class() {
        RunClass::AllOk => {
            println!("{summary}");
            Ok(())
        }
        RunClass::Partial => Err(CliError::SweepPartial(summary)),
        RunClass::AllFailed => Err(CliError::SweepFailed(summary)),
    }
}

/// The corpus NF named on the command line, in both forms validation
/// needs: unported source for the predictor, hand-ported program for
/// the simulator.
fn corpus_nf(name: &str) -> Result<(String, clara_core::sim::NicProgram), CliError> {
    clara_core::nfs::by_name(name).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown corpus NF `{name}` (try {})",
            clara_core::nfs::CORPUS_NAMES.join(", ")
        ))
    })
}

/// Escape a string for embedding in a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a validation run as the per-cell JSON artifact.
fn validation_json(
    nf: &str,
    nic: &str,
    config: &ValidationConfig,
    sweep: &clara_core::ValidationSweep,
) -> String {
    let mut cells = String::new();
    for (i, cell) in sweep.cells.iter().enumerate() {
        if i > 0 {
            cells.push_str(",\n");
        }
        match cell {
            ValidationResult::Ok(c) => cells.push_str(&format!(
                "    {{\"status\": \"ok\", \"rate_pps\": {}, \"payload\": {}, \"flows\": {}, \
                 \"predicted_cycles\": {:.3}, \"actual_cycles\": {:.3}, \"rel_error\": {:.6}, \
                 \"quality\": \"{}\", \"completed\": {}}}",
                c.rate_pps,
                c.avg_payload,
                c.flows,
                c.predicted_cycles,
                c.actual_cycles,
                c.rel_error(),
                json_escape(&c.quality),
                c.completed,
            )),
            ValidationResult::Failed(e) => cells.push_str(&format!(
                "    {{\"status\": \"failed\", \"error\": \"{}\"}}",
                json_escape(e)
            )),
        }
    }
    let opt = |v: Option<f64>| match v {
        Some(e) => format!("{e:.6}"),
        None => "null".into(),
    };
    let s = sweep.error_summary();
    let summary = format!(
        "{{\"ok_cells\": {}, \"failed_cells\": {}, \"rel_error\": {{\"mean\": {}, \
         \"p50\": {}, \"p95\": {}, \"max\": {}}}}}",
        s.ok_cells,
        s.failed_cells,
        opt(s.mean),
        opt(s.p50),
        opt(s.p95),
        opt(s.max),
    );
    format!(
        "{{\n  \"nf\": \"{}\",\n  \"nic\": \"{}\",\n  \"packets_per_cell\": {},\n  \
         \"seed\": {},\n  \"sim_path\": \"{}\",\n  \"mean_abs_rel_error\": {},\n  \
         \"summary\": {summary},\n  \
         \"cells\": [\n{cells}\n  ]\n}}\n",
        json_escape(nf),
        json_escape(nic),
        config.packets,
        config.seed,
        if config.sim.memoize { "memoized" } else { "exact" },
        opt(sweep.mean_error()),
    )
}

fn validate(args: &[String]) -> Result<(), CliError> {
    // First positional argument = the NF name; skip flags and their values.
    let mut nf_name = None;
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a.starts_with('-') {
            // Every value-taking flag skips its operand; bare switches
            // (`--exact`) don't take one.
            i += if a == "--exact" { 1 } else { 2 };
        } else {
            nf_name = Some(a.clone());
            break;
        }
    }
    let nf_name = nf_name
        .ok_or_else(|| CliError::Usage("need a corpus NF name (e.g. `clara validate nat`)".into()))?;
    let (source, program) = corpus_nf(&nf_name)?;
    let rates = axis(args, "--rates", &[20_000.0, 60_000.0, 200_000.0, 600_000.0])?;
    let payloads = axis(args, "--payloads", &[100.0, 300.0, 700.0, 1400.0])?;
    let flows = axis(args, "--flows", &[100.0, 1_000.0, 10_000.0, 100_000.0])?;
    let parse_num = |name: &str, default: u64| -> Result<u64, CliError> {
        match flag_value(args, name) {
            Some(v) => v.parse().map_err(|_| CliError::Usage(format!("bad {name} `{v}`"))),
            None => Ok(default),
        }
    };
    let telemetry_path = flag_value(args, "--telemetry");
    let mut config = ValidationConfig {
        threads: parse_num("--threads", 0)? as usize,
        packets: parse_num("--packets", 4_000)? as usize,
        seed: parse_num("--seed", 42)?,
        telemetry: telemetry_path.is_some(),
        ..ValidationConfig::default()
    };
    if args.iter().any(|a| a == "--exact") {
        config.sim = clara_core::sim::SimConfig::exact();
    }

    // Grid cells are validated before the (slow) parameter extraction.
    let mut grid = Vec::with_capacity(rates.len() * payloads.len() * flows.len());
    for &rate in &rates {
        for &payload in &payloads {
            for &n_flows in &flows {
                let mut wl = WorkloadProfile::paper_default();
                wl.rate_pps = rate;
                wl.avg_payload = payload;
                wl.max_payload = payload as usize;
                wl.flows = n_flows as usize;
                wl.validate().map_err(ClaraError::from)?;
                grid.push(wl);
            }
        }
    }

    // Simulation runs on an LNIC profile, so `--params` alone is not
    // enough here; the profile defaults to the paper's NIC.
    let nic = nic_by_name(flag_value(args, "--nic").unwrap_or("netronome"))?;
    let clara = if flag_value(args, "--params").is_some() {
        build_clara(args)?
    } else {
        eprintln!("extracting parameters for `{}`...", nic.name);
        Clara::new(&nic)
    };
    let mut sink = if telemetry_path.is_some() { Sink::memory() } else { Sink::disabled() };
    let analysis = sink.span("frontend+lower", || clara_core::analyze_source(&source))?;
    program
        .validate()
        .map_err(|e| CliError::Io(format!("corpus program `{nf_name}` invalid: {e}")))?;

    let sweep = sink.span("validation-sweep", || {
        run_validation_sweep(&analysis.module, clara.params(), &nic, &program, &grid, &config)
    });

    println!(
        "validation of `{nf_name}` on {} ({} cells, {} packets/cell, {} path):",
        nic.name,
        grid.len(),
        config.packets,
        if config.sim.memoize { "memoized" } else { "exact" },
    );
    println!(
        "{:>8} {:>7} {:>7} | {:>12} {:>12} {:>7}",
        "rate", "payload", "flows", "predicted", "actual", "err"
    );
    for cell in &sweep.cells {
        match cell {
            ValidationResult::Ok(c) => println!(
                "{:>8} {:>7} {:>7} | {:>12.0} {:>12.0} {:>6.1}%",
                c.rate_pps as u64,
                c.avg_payload as u64,
                c.flows,
                c.predicted_cycles,
                c.actual_cycles,
                c.rel_error() * 100.0,
            ),
            ValidationResult::Failed(e) => println!("failed: {e}"),
        }
    }
    let es = sweep.error_summary();
    if let (Some(mean), Some(p50), Some(p95), Some(max)) = (es.mean, es.p50, es.p95, es.max) {
        println!(
            "rel. error over {} healthy cells: mean {:.1}%  p50 {:.1}%  p95 {:.1}%  max {:.1}%",
            es.ok_cells,
            mean * 100.0,
            p50 * 100.0,
            p95 * 100.0,
            max * 100.0,
        );
    }

    if let Some(path) = flag_value(args, "-o") {
        let json = validation_json(&nf_name, &nic.name, &config, &sweep);
        if path == "-" {
            print!("{json}");
        } else {
            std::fs::write(path, &json)
                .map_err(|e| CliError::Io(format!("cannot write `{path}`: {e}")))?;
            eprintln!("wrote {path}");
        }
    }

    if let Some(path) = telemetry_path {
        let (solver, sim) = sweep.merged_stats();
        sink.count("cells_ok", sweep.report.ok_count() as u64);
        sink.count("cells_failed", sweep.report.failed_count() as u64);
        let telemetry = TelemetryReport { solver, sim, ..TelemetryReport::from_sink(&sink) }
            .with_context("command", "validate")
            .with_context("nf", &nf_name)
            .with_context("nic", &nic.name)
            .with_context("cells", &grid.len().to_string());
        write_telemetry(path, &telemetry)?;
    }

    let summary = format!(
        "validate: {} ok, {} failed",
        sweep.report.ok_count(),
        sweep.report.failed_count()
    );
    match sweep.report.class() {
        RunClass::AllOk => {
            println!("{summary}");
            Ok(())
        }
        RunClass::Partial => Err(CliError::SweepPartial(summary)),
        RunClass::AllFailed => Err(CliError::SweepFailed(summary)),
    }
}

/// `clara profile <nf>`: predict one cell, simulate it instrumented, and
/// print where the cycles went — pipeline phases, solver counters,
/// per-stage simulated cycles, island occupancy, and accelerator queues.
/// `--trace` additionally exports the first packets as Chrome
/// trace-event JSON for Perfetto.
fn profile(args: &[String]) -> Result<(), CliError> {
    use clara_core::sim::{
        simulate_streamed_instrumented, FaultPlan, SimConfig, SimInstruments, SimScratch, Watchdog,
    };

    // First positional argument = the corpus NF; `--exact` is the only
    // bare switch, every other flag takes a value.
    let mut nf_name = None;
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a.starts_with('-') {
            i += if a == "--exact" { 1 } else { 2 };
        } else {
            nf_name = Some(a.clone());
            break;
        }
    }
    let nf_name = nf_name
        .ok_or_else(|| CliError::Usage("need a corpus NF name (e.g. `clara profile dpi`)".into()))?;
    let (source, program) = corpus_nf(&nf_name)?;
    let wl = workload(args)?;
    let parse_num = |name: &str, default: u64| -> Result<u64, CliError> {
        match flag_value(args, name) {
            Some(v) => v.parse().map_err(|_| CliError::Usage(format!("bad {name} `{v}`"))),
            None => Ok(default),
        }
    };
    let packets = parse_num("--packets", 2_000)? as usize;
    let seed = parse_num("--seed", 42)?;
    let trace_packets = parse_num("--trace-packets", 32)?;
    let sim_config = if args.iter().any(|a| a == "--exact") {
        SimConfig::exact()
    } else {
        SimConfig::default()
    };

    let nic = nic_by_name(flag_value(args, "--nic").unwrap_or("netronome"))?;
    let clara = if flag_value(args, "--params").is_some() {
        build_clara(args)?
    } else {
        eprintln!("extracting parameters for `{}`...", nic.name);
        Clara::new(&nic)
    };

    // Profiling exists to observe, so the sink is always on here.
    let mut sink = Sink::memory();
    let analysis = sink.span("frontend+lower", || clara_core::analyze_source(&source))?;
    program
        .validate()
        .map_err(|e| CliError::Io(format!("corpus program `{nf_name}` invalid: {e}")))?;
    let p = predict_with_sink(
        &analysis.module,
        clara.params(),
        &wl,
        PredictOptions::default(),
        &mut sink,
    )
    .map_err(|e| CliError::Pipeline(ClaraError::from(e)))?;

    let faults = FaultPlan::none();
    let watchdog = Watchdog::new();
    let mut scratch = SimScratch::new();
    // A packet timeline needs the per-packet scalar replay, which
    // disables the batched stage-cost kernel — only pay that when the
    // user actually asked for a `--trace` export. A default profile run
    // exercises (and reports, via `batch=`) the batched path.
    let mut instr = if flag_value(args, "--trace").is_some() {
        SimInstruments::with_timeline(trace_packets)
    } else {
        SimInstruments::new()
    };
    let stream = wl.to_trace_stream(packets, seed);
    let sim = sink
        .span("simulate", || {
            simulate_streamed_instrumented(
                &nic, &program, stream, &faults, &watchdog, &sim_config, &mut scratch, &mut instr,
            )
        })
        .map_err(|e| CliError::Io(format!("simulate `{nf_name}`: {e}")))?;
    let stats = &instr.stats;

    println!(
        "profile of `{nf_name}` on {} ({packets} packets, {} path)",
        nic.name,
        match (sim_config.batch, sim_config.memoize) {
            (true, _) => "batched+memoized",
            (false, true) => "memoized",
            (false, false) => "exact",
        },
    );
    println!("workload: {}", wl.summary());

    println!("\npipeline phases (wall-clock):");
    let mut spans = sink.spans().to_vec();
    spans.sort_by_key(|s| s.start_us);
    for s in &spans {
        println!("  {:indent$}{:<18} {:>8} µs", "", s.name, s.dur_us, indent = (s.depth - 1) * 2);
    }
    println!("\nsolver: {}", p.mapping.stats.summary());

    println!("\nper-stage simulated cycles (mean per packet):");
    let total: f64 = sim.per_stage_cycles.iter().map(|(_, c)| c).sum();
    for (name, cycles) in &sim.per_stage_cycles {
        println!(
            "  {:<20} {:>10.1} {:>6.1}%",
            name,
            cycles,
            if total > 0.0 { cycles / total * 100.0 } else { 0.0 },
        );
    }
    println!("  {:<20} {:>10.1} (avg latency {:.0} cycles)", "total", total, sim.avg_latency_cycles);

    println!("\n{}", stats.summary());
    for is in &stats.islands {
        println!(
            "  island {}: {} threads, {:.1}% busy",
            is.island,
            is.threads,
            is.occupancy(stats.span_cycles) * 100.0,
        );
    }
    for ml in &stats.mem_levels {
        if ml.accesses > 0 {
            println!("  mem {:<6} {:>10} accesses", ml.name, ml.accesses);
        }
    }
    if let Some(rate) = stats.emem_hit_rate() {
        println!(
            "  emem cache: {} hits / {} misses ({:.1}%)",
            stats.emem_cache_hits,
            stats.emem_cache_misses,
            rate * 100.0,
        );
    }
    for ac in &stats.accels {
        println!(
            "  accel {:<10} {} calls, {} busy cyc, {} HOL-stall cyc, queue high-water {}",
            ac.name, ac.calls, ac.busy_cycles, ac.hol_stall_cycles, ac.queue_highwater,
        );
    }
    println!("  switch fabric: {} transfers", stats.switch_transfers);
    println!(
        "  batch kernel: {} of {} packets costed in batch{}",
        stats.batch_packets,
        stats.injected,
        if stats.batch_packets == 0 {
            " (stateful stages or timeline tracing force the scalar path)"
        } else {
            ""
        },
    );
    if stats.island_packets > 0 {
        println!("  island-parallel DES: {} packets", stats.island_packets);
    }
    println!(
        "\npredicted {:.0} cycles vs simulated {:.0} (rel. error {:.1}%)",
        p.avg_latency_cycles,
        sim.avg_latency_cycles,
        (p.avg_latency_cycles - sim.avg_latency_cycles).abs() / sim.avg_latency_cycles.max(1.0)
            * 100.0,
    );

    if let Some(path) = flag_value(args, "--trace") {
        if let Some(timeline) = instr.timeline.as_ref() {
            let json = timeline.to_chrome(clara.params().freq_ghz).to_json();
            if path == "-" {
                print!("{json}");
            } else {
                std::fs::write(path, &json)
                    .map_err(|e| CliError::Io(format!("cannot write `{path}`: {e}")))?;
                eprintln!(
                    "wrote Chrome trace to {path} ({} events; open in Perfetto or chrome://tracing)",
                    timeline.spans.len(),
                );
            }
        }
    }
    if let Some(path) = flag_value(args, "--telemetry") {
        let telemetry = TelemetryReport {
            solver: Some(p.mapping.stats.clone()),
            sim: Some(stats.clone()),
            ..TelemetryReport::from_sink(&sink)
        }
        .with_context("command", "profile")
        .with_context("nf", &nf_name)
        .with_context("nic", &nic.name)
        .with_context("workload", &wl.summary())
        .with_context("packets", &packets.to_string());
        write_telemetry(path, &telemetry)?;
    }
    Ok(())
}

/// `clara serve`: run the prediction daemon until drained by SIGTERM,
/// SIGINT, or a `shutdown` request.
fn serve(args: &[String]) -> Result<(), CliError> {
    use clara_core::serve::{ChaosConfig, ServeConfig, Server};
    use std::sync::Arc;

    let parse_num = |v: &str, what: &str| -> Result<u64, CliError> {
        v.parse().map_err(|_| CliError::Usage(format!("bad {what} `{v}`")))
    };
    let mut config = ServeConfig {
        addr: flag_value(args, "--addr").unwrap_or("127.0.0.1:7421").to_string(),
        handle_sigterm: true,
        ..ServeConfig::default()
    };
    if let Some(v) = flag_value(args, "--workers") {
        config.workers = parse_num(v, "--workers")? as usize;
    }
    if let Some(v) = flag_value(args, "--queue") {
        config.queue_cap = (parse_num(v, "--queue")? as usize).max(1);
    }
    if let Some(v) = flag_value(args, "--max-frame") {
        config.max_frame = parse_num(v, "--max-frame")? as usize;
    }
    if let Some(v) = flag_value(args, "--idle-timeout") {
        config.read_timeout_ms = parse_num(v, "--idle-timeout")?;
    }
    if let Some(v) = flag_value(args, "--deadline") {
        config.default_deadline_ms = Some(parse_num(v, "--deadline")?);
    }
    if let Some(v) = flag_value(args, "--chaos") {
        config.chaos = Some(ChaosConfig::with_seed(parse_num(v, "--chaos seed")?));
    }
    config.telemetry_path = flag_value(args, "--telemetry").map(Into::into);
    if let Some(v) = flag_value(args, "--flight-capacity") {
        config.flight_capacity = parse_num(v, "--flight-capacity")? as usize;
    }
    config.flight_path = flag_value(args, "--flight-path").map(Into::into);
    config.metrics_addr = flag_value(args, "--metrics-addr").map(Into::into);

    // Resolve the default target up front so the first request doesn't
    // pay for parameter extraction. `--params` skips extraction; the
    // profile name it's seeded under is `--nic` (default: the profile
    // whose full name matches the parameter file).
    let nic_flag = flag_value(args, "--nic");
    let (seed_name, lnic, params) = if let Some(path) = flag_value(args, "--params") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Io(format!("cannot read `{path}`: {e}")))?;
        let params = clara_microbench::from_text(&text)
            .map_err(|e| CliError::Io(format!("bad parameter file `{path}`: {e}")))?;
        let short = match nic_flag {
            Some(name) => name.to_string(),
            None => ["netronome", "soc", "asic"]
                .iter()
                .find(|n| nic_by_name(n).is_ok_and(|l| l.name == params.nic_name))
                .map(|n| n.to_string())
                .ok_or_else(|| {
                    CliError::Usage(format!(
                        "cannot map parameter file for `{}` to a profile; pass --nic",
                        params.nic_name
                    ))
                })?,
        };
        (short.clone(), nic_by_name(&short)?, params)
    } else {
        let name = nic_flag.unwrap_or("netronome");
        let lnic = nic_by_name(name)?;
        eprintln!("extracting parameters for `{name}` (one-time; use --params to skip)...");
        let params = clara_core::extract_parameters(&lnic);
        (name.to_string(), lnic, params)
    };

    let chaos_note = config
        .chaos
        .as_ref()
        .map(|c| format!(", chaos seed {}", c.seed))
        .unwrap_or_default();
    let (queue_cap, workers) = (config.queue_cap, config.workers);
    let server = Server::start(config).map_err(|e| CliError::Serve(e.to_string()))?;
    server.seed_target(&seed_name, lnic, Arc::new(params));
    eprintln!(
        "clara serve: listening on {} (nic {seed_name}, queue {queue_cap}, workers {}{chaos_note})",
        server.addr(),
        if workers == 0 { "auto".to_string() } else { workers.to_string() },
    );
    if let Some(maddr) = server.metrics_addr() {
        eprintln!("clara serve: Prometheus exposition at http://{maddr}/metrics");
    }
    eprintln!("clara serve: drain with SIGTERM or a {{\"op\":\"shutdown\"}} request");
    let stats = server.join();
    eprintln!(
        "clara serve: drained; {} completed, {} shed, {} timed out, {} panicked, {} workers respawned, {} cache hits",
        stats.completed, stats.shed, stats.timed_out, stats.panicked,
        stats.workers_respawned, stats.prepared_hits,
    );
    Ok(())
}

/// Render a microsecond value with a unit that keeps 3-ish significant
/// digits readable.
fn fmt_us(us: u64) -> String {
    if us >= 10_000_000 {
        format!("{:.1} s", us as f64 / 1e6)
    } else if us >= 10_000 {
        format!("{:.1} ms", us as f64 / 1e3)
    } else {
        format!("{us} µs")
    }
}

/// One dashboard frame from a `stats` reply (and, when available, an
/// `events` reply). Pure string building so it is unit-testable without
/// a daemon.
fn render_top(addr: &str, stats: &clara_core::serve::json::Value, events: Option<&clara_core::serve::json::Value>) -> String {
    use clara_core::serve::json::Value;

    let u = |key: &str| stats.get(key).and_then(Value::as_u64).unwrap_or(0);
    let rate = |key: &str| -> f64 {
        stats
            .get("rates")
            .and_then(|r| r.get(key))
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
    };
    let mut out = String::with_capacity(2048);
    out.push_str(&format!(
        "clara top — {addr}   up {}s   workers {}/{}   queue {}/{}   in-flight {}\n",
        u("uptime_s"),
        u("workers_live"),
        u("workers"),
        u("queue_depth"),
        u("queue_capacity"),
        u("inflight"),
    ));
    out.push_str(&format!(
        "totals: {} requests  {} completed  {} shed  {} timed out  {} panicked  {} errored\n",
        u("requests"),
        u("completed"),
        u("shed"),
        u("timed_out"),
        u("panicked"),
        u("errored"),
    ));
    out.push_str(&format!(
        "cache : {} sessions  prepared {}/{}  sim memo {}/{}  quarantined {}\n\n",
        u("sessions"),
        u("prepared_hits"),
        u("prepared_hits") + u("prepared_misses"),
        u("sim_memo_hits"),
        u("sim_memo_hits") + u("sim_memo_misses"),
        u("quarantined"),
    ));
    out.push_str(&format!("{:<12} {:>9} {:>9} {:>9}\n", "rates", "1s", "10s", "60s"));
    for (label, stem) in
        [("req/s", "req_per_s"), ("shed/s", "shed_per_s"), ("done/s", "complete_per_s")]
    {
        out.push_str(&format!(
            "{:<12} {:>9.1} {:>9.1} {:>9.1}\n",
            label,
            rate(&format!("{stem}_1s")),
            rate(&format!("{stem}_10s")),
            rate(&format!("{stem}_60s")),
        ));
    }
    let memo = |key: &str| -> String {
        match stats.get("rates").and_then(|r| r.get(key)).and_then(Value::as_f64) {
            Some(f) => format!("{:.0}%", f * 100.0),
            None => "-".to_string(),
        }
    };
    out.push_str(&format!(
        "{:<12} {:>9} {:>9} {:>9}\n\n",
        "memo hit",
        memo("sim_memo_hit_rate_1s"),
        memo("sim_memo_hit_rate_10s"),
        memo("sim_memo_hit_rate_60s"),
    ));
    out.push_str(&format!(
        "{:<12} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
        "latency", "count", "p50", "p90", "p99", "max"
    ));
    for (label, key) in [
        ("service", "service_us"),
        ("queue wait", "queue_wait_us"),
        ("solve", "solve_us"),
        ("sim", "sim_us"),
    ] {
        let h = |field: &str| {
            stats.get(key).and_then(|h| h.get(field)).and_then(Value::as_u64).unwrap_or(0)
        };
        out.push_str(&format!(
            "{:<12} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
            label,
            h("count"),
            fmt_us(h("p50")),
            fmt_us(h("p90")),
            fmt_us(h("p99")),
            fmt_us(h("max")),
        ));
    }
    if let Some(list) = events.and_then(|e| e.get("events")).and_then(Value::as_arr) {
        if !list.is_empty() {
            out.push_str("\nrecent events:\n");
            for ev in list {
                let g = |k: &str| ev.get(k).and_then(Value::as_u64).unwrap_or(0);
                out.push_str(&format!(
                    "  #{:<6} +{:<12} {:<10} req {:<6} val {}\n",
                    g("seq"),
                    fmt_us(g("ts_us")),
                    ev.get("event").and_then(Value::as_str).unwrap_or("?"),
                    g("req"),
                    g("val"),
                ));
            }
        }
    }
    out
}

/// `clara top`: a terminal dashboard over a running daemon, polled from
/// the same `stats` and `events` ops any client can issue — nothing
/// here is privileged, the dashboard is just one more protocol client.
fn top(args: &[String]) -> Result<(), CliError> {
    use clara_core::serve::Client;
    use std::io::IsTerminal;
    use std::net::ToSocketAddrs;

    let parse_num = |v: &str, what: &str| -> Result<u64, CliError> {
        v.parse().map_err(|_| CliError::Usage(format!("bad {what} `{v}`")))
    };
    let addr_s = flag_value(args, "--addr").unwrap_or("127.0.0.1:7421").to_string();
    let addr = addr_s
        .to_socket_addrs()
        .map_err(|e| CliError::Usage(format!("bad --addr `{addr_s}`: {e}")))?
        .next()
        .ok_or_else(|| CliError::Usage(format!("bad --addr `{addr_s}`")))?;
    let interval_ms = match flag_value(args, "--interval") {
        Some(v) => parse_num(v, "--interval")?,
        None => 1_000,
    };
    let iterations = match flag_value(args, "--iterations") {
        Some(v) => parse_num(v, "--iterations")?,
        None => 0,
    };
    let raw = args.iter().any(|a| a == "--raw");
    // Only a real terminal gets the clear-screen dance; a pipe gets
    // appended frames (and `--raw` gets plain JSON lines either way).
    let clear = std::io::stdout().is_terminal();

    let mut client = Client::connect(addr)
        .map_err(|e| CliError::Serve(format!("cannot connect to {addr_s}: {e}")))?;
    let mut polls: u64 = 0;
    loop {
        let stats = match client.stats() {
            Ok(v) => v,
            Err(first_err) => {
                // The daemon may have dropped the idle connection
                // between polls; retry once on a fresh one.
                client = Client::connect(addr).map_err(|_| {
                    CliError::Serve(format!("lost daemon at {addr_s}: {first_err}"))
                })?;
                client
                    .stats()
                    .map_err(|e| CliError::Serve(format!("stats poll failed: {e}")))?
            }
        };
        if raw {
            println!("{}", stats.to_json());
        } else {
            let events = client.request(r#"{"op":"events","limit":8}"#).ok();
            if clear {
                print!("\x1b[2J\x1b[H");
            }
            print!("{}", render_top(&addr_s, &stats, events.as_ref()));
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        polls += 1;
        if iterations != 0 && polls >= iterations {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}
