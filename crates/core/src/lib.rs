//! # Clara — performance clarity for SmartNIC offloading
//!
//! Clara analyzes an **unported** network function in its original form
//! and predicts its performance when ported to a SmartNIC target,
//! without requiring the developer to port the program first
//! (Qiu, Kang, Liu, Chen — HotNets '20).
//!
//! This crate is the public façade over the full pipeline:
//!
//! ```text
//!  NFC source ──lang──► AST ──cir──► CIR + vcalls ──dataflow──► graph
//!                                                      │
//!  LNIC profile ──microbench──► measured parameters ───┤ ILP (map)
//!                                                      ▼
//!  workload profile ──────────────────────────► prediction (predict)
//! ```
//!
//! # Quickstart
//!
//! ```
//! use clara_core::{Clara, WorkloadProfile};
//!
//! // One-time per NIC: run the microbenchmark suite.
//! let nic = clara_core::profiles::netronome_agilio_cx40();
//! let clara = Clara::new(&nic);
//!
//! let source = r#"
//!     nf firewall {
//!         state conns: map<u64, u64>[65536];
//!         fn handle(pkt: packet) -> action {
//!             bpf.parse(pkt);
//!             let k: u64 = hash(pkt.src_ip, pkt.dst_ip, pkt.src_port, pkt.dst_port);
//!             if (conns.lookup(k) == 0) {
//!                 if (pkt.is_syn) { conns.insert(k, 1); return forward; }
//!                 return drop;
//!             }
//!             return forward;
//!         }
//!     }
//! "#;
//!
//! let prediction = clara.predict(source, &WorkloadProfile::paper_default()).unwrap();
//! assert!(prediction.avg_latency_ns > 0.0);
//! println!("{}", clara.porting_hints(source, &WorkloadProfile::paper_default()).unwrap());
//! ```

use core::fmt;

pub use clara_cir::CirModule;
pub use clara_dataflow::DataflowGraph;
pub use clara_lnic::{AccelKind, Lnic};
pub use clara_map::{Mapping, MappingQuality, RunDeadline, SolveBudget, SolverConfig, UnitChoice};
pub use clara_microbench::{extract_parameters, NicParameters};
pub use clara_predict::{
    predict_partial, predict_sliced, predict_with_sink, run_sweep, run_sweep_supervised,
    run_validation_sweep, validation_grid, CellOutcome, CellReport, CellResult, CellSummary,
    Checkpoint, ClassPrediction, ErrorSummary, HostParams, PartialPlan, PredictOptions, Prediction,
    RunClass, RunReport, SliceSpec, Sink, SimStats, SolveStats, SupervisedSweep, SupervisorConfig,
    SupervisorError, SweepScenario, TelemetryReport, ValidationCell, ValidationConfig,
    ValidationResult, ValidationSweep,
};
pub use clara_workload::{Arrival, SizeDist, Trace, TraceGenerator, WorkloadError, WorkloadProfile};

/// Built-in LNIC profiles (re-exported from `clara-lnic`).
pub mod profiles {
    pub use clara_lnic::profiles::*;
}

/// Simulation substrate (re-exported from `clara-nicsim`): the ground
/// truth used to validate predictions in this reproduction.
pub mod sim {
    pub use clara_nicsim::*;
}

/// The NF corpus used by the paper's evaluation (re-exported).
pub mod nfs {
    pub use clara_nfs::*;
}

/// The `clara serve` daemon (re-exported from `clara-serve`): sessions,
/// protocol, server, and client.
pub mod serve {
    pub use clara_serve::*;
}

/// The `clara` CLI's exit codes — one shared definition for the binary,
/// its `--help` text, the README table, and CI scripts. Codes are
/// stable: scripts may match on them.
pub mod exit_codes {
    /// Success.
    pub const OK: u8 = 0;
    /// Bad invocation: unknown command, flag, or flag value.
    pub const USAGE: u8 = 2;
    /// A file could not be read, written, or parsed.
    pub const IO: u8 = 3;
    /// The NF source failed to parse or type-check.
    pub const FRONTEND: u8 = 4;
    /// Lowering to CIR failed.
    pub const LOWER: u8 = 5;
    /// Mapping or prediction failed.
    pub const PREDICT: u8 = 6;
    /// The workload profile is malformed.
    pub const WORKLOAD: u8 = 7;
    /// A sweep/validation finished, but some cells failed.
    pub const SWEEP_PARTIAL: u8 = 8;
    /// A sweep/validation finished with every cell failed.
    pub const SWEEP_FAILED: u8 = 9;
    /// The `serve` daemon failed to start (e.g. the bind address is in
    /// use). Per-request serve failures are reply codes on the wire
    /// (`clara_serve::reply_codes`), not process exits; codes 0–9 there
    /// mirror this table one-for-one.
    pub const SERVE: u8 = 10;

    /// `(code, meaning)` rows, in code order.
    pub const TABLE: &[(u8, &str)] = &[
        (OK, "success"),
        (USAGE, "usage error (bad command, flag, or value)"),
        (IO, "file I/O or parameter-file parse error"),
        (FRONTEND, "NF frontend (parse/type) error"),
        (LOWER, "CIR lowering error"),
        (PREDICT, "mapping or prediction error"),
        (WORKLOAD, "malformed workload profile"),
        (SWEEP_PARTIAL, "sweep/validate finished with some cells failed"),
        (SWEEP_FAILED, "sweep/validate finished with every cell failed"),
        (SERVE, "serve daemon failed to start"),
    ];

    /// The table rendered for `--help` and docs, one `  code  meaning`
    /// line per row.
    pub fn table() -> String {
        TABLE.iter().map(|(code, meaning)| format!("  {code}  {meaning}\n")).collect()
    }
}

/// Errors from the end-to-end pipeline.
#[derive(Debug)]
pub enum ClaraError {
    /// The NF source failed to parse or type-check.
    Frontend(clara_lang::LangError),
    /// Lowering to CIR failed.
    Lower(clara_cir::LowerError),
    /// Mapping or prediction failed.
    Predict(clara_predict::PredictError),
    /// The workload profile is malformed (NaN rate, zero flows, ...).
    Workload(clara_workload::WorkloadError),
}

impl fmt::Display for ClaraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClaraError::Frontend(e) => write!(f, "frontend error: {e}"),
            ClaraError::Lower(e) => write!(f, "lowering error: {e}"),
            ClaraError::Predict(e) => write!(f, "prediction error: {e}"),
            ClaraError::Workload(e) => write!(f, "workload error: {e}"),
        }
    }
}

impl std::error::Error for ClaraError {}

impl From<clara_lang::LangError> for ClaraError {
    fn from(e: clara_lang::LangError) -> Self {
        ClaraError::Frontend(e)
    }
}
impl From<clara_cir::LowerError> for ClaraError {
    fn from(e: clara_cir::LowerError) -> Self {
        ClaraError::Lower(e)
    }
}
impl From<clara_predict::PredictError> for ClaraError {
    fn from(e: clara_predict::PredictError) -> Self {
        ClaraError::Predict(e)
    }
}
impl From<clara_workload::WorkloadError> for ClaraError {
    fn from(e: clara_workload::WorkloadError) -> Self {
        ClaraError::Workload(e)
    }
}

/// The result of analyzing an NF: its IR and dataflow graph.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The lowered module (CIR with vcalls).
    pub module: CirModule,
    /// The pattern-matched dataflow graph.
    pub graph: DataflowGraph,
}

/// Analyze an NF source without any NIC context (parse, check, lower,
/// extract the dataflow graph). Prediction additionally needs
/// [`NicParameters`]; use [`Clara`] for that.
pub fn analyze_source(source: &str) -> Result<Analysis, ClaraError> {
    let ast = clara_lang::frontend(source)?;
    let module = clara_cir::lower(&ast)?;
    let graph = clara_dataflow::extract(&module);
    Ok(Analysis { module, graph })
}

/// The Clara tool: NIC parameters plus the analysis/prediction pipeline.
#[derive(Debug, Clone)]
pub struct Clara {
    params: NicParameters,
}

impl Clara {
    /// Build Clara for a NIC by running the one-time microbenchmark
    /// extraction against it (on hardware this takes minutes; here it
    /// runs against the simulator substrate).
    pub fn new(nic: &Lnic) -> Self {
        Clara { params: extract_parameters(nic) }
    }

    /// Build Clara from previously extracted parameters.
    pub fn with_params(params: NicParameters) -> Self {
        Clara { params }
    }

    /// The measured parameter table.
    pub fn params(&self) -> &NicParameters {
        &self.params
    }

    /// Parse, check, lower, and extract the dataflow graph of an NF.
    pub fn analyze(&self, source: &str) -> Result<Analysis, ClaraError> {
        analyze_source(source)
    }

    /// Predict the performance of an unported NF under a workload.
    pub fn predict(
        &self,
        source: &str,
        workload: &WorkloadProfile,
    ) -> Result<Prediction, ClaraError> {
        workload.validate()?;
        let analysis = self.analyze(source)?;
        Ok(clara_predict::predict(&analysis.module, &self.params, workload)?)
    }

    /// Predict from an existing analysis (avoids re-parsing).
    pub fn predict_module(
        &self,
        module: &CirModule,
        workload: &WorkloadProfile,
    ) -> Result<Prediction, ClaraError> {
        workload.validate()?;
        Ok(clara_predict::predict(module, &self.params, workload)?)
    }

    /// §6: "developers can benefit even further if Clara can generate
    /// concrete porting strategies for different NF components as
    /// offloading hints." A human-readable porting plan.
    pub fn porting_hints(
        &self,
        source: &str,
        workload: &WorkloadProfile,
    ) -> Result<String, ClaraError> {
        workload.validate()?;
        let analysis = self.analyze(source)?;
        let prediction = clara_predict::predict(&analysis.module, &self.params, workload)?;
        let mut out = String::new();
        out.push_str(&format!(
            "Porting plan for `{}` on {} ({} kpps, {}B avg payload, {} flows):\n",
            analysis.module.name,
            self.params.nic_name,
            (workload.rate_pps / 1000.0).round(),
            workload.avg_payload.round(),
            workload.flows,
        ));
        for (node, unit) in prediction.graph.nodes.iter().zip(&prediction.mapping.node_unit) {
            out.push_str(&format!("  • {:<20} → {}\n", node.kind.to_string(), unit));
            if node.kind == clara_dataflow::NodeKind::Checksum && node.after_rewrite {
                out.push_str(
                    "      (computed after a header rewrite: the ingress checksum \
                     engine cannot serve it — consider an incremental update)\n",
                );
            }
        }
        for (state, &m) in analysis.module.states.iter().zip(&prediction.mapping.state_mem) {
            out.push_str(&format!(
                "  • state `{}` ({} B) → {}\n",
                state.name, state.size_bytes, self.params.mems[m].name
            ));
        }
        for class in &prediction.per_class {
            out.push_str(&format!(
                "  {:<8} {:>5.1}% of traffic → {:>8.0} cycles ({:.2} µs)\n",
                class.name,
                class.share * 100.0,
                class.latency_cycles,
                class.latency_cycles / self.params.freq_ghz / 1000.0,
            ));
        }
        out.push_str(&format!(
            "  predicted average: {:.0} cycles ({:.2} µs); sustainable throughput ≈ {:.2} Mpps (bottleneck: {})\n",
            prediction.avg_latency_cycles,
            prediction.avg_latency_ns / 1000.0,
            prediction.throughput_pps / 1e6,
            prediction.bottleneck,
        ));
        out.push_str(&format!(
            "  mapping confidence: {}\n",
            prediction.mapping.quality
        ));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn clara() -> &'static Clara {
        static C: OnceLock<Clara> = OnceLock::new();
        C.get_or_init(|| Clara::new(&profiles::netronome_agilio_cx40()))
    }

    const FW: &str = r#"nf firewall {
        state conns: map<u64, u64>[65536];
        fn handle(pkt: packet) -> action {
            bpf.parse(pkt);
            let k: u64 = hash(pkt.src_ip, pkt.dst_ip);
            if (conns.lookup(k) == 0) {
                if (pkt.is_syn) { conns.insert(k, 1); return forward; }
                return drop;
            }
            return forward;
        } }"#;

    #[test]
    fn analyze_produces_ir_and_graph() {
        let a = clara().analyze(FW).unwrap();
        assert_eq!(a.module.name, "firewall");
        assert!(!a.graph.nodes.is_empty());
    }

    #[test]
    fn frontend_errors_surface() {
        let err = clara().analyze("nf x { }").unwrap_err();
        assert!(matches!(err, ClaraError::Frontend(_)));
        assert!(err.to_string().contains("handle"));
    }

    #[test]
    fn predict_end_to_end() {
        let p = clara().predict(FW, &WorkloadProfile::paper_default()).unwrap();
        assert!(p.avg_latency_cycles > 0.0);
        assert!(p.throughput_pps > 60_000.0);
    }

    #[test]
    fn porting_hints_are_readable() {
        let hints = clara()
            .porting_hints(FW, &WorkloadProfile::paper_default())
            .unwrap();
        assert!(hints.contains("state `conns`"), "{hints}");
        assert!(hints.contains("predicted average"), "{hints}");
        assert!(hints.contains("table-lookup"), "{hints}");
        assert!(hints.contains("mapping confidence: optimal"), "{hints}");
    }

    #[test]
    fn malformed_workloads_are_rejected_before_prediction() {
        let mut wl = WorkloadProfile::paper_default();
        wl.rate_pps = f64::NAN;
        let err = clara().predict(FW, &wl).unwrap_err();
        assert!(matches!(err, ClaraError::Workload(_)), "{err}");
        assert!(err.to_string().contains("rate_pps"), "{err}");

        wl.rate_pps = 60_000.0;
        wl.flows = 0;
        let err = clara().porting_hints(FW, &wl).unwrap_err();
        assert!(matches!(err, ClaraError::Workload(_)), "{err}");
    }

    #[test]
    fn exit_code_table_is_complete_and_ordered() {
        let codes: Vec<u8> = exit_codes::TABLE.iter().map(|(c, _)| *c).collect();
        assert_eq!(codes, vec![0, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let table = exit_codes::table();
        assert_eq!(table.lines().count(), exit_codes::TABLE.len());
        assert!(table.contains("  8  sweep/validate finished with some cells failed"));
    }

    /// The daemon's wire reply codes for pipeline failures mirror the
    /// CLI's exit codes one-for-one, so clients can treat a daemon
    /// reply and a one-shot CLI exit identically.
    #[test]
    fn serve_reply_codes_mirror_exit_codes() {
        use serve::reply_codes as rc;
        for (exit, reply) in [
            (exit_codes::OK, rc::OK),
            (exit_codes::USAGE, rc::USAGE),
            (exit_codes::IO, rc::IO),
            (exit_codes::FRONTEND, rc::FRONTEND),
            (exit_codes::LOWER, rc::LOWER),
            (exit_codes::PREDICT, rc::PREDICT),
            (exit_codes::WORKLOAD, rc::WORKLOAD),
            (exit_codes::SWEEP_PARTIAL, rc::SWEEP_PARTIAL),
            (exit_codes::SWEEP_FAILED, rc::SWEEP_FAILED),
        ] {
            assert_eq!(exit, reply);
        }
        // Serve-layer degradations live above the exit-code range so
        // the two tables can never collide.
        let max_exit = exit_codes::TABLE.iter().map(|(c, _)| *c).max().unwrap();
        for (code, _) in rc::TABLE.iter().filter(|(c, _)| *c >= 20) {
            assert!(*code > max_exit);
        }
    }

    #[test]
    fn with_params_roundtrip() {
        let c2 = Clara::with_params(clara().params().clone());
        assert_eq!(c2.params().nic_name, "netronome-agilio-cx40");
    }
}
