//! A minimal, allocation-light JSON reader for the serve protocol.
//!
//! The daemon cannot take a serde dependency, and the CLI's existing
//! JSON *writers* (checkpoints, telemetry) never needed a reader. The
//! protocol does: requests arrive as attacker-controllable bytes, so the
//! parser's contract is strict — it returns `Err` on anything malformed
//! and **never panics**, recurses unboundedly, or allocates
//! proportionally to a claimed (rather than actual) length. Frame size
//! is capped upstream by the codec, nesting depth is capped here.
//!
//! Numbers are held as `f64`. Replies serialize `f64` with `{:?}`,
//! which round-trips every finite double exactly through `str::parse`,
//! so a prediction forwarded over the wire stays bit-identical to the
//! in-process value (the chaos test depends on this).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting depth accepted from the wire. Protocol requests are
/// at most 3 deep; 32 leaves headroom without letting `[[[[...` recurse
/// to a stack overflow.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Object keys are sorted (BTreeMap) so serialization is canonical.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric member coerced to `u64`; rejects negatives, non-integers
    /// and values beyond 2^53 (not exactly representable).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && *n <= 9_007_199_254_740_992.0 && n.fract() == 0.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Serialize back to compact JSON. Non-finite numbers become
    /// `null` (JSON has no NaN/Infinity).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => out.push_str(&num(*n)),
            Value::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":", escape(k));
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Render an `f64` for the wire: `{:?}` round-trips finite doubles
/// exactly; non-finite values become `null`.
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Escape a string for embedding in JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b'"') {
                    return Err(format!("expected object key at byte {pos}"));
                }
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Value,
) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    if start == *pos {
        return Err(format!("expected a value at byte {start}"));
    }
    // The slice is pure ASCII by construction, so from_utf8 can't fail.
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "non-utf8 number")?;
    let n: f64 = text.parse().map_err(|_| format!("bad number `{text}`"))?;
    if !n.is_finite() {
        return Err(format!("non-finite number `{text}`"));
    }
    Ok(Value::Num(n))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogates (paired or lone) are not worth
                        // supporting in a machine protocol: reject.
                        let c = char::from_u32(code).ok_or("surrogate \\u escape")?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => return Err(format!("control byte in string at {pos}")),
            Some(_) => {
                // Consume one full UTF-8 scalar (the input is a &str,
                // so boundaries are valid by construction).
                let rest = &bytes[*pos..];
                let text = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                let c = text.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Convenience: an object builder that keeps call sites readable.
#[derive(Debug, Default)]
pub struct ObjBuilder {
    map: BTreeMap<String, Value>,
}

impl ObjBuilder {
    pub fn new() -> Self {
        ObjBuilder::default()
    }

    pub fn put(mut self, key: &str, value: Value) -> Self {
        self.map.insert(key.to_string(), value);
        self
    }

    pub fn str(self, key: &str, value: &str) -> Self {
        self.put(key, Value::Str(value.to_string()))
    }

    pub fn num(self, key: &str, value: f64) -> Self {
        if value.is_finite() {
            self.put(key, Value::Num(value))
        } else {
            self.put(key, Value::Null)
        }
    }

    pub fn uint(self, key: &str, value: u64) -> Self {
        self.put(key, Value::Num(value as f64))
    }

    pub fn bool(self, key: &str, value: bool) -> Self {
        self.put(key, Value::Bool(value))
    }

    pub fn build(self) -> Value {
        Value::Obj(self.map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_shapes() {
        let v = parse(r#"{"op":"predict","nf":"nat","rate_pps":6e4,"deadline_ms":250}"#).unwrap();
        assert_eq!(v.get("op").and_then(Value::as_str), Some("predict"));
        assert_eq!(v.get("rate_pps").and_then(Value::as_f64), Some(60_000.0));
        assert_eq!(v.get("deadline_ms").and_then(Value::as_u64), Some(250));
    }

    #[test]
    fn rejects_garbage_without_panicking() {
        for bad in [
            "", "{", "[", "\"", "{\"a\"", "{\"a\":}", "[1,]", "tru", "nul", "1e999",
            "{\"a\":1}x", "\"\\u12\"", "\"\\ud800\"", "--3", "+", "\u{7f}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_limit_stops_recursion() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn f64_round_trips_exactly() {
        for v in [0.1, 1.0 / 3.0, 6.02214076e23, f64::MIN_POSITIVE, -0.0] {
            let text = num(v);
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{text}");
        }
    }

    #[test]
    fn serialization_round_trips() {
        let v = ObjBuilder::new()
            .str("op", "ping")
            .num("x", 1.5)
            .bool("ok", true)
            .put("list", Value::Arr(vec![Value::Num(1.0), Value::Null]))
            .build();
        let text = v.to_json();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn escapes_control_and_quote_bytes() {
        let v = Value::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }
}
