//! Prometheus text exposition (version 0.0.4) for the daemon.
//!
//! The whole metrics surface renders from one [`StatsSnapshot`] — the
//! same struct behind the `stats` op — so the `metrics` op, the
//! `--metrics-addr` HTTP sidecar, and the JSON stats can never
//! disagree about what a counter means. There is no separate registry
//! object to keep in sync; the snapshot *is* the registry.
//!
//! Conventions follow the exposition format:
//! * counters end in `_total`,
//! * latency summaries are emitted as `summary` families in seconds
//!   (`{quantile="0.5"}` samples plus `_sum`/`_count`), converted from
//!   the microsecond histograms,
//! * trailing-window rates are gauges with a `window` label.

use std::fmt::Write as _;

use crate::stats::StatsSnapshot;
use clara_telemetry::HistSummary;

/// The HTTP `Content-Type` for this exposition.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

fn counter(out: &mut String, name: &str, help: &str, v: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {v}");
}

fn gauge(out: &mut String, name: &str, help: &str, v: f64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {v}");
}

/// A gauge family with one sample per trailing window.
fn windowed_gauge(out: &mut String, name: &str, help: &str, per_window: &[(u64, f64)]) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    for (window_s, v) in per_window {
        let _ = writeln!(out, "{name}{{window=\"{window_s}s\"}} {v}");
    }
}

fn seconds(us: u64) -> f64 {
    us as f64 / 1e6
}

/// A summary family from a microsecond histogram summary.
fn summary(out: &mut String, name: &str, help: &str, h: &HistSummary) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} summary");
    for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99), ("1", h.max)] {
        let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {}", seconds(v));
    }
    let _ = writeln!(out, "{name}_sum {}", seconds(h.sum));
    let _ = writeln!(out, "{name}_count {}", h.count);
}

/// Render the full exposition text.
pub fn render(snap: &StatsSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    counter(&mut out, "clara_serve_conns_accepted_total", "Connections accepted.", snap.conns_accepted);
    counter(&mut out, "clara_serve_conns_rejected_total", "Connections refused at the cap.", snap.conns_rejected);
    counter(&mut out, "clara_serve_requests_total", "Parsed request frames, any op.", snap.requests);
    counter(&mut out, "clara_serve_accepted_total", "Jobs admitted to the queue.", snap.accepted);
    counter(&mut out, "clara_serve_completed_total", "Jobs completed with code ok.", snap.completed);
    counter(&mut out, "clara_serve_shed_total", "Jobs shed by admission control.", snap.shed);
    counter(&mut out, "clara_serve_timed_out_total", "Jobs that hit their deadline.", snap.timed_out);
    counter(&mut out, "clara_serve_panicked_total", "Jobs whose worker panicked.", snap.panicked);
    counter(&mut out, "clara_serve_errored_total", "Jobs that finished with any other non-ok reply.", snap.errored);
    counter(&mut out, "clara_serve_workers_respawned_total", "Workers respawned by the supervisor.", snap.workers_respawned);
    counter(&mut out, "clara_serve_protocol_errors_total", "Frames rejected as protocol errors.", snap.protocol_errors);
    counter(&mut out, "clara_serve_shutdown_rejects_total", "Requests refused while draining.", snap.shutdown_rejects);
    counter(&mut out, "clara_serve_chaos_truncated_replies_total", "Replies cut short by chaos mode.", snap.chaos_truncated_replies);
    counter(&mut out, "clara_serve_prepared_hits_total", "Session prepared-state cache hits.", snap.prepared_hits);
    counter(&mut out, "clara_serve_prepared_misses_total", "Session prepared-state cache misses.", snap.prepared_misses);
    counter(&mut out, "clara_serve_quarantined_total", "Session cache entries quarantined after panics.", snap.quarantined);
    counter(&mut out, "clara_serve_sim_memo_hits_total", "Stage-cost memo hits across sessions.", snap.sim_memo_hits);
    counter(&mut out, "clara_serve_sim_memo_misses_total", "Stage-cost memo misses across sessions.", snap.sim_memo_misses);
    gauge(&mut out, "clara_serve_sessions", "Live (NF, NIC) sessions.", snap.sessions as f64);
    gauge(&mut out, "clara_serve_sim_cost_views", "Interned stage-cost fingerprint views.", snap.sim_cost_views as f64);
    gauge(&mut out, "clara_serve_queue_depth", "Jobs currently queued.", snap.queue_depth as f64);
    gauge(&mut out, "clara_serve_queue_capacity", "Bounded queue capacity.", snap.queue_capacity as f64);
    gauge(&mut out, "clara_serve_workers", "Configured worker slots.", snap.workers as f64);
    gauge(&mut out, "clara_serve_workers_live", "Worker threads currently alive.", snap.workers_live as f64);
    gauge(&mut out, "clara_serve_inflight", "Jobs currently being processed.", snap.inflight as f64);
    gauge(&mut out, "clara_serve_uptime_seconds", "Seconds since the daemon started.", snap.uptime_s as f64);
    let windows = |per: &[f64; 3]| -> Vec<(u64, f64)> {
        vec![(1, per[0]), (10, per[1]), (60, per[2])]
    };
    windowed_gauge(&mut out, "clara_serve_req_rate", "Requests per second over the trailing window.", &windows(&snap.req_per_s));
    windowed_gauge(&mut out, "clara_serve_shed_rate", "Sheds per second over the trailing window.", &windows(&snap.shed_per_s));
    windowed_gauge(&mut out, "clara_serve_complete_rate", "Completions per second over the trailing window.", &windows(&snap.complete_per_s));
    let memo: Vec<(u64, f64)> = [(1u64, 0usize), (10, 1), (60, 2)]
        .iter()
        .filter_map(|&(w, i)| snap.memo_hit_rate[i].map(|f| (w, f)))
        .collect();
    if !memo.is_empty() {
        windowed_gauge(&mut out, "clara_serve_sim_memo_hit_rate", "Sim-memo hit fraction over the trailing window.", &memo);
    }
    summary(&mut out, "clara_serve_service_time_seconds", "Worker wall time per job.", &snap.service_us);
    summary(&mut out, "clara_serve_queue_wait_seconds", "Admission-to-dequeue wait per job.", &snap.queue_wait_us);
    summary(&mut out, "clara_serve_solve_time_seconds", "ILP solve time per prediction.", &snap.solve_us);
    summary(&mut out, "clara_serve_sim_time_seconds", "Validation simulator time per job.", &snap.sim_us);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_has_the_core_families_and_parses_line_wise() {
        let snap = StatsSnapshot {
            requests: 7,
            completed: 3,
            queue_depth: 2,
            req_per_s: [1.0, 0.5, 0.1],
            memo_hit_rate: [None, Some(0.9), None],
            service_us: HistSummary { count: 3, sum: 3_000_000, p50: 900_000, p90: 1_100_000, p99: 1_100_000, max: 1_200_000 },
            ..StatsSnapshot::default()
        };
        let text = render(&snap);
        assert!(text.contains("clara_serve_requests_total 7\n"));
        assert!(text.contains("clara_serve_queue_depth 2\n"));
        assert!(text.contains("clara_serve_req_rate{window=\"1s\"} 1\n"));
        assert!(text.contains("clara_serve_sim_memo_hit_rate{window=\"10s\"} 0.9\n"));
        assert!(text.contains("clara_serve_service_time_seconds{quantile=\"0.5\"} 0.9\n"));
        assert!(text.contains("clara_serve_service_time_seconds_count 3\n"));
        // Every non-comment line is `name[{labels}] value` with a
        // parseable float value — the shape the CI checker relies on.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (metric, value) = line.rsplit_once(' ').expect("space-separated sample");
            assert!(!metric.is_empty());
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
        }
        // Each TYPE is declared at most once per family.
        let mut types: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("# TYPE "))
            .collect();
        let before = types.len();
        types.sort_unstable();
        types.dedup();
        assert_eq!(types.len(), before, "duplicate TYPE lines");
    }
}
