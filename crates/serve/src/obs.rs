//! Live observability state for the daemon: latency histograms,
//! trailing-window rates, and the flight recorder.
//!
//! One [`ServeObs`] lives in the server's shared state. Everything in
//! it is recorded wait-free from connection and worker threads
//! (relaxed atomics, no locks — see `clara_telemetry::hist`,
//! `rates`, and `flight` for the per-structure guarantees), and read
//! by the `stats` / `events` / `metrics` ops and the drain-time
//! telemetry flush. None of it feeds back into predictions: an
//! instrumented daemon serves bit-identical results (re-asserted by
//! the chaos suite with full instrumentation on).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use clara_telemetry::{EventKind, FlightRecorder, Histogram, RateWindows};

/// The daemon's live instrumentation. All recording is wait-free.
pub struct ServeObs {
    started: Instant,
    /// Wall time a worker spent on a job, µs — *every* job a worker
    /// ran, whatever its reply code (an errored job occupies a worker
    /// just the same, and the `retry_after_ms` hint is about queue
    /// drain speed). The `completed`-only mean lives in `ServeStats`.
    pub service_us: Histogram,
    /// Admission → dequeue wait, µs.
    pub queue_wait_us: Histogram,
    /// Time inside the ILP solve path (predict/sweep cells), µs.
    pub solve_us: Histogram,
    /// Time inside the validation simulator, µs.
    pub sim_us: Histogram,
    /// Parsed request frames (any op), for trailing req/s.
    pub req_rate: RateWindows,
    /// Jobs shed by admission control, for trailing shed/s.
    pub shed_rate: RateWindows,
    /// Jobs completed OK, for trailing complete/s.
    pub complete_rate: RateWindows,
    /// Sim-memo hits/misses, sampled as deltas of the cumulative
    /// session totals at snapshot time (see [`ServeObs::sample_memo`]).
    pub memo_hit_rate: RateWindows,
    pub memo_miss_rate: RateWindows,
    memo_hits_seen: AtomicU64,
    memo_misses_seen: AtomicU64,
    /// The event ring; capacity 0 when disabled.
    pub recorder: FlightRecorder,
    req_ids: AtomicU64,
}

impl std::fmt::Debug for ServeObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeObs")
            .field("recorder", &self.recorder)
            .finish_non_exhaustive()
    }
}

impl ServeObs {
    pub fn new(flight_capacity: usize) -> Self {
        ServeObs {
            started: Instant::now(),
            service_us: Histogram::new(),
            queue_wait_us: Histogram::new(),
            solve_us: Histogram::new(),
            sim_us: Histogram::new(),
            req_rate: RateWindows::new(),
            shed_rate: RateWindows::new(),
            complete_rate: RateWindows::new(),
            memo_hit_rate: RateWindows::new(),
            memo_miss_rate: RateWindows::new(),
            memo_hits_seen: AtomicU64::new(0),
            memo_misses_seen: AtomicU64::new(0),
            recorder: FlightRecorder::new(flight_capacity),
            req_ids: AtomicU64::new(0),
        }
    }

    /// Unique id for a work request (flight-recorder correlation key).
    pub fn next_req_id(&self) -> u64 {
        self.req_ids.fetch_add(1, Ordering::Relaxed) + 1
    }

    pub fn uptime_s(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Feed the memo-rate windows from the *cumulative* session totals:
    /// the delta since the last sample is credited to the current
    /// second. Called wherever the totals are already being summed (the
    /// stats/metrics snapshot path), so the hot path never pays for it;
    /// between samples the deltas simply batch up.
    pub fn sample_memo(&self, hits_total: u64, misses_total: u64) {
        let prev = self.memo_hits_seen.swap(hits_total, Ordering::Relaxed);
        if hits_total > prev {
            self.memo_hit_rate.record(hits_total - prev);
        }
        let prev = self.memo_misses_seen.swap(misses_total, Ordering::Relaxed);
        if misses_total > prev {
            self.memo_miss_rate.record(misses_total - prev);
        }
    }

    /// Shorthand used by the serving layer's instrumentation points.
    #[inline]
    pub fn event(&self, kind: EventKind, code: u8, req: u64, val: u64) {
        self.recorder.record(kind, code as u16, req, val);
    }
}

/// Sim-memo hit fraction over a trailing window, from the two sampled
/// rate rings. `None` when the window saw no memo traffic.
pub fn memo_hit_fraction(obs: &ServeObs, window_s: u64) -> Option<f64> {
    let hits = obs.memo_hit_rate.count(window_s);
    let misses = obs.memo_miss_rate.count(window_s);
    let total = hits + misses;
    if total == 0 {
        None
    } else {
        Some(hits as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn req_ids_are_unique_and_nonzero() {
        let obs = ServeObs::new(0);
        let a = obs.next_req_id();
        let b = obs.next_req_id();
        assert!(a > 0 && b > a);
    }

    #[test]
    fn memo_sampling_credits_deltas_once() {
        let obs = ServeObs::new(0);
        obs.sample_memo(10, 2);
        obs.sample_memo(10, 2); // no change: no new events
        obs.sample_memo(25, 3);
        // All samples land in the current second; windows see totals.
        assert_eq!(obs.memo_hit_rate.count(60), 25);
        assert_eq!(obs.memo_miss_rate.count(60), 3);
        let frac = memo_hit_fraction(&obs, 60).unwrap();
        assert!((frac - 25.0 / 28.0).abs() < 1e-9);
    }

    #[test]
    fn memo_fraction_is_none_without_traffic() {
        let obs = ServeObs::new(0);
        assert_eq!(memo_hit_fraction(&obs, 60), None);
    }
}
