//! The daemon: accept loop, bounded job queue, panic-isolated worker
//! pool, session caches, and graceful drain.
//!
//! # Failure envelope
//!
//! Every way a request can go wrong maps to a *distinct structured
//! reply* (see [`crate::protocol::reply_codes`]) — the daemon never
//! answers a live connection with silence and never falls over from one
//! request's misbehavior:
//!
//! * **Overload.** Admission control bounds memory: a full queue sheds
//!   the request immediately with `overloaded` and a `retry_after_ms`
//!   hint derived from observed service times. Nothing blocks, nothing
//!   accumulates.
//! * **Deadlines.** Each job arms a wall-clock deadline at admission.
//!   It is threaded cooperatively into the ILP solver
//!   ([`RunDeadline`]) and the simulator ([`Watchdog`]), so an
//!   expensive cell stops mid-solve; a job that already expired in the
//!   queue is answered without starting.
//! * **Panics.** Work runs under `catch_unwind`: the poisoned request
//!   gets a `worker-panicked` reply and its session cache entry is
//!   quarantined. A worker that dies *outside* the per-job catch (chaos
//!   kill) is respawned by its supervisor slot.
//! * **Protocol abuse.** Frames are length-checked before allocation,
//!   reads time out, and malformed JSON is a typed reply, not a panic.
//! * **Drain.** Shutdown (request, [`Server::shutdown`], or SIGTERM)
//!   stops the accept loop, sheds new work with `shutting-down`,
//!   finishes (or deadlines out) everything already admitted, then
//!   flushes counters to telemetry.

use std::collections::{HashMap, VecDeque};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::chaos::{Chaos, ChaosConfig};
use crate::json::{ObjBuilder, Value};
use crate::metrics;
use crate::obs::{memo_hit_fraction, ServeObs};
use crate::protocol::{
    self, read_frame, reply_codes, write_frame, FrameError, Reply, Request, Source,
};
use crate::stats::{ServeStats, StatsSnapshot};
use clara_telemetry::EventKind;
use clara_lnic::{profiles, Lnic};
use clara_microbench::{extract_parameters, NicParameters};
use clara_nicsim::Watchdog;
use clara_predict::{
    run_validation_sweep, NfSession, PredictError, PredictOptions, Prediction, RunClass,
    RunDeadline, SessionBuildError, ValidationConfig, ValidationResult,
};
use clara_workload::WorkloadProfile;

/// Server configuration. The defaults favor bounded resource use over
/// throughput; benchmarks override them explicitly.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Worker threads; `0` = half the cores, at least 2.
    pub workers: usize,
    /// Bounded job queue capacity; beyond it, requests are shed.
    pub queue_cap: usize,
    /// Largest accepted frame, bytes.
    pub max_frame: usize,
    /// Per-read socket timeout; an idle or stalled peer is closed after
    /// this long. `0` disables (not recommended outside tests).
    pub read_timeout_ms: u64,
    /// Deadline applied to requests that don't set their own.
    pub default_deadline_ms: Option<u64>,
    /// Maximum concurrent connections; excess are refused with an
    /// `overloaded` reply at accept time.
    pub max_conns: usize,
    /// Fault injection (`clara serve --chaos <seed>`).
    pub chaos: Option<ChaosConfig>,
    /// Where to flush the final telemetry report at drain.
    pub telemetry_path: Option<std::path::PathBuf>,
    /// Install a SIGTERM/SIGINT handler that triggers graceful drain
    /// (the CLI sets this; in-process tests don't).
    pub handle_sigterm: bool,
    /// Flight-recorder ring capacity in events; `0` disables recording
    /// entirely (the `record` call returns without touching memory).
    pub flight_capacity: usize,
    /// Where to dump the flight recorder as JSONL on a worker panic
    /// and at drain. `None` keeps the ring queryable via the `events`
    /// op but never writes a file.
    pub flight_path: Option<std::path::PathBuf>,
    /// Optional HTTP/1.1 sidecar serving `GET /metrics` (Prometheus
    /// text exposition) on this address; port 0 picks a free port.
    pub metrics_addr: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_cap: 16,
            max_frame: protocol::DEFAULT_MAX_FRAME,
            read_timeout_ms: 5_000,
            default_deadline_ms: None,
            max_conns: 128,
            chaos: None,
            telemetry_path: None,
            handle_sigterm: false,
            flight_capacity: 256,
            flight_path: None,
            metrics_addr: None,
        }
    }
}

/// Why the server could not start.
#[derive(Debug)]
pub enum ServeError {
    /// Binding the listen address failed.
    Bind(String, std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind(addr, e) => write!(f, "cannot bind {addr}: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One admitted unit of work.
struct Job {
    /// Flight-recorder correlation id, unique per work request.
    id: u64,
    request: Request,
    reply_tx: mpsc::Sender<Reply>,
    /// Admission time, for the queue-wait histogram.
    enqueued_at: Instant,
    /// Wall-clock deadline armed at admission (`None` = unlimited).
    deadline_at: Option<Instant>,
    /// Shared force-cancel token (raised only on hard abort).
    cancel: Arc<AtomicBool>,
}

impl Job {
    fn expired(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
            || self.deadline_at.is_some_and(|at| Instant::now() >= at)
    }

    /// The solver-facing deadline: remaining budget plus the cancel
    /// token.
    fn run_deadline(&self) -> RunDeadline {
        let base = match self.deadline_at {
            Some(at) => RunDeadline::within(at.saturating_duration_since(Instant::now())),
            None => RunDeadline::none(),
        };
        base.with_cancel(Arc::clone(&self.cancel))
    }

    /// Remaining budget in whole milliseconds, for APIs that take
    /// `deadline_ms` (per-cell solver budgets in validation).
    fn remaining_ms(&self) -> Option<u64> {
        self.deadline_at
            .map(|at| at.saturating_duration_since(Instant::now()).as_millis() as u64)
    }

    /// The simulator-facing deadline for this job.
    fn watchdog(&self) -> Watchdog {
        Watchdog {
            deadline: self.deadline_at,
            cancel: Some(Arc::clone(&self.cancel)),
            ..Watchdog::default()
        }
    }
}

/// Rejection reasons from the bounded queue.
enum PushError {
    Full { capacity: usize },
    Closed,
}

/// A bounded MPMC job queue: `try_push` never blocks (that's the
/// admission-control contract), `pop` blocks until work or close.
struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(QueueState { jobs: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn try_push(&self, job: Job) -> Result<(), PushError> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.jobs.len() >= self.capacity {
            return Err(PushError::Full { capacity: self.capacity });
        }
        state.jobs.push_back(job);
        self.ready.notify_one();
        Ok(())
    }

    /// Next job, or `None` once the queue is closed *and* drained.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Close admission; queued jobs still drain.
    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        self.ready.notify_all();
    }

    fn depth(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).jobs.len()
    }
}

/// A resolved NIC target: the hardware model plus its extracted
/// parameters, cached so repeat requests skip re-extraction.
struct Target {
    lnic: Lnic,
    params: Arc<NicParameters>,
}

/// State shared by acceptor, connection threads, and workers.
struct Shared {
    config: ServeConfig,
    queue: JobQueue,
    stats: ServeStats,
    obs: ServeObs,
    chaos: Option<Chaos>,
    draining: AtomicBool,
    force_cancel: Arc<AtomicBool>,
    conns: AtomicUsize,
    workers: usize,
    workers_live: AtomicUsize,
    inflight: AtomicUsize,
    targets: Mutex<HashMap<String, Arc<Target>>>,
    sessions: Mutex<HashMap<(String, String), Arc<NfSession>>>,
}

/// Decrements a gauge on drop, so worker deaths (including panics
/// unwinding past the loop) keep `workers_live` honest.
struct GaugeGuard<'a>(&'a AtomicUsize);

impl<'a> GaugeGuard<'a> {
    fn enter(gauge: &'a AtomicUsize) -> Self {
        gauge.fetch_add(1, Ordering::SeqCst);
        GaugeGuard(gauge)
    }
}

impl Drop for GaugeGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running daemon. Dropping without [`Server::join`] leaves threads
/// running until process exit; the CLI always joins.
pub struct Server {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    acceptor: Option<thread::JoinHandle<()>>,
    metrics_thread: Option<thread::JoinHandle<()>>,
    slots: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the worker pool and accept loop, and return.
    pub fn start(config: ServeConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServeError::Bind(config.addr.clone(), e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Bind(config.addr.clone(), e))?;
        if config.handle_sigterm {
            sig::install();
        }
        let workers = match config.workers {
            0 => thread::available_parallelism()
                .map(|n| (n.get() / 2).max(2))
                .unwrap_or(2),
            n => n,
        };
        let metrics_listener = match &config.metrics_addr {
            Some(addr) => Some(
                TcpListener::bind(addr).map_err(|e| ServeError::Bind(addr.clone(), e))?,
            ),
            None => None,
        };
        let metrics_addr = metrics_listener.as_ref().and_then(|l| l.local_addr().ok());
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_cap),
            stats: ServeStats::default(),
            obs: ServeObs::new(config.flight_capacity),
            chaos: config.chaos.clone().map(Chaos::new),
            draining: AtomicBool::new(false),
            force_cancel: Arc::new(AtomicBool::new(false)),
            conns: AtomicUsize::new(0),
            workers,
            workers_live: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            targets: Mutex::new(HashMap::new()),
            sessions: Mutex::new(HashMap::new()),
            config,
        });
        let slots = (0..workers)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("clara-serve-slot-{slot}"))
                    .spawn(move || worker_slot(shared, slot))
                    .expect("spawn worker slot")
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("clara-serve-accept".to_string())
                .spawn(move || accept_loop(shared, listener))
                .expect("spawn acceptor")
        };
        let metrics_thread = metrics_listener.map(|listener| {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("clara-serve-metrics".to_string())
                .spawn(move || metrics_loop(shared, listener))
                .expect("spawn metrics sidecar")
        });
        Ok(Server {
            addr,
            metrics_addr,
            shared,
            acceptor: Some(acceptor),
            metrics_thread,
            slots,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The metrics sidecar's bound address, when one was configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Pre-populate the target cache under the protocol name requests
    /// use (e.g. `"netronome"`), skipping parameter extraction for the
    /// first request; the CLI seeds its `--nic` this way.
    pub fn seed_target(&self, name: &str, lnic: Lnic, params: Arc<NicParameters>) {
        self.shared
            .targets
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), Arc::new(Target { lnic, params }));
    }

    /// Current counters (cache fields included).
    pub fn stats(&self) -> StatsSnapshot {
        snapshot_with_cache(&self.shared)
    }

    /// Whether a drain is underway.
    pub fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Begin a graceful drain (same as a `shutdown` request).
    pub fn shutdown(&self) {
        initiate_drain(&self.shared);
    }

    /// Wait for the drain to finish: accept loop stopped, queued jobs
    /// done, connections closed. Returns the final counters after
    /// flushing them to the configured telemetry path.
    pub fn join(mut self) -> StatsSnapshot {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for slot in self.slots.drain(..) {
            let _ = slot.join();
        }
        // The sidecar polls the draining flag, so it exits promptly
        // once the acceptor has.
        if let Some(metrics) = self.metrics_thread.take() {
            let _ = metrics.join();
        }
        // Connection threads unwind on their own (replies written, then
        // the drain check closes them); read timeouts bound the wait.
        let grace = Duration::from_millis(self.shared.config.read_timeout_ms.max(250) * 2);
        let waited = Instant::now();
        while self.shared.conns.load(Ordering::SeqCst) > 0 && waited.elapsed() < grace {
            thread::sleep(Duration::from_millis(5));
        }
        dump_flight(&self.shared);
        let snapshot = snapshot_with_cache(&self.shared);
        if let Some(path) = &self.shared.config.telemetry_path {
            let report = snapshot.into_report();
            if let Err(e) = std::fs::write(path, report.to_json()) {
                eprintln!("clara-serve: telemetry flush to {} failed: {e}", path.display());
            }
        }
        snapshot
    }
}

/// Mark the daemon as draining exactly once: stop admissions, let the
/// queue drain, let the accept loop exit.
fn initiate_drain(shared: &Shared) {
    if !shared.draining.swap(true, Ordering::SeqCst) {
        shared.obs.event(EventKind::Drain, 0, shared.queue.depth() as u64, 0);
        shared.queue.close();
    }
}

/// Write the flight-recorder ring as JSONL (temp file + rename, like
/// the telemetry flush), if a dump path is configured. Called on every
/// worker-panic reply and at drain; the last write wins, which is the
/// one with the most history.
fn dump_flight(shared: &Shared) {
    let Some(path) = &shared.config.flight_path else { return };
    let tmp = path.with_extension("tmp");
    if let Err(e) = std::fs::write(&tmp, shared.obs.recorder.to_jsonl()) {
        eprintln!("clara-serve: flight dump to {} failed: {e}", tmp.display());
        return;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        eprintln!("clara-serve: flight dump rename to {} failed: {e}", path.display());
    }
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    let _ = listener.set_nonblocking(true);
    loop {
        if sig::seen() {
            initiate_drain(&shared);
        }
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                if shared.conns.load(Ordering::SeqCst) >= shared.config.max_conns {
                    shared.stats.bump(&shared.stats.conns_rejected);
                    let reply = Reply::err(reply_codes::OVERLOADED, "connection limit reached");
                    let mut stream = stream;
                    let _ = write_frame(&mut stream, reply.json.as_bytes());
                    continue;
                }
                shared.stats.bump(&shared.stats.conns_accepted);
                shared.conns.fetch_add(1, Ordering::SeqCst);
                let shared = Arc::clone(&shared);
                let _ = thread::Builder::new()
                    .name("clara-serve-conn".to_string())
                    .spawn(move || serve_connection(shared, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(20));
            }
            Err(_) => thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn serve_connection(shared: Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    if shared.config.read_timeout_ms > 0 {
        let _ = stream
            .set_read_timeout(Some(Duration::from_millis(shared.config.read_timeout_ms)));
    }
    loop {
        let reply = match read_frame(&mut stream, shared.config.max_frame) {
            Ok(None) => break,
            // Idle or stalled peer: a slow loris cannot hold a thread.
            Err(FrameError::TimedOut) => break,
            Err(FrameError::Truncated) => {
                shared.stats.bump(&shared.stats.protocol_errors);
                break;
            }
            Err(FrameError::TooLarge { declared, max }) => {
                shared.stats.bump(&shared.stats.protocol_errors);
                let reply = Reply::err(
                    reply_codes::FRAME_TOO_LARGE,
                    &format!("declared {declared} bytes, cap is {max}"),
                );
                let _ = write_reply(&shared, &mut stream, &reply);
                break;
            }
            Err(FrameError::Io(_)) => break,
            Ok(Some(bytes)) => {
                shared.stats.bump(&shared.stats.requests);
                shared.obs.req_rate.record(1);
                match protocol::parse_request(&bytes) {
                    Err(e) => {
                        shared.stats.bump(&shared.stats.protocol_errors);
                        Reply::err(e.code, &e.message)
                    }
                    Ok(request) if request.is_inline() => inline_reply(&shared, &request),
                    Ok(request) => admit_and_wait(&shared, request),
                }
            }
        };
        if write_reply(&shared, &mut stream, &reply).is_err() {
            break;
        }
        // Once draining, close after the in-flight reply: connections
        // converge to zero so `join` can return.
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
    }
    shared.conns.fetch_sub(1, Ordering::SeqCst);
}

/// Write a reply frame, with chaos-mode truncation: the frame is cut
/// mid-body and the connection poisoned, exercising client-side
/// `Truncated` handling.
fn write_reply(
    shared: &Shared,
    stream: &mut TcpStream,
    reply: &Reply,
) -> std::io::Result<()> {
    let body = reply.json.as_bytes();
    if let Some(chaos) = &shared.chaos {
        if chaos.truncate_reply() {
            shared.stats.bump(&shared.stats.chaos_truncated_replies);
            let len = u32::try_from(body.len()).unwrap_or(u32::MAX).to_be_bytes();
            stream.write_all(&len)?;
            stream.write_all(&body[..body.len() / 2])?;
            stream.flush()?;
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "chaos: reply truncated",
            ));
        }
    }
    write_frame(stream, body)
}

/// Ops the connection thread answers without queue admission.
fn inline_reply(shared: &Shared, request: &Request) -> Reply {
    match request {
        Request::Ping => Reply::ok(
            ObjBuilder::new()
                .str("op", "ping")
                .bool("draining", shared.draining.load(Ordering::SeqCst)),
        ),
        Request::Stats => {
            let snap = snapshot_with_cache(shared);
            Reply::ok(
                snap.fill(ObjBuilder::new())
                    .str("op", "stats")
                    .uint("avg_service_us", shared.stats.avg_service_us())
                    .bool("draining", shared.draining.load(Ordering::SeqCst)),
            )
        }
        Request::Events { limit } => {
            let events: Vec<Value> = shared
                .obs
                .recorder
                .tail(*limit)
                .iter()
                .map(|e| {
                    ObjBuilder::new()
                        .uint("seq", e.seq)
                        .uint("ts_us", e.ts_us)
                        .str("event", e.kind.name())
                        .uint("code", u64::from(e.code))
                        .uint("req", e.a)
                        .uint("val", e.b)
                        .build()
                })
                .collect();
            Reply::ok(
                ObjBuilder::new()
                    .str("op", "events")
                    .uint("recorded", shared.obs.recorder.recorded())
                    .uint("capacity", shared.obs.recorder.capacity() as u64)
                    .put("events", Value::Arr(events)),
            )
        }
        Request::Metrics => {
            let snap = snapshot_with_cache(shared);
            Reply::ok(
                ObjBuilder::new()
                    .str("op", "metrics")
                    .str("content_type", metrics::CONTENT_TYPE)
                    .str("text", &metrics::render(&snap)),
            )
        }
        Request::Shutdown => {
            initiate_drain(shared);
            Reply::ok(ObjBuilder::new().str("op", "shutdown").bool("draining", true))
        }
        _ => Reply::err(reply_codes::USAGE, "not an inline op"),
    }
}

/// Admission control: push the job or shed it, then wait for the
/// worker's reply.
fn admit_and_wait(shared: &Shared, request: Request) -> Reply {
    if shared.draining.load(Ordering::SeqCst) {
        shared.stats.bump(&shared.stats.shutdown_rejects);
        return Reply::err(reply_codes::SHUTTING_DOWN, "daemon is draining");
    }
    let id = shared.obs.next_req_id();
    let deadline_ms = request.deadline_ms().or(shared.config.default_deadline_ms);
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        id,
        request,
        reply_tx,
        enqueued_at: Instant::now(),
        deadline_at: deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms)),
        cancel: Arc::clone(&shared.force_cancel),
    };
    match shared.queue.try_push(job) {
        Ok(()) => {
            shared.stats.bump(&shared.stats.accepted);
            shared
                .obs
                .event(EventKind::Admit, 0, id, shared.queue.depth() as u64);
            match reply_rx.recv() {
                Ok(reply) => reply,
                // The worker died between popping the job and replying;
                // the supervisor is respawning it.
                Err(_) => {
                    shared.stats.bump(&shared.stats.panicked);
                    shared.obs.event(EventKind::Panic, reply_codes::PANICKED, id, 0);
                    Reply::err(reply_codes::PANICKED, "worker lost before replying")
                }
            }
        }
        Err(PushError::Full { capacity }) => {
            shared.stats.bump(&shared.stats.shed);
            shared.obs.shed_rate.record(1);
            // The hint is a tail estimate, not a mean: p90 of observed
            // worker service times (25 ms prior until the histogram has
            // its first record), scaled by the backlog a retry would
            // land behind. A mean under-hints exactly when overload is
            // caused by slow outliers.
            let p90_us = shared.obs.service_us.quantile_or(0.9, 25_000);
            let backlog = (capacity as u64 + 1) * p90_us;
            let retry_after_ms = (backlog / (shared.workers as u64).max(1) / 1_000).max(1);
            shared
                .obs
                .event(EventKind::Shed, reply_codes::OVERLOADED, id, retry_after_ms);
            Reply::err_with(
                reply_codes::OVERLOADED,
                &format!("queue full ({capacity} queued)"),
                ObjBuilder::new().uint("retry_after_ms", retry_after_ms),
            )
        }
        Err(PushError::Closed) => {
            shared.stats.bump(&shared.stats.shutdown_rejects);
            shared.obs.event(EventKind::Shed, reply_codes::SHUTTING_DOWN, id, 0);
            Reply::err(reply_codes::SHUTTING_DOWN, "daemon is draining")
        }
    }
}

/// A supervisor slot: spawn a worker, and if it dies by panic (chaos
/// kill or an escape from the per-job catch), spawn a replacement. A
/// clean return means the queue closed and drained.
fn worker_slot(shared: Arc<Shared>, slot: usize) {
    loop {
        let worker_shared = Arc::clone(&shared);
        let handle = thread::Builder::new()
            .name(format!("clara-serve-worker-{slot}"))
            .spawn(move || worker_loop(&worker_shared, slot));
        let handle = match handle {
            Ok(h) => h,
            Err(_) => {
                thread::sleep(Duration::from_millis(50));
                continue;
            }
        };
        match handle.join() {
            Ok(()) => return,
            Err(_) => {
                shared.stats.bump(&shared.stats.workers_respawned);
                shared.obs.event(EventKind::Respawn, 0, slot as u64, 0);
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, slot: usize) {
    let _live = GaugeGuard::enter(&shared.workers_live);
    while let Some(job) = shared.queue.pop() {
        let wait_us = job.enqueued_at.elapsed().as_micros() as u64;
        shared.obs.queue_wait_us.record(wait_us);
        shared.obs.event(EventKind::Dequeue, 0, job.id, wait_us);
        let inflight = GaugeGuard::enter(&shared.inflight);
        let job_chaos = shared
            .chaos
            .as_ref()
            .map(|c| c.decide_job())
            .unwrap_or_default();
        // Service time starts before the chaos slow-down: an injected
        // stall models a genuinely slow job, and the `retry_after_ms`
        // hint must see it (the overload protocol test relies on this).
        let started = Instant::now();
        if let Some(delay) = job_chaos.slow {
            thread::sleep(delay);
        }
        let reply = process_job(shared, &job, job_chaos.panic_job);
        let code = reply.code;
        let _ = job.reply_tx.send(reply);
        let service_us = started.elapsed().as_micros() as u64;
        // Every worker-run job lands in the service histogram — an
        // errored job occupies a worker just the same; only the legacy
        // mean stays completed-only.
        shared.obs.service_us.record(service_us);
        match code {
            reply_codes::OK => {
                shared.stats.bump(&shared.stats.completed);
                shared.stats.add(&shared.stats.service_us_total, service_us);
                shared.obs.complete_rate.record(1);
                shared.obs.event(EventKind::Complete, 0, job.id, service_us);
            }
            reply_codes::DEADLINE => {
                shared.stats.bump(&shared.stats.timed_out);
                shared.obs.event(EventKind::Timeout, code, job.id, service_us);
            }
            reply_codes::PANICKED => {
                shared.stats.bump(&shared.stats.panicked);
                shared.obs.event(EventKind::Panic, code, job.id, slot as u64);
                // A panic is exactly when the recent event history is
                // wanted on disk: dump the ring now, not only at drain.
                dump_flight(shared);
            }
            other => {
                shared.stats.bump(&shared.stats.errored);
                shared.obs.event(EventKind::Complete, other, job.id, service_us);
            }
        }
        drop(inflight);
        if job_chaos.kill_worker {
            // Deliberately outside the per-job catch: the reply is
            // already sent; this exercises the supervisor respawn path.
            panic!("chaos: worker killed after job");
        }
    }
}

fn process_job(shared: &Shared, job: &Job, chaos_panic: bool) -> Reply {
    if job.expired() {
        return Reply::err(reply_codes::DEADLINE, "deadline expired while queued");
    }
    match &job.request {
        Request::Predict { source, nic, workload, inject_panic, .. } => {
            let (_target, session) = match resolve(shared, source, nic) {
                Ok(pair) => pair,
                Err(reply) => return reply,
            };
            let options = PredictOptions {
                inject_panic: *inject_panic || chaos_panic,
                ..PredictOptions::default()
            };
            let deadline = job.run_deadline();
            let solve_started = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                session.predict(workload, &options, &deadline)
            }));
            shared
                .obs
                .solve_us
                .record(solve_started.elapsed().as_micros() as u64);
            match outcome {
                Ok(Ok(prediction)) => predict_reply(source, nic, workload, &prediction),
                Ok(Err(e)) => predict_error_reply(&e),
                Err(payload) => {
                    session.quarantine(workload);
                    shared.obs.event(EventKind::Quarantine, 0, job.id, 0);
                    Reply::err(reply_codes::PANICKED, &panic_text(payload.as_ref()))
                }
            }
        }
        Request::Sweep { source, nic, workload, rates, .. } => {
            let (_target, session) = match resolve(shared, source, nic) {
                Ok(pair) => pair,
                Err(reply) => return reply,
            };
            let options = PredictOptions {
                inject_panic: chaos_panic,
                ..PredictOptions::default()
            };
            let deadline = job.run_deadline();
            let mut cells = Vec::with_capacity(rates.len());
            let (mut ok, mut failed) = (0usize, 0usize);
            for &rate in rates {
                let mut wl = workload.clone();
                wl.rate_pps = rate;
                let cell = ObjBuilder::new().num("rate_pps", rate);
                if deadline.expired() {
                    failed += 1;
                    cells.push(
                        cell.bool("ok", false).str("error", "deadline-exceeded").build(),
                    );
                    continue;
                }
                let solve_started = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    session.predict(&wl, &options, &deadline)
                }));
                shared
                    .obs
                    .solve_us
                    .record(solve_started.elapsed().as_micros() as u64);
                match outcome {
                    Ok(Ok(p)) => {
                        ok += 1;
                        cells.push(
                            cell.bool("ok", true)
                                .num("avg_latency_cycles", p.avg_latency_cycles)
                                .num("throughput_pps", p.throughput_pps)
                                .str("quality", &p.mapping.quality.to_string())
                                .build(),
                        );
                    }
                    Ok(Err(e)) => {
                        failed += 1;
                        cells.push(
                            cell.bool("ok", false).str("error", &e.to_string()).build(),
                        );
                    }
                    Err(payload) => {
                        failed += 1;
                        session.quarantine(&wl);
                        shared.obs.event(EventKind::Quarantine, 0, job.id, 0);
                        cells.push(
                            cell.bool("ok", false)
                                .str("error", &format!(
                                    "worker panicked: {}",
                                    panic_text(payload.as_ref())
                                ))
                                .build(),
                        );
                    }
                }
            }
            let body = ObjBuilder::new()
                .str("op", "sweep")
                .str("nf", &source.label())
                .str("nic", nic)
                .uint("ok_cells", ok as u64)
                .uint("failed_cells", failed as u64)
                .put("cells", Value::Arr(cells));
            match (ok, failed) {
                (_, 0) => Reply::ok(body),
                (0, _) => Reply::degraded(reply_codes::SWEEP_FAILED, body),
                _ => Reply::degraded(reply_codes::SWEEP_PARTIAL, body),
            }
        }
        Request::Validate { nf, nic, workload, rates, packets, seed, .. } => {
            let source = Source::Corpus(nf.clone());
            let Some((_, program)) = clara_nfs::by_name(nf) else {
                return Reply::err(reply_codes::USAGE, &format!("unknown nf `{nf}`"));
            };
            let (target, session) = match resolve(shared, &source, nic) {
                Ok(pair) => pair,
                Err(reply) => return reply,
            };
            let grid: Vec<WorkloadProfile> = rates
                .iter()
                .map(|&rate| {
                    let mut wl = workload.clone();
                    wl.rate_pps = rate;
                    wl
                })
                .collect();
            let config = ValidationConfig {
                threads: 1,
                packets: *packets,
                seed: *seed,
                options: PredictOptions {
                    deadline_ms: job.remaining_ms(),
                    inject_panic: chaos_panic,
                    ..PredictOptions::default()
                },
                watchdog: job.watchdog(),
                // Session-owned cost cache: repeated validate requests
                // for the same (NF, NIC) replay pure stage costs instead
                // of re-costing every cell. Bit-identical by the cache's
                // fingerprint contract.
                cost_cache: Some(Arc::clone(session.cost_cache())),
                ..ValidationConfig::default()
            };
            let sim_started = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                run_validation_sweep(
                    session.module(),
                    session.params(),
                    &target.lnic,
                    &program,
                    &grid,
                    &config,
                )
            }));
            // Validation is simulator-dominated; the whole sweep lands
            // in the sim histogram (per-stage split is future work).
            shared
                .obs
                .sim_us
                .record(sim_started.elapsed().as_micros() as u64);
            let sweep = match outcome {
                Ok(sweep) => sweep,
                Err(payload) => {
                    session.quarantine(workload);
                    shared.obs.event(EventKind::Quarantine, 0, job.id, 0);
                    return Reply::err(reply_codes::PANICKED, &panic_text(payload.as_ref()));
                }
            };
            let summary = sweep.error_summary();
            let mut cells = Vec::with_capacity(sweep.cells.len());
            for cell in &sweep.cells {
                cells.push(match cell {
                    ValidationResult::Ok(c) => ObjBuilder::new()
                        .bool("ok", true)
                        .str("label", &c.label)
                        .num("rate_pps", c.rate_pps)
                        .num("predicted_cycles", c.predicted_cycles)
                        .num("actual_cycles", c.actual_cycles)
                        .num("rel_error", c.rel_error())
                        .build(),
                    ValidationResult::Failed(why) => ObjBuilder::new()
                        .bool("ok", false)
                        .str("error", why)
                        .build(),
                });
            }
            let body = ObjBuilder::new()
                .str("op", "validate")
                .str("nf", nf)
                .str("nic", nic)
                .uint("ok_cells", summary.ok_cells as u64)
                .uint("failed_cells", summary.failed_cells as u64)
                .num("mean_rel_error", summary.mean.unwrap_or(f64::NAN))
                .num("p95_rel_error", summary.p95.unwrap_or(f64::NAN))
                .put("cells", Value::Arr(cells));
            match sweep.report.class() {
                RunClass::AllOk => Reply::ok(body),
                RunClass::Partial => Reply::degraded(reply_codes::SWEEP_PARTIAL, body),
                RunClass::AllFailed => Reply::degraded(reply_codes::SWEEP_FAILED, body),
            }
        }
        // Inline ops never reach the queue.
        _ => Reply::err(reply_codes::USAGE, "inline op reached a worker"),
    }
}

/// Resolve the NIC target and the (source, nic) session, building and
/// caching either on first use.
fn resolve(
    shared: &Shared,
    source: &Source,
    nic: &str,
) -> Result<(Arc<Target>, Arc<NfSession>), Reply> {
    let target = resolve_target(shared, nic)?;
    let key = (source.cache_text().to_string(), nic.to_string());
    if let Some(session) = shared
        .sessions
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(&key)
    {
        return Ok((target, Arc::clone(session)));
    }
    let text = match source {
        Source::Corpus(name) => match clara_nfs::by_name(name) {
            Some((text, _)) => text,
            None => {
                return Err(Reply::err(
                    reply_codes::USAGE,
                    &format!(
                        "unknown nf `{name}` (expected one of {})",
                        clara_nfs::CORPUS_NAMES.join(", ")
                    ),
                ))
            }
        },
        Source::Inline(text) => text.clone(),
    };
    // Build outside the lock: frontend+lowering must not serialize
    // unrelated sessions. A racing duplicate build is benign.
    let session = match NfSession::from_source(&text, Arc::clone(&target.params)) {
        Ok(s) => Arc::new(s),
        Err(SessionBuildError::Frontend(e)) => {
            return Err(Reply::err(reply_codes::FRONTEND, &e.to_string()))
        }
        Err(SessionBuildError::Lower(e)) => {
            return Err(Reply::err(reply_codes::LOWER, &e.to_string()))
        }
    };
    let mut sessions = shared.sessions.lock().unwrap_or_else(|e| e.into_inner());
    let entry = sessions.entry(key).or_insert_with(|| Arc::clone(&session));
    Ok((target, Arc::clone(entry)))
}

fn resolve_target(shared: &Shared, nic: &str) -> Result<Arc<Target>, Reply> {
    if let Some(target) = shared
        .targets
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(nic)
    {
        return Ok(Arc::clone(target));
    }
    let Some(lnic) = profiles::by_name(nic) else {
        return Err(Reply::err(
            reply_codes::USAGE,
            &format!("unknown nic `{nic}` (expected netronome, soc, or asic)"),
        ));
    };
    // Extraction is expensive; do it outside the lock and tolerate a
    // racing duplicate (parameters are deterministic).
    let target = Arc::new(Target {
        params: Arc::new(extract_parameters(&lnic)),
        lnic,
    });
    let mut targets = shared.targets.lock().unwrap_or_else(|e| e.into_inner());
    let entry = targets
        .entry(nic.to_string())
        .or_insert_with(|| Arc::clone(&target));
    Ok(Arc::clone(entry))
}

fn predict_reply(
    source: &Source,
    nic: &str,
    workload: &WorkloadProfile,
    p: &Prediction,
) -> Reply {
    let classes = p
        .per_class
        .iter()
        .map(|c| {
            ObjBuilder::new()
                .str("name", &c.name)
                .num("share", c.share)
                .num("payload", c.payload)
                .num("latency_cycles", c.latency_cycles)
                .build()
        })
        .collect();
    Reply::ok(
        ObjBuilder::new()
            .str("op", "predict")
            .str("nf", &source.label())
            .str("nic", nic)
            .num("rate_pps", workload.rate_pps)
            .num("avg_latency_cycles", p.avg_latency_cycles)
            .num("avg_latency_ns", p.avg_latency_ns)
            .num("throughput_pps", p.throughput_pps)
            .num("energy_nj_per_packet", p.energy_nj_per_packet)
            .str("bottleneck", &p.bottleneck)
            .str("quality", &p.mapping.quality.to_string())
            .put("per_class", Value::Arr(classes)),
    )
}

fn predict_error_reply(e: &PredictError) -> Reply {
    match e {
        PredictError::TimedOut => {
            Reply::err(reply_codes::DEADLINE, "solve deadline expired")
        }
        PredictError::Cancelled => {
            Reply::err(reply_codes::SHUTTING_DOWN, "cancelled by shutdown")
        }
        PredictError::Panicked { .. } | PredictError::Lost { .. } => {
            Reply::err(reply_codes::PANICKED, &e.to_string())
        }
        other => Reply::err(reply_codes::PREDICT, &other.to_string()),
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn snapshot_with_cache(shared: &Shared) -> StatsSnapshot {
    let mut snap = shared.stats.snapshot();
    {
        let sessions = shared.sessions.lock().unwrap_or_else(|e| e.into_inner());
        snap.sessions = sessions.len() as u64;
        for session in sessions.values() {
            let s = session.stats();
            snap.prepared_hits += s.prepared_hits;
            snap.prepared_misses += s.prepared_misses;
            snap.quarantined += s.quarantined;
            snap.sim_memo_hits += s.sim_memo_hits;
            snap.sim_memo_misses += s.sim_memo_misses;
            snap.sim_cost_views += s.sim_cost_views;
        }
    }
    let obs = &shared.obs;
    // Credit memo deltas since the last snapshot to the rate rings
    // (sampled here, where the totals were just summed anyway, so the
    // job hot path never walks the session map).
    obs.sample_memo(snap.sim_memo_hits, snap.sim_memo_misses);
    snap.queue_depth = shared.queue.depth() as u64;
    snap.queue_capacity = shared.queue.capacity as u64;
    snap.workers = shared.workers as u64;
    snap.workers_live = shared.workers_live.load(Ordering::SeqCst) as u64;
    snap.inflight = shared.inflight.load(Ordering::SeqCst) as u64;
    snap.uptime_s = obs.uptime_s();
    snap.service_us = obs.service_us.summary();
    snap.queue_wait_us = obs.queue_wait_us.summary();
    snap.solve_us = obs.solve_us.summary();
    snap.sim_us = obs.sim_us.summary();
    for (i, w) in [1u64, 10, 60].into_iter().enumerate() {
        snap.req_per_s[i] = obs.req_rate.rate(w);
        snap.shed_per_s[i] = obs.shed_rate.rate(w);
        snap.complete_per_s[i] = obs.complete_rate.rate(w);
        snap.memo_hit_rate[i] = memo_hit_fraction(obs, w);
    }
    snap
}

/// The `--metrics-addr` sidecar: a minimal HTTP/1.1 responder for
/// `GET /metrics`, one request per connection (`Connection: close`).
/// Read-only — it renders the same snapshot the `stats` op does and
/// exits when the daemon drains.
fn metrics_loop(shared: Arc<Shared>, listener: TcpListener) {
    let _ = listener.set_nonblocking(true);
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(Duration::from_millis(1_000)));
                answer_metrics_http(&shared, &mut stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(20));
            }
            Err(_) => thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn answer_metrics_http(shared: &Shared, stream: &mut TcpStream) {
    // Read the request head (bounded; anything longer is not a scrape).
    let mut buf = [0u8; 4096];
    let mut len = 0;
    while len < buf.len() {
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, body) = if method == "GET" && path == "/metrics" {
        ("200 OK", metrics::render(&snapshot_with_cache(shared)))
    } else {
        ("404 Not Found", "only GET /metrics is served\n".to_string())
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        metrics::CONTENT_TYPE,
        body.len()
    );
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// SIGTERM/SIGINT → graceful drain. Declared against libc's `signal`
/// directly (std already links libc on unix) so the daemon stays
/// dependency-free.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SEEN: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        SEEN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }

    pub fn seen() -> bool {
        SEEN.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}

    pub fn seen() -> bool {
        false
    }
}
