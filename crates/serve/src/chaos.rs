//! Deterministic fault injection for the daemon.
//!
//! `clara serve --chaos <seed>` turns every robustness path into a path
//! that actually runs: workers panic mid-job, workers die *after* a job
//! (exercising supervisor respawn, not just per-job catch), jobs slow
//! down (exercising deadlines and queue backpressure), and reply frames
//! get truncated (exercising client-side framing errors). All decisions
//! come from one seeded LCG, so a failing chaos run reproduces exactly
//! from its seed.

use std::sync::Mutex;
use std::time::Duration;

/// Per-mille probabilities for each injected fault.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// RNG seed; the whole run replays from it.
    pub seed: u64,
    /// ‰ of jobs that panic mid-prediction (per-job isolation path).
    pub panic_per_mille: u32,
    /// ‰ of jobs after which the worker thread dies (respawn path).
    pub kill_per_mille: u32,
    /// ‰ of jobs delayed before processing (deadline/backpressure path).
    pub slow_per_mille: u32,
    /// Injected delay for a slow job.
    pub slow_ms: u64,
    /// ‰ of replies cut mid-frame (client framing-error path).
    pub truncate_per_mille: u32,
}

impl ChaosConfig {
    /// Defaults aggressive enough that a few hundred requests hit every
    /// path: 1 in 8 jobs panic, 1 in 16 kill their worker, 1 in 8 run
    /// slow, 1 in 32 replies truncate.
    pub fn with_seed(seed: u64) -> Self {
        ChaosConfig {
            seed,
            panic_per_mille: 125,
            kill_per_mille: 63,
            slow_per_mille: 125,
            slow_ms: 30,
            truncate_per_mille: 31,
        }
    }
}

/// Faults chosen for one job.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobChaos {
    /// Sleep this long before processing.
    pub slow: Option<Duration>,
    /// Panic inside the prediction (caught per-job; structured reply).
    pub panic_job: bool,
    /// Panic *after* replying (escapes the per-job catch; the
    /// supervisor must respawn the worker).
    pub kill_worker: bool,
}

/// The seeded fault source shared by workers and connection threads.
#[derive(Debug)]
pub struct Chaos {
    config: ChaosConfig,
    state: Mutex<u64>,
}

impl Chaos {
    pub fn new(config: ChaosConfig) -> Self {
        // Splash the seed so small seeds don't start in a low-entropy
        // regime of the LCG.
        let state = Mutex::new(config.seed ^ 0x9e37_79b9_7f4a_7c15);
        Chaos { config, state }
    }

    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// One LCG step; returns a value uniform in `0..1000`.
    fn roll(&self) -> u32 {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *s = s
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        ((*s >> 33) % 1000) as u32
    }

    fn hit(&self, per_mille: u32) -> bool {
        self.roll() < per_mille
    }

    /// Decide this job's faults.
    pub fn decide_job(&self) -> JobChaos {
        JobChaos {
            slow: self
                .hit(self.config.slow_per_mille)
                .then(|| Duration::from_millis(self.config.slow_ms)),
            panic_job: self.hit(self.config.panic_per_mille),
            kill_worker: self.hit(self.config.kill_per_mille),
        }
    }

    /// Whether to truncate this reply frame.
    pub fn truncate_reply(&self) -> bool {
        self.hit(self.config.truncate_per_mille)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_decisions() {
        let a = Chaos::new(ChaosConfig::with_seed(7));
        let b = Chaos::new(ChaosConfig::with_seed(7));
        for _ in 0..200 {
            let (ja, jb) = (a.decide_job(), b.decide_job());
            assert_eq!(ja.panic_job, jb.panic_job);
            assert_eq!(ja.kill_worker, jb.kill_worker);
            assert_eq!(ja.slow, jb.slow);
            assert_eq!(a.truncate_reply(), b.truncate_reply());
        }
    }

    #[test]
    fn default_rates_fire_every_path() {
        let chaos = Chaos::new(ChaosConfig::with_seed(42));
        let (mut panics, mut kills, mut slows, mut cuts) = (0, 0, 0, 0);
        for _ in 0..2_000 {
            let j = chaos.decide_job();
            panics += j.panic_job as u32;
            kills += j.kill_worker as u32;
            slows += j.slow.is_some() as u32;
            cuts += chaos.truncate_reply() as u32;
        }
        assert!(panics > 50, "panic path never fired: {panics}");
        assert!(kills > 20, "kill path never fired: {kills}");
        assert!(slows > 50, "slow path never fired: {slows}");
        assert!(cuts > 10, "truncate path never fired: {cuts}");
    }
}
