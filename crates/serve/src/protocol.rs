//! Wire protocol for the `clara serve` daemon.
//!
//! Framing is the simplest thing that is robust to partial reads: a
//! 4-byte big-endian length followed by that many bytes of UTF-8 JSON.
//! The length is validated against a cap *before* any allocation, so a
//! hostile header cannot balloon memory, and a connection that stalls
//! or closes mid-frame surfaces as a typed error instead of a hang or
//! a panic.
//!
//! Every reply is a JSON object with `ok` (bool) and `code` (number).
//! Codes `0..=9` mirror [`exit codes`](crate::reply_codes) of the CLI
//! pipeline one-for-one, so a client can treat a daemon reply and a CLI
//! exit identically. Codes `20..` are serve-layer degradations —
//! overload, deadline, worker panic, protocol violations, drain — which
//! have no one-shot equivalent.

use std::io::{self, Read, Write};

use crate::json::{self, ObjBuilder, Value};
use clara_workload::WorkloadProfile;

/// Default cap on a single frame (1 MiB). Requests are tiny; replies
/// carry at most a few thousand sweep cells.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Reply codes. `0..=9` mirror `clara_core::exit_codes` exactly (a
/// cross-crate test pins this); `20..` are serve-layer degradations.
pub mod reply_codes {
    /// Success.
    pub const OK: u8 = 0;
    /// Malformed request: unknown op, bad field, unknown NF/NIC.
    pub const USAGE: u8 = 2;
    /// I/O failure while handling the request.
    pub const IO: u8 = 3;
    /// Frontend (parse/type/borrow) failure in a submitted source.
    pub const FRONTEND: u8 = 4;
    /// Lowering failure in a submitted source.
    pub const LOWER: u8 = 5;
    /// Prediction failure (mapping infeasible, etc.).
    pub const PREDICT: u8 = 6;
    /// Workload validation failure.
    pub const WORKLOAD: u8 = 7;
    /// A sweep/validate job finished with some failed cells.
    pub const SWEEP_PARTIAL: u8 = 8;
    /// A sweep/validate job finished with every cell failed.
    pub const SWEEP_FAILED: u8 = 9;

    /// Admission control shed the request (queue full). The reply
    /// carries `retry_after_ms`.
    pub const OVERLOADED: u8 = 20;
    /// The per-request deadline expired before or during the job.
    pub const DEADLINE: u8 = 21;
    /// The worker thread panicked inside this request; the worker was
    /// respawned and the request's cache entries quarantined.
    pub const PANICKED: u8 = 22;
    /// Protocol violation: unparseable JSON, missing fields, garbage
    /// framing.
    pub const PROTOCOL: u8 = 23;
    /// The declared frame length exceeds the server's cap.
    pub const FRAME_TOO_LARGE: u8 = 24;
    /// The daemon is draining and admits no new work.
    pub const SHUTTING_DOWN: u8 = 25;

    /// Every serve-layer code with its wire name, for docs and tests.
    pub const TABLE: &[(u8, &str)] = &[
        (OK, "ok"),
        (USAGE, "usage"),
        (IO, "io"),
        (FRONTEND, "frontend"),
        (LOWER, "lower"),
        (PREDICT, "predict"),
        (WORKLOAD, "workload"),
        (SWEEP_PARTIAL, "sweep-partial"),
        (SWEEP_FAILED, "sweep-failed"),
        (OVERLOADED, "overloaded"),
        (DEADLINE, "deadline-exceeded"),
        (PANICKED, "worker-panicked"),
        (PROTOCOL, "protocol-error"),
        (FRAME_TOO_LARGE, "frame-too-large"),
        (SHUTTING_DOWN, "shutting-down"),
    ];

    /// The wire name for a code (`"unknown"` if unlisted).
    pub fn name(code: u8) -> &'static str {
        TABLE
            .iter()
            .find(|(c, _)| *c == code)
            .map(|(_, n)| *n)
            .unwrap_or("unknown")
    }
}

/// Why a frame read failed.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed (or the stream ended) mid-frame.
    Truncated,
    /// The declared length exceeds the cap; nothing was allocated.
    TooLarge { declared: usize, max: usize },
    /// The read timed out (idle connection or stalled sender).
    TimedOut,
    /// Any other I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::TooLarge { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds cap of {max}")
            }
            FrameError::TimedOut => write!(f, "read timed out"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

fn classify(e: io::Error) -> FrameError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => FrameError::TimedOut,
        io::ErrorKind::UnexpectedEof => FrameError::Truncated,
        _ => FrameError::Io(e),
    }
}

/// Read one length-prefixed frame. `Ok(None)` is a clean end-of-stream
/// (the peer closed between frames); ending inside a frame is
/// [`FrameError::Truncated`]. The length is checked against `max`
/// before the body is allocated.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(classify(e)),
        }
    }
    let declared = u32::from_be_bytes(header) as usize;
    if declared > max {
        return Err(FrameError::TooLarge { declared, max });
    }
    let mut body = vec![0u8; declared];
    let mut filled = 0;
    while filled < declared {
        match r.read(&mut body[filled..]) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(classify(e)),
        }
    }
    Ok(Some(body))
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// A parsed request, ready for dispatch.
#[derive(Debug, Clone)]
pub enum Request {
    /// Liveness probe, answered inline by the connection thread.
    Ping,
    /// Server counter snapshot, answered inline.
    Stats,
    /// The last `limit` flight-recorder events, answered inline.
    Events { limit: usize },
    /// Prometheus text exposition of the metrics registry, answered
    /// inline (the same text the `--metrics-addr` sidecar serves).
    Metrics,
    /// Begin a graceful drain, answered inline.
    Shutdown,
    /// One prediction of `source` on `nic` under `workload`.
    Predict {
        source: Source,
        nic: String,
        workload: WorkloadProfile,
        deadline_ms: Option<u64>,
        /// Test hook mirroring `PredictOptions::inject_panic`: poison
        /// this one request to exercise the panic-isolation path.
        inject_panic: bool,
    },
    /// Predictions across a list of rates (same class, shared cache).
    Sweep {
        source: Source,
        nic: String,
        workload: WorkloadProfile,
        rates: Vec<f64>,
        deadline_ms: Option<u64>,
    },
    /// Predicted-vs-simulated validation for a corpus NF.
    Validate {
        nf: String,
        nic: String,
        workload: WorkloadProfile,
        rates: Vec<f64>,
        packets: usize,
        seed: u64,
        deadline_ms: Option<u64>,
    },
}

/// What to analyze: a corpus NF by name, or inline NFC source.
#[derive(Debug, Clone)]
pub enum Source {
    Corpus(String),
    Inline(String),
}

impl Source {
    /// Stable cache key text for the session map.
    pub fn cache_text(&self) -> &str {
        match self {
            Source::Corpus(name) => name,
            Source::Inline(text) => text,
        }
    }

    /// Short label for replies and logs.
    pub fn label(&self) -> String {
        match self {
            Source::Corpus(name) => name.clone(),
            Source::Inline(_) => "<inline>".to_string(),
        }
    }
}

impl Request {
    /// The request's own deadline, if it set one.
    pub fn deadline_ms(&self) -> Option<u64> {
        match self {
            Request::Predict { deadline_ms, .. }
            | Request::Sweep { deadline_ms, .. }
            | Request::Validate { deadline_ms, .. } => *deadline_ms,
            _ => None,
        }
    }

    /// Whether this request is answered inline by the connection
    /// thread (no queue admission).
    pub fn is_inline(&self) -> bool {
        matches!(
            self,
            Request::Ping
                | Request::Stats
                | Request::Events { .. }
                | Request::Metrics
                | Request::Shutdown
        )
    }
}

/// A protocol-level parse failure: the reply code plus a message.
#[derive(Debug)]
pub struct ProtoError {
    pub code: u8,
    pub message: String,
}

impl ProtoError {
    fn new(code: u8, message: impl Into<String>) -> Self {
        ProtoError { code, message: message.into() }
    }
}

/// Parse a request frame. Unknown ops, missing fields, and invalid
/// workloads all map to distinct reply codes.
pub fn parse_request(bytes: &[u8]) -> Result<Request, ProtoError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| ProtoError::new(reply_codes::PROTOCOL, "frame is not utf-8"))?;
    let value = json::parse(text)
        .map_err(|e| ProtoError::new(reply_codes::PROTOCOL, format!("bad json: {e}")))?;
    let op = value
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| ProtoError::new(reply_codes::PROTOCOL, "missing `op`"))?;

    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "events" => {
            let limit = value
                .get("limit")
                .and_then(Value::as_u64)
                .unwrap_or(64)
                .min(4_096) as usize;
            if limit == 0 {
                return Err(ProtoError::new(reply_codes::USAGE, "`limit` must be > 0"));
            }
            Ok(Request::Events { limit })
        }
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        "predict" => {
            let source = parse_source(&value)?;
            Ok(Request::Predict {
                source,
                nic: nic_of(&value),
                workload: workload_of(&value)?,
                deadline_ms: value.get("deadline_ms").and_then(Value::as_u64),
                inject_panic: value
                    .get("inject_panic")
                    .and_then(Value::as_bool)
                    .unwrap_or(false),
            })
        }
        "sweep" => {
            let source = parse_source(&value)?;
            let rates = rates_of(&value)?;
            Ok(Request::Sweep {
                source,
                nic: nic_of(&value),
                workload: workload_of(&value)?,
                rates,
                deadline_ms: value.get("deadline_ms").and_then(Value::as_u64),
            })
        }
        "validate" => {
            let nf = value
                .get("nf")
                .and_then(Value::as_str)
                .ok_or_else(|| ProtoError::new(reply_codes::USAGE, "validate needs `nf`"))?
                .to_string();
            let rates = rates_of(&value)?;
            let packets = value
                .get("packets")
                .and_then(Value::as_u64)
                .unwrap_or(2_000) as usize;
            if packets == 0 || packets > 1_000_000 {
                return Err(ProtoError::new(
                    reply_codes::USAGE,
                    "`packets` must be in 1..=1000000",
                ));
            }
            Ok(Request::Validate {
                nf,
                nic: nic_of(&value),
                workload: workload_of(&value)?,
                rates,
                packets,
                seed: value.get("seed").and_then(Value::as_u64).unwrap_or(42),
                deadline_ms: value.get("deadline_ms").and_then(Value::as_u64),
            })
        }
        other => Err(ProtoError::new(
            reply_codes::USAGE,
            format!("unknown op `{other}`"),
        )),
    }
}

fn parse_source(value: &Value) -> Result<Source, ProtoError> {
    if let Some(nf) = value.get("nf").and_then(Value::as_str) {
        return Ok(Source::Corpus(nf.to_string()));
    }
    if let Some(src) = value.get("source").and_then(Value::as_str) {
        return Ok(Source::Inline(src.to_string()));
    }
    Err(ProtoError::new(
        reply_codes::USAGE,
        "need `nf` (corpus name) or `source` (inline NFC)",
    ))
}

fn nic_of(value: &Value) -> String {
    value
        .get("nic")
        .and_then(Value::as_str)
        .unwrap_or("netronome")
        .to_string()
}

fn rates_of(value: &Value) -> Result<Vec<f64>, ProtoError> {
    let rates: Vec<f64> = match value.get("rates") {
        Some(v) => v
            .as_arr()
            .ok_or_else(|| ProtoError::new(reply_codes::USAGE, "`rates` must be an array"))?
            .iter()
            .map(|r| {
                r.as_f64()
                    .filter(|x| *x > 0.0)
                    .ok_or_else(|| ProtoError::new(reply_codes::USAGE, "bad rate in `rates`"))
            })
            .collect::<Result<_, _>>()?,
        None => vec![WorkloadProfile::paper_default().rate_pps],
    };
    if rates.is_empty() {
        return Err(ProtoError::new(reply_codes::USAGE, "`rates` is empty"));
    }
    if rates.len() > 10_000 {
        return Err(ProtoError::new(reply_codes::USAGE, "more than 10000 rates"));
    }
    Ok(rates)
}

/// Build a workload from the request's optional overrides of the paper
/// default, then validate it (reply code `workload` on failure, same
/// category the CLI exits with).
fn workload_of(value: &Value) -> Result<WorkloadProfile, ProtoError> {
    let mut wl = WorkloadProfile::paper_default();
    if let Some(v) = value.get("rate_pps").and_then(Value::as_f64) {
        wl.rate_pps = v;
    }
    if let Some(v) = value.get("flows").and_then(Value::as_u64) {
        wl.flows = v as usize;
    }
    if let Some(v) = value.get("payload").and_then(Value::as_f64) {
        wl.avg_payload = v;
        wl.max_payload = v.max(0.0) as usize;
    }
    if let Some(v) = value.get("max_payload").and_then(Value::as_u64) {
        wl.max_payload = v as usize;
    }
    if let Some(v) = value.get("tcp").and_then(Value::as_f64) {
        wl.tcp_share = v;
    }
    if let Some(v) = value.get("syn").and_then(Value::as_f64) {
        wl.syn_share = v;
    }
    if let Some(v) = value.get("zipf").and_then(Value::as_f64) {
        wl.zipf_alpha = v;
    }
    wl.validate()
        .map_err(|e| ProtoError::new(reply_codes::WORKLOAD, format!("bad workload: {e}")))?;
    Ok(wl)
}

/// A serialized reply plus its code (kept for counters and tests).
#[derive(Debug, Clone)]
pub struct Reply {
    pub code: u8,
    pub json: String,
}

impl Reply {
    /// A success reply from a prepared object body.
    pub fn ok(body: ObjBuilder) -> Reply {
        let value = body
            .bool("ok", true)
            .uint("code", u64::from(reply_codes::OK))
            .build();
        Reply { code: reply_codes::OK, json: value.to_json() }
    }

    /// A reply that carries a non-OK code but a full body (partial
    /// sweeps).
    pub fn degraded(code: u8, body: ObjBuilder) -> Reply {
        let value = body
            .bool("ok", code == reply_codes::OK)
            .uint("code", u64::from(code))
            .str("error", reply_codes::name(code))
            .build();
        Reply { code, json: value.to_json() }
    }

    /// An error reply: `{ok:false, code, error, detail}`.
    pub fn err(code: u8, detail: &str) -> Reply {
        Reply::err_with(code, detail, ObjBuilder::new())
    }

    /// An error reply with extra fields (e.g. `retry_after_ms`).
    pub fn err_with(code: u8, detail: &str, extra: ObjBuilder) -> Reply {
        let value = extra
            .bool("ok", false)
            .uint("code", u64::from(code))
            .str("error", reply_codes::name(code))
            .str("detail", detail)
            .build();
        Reply { code, json: value.to_json() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn framed(body: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, body).unwrap();
        out
    }

    #[test]
    fn frame_round_trip() {
        let body = br#"{"op":"ping"}"#;
        let wire = framed(body);
        let got = read_frame(&mut Cursor::new(&wire), DEFAULT_MAX_FRAME)
            .unwrap()
            .unwrap();
        assert_eq!(got, body);
    }

    #[test]
    fn clean_eof_is_none_but_partial_is_truncated() {
        let wire = framed(b"hello");
        assert!(read_frame(&mut Cursor::new(&[] as &[u8]), 64).unwrap().is_none());
        for cut in 1..wire.len() {
            let err = read_frame(&mut Cursor::new(&wire[..cut]), 64);
            assert!(
                matches!(err, Err(FrameError::Truncated)),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn oversize_header_rejected_before_allocation() {
        let mut wire = u32::MAX.to_be_bytes().to_vec();
        wire.extend_from_slice(b"xx");
        match read_frame(&mut Cursor::new(&wire), 1024) {
            Err(FrameError::TooLarge { declared, max }) => {
                assert_eq!(declared, u32::MAX as usize);
                assert_eq!(max, 1024);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn parse_request_maps_errors_to_codes() {
        let cases: &[(&[u8], u8)] = &[
            (b"\xff\xfe", reply_codes::PROTOCOL),
            (b"not json", reply_codes::PROTOCOL),
            (br#"{"no_op":1}"#, reply_codes::PROTOCOL),
            (br#"{"op":"launch-missiles"}"#, reply_codes::USAGE),
            (br#"{"op":"predict"}"#, reply_codes::USAGE),
            (br#"{"op":"predict","nf":"nat","tcp":1.5}"#, reply_codes::WORKLOAD),
            (br#"{"op":"sweep","nf":"nat","rates":[]}"#, reply_codes::USAGE),
            (br#"{"op":"validate","rates":[1.0]}"#, reply_codes::USAGE),
            (br#"{"op":"validate","nf":"nat","packets":0}"#, reply_codes::USAGE),
            (br#"{"op":"events","limit":0}"#, reply_codes::USAGE),
        ];
        for (bytes, want) in cases {
            match parse_request(bytes) {
                Err(e) => assert_eq!(e.code, *want, "{:?}", String::from_utf8_lossy(bytes)),
                Ok(r) => panic!("accepted {:?} as {r:?}", String::from_utf8_lossy(bytes)),
            }
        }
    }

    #[test]
    fn events_and_metrics_parse_as_inline_ops() {
        let req = parse_request(br#"{"op":"events"}"#).unwrap();
        assert!(matches!(req, Request::Events { limit: 64 }));
        assert!(req.is_inline());
        let req = parse_request(br#"{"op":"events","limit":999999}"#).unwrap();
        assert!(matches!(req, Request::Events { limit: 4_096 }));
        let req = parse_request(br#"{"op":"metrics"}"#).unwrap();
        assert!(matches!(req, Request::Metrics));
        assert!(req.is_inline());
    }

    #[test]
    fn predict_request_parses_with_overrides() {
        let req = parse_request(
            br#"{"op":"predict","nf":"nat","rate_pps":120000,"flows":500,"deadline_ms":250}"#,
        )
        .unwrap();
        match req {
            Request::Predict { source, workload, deadline_ms, .. } => {
                assert!(matches!(source, Source::Corpus(ref n) if n == "nat"));
                assert_eq!(workload.rate_pps, 120_000.0);
                assert_eq!(workload.flows, 500);
                assert_eq!(deadline_ms, Some(250));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reply_json_is_parseable_and_coded() {
        let r = Reply::err_with(
            reply_codes::OVERLOADED,
            "queue full",
            ObjBuilder::new().uint("retry_after_ms", 40),
        );
        let v = json::parse(&r.json).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("code").and_then(Value::as_u64), Some(20));
        assert_eq!(v.get("error").and_then(Value::as_str), Some("overloaded"));
        assert_eq!(v.get("retry_after_ms").and_then(Value::as_u64), Some(40));
    }

    #[test]
    fn reply_code_names_are_unique() {
        let mut names: Vec<&str> = reply_codes::TABLE.iter().map(|(_, n)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), reply_codes::TABLE.len());
    }
}
