//! `clara serve`: a fault-tolerant prediction daemon.
//!
//! Clara's one-shot CLI re-runs the whole pipeline — frontend,
//! lowering, class simulation, cache analysis — for every invocation,
//! even though everything except the final solve is reusable across
//! requests that differ only in offered rate. This crate turns the
//! pipeline into a long-lived daemon: clients submit `predict`,
//! `sweep`, and `validate` jobs over a length-prefixed JSON protocol,
//! and the server reuses per-(NF, target, workload-class) session
//! state ([`clara_predict::NfSession`]) across them.
//!
//! The interesting part is the failure envelope, not the happy path:
//!
//! * bounded queue + admission control (shed with `overloaded` and a
//!   retry hint; never block or balloon),
//! * per-request deadlines threaded cooperatively into the ILP solver
//!   and the simulator,
//! * panic-isolated workers that are respawned, with the poisoned
//!   request reported and its cache entries quarantined,
//! * idle/read timeouts and a max-frame cap so one stalled or hostile
//!   client cannot wedge the daemon,
//! * graceful drain on shutdown or SIGTERM: stop accepting, finish or
//!   deadline-out in-flight work, flush telemetry,
//! * a built-in chaos mode (`--chaos <seed>`) that injects worker
//!   panics, slow-downs, and truncated reply frames so all of the
//!   above actually runs in CI,
//! * a live-observability layer ([`obs::ServeObs`]): wait-free latency
//!   histograms and trailing-window rates in every `stats` reply, a
//!   flight recorder queryable via the `events` op and dumped as JSONL
//!   around worker panics and drains, and a Prometheus exposition via
//!   the `metrics` op or an optional `--metrics-addr` HTTP sidecar.
//!
//! Every degradation is a distinct structured reply code
//! ([`protocol::reply_codes`]) mirroring the CLI's exit codes.
//!
//! The crate is dependency-free (std only), like the rest of the
//! workspace: framing, JSON, the thread pool, and signal handling are
//! all hand-rolled.

pub mod chaos;
pub mod client;
pub mod json;
pub mod metrics;
pub mod obs;
pub mod protocol;
pub mod server;
pub mod stats;

pub use chaos::{Chaos, ChaosConfig, JobChaos};
pub use client::{Client, ClientError};
pub use json::Value;
pub use obs::ServeObs;
pub use protocol::{
    parse_request, read_frame, reply_codes, write_frame, FrameError, Reply, Request, Source,
    DEFAULT_MAX_FRAME,
};
pub use server::{ServeConfig, ServeError, Server};
pub use stats::{ServeStats, StatsSnapshot};
