//! Server counters: every degradation the daemon can take is counted,
//! so overload and fault behavior is observable from the `stats` op and
//! from the telemetry report flushed at drain. Since the observability
//! layer landed, the snapshot also carries distribution summaries
//! (service/queue-wait/solve/sim time histograms), trailing-window
//! rates, and live gauges (queue depth, live workers, in-flight jobs,
//! uptime) — the `stats` reply and the Prometheus exposition both
//! render from this one struct.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::{ObjBuilder, Value};
use clara_telemetry::{HistSummary, TelemetryReport};

/// Monotonic counters, updated lock-free from connection and worker
/// threads.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Connections accepted.
    pub conns_accepted: AtomicU64,
    /// Connections turned away at the accept loop (connection cap).
    pub conns_rejected: AtomicU64,
    /// Frames that parsed into a request (any op).
    pub requests: AtomicU64,
    /// Work jobs admitted to the queue.
    pub accepted: AtomicU64,
    /// Work jobs that completed with code `ok`.
    pub completed: AtomicU64,
    /// Work jobs shed by admission control (queue full).
    pub shed: AtomicU64,
    /// Work jobs that hit their deadline (before or during the job).
    pub timed_out: AtomicU64,
    /// Work jobs whose worker panicked (chaos or organic).
    pub panicked: AtomicU64,
    /// Work jobs that finished with any other non-OK reply (bad NF,
    /// failed sweeps, ...). Closes the admission conservation
    /// invariant: once idle,
    /// `accepted == completed + timed_out + panicked + errored`.
    pub errored: AtomicU64,
    /// Worker threads respawned by the supervisor.
    pub workers_respawned: AtomicU64,
    /// Frames rejected as protocol errors (bad JSON, bad fields).
    pub protocol_errors: AtomicU64,
    /// Requests refused because the daemon was draining.
    pub shutdown_rejects: AtomicU64,
    /// Replies deliberately cut short by chaos mode.
    pub chaos_truncated_replies: AtomicU64,
    /// Sum of service times of completed jobs, microseconds.
    pub service_us_total: AtomicU64,
}

/// A coherent-enough copy of the counters (individually atomic reads;
/// the fleet-level numbers don't need a global snapshot), plus the
/// gauges, histogram summaries, and trailing rates the server overlays.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    pub conns_accepted: u64,
    pub conns_rejected: u64,
    pub requests: u64,
    pub accepted: u64,
    pub completed: u64,
    pub shed: u64,
    pub timed_out: u64,
    pub panicked: u64,
    pub errored: u64,
    pub workers_respawned: u64,
    pub protocol_errors: u64,
    pub shutdown_rejects: u64,
    pub chaos_truncated_replies: u64,
    pub service_us_total: u64,
    /// Session-cache aggregates, filled in by the server.
    pub sessions: u64,
    pub prepared_hits: u64,
    pub prepared_misses: u64,
    pub quarantined: u64,
    /// Simulator stage-cost cache aggregates across sessions: shared
    /// resolutions (hits), computed-and-published signatures (misses),
    /// and currently interned fingerprint views.
    pub sim_memo_hits: u64,
    pub sim_memo_misses: u64,
    pub sim_cost_views: u64,
    /// Live gauges (point-in-time, filled by the server).
    pub queue_depth: u64,
    pub queue_capacity: u64,
    pub workers: u64,
    pub workers_live: u64,
    pub inflight: u64,
    pub uptime_s: u64,
    /// Latency distribution summaries, microseconds.
    pub service_us: HistSummary,
    pub queue_wait_us: HistSummary,
    pub solve_us: HistSummary,
    pub sim_us: HistSummary,
    /// Trailing-window rates over [1 s, 10 s, 60 s], events/second.
    pub req_per_s: [f64; 3],
    pub shed_per_s: [f64; 3],
    pub complete_per_s: [f64; 3],
    /// Sim-memo hit fraction over the same windows; `None` = no memo
    /// traffic in that window.
    pub memo_hit_rate: [Option<f64>; 3],
}

impl ServeStats {
    pub fn add(&self, counter: &AtomicU64, delta: u64) {
        counter.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn bump(&self, counter: &AtomicU64) {
        self.add(counter, 1);
    }

    /// Read every counter (gauge/cache/hist fields are zero; the server
    /// overlays them from its live state).
    pub fn snapshot(&self) -> StatsSnapshot {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        StatsSnapshot {
            conns_accepted: get(&self.conns_accepted),
            conns_rejected: get(&self.conns_rejected),
            requests: get(&self.requests),
            accepted: get(&self.accepted),
            completed: get(&self.completed),
            shed: get(&self.shed),
            timed_out: get(&self.timed_out),
            panicked: get(&self.panicked),
            errored: get(&self.errored),
            workers_respawned: get(&self.workers_respawned),
            protocol_errors: get(&self.protocol_errors),
            shutdown_rejects: get(&self.shutdown_rejects),
            chaos_truncated_replies: get(&self.chaos_truncated_replies),
            service_us_total: get(&self.service_us_total),
            ..StatsSnapshot::default()
        }
    }

    /// Average service time of completed jobs, microseconds (a prior of
    /// 25 ms before any job completes). Kept for the `stats` reply;
    /// the `retry_after_ms` hint now uses the histogram's p90 (the
    /// mean hides exactly the tail that makes retries fail).
    pub fn avg_service_us(&self) -> u64 {
        let done = self.completed.load(Ordering::Relaxed);
        self.service_us_total
            .load(Ordering::Relaxed)
            .checked_div(done)
            .unwrap_or(25_000)
    }
}

/// Render a histogram summary as a JSON object value.
fn hist_value(h: &HistSummary) -> Value {
    ObjBuilder::new()
        .uint("count", h.count)
        .uint("mean", h.mean())
        .uint("p50", h.p50)
        .uint("p90", h.p90)
        .uint("p99", h.p99)
        .uint("max", h.max)
        .build()
}

fn opt_frac(v: Option<f64>) -> Value {
    match v {
        Some(f) if f.is_finite() => Value::Num(f),
        _ => Value::Null,
    }
}

impl StatsSnapshot {
    /// Fields for the `stats` reply and BENCH output: flat counters,
    /// live gauges, nested histogram summaries, and a nested `rates`
    /// object keyed by trailing window.
    pub fn fill(&self, body: ObjBuilder) -> ObjBuilder {
        let rates = ObjBuilder::new()
            .num("req_per_s_1s", self.req_per_s[0])
            .num("req_per_s_10s", self.req_per_s[1])
            .num("req_per_s_60s", self.req_per_s[2])
            .num("shed_per_s_1s", self.shed_per_s[0])
            .num("shed_per_s_10s", self.shed_per_s[1])
            .num("shed_per_s_60s", self.shed_per_s[2])
            .num("complete_per_s_1s", self.complete_per_s[0])
            .num("complete_per_s_10s", self.complete_per_s[1])
            .num("complete_per_s_60s", self.complete_per_s[2])
            .put("sim_memo_hit_rate_1s", opt_frac(self.memo_hit_rate[0]))
            .put("sim_memo_hit_rate_10s", opt_frac(self.memo_hit_rate[1]))
            .put("sim_memo_hit_rate_60s", opt_frac(self.memo_hit_rate[2]));
        body.uint("conns_accepted", self.conns_accepted)
            .uint("conns_rejected", self.conns_rejected)
            .uint("requests", self.requests)
            .uint("accepted", self.accepted)
            .uint("completed", self.completed)
            .uint("shed", self.shed)
            .uint("timed_out", self.timed_out)
            .uint("panicked", self.panicked)
            .uint("errored", self.errored)
            .uint("workers_respawned", self.workers_respawned)
            .uint("protocol_errors", self.protocol_errors)
            .uint("shutdown_rejects", self.shutdown_rejects)
            .uint("chaos_truncated_replies", self.chaos_truncated_replies)
            .uint("sessions", self.sessions)
            .uint("prepared_hits", self.prepared_hits)
            .uint("prepared_misses", self.prepared_misses)
            .uint("quarantined", self.quarantined)
            .uint("sim_memo_hits", self.sim_memo_hits)
            .uint("sim_memo_misses", self.sim_memo_misses)
            .uint("sim_cost_views", self.sim_cost_views)
            .uint("queue_depth", self.queue_depth)
            .uint("queue_capacity", self.queue_capacity)
            .uint("workers", self.workers)
            .uint("workers_live", self.workers_live)
            .uint("inflight", self.inflight)
            .uint("uptime_s", self.uptime_s)
            .put("service_us", hist_value(&self.service_us))
            .put("queue_wait_us", hist_value(&self.queue_wait_us))
            .put("solve_us", hist_value(&self.solve_us))
            .put("sim_us", hist_value(&self.sim_us))
            .put("rates", rates.build())
    }

    /// Export the counters and histograms into a telemetry report
    /// (flushed at drain).
    pub fn into_report(&self) -> TelemetryReport {
        let mut report = TelemetryReport::default()
            .with_context("component", "clara-serve");
        report.counters = vec![
            ("serve.accepted".into(), self.accepted),
            ("serve.chaos_truncated_replies".into(), self.chaos_truncated_replies),
            ("serve.completed".into(), self.completed),
            ("serve.conns_accepted".into(), self.conns_accepted),
            ("serve.conns_rejected".into(), self.conns_rejected),
            ("serve.errored".into(), self.errored),
            ("serve.panicked".into(), self.panicked),
            ("serve.prepared_hits".into(), self.prepared_hits),
            ("serve.prepared_misses".into(), self.prepared_misses),
            ("serve.protocol_errors".into(), self.protocol_errors),
            ("serve.quarantined".into(), self.quarantined),
            ("serve.requests".into(), self.requests),
            ("serve.sessions".into(), self.sessions),
            ("serve.shed".into(), self.shed),
            ("serve.shutdown_rejects".into(), self.shutdown_rejects),
            ("serve.sim_cost_views".into(), self.sim_cost_views),
            ("serve.sim_memo_hits".into(), self.sim_memo_hits),
            ("serve.sim_memo_misses".into(), self.sim_memo_misses),
            ("serve.timed_out".into(), self.timed_out),
            ("serve.workers_respawned".into(), self.workers_respawned),
        ];
        report.hists = vec![
            ("serve.queue_wait_us".into(), self.queue_wait_us),
            ("serve.service_us".into(), self.service_us),
            ("serve.sim_us".into(), self.sim_us),
            ("serve.solve_us".into(), self.solve_us),
        ];
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_what_was_bumped() {
        let s = ServeStats::default();
        s.bump(&s.shed);
        s.bump(&s.shed);
        s.bump(&s.completed);
        s.bump(&s.errored);
        s.add(&s.service_us_total, 10_000);
        let snap = s.snapshot();
        assert_eq!(snap.shed, 2);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.errored, 1);
        assert_eq!(s.avg_service_us(), 10_000);
    }

    #[test]
    fn avg_service_has_a_prior_before_any_completion() {
        let s = ServeStats::default();
        assert_eq!(s.avg_service_us(), 25_000);
    }

    #[test]
    fn telemetry_counters_are_sorted_by_name() {
        let report = StatsSnapshot::default().into_report();
        let names: Vec<&str> = report.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        let hist_names: Vec<&str> = report.hists.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = hist_names.clone();
        sorted.sort_unstable();
        assert_eq!(hist_names, sorted);
    }

    #[test]
    fn fill_nests_histograms_and_rates() {
        let snap = StatsSnapshot {
            service_us: HistSummary { count: 2, sum: 300, p50: 100, p90: 200, p99: 200, max: 210 },
            req_per_s: [3.0, 1.5, 0.25],
            memo_hit_rate: [None, Some(0.75), Some(0.5)],
            queue_depth: 4,
            workers_live: 2,
            inflight: 1,
            uptime_s: 9,
            ..StatsSnapshot::default()
        };
        let v = snap.fill(ObjBuilder::new()).build();
        assert_eq!(
            v.get("service_us").and_then(|h| h.get("p90")).and_then(Value::as_u64),
            Some(200)
        );
        let rates = v.get("rates").expect("rates object");
        assert_eq!(rates.get("req_per_s_1s").and_then(Value::as_f64), Some(3.0));
        assert_eq!(rates.get("sim_memo_hit_rate_1s"), Some(&Value::Null));
        assert_eq!(
            rates.get("sim_memo_hit_rate_10s").and_then(Value::as_f64),
            Some(0.75)
        );
        assert_eq!(v.get("queue_depth").and_then(Value::as_u64), Some(4));
        assert_eq!(v.get("workers_live").and_then(Value::as_u64), Some(2));
        assert_eq!(v.get("inflight").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("uptime_s").and_then(Value::as_u64), Some(9));
    }
}
