//! Server counters: every degradation the daemon can take is counted,
//! so overload and fault behavior is observable from the `stats` op and
//! from the telemetry report flushed at drain.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::ObjBuilder;
use clara_telemetry::TelemetryReport;

/// Monotonic counters, updated lock-free from connection and worker
/// threads.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Connections accepted.
    pub conns_accepted: AtomicU64,
    /// Connections turned away at the accept loop (connection cap).
    pub conns_rejected: AtomicU64,
    /// Frames that parsed into a request (any op).
    pub requests: AtomicU64,
    /// Work jobs admitted to the queue.
    pub accepted: AtomicU64,
    /// Work jobs that completed with code `ok`.
    pub completed: AtomicU64,
    /// Work jobs shed by admission control (queue full).
    pub shed: AtomicU64,
    /// Work jobs that hit their deadline (before or during the job).
    pub timed_out: AtomicU64,
    /// Work jobs whose worker panicked (chaos or organic).
    pub panicked: AtomicU64,
    /// Worker threads respawned by the supervisor.
    pub workers_respawned: AtomicU64,
    /// Frames rejected as protocol errors (bad JSON, bad fields).
    pub protocol_errors: AtomicU64,
    /// Requests refused because the daemon was draining.
    pub shutdown_rejects: AtomicU64,
    /// Replies deliberately cut short by chaos mode.
    pub chaos_truncated_replies: AtomicU64,
    /// Sum of service times of completed jobs, microseconds. Feeds the
    /// `retry_after_ms` hint.
    pub service_us_total: AtomicU64,
}

/// A coherent-enough copy of the counters (individually atomic reads;
/// the fleet-level numbers don't need a global snapshot).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub conns_accepted: u64,
    pub conns_rejected: u64,
    pub requests: u64,
    pub accepted: u64,
    pub completed: u64,
    pub shed: u64,
    pub timed_out: u64,
    pub panicked: u64,
    pub workers_respawned: u64,
    pub protocol_errors: u64,
    pub shutdown_rejects: u64,
    pub chaos_truncated_replies: u64,
    pub service_us_total: u64,
    /// Session-cache aggregates, filled in by the server.
    pub sessions: u64,
    pub prepared_hits: u64,
    pub prepared_misses: u64,
    pub quarantined: u64,
    /// Simulator stage-cost cache aggregates across sessions: shared
    /// resolutions (hits), computed-and-published signatures (misses),
    /// and currently interned fingerprint views.
    pub sim_memo_hits: u64,
    pub sim_memo_misses: u64,
    pub sim_cost_views: u64,
}

impl ServeStats {
    pub fn add(&self, counter: &AtomicU64, delta: u64) {
        counter.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn bump(&self, counter: &AtomicU64) {
        self.add(counter, 1);
    }

    /// Read every counter (cache fields are zero; the server overlays
    /// them from its session map).
    pub fn snapshot(&self) -> StatsSnapshot {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        StatsSnapshot {
            conns_accepted: get(&self.conns_accepted),
            conns_rejected: get(&self.conns_rejected),
            requests: get(&self.requests),
            accepted: get(&self.accepted),
            completed: get(&self.completed),
            shed: get(&self.shed),
            timed_out: get(&self.timed_out),
            panicked: get(&self.panicked),
            workers_respawned: get(&self.workers_respawned),
            protocol_errors: get(&self.protocol_errors),
            shutdown_rejects: get(&self.shutdown_rejects),
            chaos_truncated_replies: get(&self.chaos_truncated_replies),
            service_us_total: get(&self.service_us_total),
            sessions: 0,
            prepared_hits: 0,
            prepared_misses: 0,
            quarantined: 0,
            sim_memo_hits: 0,
            sim_memo_misses: 0,
            sim_cost_views: 0,
        }
    }

    /// Average service time of completed jobs, microseconds (a prior of
    /// 25 ms before any job completes, so the first overload replies
    /// still carry a sane hint).
    pub fn avg_service_us(&self) -> u64 {
        let done = self.completed.load(Ordering::Relaxed);
        self.service_us_total
            .load(Ordering::Relaxed)
            .checked_div(done)
            .unwrap_or(25_000)
    }
}

impl StatsSnapshot {
    /// Fields for the `stats` reply and BENCH output.
    pub fn fill(&self, body: ObjBuilder) -> ObjBuilder {
        body.uint("conns_accepted", self.conns_accepted)
            .uint("conns_rejected", self.conns_rejected)
            .uint("requests", self.requests)
            .uint("accepted", self.accepted)
            .uint("completed", self.completed)
            .uint("shed", self.shed)
            .uint("timed_out", self.timed_out)
            .uint("panicked", self.panicked)
            .uint("workers_respawned", self.workers_respawned)
            .uint("protocol_errors", self.protocol_errors)
            .uint("shutdown_rejects", self.shutdown_rejects)
            .uint("chaos_truncated_replies", self.chaos_truncated_replies)
            .uint("sessions", self.sessions)
            .uint("prepared_hits", self.prepared_hits)
            .uint("prepared_misses", self.prepared_misses)
            .uint("quarantined", self.quarantined)
            .uint("sim_memo_hits", self.sim_memo_hits)
            .uint("sim_memo_misses", self.sim_memo_misses)
            .uint("sim_cost_views", self.sim_cost_views)
    }

    /// Export the counters into a telemetry report (flushed at drain).
    pub fn into_report(&self) -> TelemetryReport {
        let mut report = TelemetryReport::default()
            .with_context("component", "clara-serve");
        report.counters = vec![
            ("serve.accepted".into(), self.accepted),
            ("serve.chaos_truncated_replies".into(), self.chaos_truncated_replies),
            ("serve.completed".into(), self.completed),
            ("serve.conns_accepted".into(), self.conns_accepted),
            ("serve.conns_rejected".into(), self.conns_rejected),
            ("serve.panicked".into(), self.panicked),
            ("serve.prepared_hits".into(), self.prepared_hits),
            ("serve.prepared_misses".into(), self.prepared_misses),
            ("serve.protocol_errors".into(), self.protocol_errors),
            ("serve.quarantined".into(), self.quarantined),
            ("serve.requests".into(), self.requests),
            ("serve.sessions".into(), self.sessions),
            ("serve.shed".into(), self.shed),
            ("serve.shutdown_rejects".into(), self.shutdown_rejects),
            ("serve.sim_cost_views".into(), self.sim_cost_views),
            ("serve.sim_memo_hits".into(), self.sim_memo_hits),
            ("serve.sim_memo_misses".into(), self.sim_memo_misses),
            ("serve.timed_out".into(), self.timed_out),
            ("serve.workers_respawned".into(), self.workers_respawned),
        ];
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_what_was_bumped() {
        let s = ServeStats::default();
        s.bump(&s.shed);
        s.bump(&s.shed);
        s.bump(&s.completed);
        s.add(&s.service_us_total, 10_000);
        let snap = s.snapshot();
        assert_eq!(snap.shed, 2);
        assert_eq!(snap.completed, 1);
        assert_eq!(s.avg_service_us(), 10_000);
    }

    #[test]
    fn avg_service_has_a_prior_before_any_completion() {
        let s = ServeStats::default();
        assert_eq!(s.avg_service_us(), 25_000);
    }

    #[test]
    fn telemetry_counters_are_sorted_by_name() {
        let report = StatsSnapshot::default().into_report();
        let names: Vec<&str> = report.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }
}
