//! A blocking client for the serve protocol, used by the integration
//! tests, the benchmark, and anyone embedding the daemon.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::json::{self, Value};
use crate::protocol::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};

/// Why a request failed on the client side.
#[derive(Debug)]
pub enum ClientError {
    /// Framing failure (includes truncated replies from chaos mode).
    Frame(FrameError),
    /// The server closed the connection instead of replying.
    Closed,
    /// The reply frame was not valid JSON.
    BadReply(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "frame error: {e}"),
            ClientError::Closed => write!(f, "connection closed before reply"),
            ClientError::BadReply(e) => write!(f, "unparseable reply: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// One connection to a `clara serve` daemon. Requests are serial per
/// connection (the protocol has no multiplexing); open more clients
/// for concurrency.
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
}

impl Client {
    /// Connect with a sane default I/O timeout (10 s).
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        Client::connect_timeout(addr, Duration::from_secs(10))
    }

    /// Connect with explicit connect/read/write timeouts.
    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, max_frame: DEFAULT_MAX_FRAME })
    }

    /// Send one JSON request and wait for the parsed reply.
    pub fn request(&mut self, body: &str) -> Result<Value, ClientError> {
        write_frame(&mut self.stream, body.as_bytes())
            .map_err(|e| ClientError::Frame(FrameError::Io(e)))?;
        let frame = read_frame(&mut self.stream, self.max_frame)
            .map_err(ClientError::Frame)?
            .ok_or(ClientError::Closed)?;
        let text = String::from_utf8_lossy(&frame);
        json::parse(&text).map_err(ClientError::BadReply)
    }

    pub fn ping(&mut self) -> Result<Value, ClientError> {
        self.request(r#"{"op":"ping"}"#)
    }

    pub fn stats(&mut self) -> Result<Value, ClientError> {
        self.request(r#"{"op":"stats"}"#)
    }

    pub fn shutdown(&mut self) -> Result<Value, ClientError> {
        self.request(r#"{"op":"shutdown"}"#)
    }
}
