//! Property tests for the wire layer: the frame codec and request
//! parser sit directly on attacker-controllable bytes, so the
//! properties are about *containment* — garbage in, typed error out,
//! never a panic, never an unbounded allocation.

use std::io::Cursor;

use clara_serve::json;
use clara_serve::{parse_request, read_frame, reply_codes, write_frame, FrameError};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    /// Any body round-trips through the codec bit-exactly.
    #[test]
    fn frame_codec_round_trips(body in vec(any::<u8>(), 0..2048)) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).unwrap();
        let got = read_frame(&mut Cursor::new(&wire), 1 << 20).unwrap().unwrap();
        prop_assert_eq!(got, body);
    }

    /// Cutting a frame anywhere strictly inside it yields `Truncated`
    /// (and cutting at zero is a clean end-of-stream), never a panic or
    /// a bogus success.
    #[test]
    fn truncation_is_always_a_typed_error(
        body in vec(any::<u8>(), 1..512),
        cut_seed in any::<u16>(),
    ) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).unwrap();
        let cut = 1 + (cut_seed as usize) % (wire.len() - 1);
        match read_frame(&mut Cursor::new(&wire[..cut]), 1 << 20) {
            Err(FrameError::Truncated) => {}
            other => return Err(TestCaseError::fail(format!(
                "cut at {cut}/{}: {other:?}", wire.len()
            ))),
        }
    }

    /// A header declaring more than the cap is rejected before any
    /// body allocation, whatever follows it.
    #[test]
    fn oversize_declarations_are_rejected(
        declared in 1025u32..u32::MAX,
        tail in vec(any::<u8>(), 0..32),
    ) {
        let mut wire = declared.to_be_bytes().to_vec();
        wire.extend_from_slice(&tail);
        match read_frame(&mut Cursor::new(&wire), 1024) {
            Err(FrameError::TooLarge { declared: d, max }) => {
                prop_assert_eq!(d, declared as usize);
                prop_assert_eq!(max, 1024);
            }
            other => return Err(TestCaseError::fail(format!("{other:?}"))),
        }
    }

    /// Arbitrary garbage through the reader never panics, whatever it
    /// returns.
    #[test]
    fn reader_never_panics_on_garbage(bytes in vec(any::<u8>(), 0..64)) {
        let _ = read_frame(&mut Cursor::new(&bytes), 1024);
    }

    /// Arbitrary bytes through the request parser either parse or map
    /// to a protocol-layer reply code — no panics, no mystery codes.
    #[test]
    fn request_parser_contains_garbage(bytes in vec(any::<u8>(), 0..256)) {
        if let Err(e) = parse_request(&bytes) {
            prop_assert!(
                matches!(
                    e.code,
                    reply_codes::PROTOCOL | reply_codes::USAGE | reply_codes::WORKLOAD
                ),
                "unexpected code {} for {:?}", e.code, bytes
            );
        }
    }

    /// A garbage prefix in front of valid JSON is still a clean
    /// protocol error (framing never resynchronizes mid-frame).
    #[test]
    fn garbage_prefix_is_a_protocol_error(prefix in vec(1u8..=255, 1..16)) {
        // A leading non-JSON byte makes the body unparseable; prefix
        // bytes exclude 0 so the result can't accidentally be valid.
        let mut bytes = prefix;
        if matches!(bytes[0], b' ' | b'\t' | b'\n' | b'\r' | b'{' | b'[' | b'"'
            | b'0'..=b'9' | b'-' | b'+' | b'.' | b't' | b'f' | b'n' | b'e' | b'E') {
            bytes[0] = b'!';
        }
        bytes.extend_from_slice(br#"{"op":"ping"}"#);
        let err = parse_request(&bytes).unwrap_err();
        prop_assert_eq!(err.code, reply_codes::PROTOCOL);
    }

    /// The JSON parser never panics on arbitrary (possibly invalid)
    /// UTF-8 input.
    #[test]
    fn json_parser_never_panics(bytes in vec(any::<u8>(), 0..512)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = json::parse(&text);
    }

    /// Whatever the parser accepts, it re-serializes to something it
    /// accepts again, identically (canonical form is a fixed point).
    #[test]
    fn accepted_json_round_trips_canonically(bytes in vec(any::<u8>(), 0..256)) {
        let text = String::from_utf8_lossy(&bytes);
        if let Ok(v) = json::parse(&text) {
            let once = v.to_json();
            let again = json::parse(&once).map_err(TestCaseError::fail)?;
            prop_assert_eq!(&again.to_json(), &once);
            prop_assert_eq!(again, v);
        }
    }
}
