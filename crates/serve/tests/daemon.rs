//! Protocol-level daemon tests: these exercise framing, admission
//! control, deadlines, and drain without ever touching the predictor
//! (requests use an unknown NIC, which resolves — fast — to a `usage`
//! reply after passing through the full queue/worker machinery). The
//! heavyweight end-to-end chaos test lives in the workspace-root
//! `tests/serve_chaos.rs`.

use std::io::Write as _;
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use clara_serve::json::Value;
use clara_serve::{ChaosConfig, Client, ClientError, ServeConfig, Server};

fn quick_config() -> ServeConfig {
    ServeConfig {
        workers: 1,
        queue_cap: 1,
        read_timeout_ms: 1_000,
        ..ServeConfig::default()
    }
}

/// Chaos that only slows jobs down: used to hold a worker busy
/// deterministically without touching the panic paths.
fn slow_only(slow_ms: u64) -> ChaosConfig {
    ChaosConfig {
        panic_per_mille: 0,
        kill_per_mille: 0,
        slow_per_mille: 1_000,
        truncate_per_mille: 0,
        slow_ms,
        ..ChaosConfig::with_seed(1)
    }
}

fn code_of(reply: &Value) -> u64 {
    reply.get("code").and_then(Value::as_u64).expect("reply has a code")
}

#[test]
fn ping_and_stats_round_trip() {
    let server = Server::start(quick_config()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let pong = client.ping().unwrap();
    assert_eq!(code_of(&pong), 0);
    assert_eq!(pong.get("draining").and_then(Value::as_bool), Some(false));

    let stats = client.stats().unwrap();
    assert_eq!(code_of(&stats), 0);
    assert_eq!(stats.get("requests").and_then(Value::as_u64), Some(2));
    assert_eq!(stats.get("queue_capacity").and_then(Value::as_u64), Some(1));
    assert_eq!(stats.get("workers").and_then(Value::as_u64), Some(1));

    server.shutdown();
    server.join();
}

#[test]
fn bad_json_is_a_protocol_error_and_the_connection_survives() {
    let server = Server::start(quick_config()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let reply = client.request("this is not json").unwrap();
    assert_eq!(code_of(&reply), u64::from(clara_serve::reply_codes::PROTOCOL));
    assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(false));

    // A malformed *body* in a well-formed frame must not poison the
    // connection.
    assert_eq!(code_of(&client.ping().unwrap()), 0);

    server.shutdown();
    server.join();
}

#[test]
fn oversized_frame_is_refused_with_a_structured_reply() {
    let config = ServeConfig { max_frame: 256, ..quick_config() };
    let server = Server::start(config).unwrap();

    // Hand-roll the frame: a header declaring 1 MiB.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(&(1u32 << 20).to_be_bytes()).unwrap();
    stream.write_all(b"doesn't matter").unwrap();
    let reply = clara_serve::read_frame(&mut stream, 1 << 20).unwrap().unwrap();
    let value = clara_serve::json::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
    assert_eq!(code_of(&value), u64::from(clara_serve::reply_codes::FRAME_TOO_LARGE));

    server.shutdown();
    let stats = server.join();
    assert!(stats.protocol_errors >= 1);
}

#[test]
fn unknown_op_and_unknown_nic_map_to_usage() {
    let server = Server::start(quick_config()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let reply = client.request(r#"{"op":"transmogrify"}"#).unwrap();
    assert_eq!(code_of(&reply), 2);

    let reply = client
        .request(r#"{"op":"predict","nf":"nat","nic":"quantum-nic"}"#)
        .unwrap();
    assert_eq!(code_of(&reply), 2);
    let detail = reply.get("detail").and_then(Value::as_str).unwrap();
    assert!(detail.contains("quantum-nic"), "{detail}");

    server.shutdown();
    server.join();
}

#[test]
fn expired_deadline_is_reported_without_running_the_job() {
    let server = Server::start(quick_config()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let reply = client
        .request(r#"{"op":"predict","nf":"nat","deadline_ms":0}"#)
        .unwrap();
    assert_eq!(code_of(&reply), u64::from(clara_serve::reply_codes::DEADLINE));
    assert_eq!(
        reply.get("error").and_then(Value::as_str),
        Some("deadline-exceeded")
    );

    server.shutdown();
    let stats = server.join();
    assert_eq!(stats.timed_out, 1);
}

#[test]
fn overload_sheds_with_a_retry_hint() {
    let config = ServeConfig {
        chaos: Some(slow_only(400)),
        ..quick_config()
    };
    let server = Server::start(config).unwrap();
    let addr = server.addr();

    // One worker asleep for 400 ms per job, queue of 1: firing 6
    // concurrent requests must shed some of them immediately.
    let handles: Vec<_> = (0..6)
        .map(|_| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let started = Instant::now();
                let reply = client
                    .request(r#"{"op":"predict","nf":"nat","nic":"no-such-nic"}"#)
                    .unwrap();
                (code_of(&reply), reply, started.elapsed())
            })
        })
        .collect();
    let replies: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let shed: Vec<_> = replies.iter().filter(|(code, ..)| *code == 20).collect();
    assert!(!shed.is_empty(), "no request was shed: {replies:?}");
    for (_, reply, elapsed) in &shed {
        // Shedding is immediate — it must not wait behind the queue.
        assert!(*elapsed < Duration::from_millis(350), "shed took {elapsed:?}");
        assert!(
            reply.get("retry_after_ms").and_then(Value::as_u64).unwrap() >= 1,
            "{reply:?}"
        );
    }
    // And at least one request made it through to a worker.
    assert!(replies.iter().any(|(code, ..)| *code == 2), "{replies:?}");

    server.shutdown();
    let stats = server.join();
    assert!(stats.shed >= 1, "{stats:?}");
    assert_eq!(stats.shed + stats.accepted, 6, "{stats:?}");
}

#[test]
fn shutdown_drains_inflight_work_and_refuses_late_arrivals() {
    let config = ServeConfig {
        workers: 1,
        queue_cap: 4,
        read_timeout_ms: 1_000,
        chaos: Some(slow_only(400)),
        ..ServeConfig::default()
    };
    let server = Server::start(config).unwrap();
    let addr = server.addr();

    // An in-flight job that outlives the shutdown call.
    let inflight = thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        let reply = client
            .request(r#"{"op":"predict","nf":"nat","nic":"no-such-nic"}"#)
            .unwrap();
        code_of(&reply)
    });
    thread::sleep(Duration::from_millis(100));

    let mut client = Client::connect(addr).unwrap();
    let reply = client.shutdown().unwrap();
    assert_eq!(reply.get("draining").and_then(Value::as_bool), Some(true));

    // The admitted job still completes with its real reply.
    assert_eq!(inflight.join().unwrap(), 2, "in-flight job was dropped");

    // New connections are refused once the accept loop exits.
    let deadline = Instant::now() + Duration::from_secs(3);
    loop {
        match Client::connect_timeout(addr, Duration::from_millis(200)) {
            Err(_) => break,
            Ok(mut late) => {
                // Accept loop may still be mid-poll; a late request on a
                // fresh connection must at least be refused.
                match late.request(r#"{"op":"predict","nf":"nat"}"#) {
                    Ok(v) => assert_eq!(code_of(&v), 25, "{v:?}"),
                    Err(ClientError::Frame(_) | ClientError::Closed) => {}
                    Err(e) => panic!("unexpected client error: {e}"),
                }
            }
        }
        assert!(Instant::now() < deadline, "listener never closed");
        thread::sleep(Duration::from_millis(50));
    }

    let stats = server.join();
    assert_eq!(stats.accepted, 1, "{stats:?}");
}
