//! Protocol-level daemon tests: these exercise framing, admission
//! control, deadlines, and drain without ever touching the predictor
//! (requests use an unknown NIC, which resolves — fast — to a `usage`
//! reply after passing through the full queue/worker machinery). The
//! heavyweight end-to-end chaos test lives in the workspace-root
//! `tests/serve_chaos.rs`.

use std::io::Write as _;
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use clara_serve::json::Value;
use clara_serve::{ChaosConfig, Client, ClientError, ServeConfig, Server};

fn quick_config() -> ServeConfig {
    ServeConfig {
        workers: 1,
        queue_cap: 1,
        read_timeout_ms: 1_000,
        ..ServeConfig::default()
    }
}

/// Chaos that only slows jobs down: used to hold a worker busy
/// deterministically without touching the panic paths.
fn slow_only(slow_ms: u64) -> ChaosConfig {
    ChaosConfig {
        panic_per_mille: 0,
        kill_per_mille: 0,
        slow_per_mille: 1_000,
        truncate_per_mille: 0,
        slow_ms,
        ..ChaosConfig::with_seed(1)
    }
}

fn code_of(reply: &Value) -> u64 {
    reply.get("code").and_then(Value::as_u64).expect("reply has a code")
}

#[test]
fn ping_and_stats_round_trip() {
    let server = Server::start(quick_config()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let pong = client.ping().unwrap();
    assert_eq!(code_of(&pong), 0);
    assert_eq!(pong.get("draining").and_then(Value::as_bool), Some(false));

    let stats = client.stats().unwrap();
    assert_eq!(code_of(&stats), 0);
    assert_eq!(stats.get("requests").and_then(Value::as_u64), Some(2));
    assert_eq!(stats.get("queue_capacity").and_then(Value::as_u64), Some(1));
    assert_eq!(stats.get("workers").and_then(Value::as_u64), Some(1));

    server.shutdown();
    server.join();
}

#[test]
fn bad_json_is_a_protocol_error_and_the_connection_survives() {
    let server = Server::start(quick_config()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let reply = client.request("this is not json").unwrap();
    assert_eq!(code_of(&reply), u64::from(clara_serve::reply_codes::PROTOCOL));
    assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(false));

    // A malformed *body* in a well-formed frame must not poison the
    // connection.
    assert_eq!(code_of(&client.ping().unwrap()), 0);

    server.shutdown();
    server.join();
}

#[test]
fn oversized_frame_is_refused_with_a_structured_reply() {
    let config = ServeConfig { max_frame: 256, ..quick_config() };
    let server = Server::start(config).unwrap();

    // Hand-roll the frame: a header declaring 1 MiB.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(&(1u32 << 20).to_be_bytes()).unwrap();
    stream.write_all(b"doesn't matter").unwrap();
    let reply = clara_serve::read_frame(&mut stream, 1 << 20).unwrap().unwrap();
    let value = clara_serve::json::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
    assert_eq!(code_of(&value), u64::from(clara_serve::reply_codes::FRAME_TOO_LARGE));

    server.shutdown();
    let stats = server.join();
    assert!(stats.protocol_errors >= 1);
}

#[test]
fn unknown_op_and_unknown_nic_map_to_usage() {
    let server = Server::start(quick_config()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let reply = client.request(r#"{"op":"transmogrify"}"#).unwrap();
    assert_eq!(code_of(&reply), 2);

    let reply = client
        .request(r#"{"op":"predict","nf":"nat","nic":"quantum-nic"}"#)
        .unwrap();
    assert_eq!(code_of(&reply), 2);
    let detail = reply.get("detail").and_then(Value::as_str).unwrap();
    assert!(detail.contains("quantum-nic"), "{detail}");

    server.shutdown();
    server.join();
}

#[test]
fn expired_deadline_is_reported_without_running_the_job() {
    let server = Server::start(quick_config()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let reply = client
        .request(r#"{"op":"predict","nf":"nat","deadline_ms":0}"#)
        .unwrap();
    assert_eq!(code_of(&reply), u64::from(clara_serve::reply_codes::DEADLINE));
    assert_eq!(
        reply.get("error").and_then(Value::as_str),
        Some("deadline-exceeded")
    );

    server.shutdown();
    let stats = server.join();
    assert_eq!(stats.timed_out, 1);
}

#[test]
fn overload_sheds_with_a_retry_hint() {
    let config = ServeConfig {
        chaos: Some(slow_only(400)),
        ..quick_config()
    };
    let server = Server::start(config).unwrap();
    let addr = server.addr();

    // One worker asleep for 400 ms per job, queue of 1: firing 6
    // concurrent requests must shed some of them immediately.
    let handles: Vec<_> = (0..6)
        .map(|_| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let started = Instant::now();
                let reply = client
                    .request(r#"{"op":"predict","nf":"nat","nic":"no-such-nic"}"#)
                    .unwrap();
                (code_of(&reply), reply, started.elapsed())
            })
        })
        .collect();
    let replies: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let shed: Vec<_> = replies.iter().filter(|(code, ..)| *code == 20).collect();
    assert!(!shed.is_empty(), "no request was shed: {replies:?}");
    for (_, reply, elapsed) in &shed {
        // Shedding is immediate — it must not wait behind the queue.
        assert!(*elapsed < Duration::from_millis(350), "shed took {elapsed:?}");
        assert!(
            reply.get("retry_after_ms").and_then(Value::as_u64).unwrap() >= 1,
            "{reply:?}"
        );
    }
    // And at least one request made it through to a worker.
    assert!(replies.iter().any(|(code, ..)| *code == 2), "{replies:?}");

    server.shutdown();
    let stats = server.join();
    assert!(stats.shed >= 1, "{stats:?}");
    assert_eq!(stats.shed + stats.accepted, 6, "{stats:?}");
}

#[test]
fn stats_reports_gauges_histograms_and_rates() {
    let server = Server::start(quick_config()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // One job through the worker path (unknown NIC resolves fast but
    // still transits admit -> queue -> worker -> reply).
    let reply = client
        .request(r#"{"op":"predict","nf":"nat","nic":"no-such-nic"}"#)
        .unwrap();
    assert_eq!(code_of(&reply), 2);

    let stats = client.stats().unwrap();
    let get = |k: &str| stats.get(k).and_then(Value::as_u64).unwrap_or_else(|| panic!("stats missing `{k}`: {stats:?}"));
    assert_eq!(get("workers_live"), 1);
    assert_eq!(get("inflight"), 0);
    assert_eq!(get("queue_depth"), 0);
    assert!(stats.get("uptime_s").and_then(Value::as_u64).is_some());
    // The errored counter closes the conservation invariant at idle.
    assert_eq!(get("accepted"), get("completed") + get("timed_out") + get("panicked") + get("errored"));
    assert_eq!(get("errored"), 1);
    // The job landed in the service and queue-wait histograms.
    let hist_count = |name: &str| {
        stats.get(name).and_then(|h| h.get("count")).and_then(Value::as_u64).unwrap()
    };
    assert_eq!(hist_count("service_us"), 1, "{stats:?}");
    assert_eq!(hist_count("queue_wait_us"), 1, "{stats:?}");
    // Both requests of this test are inside the trailing minute.
    let req_60s = stats
        .get("rates")
        .and_then(|r| r.get("req_per_s_60s"))
        .and_then(Value::as_f64)
        .unwrap();
    assert!(req_60s > 0.0, "{stats:?}");

    server.shutdown();
    server.join();
}

#[test]
fn events_op_returns_the_request_lifecycle() {
    let server = Server::start(quick_config()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let reply = client
        .request(r#"{"op":"predict","nf":"nat","nic":"no-such-nic"}"#)
        .unwrap();
    assert_eq!(code_of(&reply), 2);

    let reply = client.request(r#"{"op":"events","limit":64}"#).unwrap();
    assert_eq!(code_of(&reply), 0, "{reply:?}");
    let events = reply.get("events").and_then(Value::as_arr).expect("events array");
    assert!(reply.get("recorded").and_then(Value::as_u64).unwrap() >= events.len() as u64);
    // The one job shows up as admit -> dequeue -> complete under a
    // single request id, in sequence order.
    let find = |kind: &str| {
        events.iter().find(|e| e.get("event").and_then(Value::as_str) == Some(kind)).unwrap_or_else(|| panic!("no `{kind}` event: {reply:?}"))
    };
    let (admit, dequeue, complete) = (find("admit"), find("dequeue"), find("complete"));
    let req = |e: &Value| e.get("req").and_then(Value::as_u64).unwrap();
    let seq = |e: &Value| e.get("seq").and_then(Value::as_u64).unwrap();
    assert_eq!(req(admit), req(dequeue));
    assert_eq!(req(admit), req(complete));
    assert!(seq(admit) < seq(dequeue) && seq(dequeue) < seq(complete));
    // An errored job's complete event carries its reply code.
    assert_eq!(complete.get("code").and_then(Value::as_u64), Some(2));

    // limit is respected.
    let reply = client.request(r#"{"op":"events","limit":1}"#).unwrap();
    assert_eq!(reply.get("events").and_then(Value::as_arr).unwrap().len(), 1);

    server.shutdown();
    server.join();
}

#[test]
fn metrics_op_returns_a_prometheus_exposition() {
    let server = Server::start(quick_config()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    assert_eq!(code_of(&client.ping().unwrap()), 0);

    let reply = client.request(r#"{"op":"metrics"}"#).unwrap();
    assert_eq!(code_of(&reply), 0, "{reply:?}");
    assert_eq!(
        reply.get("content_type").and_then(Value::as_str),
        Some("text/plain; version=0.0.4")
    );
    let text = reply.get("text").and_then(Value::as_str).expect("exposition text");
    // The ping and this metrics request are both counted by the time
    // the snapshot renders.
    assert!(text.contains("clara_serve_requests_total 2\n"), "{text}");
    assert!(text.contains("# TYPE clara_serve_service_time_seconds summary\n"), "{text}");
    assert!(text.contains("clara_serve_workers_live 1\n"), "{text}");

    server.shutdown();
    server.join();
}

/// The `retry_after_ms` hint is p90-service-time based: before any job
/// has run it falls back to a 25 ms prior, and once chaos slows real
/// jobs down the hint must grow to match the observed drain speed.
#[test]
fn retry_hint_grows_under_induced_slowdowns() {
    let config = ServeConfig {
        chaos: Some(slow_only(400)),
        ..quick_config()
    };
    let server = Server::start(config).unwrap();
    let addr = server.addr();

    let fire = |n: usize| -> Vec<(u64, Value)> {
        let handles: Vec<_> = (0..n)
            .map(|_| {
                thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let reply = client
                        .request(r#"{"op":"predict","nf":"nat","nic":"no-such-nic"}"#)
                        .unwrap();
                    (code_of(&reply), reply)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    };
    let hints = |replies: &[(u64, Value)]| -> Vec<u64> {
        replies
            .iter()
            .filter(|(code, _)| *code == 20)
            .map(|(_, r)| r.get("retry_after_ms").and_then(Value::as_u64).unwrap())
            .collect()
    };

    // Phase 1: six concurrent requests against a worker that sleeps
    // 400 ms per job. Sheds are immediate, so they all happen before
    // the first job completes — every hint comes from the prior.
    let early = fire(6);
    let early_hints = hints(&early);
    assert!(!early_hints.is_empty(), "nothing shed: {early:?}");

    // Wait out the queue so the service histogram now holds only
    // chaos-slowed (>= 400 ms) observations.
    let mut client = Client::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = client.stats().unwrap();
        let idle = stats.get("inflight").and_then(Value::as_u64) == Some(0)
            && stats.get("queue_depth").and_then(Value::as_u64) == Some(0);
        if idle {
            break;
        }
        assert!(Instant::now() < deadline, "queue never drained: {stats:?}");
        thread::sleep(Duration::from_millis(50));
    }

    // Phase 2: overload again; the hint must now reflect the observed
    // p90 and dwarf every prior-based hint.
    let late = fire(6);
    let late_hints = hints(&late);
    assert!(!late_hints.is_empty(), "nothing shed in phase 2: {late:?}");
    // Compare against the *smallest* early hint: the first sheds are
    // guaranteed prior-based even if a straggler in phase 1 raced past
    // the first completion.
    let early_min = *early_hints.iter().min().unwrap();
    let late_min = *late_hints.iter().min().unwrap();
    assert!(
        late_min > early_min,
        "hint did not grow under slow-downs: early {early_hints:?}, late {late_hints:?}"
    );
    // And it is in the right ballpark: (queue+1) * p90 / workers with
    // p90 >= 400 ms gives >= 800 ms.
    assert!(late_min >= 400, "late hint implausibly small: {late_hints:?}");

    server.shutdown();
    server.join();
}

#[test]
fn shutdown_drains_inflight_work_and_refuses_late_arrivals() {
    let config = ServeConfig {
        workers: 1,
        queue_cap: 4,
        read_timeout_ms: 1_000,
        chaos: Some(slow_only(400)),
        ..ServeConfig::default()
    };
    let server = Server::start(config).unwrap();
    let addr = server.addr();

    // An in-flight job that outlives the shutdown call.
    let inflight = thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        let reply = client
            .request(r#"{"op":"predict","nf":"nat","nic":"no-such-nic"}"#)
            .unwrap();
        code_of(&reply)
    });
    thread::sleep(Duration::from_millis(100));

    let mut client = Client::connect(addr).unwrap();
    let reply = client.shutdown().unwrap();
    assert_eq!(reply.get("draining").and_then(Value::as_bool), Some(true));

    // The admitted job still completes with its real reply.
    assert_eq!(inflight.join().unwrap(), 2, "in-flight job was dropped");

    // New connections are refused once the accept loop exits.
    let deadline = Instant::now() + Duration::from_secs(3);
    loop {
        match Client::connect_timeout(addr, Duration::from_millis(200)) {
            Err(_) => break,
            Ok(mut late) => {
                // Accept loop may still be mid-poll; a late request on a
                // fresh connection must at least be refused.
                match late.request(r#"{"op":"predict","nf":"nat"}"#) {
                    Ok(v) => assert_eq!(code_of(&v), 25, "{v:?}"),
                    Err(ClientError::Frame(_) | ClientError::Closed) => {}
                    Err(e) => panic!("unexpected client error: {e}"),
                }
            }
        }
        assert!(Instant::now() < deadline, "listener never closed");
        thread::sleep(Duration::from_millis(50));
    }

    let stats = server.join();
    assert_eq!(stats.accepted, 1, "{stats:?}");
}
