//! Counter bundles for the two compute-heavy layers: the ILP solver and
//! the NIC simulator.
//!
//! Both are plain data, deterministic for identical inputs (nothing here
//! is keyed on wall-clock), and mergeable so sweeps can aggregate
//! per-cell stats into one run-level view.

/// What one branch-and-bound ILP solve did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveStats {
    /// Branch-and-bound nodes popped from the frontier.
    pub nodes_explored: u64,
    /// LP relaxations solved (cold or warm).
    pub lp_solves: u64,
    /// Simplex pivots across all relaxations (primal + dual).
    pub simplex_pivots: u64,
    /// Warm-started relaxations whose warm basis was accepted.
    pub warm_start_hits: u64,
    /// Warm-started relaxations that fell back to a cold solve.
    pub warm_start_misses: u64,
    /// Relaxations answered from the bound-vector memo without any LP.
    pub memo_hits: u64,
    /// Cross-cell warm starts accepted: the solve was seeded with an
    /// adjacent sweep cell's incumbent (and root basis) and the seed
    /// passed feasibility verification.
    pub cell_warm_hits: u64,
    /// Cross-cell warm starts offered but rejected (seed infeasible or
    /// out of bounds for this cell): the solve ran cold.
    pub cell_warm_misses: u64,
    /// Incumbent improvements as `(nodes_explored_at_improvement,
    /// objective)` pairs — the solver's convergence curve, keyed on node
    /// count (not time) so identical solves record identical
    /// trajectories.
    pub incumbent_trajectory: Vec<(u64, f64)>,
    /// Whether branch-and-bound ran to completion.
    pub proven_optimal: bool,
}

impl SolveStats {
    /// Fold `other` into `self`: counters add, `proven_optimal` ANDs,
    /// and the (per-solve) trajectory is left untouched — a merged view
    /// has no single convergence curve.
    pub fn merge(&mut self, other: &SolveStats) {
        self.nodes_explored += other.nodes_explored;
        self.lp_solves += other.lp_solves;
        self.simplex_pivots += other.simplex_pivots;
        self.warm_start_hits += other.warm_start_hits;
        self.warm_start_misses += other.warm_start_misses;
        self.memo_hits += other.memo_hits;
        self.cell_warm_hits += other.cell_warm_hits;
        self.cell_warm_misses += other.cell_warm_misses;
        self.proven_optimal &= other.proven_optimal;
    }

    /// Compact one-line summary for per-cell report rows.
    pub fn summary(&self) -> String {
        format!(
            "ilp: nodes={} pivots={} warm={}/{} memo={} cell-warm={}/{}",
            self.nodes_explored,
            self.simplex_pivots,
            self.warm_start_hits,
            self.warm_start_hits + self.warm_start_misses,
            self.memo_hits,
            self.cell_warm_hits,
            self.cell_warm_hits + self.cell_warm_misses,
        )
    }
}

/// Occupancy of one NPU island's thread pool.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IslandStats {
    /// Island index.
    pub island: usize,
    /// Hardware threads the island contributes.
    pub threads: u64,
    /// Cycles those threads spent processing packets.
    pub busy_cycles: u64,
}

impl IslandStats {
    /// Busy fraction of the island over a run spanning `span_cycles`.
    pub fn occupancy(&self, span_cycles: u64) -> f64 {
        let capacity = self.threads.saturating_mul(span_cycles);
        if capacity == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / capacity as f64
        }
    }
}

/// Access count of one memory level.
///
/// Counts *computed* accesses: stages collapsed by signature memoization
/// reuse a previously computed cost and do not re-touch the memory
/// model, so memoized runs legitimately report fewer accesses than
/// exact runs. EMEM *cache* statistics are exact in both modes (cached
/// regions are always simulated live).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemLevelStats {
    /// Region name (`lmem`, `ctm0`, `imem`, `emem`, ...).
    pub name: String,
    /// Accesses issued against the region.
    pub accesses: u64,
}

/// One accelerator's queueing behavior (single-server FIFO).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccelStats {
    /// Accelerator name (`checksum`, `crypto`, `flow-cache`, `lpm`).
    pub name: String,
    /// Calls serviced.
    pub calls: u64,
    /// Cycles the engine spent serving calls.
    pub busy_cycles: u64,
    /// Cycles callers spent head-of-line blocked behind earlier calls.
    pub hol_stall_cycles: u64,
    /// High-water mark of requests queued (including the one in
    /// service) at any call's arrival.
    pub queue_highwater: u64,
}

/// What one simulation run observed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Packets offered to ingress.
    pub injected: u64,
    /// Packets that completed processing (truncated packets complete).
    pub completed: u64,
    /// Packets truncated by fault injection (processed, shorter).
    pub truncated: u64,
    /// Drops: ingress queue overflow.
    pub overflow_drops: u64,
    /// Drops: fault-injected packet corruption.
    pub fault_corrupt_drops: u64,
    /// Drops: a required offline accelerator (fault-injected outage).
    pub fault_accel_drops: u64,
    /// Runs aborted by the simulation watchdog (filled by the caller
    /// that observed the watchdog error; a tripped run reports no other
    /// counters).
    pub watchdog_trips: u64,
    /// Packets whose costs came from the batched struct-of-arrays
    /// kernel (equals `completed` when the batch path ran, 0 when the
    /// scalar loop did — a silent fallback is visible here).
    pub batch_packets: u64,
    /// Packets whose per-thread schedule was computed island-parallel
    /// (subset of `batch_packets`; 0 unless islands mode engaged).
    pub island_packets: u64,
    /// Packets completed by the partial-run batch kernel (Live stages
    /// present; pure stages columnized, live ones replayed). Disjoint
    /// from `batch_packets` — a run takes one kernel or the other.
    pub batch_partial_packets: u64,
    /// Pure stage costs resolved from a shared cross-run cost cache
    /// (`clara-nicsim`'s `CostCache`): run-local memo misses answered
    /// without recomputation. Zero when no cache is attached.
    pub memo_hits: u64,
    /// Pure stage costs that had to be computed by the exact path this
    /// run (then published when a shared cache was attached).
    pub memo_misses: u64,
    /// Per-island thread occupancy.
    pub islands: Vec<IslandStats>,
    /// Per-memory-level access counts.
    pub mem_levels: Vec<MemLevelStats>,
    /// EMEM cache hits.
    pub emem_cache_hits: u64,
    /// EMEM cache misses.
    pub emem_cache_misses: u64,
    /// Per-accelerator queue stats.
    pub accels: Vec<AccelStats>,
    /// Transfers over the island switch fabric: accesses leaving an
    /// island (shared IMEM/EMEM traffic) plus accelerator calls.
    pub switch_transfers: u64,
    /// Makespan of the run in cycles (last completion).
    pub span_cycles: u64,
}

impl SimStats {
    /// Total drops across all causes.
    pub fn dropped_total(&self) -> u64 {
        self.overflow_drops + self.fault_corrupt_drops + self.fault_accel_drops
    }

    /// Packet conservation: every injected packet either completed or
    /// is accounted to exactly one drop cause, and fast-path counters
    /// never claim more packets than actually completed (the batch
    /// kernel covers whole runs, islands mode a subset of batched ones).
    pub fn conserved(&self) -> bool {
        self.injected == self.completed + self.dropped_total()
            && self.batch_packets + self.batch_partial_packets <= self.completed
            && self.island_packets <= self.batch_packets
    }

    /// EMEM cache hit rate, or `None` when the cache saw no traffic.
    pub fn emem_hit_rate(&self) -> Option<f64> {
        let total = self.emem_cache_hits + self.emem_cache_misses;
        if total == 0 {
            None
        } else {
            Some(self.emem_cache_hits as f64 / total as f64)
        }
    }

    /// Fold `other` into `self`, matching islands / memory levels /
    /// accelerators by identity and summing everything else. The merged
    /// `span_cycles` adds (sequential-cell semantics: total simulated
    /// time across cells).
    pub fn merge(&mut self, other: &SimStats) {
        self.injected += other.injected;
        self.completed += other.completed;
        self.truncated += other.truncated;
        self.overflow_drops += other.overflow_drops;
        self.fault_corrupt_drops += other.fault_corrupt_drops;
        self.fault_accel_drops += other.fault_accel_drops;
        self.watchdog_trips += other.watchdog_trips;
        self.batch_packets += other.batch_packets;
        self.island_packets += other.island_packets;
        self.batch_partial_packets += other.batch_partial_packets;
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
        self.emem_cache_hits += other.emem_cache_hits;
        self.emem_cache_misses += other.emem_cache_misses;
        self.switch_transfers += other.switch_transfers;
        self.span_cycles += other.span_cycles;
        for is in &other.islands {
            match self.islands.iter_mut().find(|x| x.island == is.island) {
                Some(x) => {
                    x.busy_cycles += is.busy_cycles;
                    x.threads = x.threads.max(is.threads);
                }
                None => self.islands.push(is.clone()),
            }
        }
        for ml in &other.mem_levels {
            match self.mem_levels.iter_mut().find(|x| x.name == ml.name) {
                Some(x) => x.accesses += ml.accesses,
                None => self.mem_levels.push(ml.clone()),
            }
        }
        for ac in &other.accels {
            match self.accels.iter_mut().find(|x| x.name == ac.name) {
                Some(x) => {
                    x.calls += ac.calls;
                    x.busy_cycles += ac.busy_cycles;
                    x.hol_stall_cycles += ac.hol_stall_cycles;
                    x.queue_highwater = x.queue_highwater.max(ac.queue_highwater);
                }
                None => self.accels.push(ac.clone()),
            }
        }
    }

    /// Compact one-line summary for per-cell report rows.
    pub fn summary(&self) -> String {
        let drops = self.dropped_total();
        let mut s = match self.emem_hit_rate() {
            Some(rate) => format!(
                "sim: injected={} completed={} drops={} emem-hit={:.1}%",
                self.injected,
                self.completed,
                drops,
                rate * 100.0
            ),
            None => format!(
                "sim: injected={} completed={} drops={}",
                self.injected, self.completed, drops
            ),
        };
        if self.batch_packets > 0 {
            s += &format!(" batch={}", self.batch_packets);
        }
        if self.island_packets > 0 {
            s += &format!(" islands={}", self.island_packets);
        }
        if self.batch_partial_packets > 0 {
            s += &format!(" partial={}", self.batch_partial_packets);
        }
        if self.memo_hits + self.memo_misses > 0 {
            s += &format!(" memo={}/{}", self.memo_hits, self.memo_hits + self.memo_misses);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_checks_add_up() {
        let s = SimStats {
            injected: 100,
            completed: 90,
            overflow_drops: 4,
            fault_corrupt_drops: 5,
            fault_accel_drops: 1,
            ..SimStats::default()
        };
        assert_eq!(s.dropped_total(), 10);
        assert!(s.conserved());
        let bad = SimStats { completed: 89, ..s };
        assert!(!bad.conserved());
    }

    #[test]
    fn partial_and_memo_counters_conserve_merge_and_summarize() {
        let mut a = SimStats {
            injected: 10,
            completed: 10,
            batch_partial_packets: 10,
            memo_hits: 3,
            memo_misses: 1,
            ..SimStats::default()
        };
        assert!(a.conserved());
        // Full and partial kernels are disjoint: together they can never
        // claim more packets than completed.
        let double = SimStats { batch_packets: 1, ..a.clone() };
        assert!(!double.conserved());
        let b = SimStats {
            injected: 5,
            completed: 5,
            batch_partial_packets: 5,
            memo_hits: 2,
            memo_misses: 0,
            ..SimStats::default()
        };
        a.merge(&b);
        assert_eq!(a.batch_partial_packets, 15);
        assert_eq!((a.memo_hits, a.memo_misses), (5, 1));
        assert!(a.conserved());
        let s = a.summary();
        assert!(s.contains("partial=15"), "{s}");
        assert!(s.contains("memo=5/6"), "{s}");
    }

    #[test]
    fn emem_hit_rate_handles_empty_cache() {
        assert_eq!(SimStats::default().emem_hit_rate(), None);
        let s = SimStats { emem_cache_hits: 3, emem_cache_misses: 1, ..SimStats::default() };
        assert_eq!(s.emem_hit_rate(), Some(0.75));
    }

    #[test]
    fn sim_merge_sums_and_matches_by_identity() {
        let mut a = SimStats {
            injected: 10,
            completed: 10,
            islands: vec![IslandStats { island: 0, threads: 8, busy_cycles: 100 }],
            mem_levels: vec![MemLevelStats { name: "emem".into(), accesses: 5 }],
            accels: vec![AccelStats {
                name: "checksum".into(),
                calls: 2,
                busy_cycles: 40,
                hol_stall_cycles: 3,
                queue_highwater: 1,
            }],
            ..SimStats::default()
        };
        let b = SimStats {
            injected: 7,
            completed: 6,
            overflow_drops: 1,
            islands: vec![
                IslandStats { island: 0, threads: 8, busy_cycles: 50 },
                IslandStats { island: 1, threads: 8, busy_cycles: 25 },
            ],
            mem_levels: vec![MemLevelStats { name: "imem".into(), accesses: 2 }],
            accels: vec![AccelStats {
                name: "checksum".into(),
                calls: 1,
                busy_cycles: 20,
                hol_stall_cycles: 0,
                queue_highwater: 3,
            }],
            ..SimStats::default()
        };
        a.merge(&b);
        assert_eq!(a.injected, 17);
        assert!(a.conserved());
        assert_eq!(a.islands.len(), 2);
        assert_eq!(a.islands[0].busy_cycles, 150);
        assert_eq!(a.mem_levels.len(), 2);
        assert_eq!(a.accels[0].calls, 3);
        assert_eq!(a.accels[0].queue_highwater, 3);
    }

    #[test]
    fn solve_merge_sums_counters() {
        let mut a = SolveStats {
            nodes_explored: 5,
            simplex_pivots: 40,
            proven_optimal: true,
            incumbent_trajectory: vec![(1, 9.0)],
            ..SolveStats::default()
        };
        let b = SolveStats {
            nodes_explored: 3,
            simplex_pivots: 10,
            warm_start_hits: 2,
            proven_optimal: true,
            ..SolveStats::default()
        };
        a.merge(&b);
        assert_eq!(a.nodes_explored, 8);
        assert_eq!(a.simplex_pivots, 50);
        assert_eq!(a.warm_start_hits, 2);
        assert!(a.proven_optimal);
        assert_eq!(a.incumbent_trajectory, vec![(1, 9.0)]);
    }

    #[test]
    fn island_occupancy_is_bounded() {
        let is = IslandStats { island: 0, threads: 4, busy_cycles: 100 };
        assert!((is.occupancy(50) - 0.5).abs() < 1e-12);
        assert_eq!(is.occupancy(0), 0.0);
    }
}
