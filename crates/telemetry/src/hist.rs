//! A lock-free log-linear histogram for latency-style values.
//!
//! The serving layer needs tail latency, not averages, and it needs it
//! recorded from many worker threads without a lock on the hot path.
//! [`Histogram`] is a fixed table of atomic buckets indexed by a
//! log-linear scheme (HdrHistogram-style, dependency-free):
//!
//! * Values below 2^[`SUB_BITS`] (= 16) get one exact bucket each.
//! * Above that, each power-of-two octave is split into 16 linear
//!   sub-buckets, so the bucket width at magnitude `2^e` is `2^(e-4)`.
//!
//! That bounds the *relative* quantization error: a bucket's
//! representative value (its lower bound) satisfies
//! `rep <= v < rep + v/16`, i.e. a recorded value is reproduced to
//! within **6.25 %** regardless of magnitude — microsecond queue waits
//! and multi-second solver stalls share one 976-bucket table (~8 KiB).
//! A property test pins this bound.
//!
//! `record` is wait-free: one index computation plus four relaxed
//! atomic RMWs (bucket, count, sum, max), no CAS loops, no locks.
//! Recording is monotonic-only, so concurrent readers can take a
//! merely *coherent-enough* snapshot: quantiles are computed over a
//! bucket-by-bucket relaxed copy, which is exact once writers quiesce
//! and at worst a few in-flight records stale under load.
//!
//! Histograms are mergeable ([`Histogram::merge_from`], used by
//! fan-out workers) and summarizable ([`HistSummary`]) with
//! nearest-rank quantiles — no interpolation, so a quantile is always
//! a value that was actually (up to bucket width) observed.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-bucket bits per octave: 16 sub-buckets, ≤ 6.25 % error.
pub const SUB_BITS: u32 = 4;
const SUBS: usize = 1 << SUB_BITS;
/// Octaves above the linear range (`u64` exponents 4..=63).
const OCTAVES: usize = 64 - SUB_BITS as usize;
/// Total bucket count: 16 exact low buckets + 60 octaves × 16.
pub const BUCKETS: usize = SUBS + OCTAVES * SUBS;

/// Maximum relative quantization error of a bucket representative.
pub const MAX_REL_ERROR: f64 = 1.0 / SUBS as f64;

/// Bucket index for a value (total function over `u64`).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        v as usize
    } else {
        // Floor log2 is at least SUB_BITS here, so the shifts are safe.
        let exp = 63 - v.leading_zeros();
        let sub = ((v >> (exp - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        SUBS + (exp - SUB_BITS) as usize * SUBS + sub
    }
}

/// The lower bound (= representative value) of a bucket. Inverse of
/// [`bucket_index`] up to quantization: `floor(i) <= v` for every `v`
/// with `bucket_index(v) == i`.
#[inline]
pub fn bucket_floor(index: usize) -> u64 {
    if index < SUBS {
        index as u64
    } else {
        let oct = (index - SUBS) / SUBS;
        let sub = ((index - SUBS) % SUBS) as u64;
        let exp = oct as u32 + SUB_BITS;
        (1u64 << exp) + (sub << (exp - SUB_BITS))
    }
}

/// A lock-free log-linear histogram of `u64` values (unit-agnostic;
/// the serving layer records microseconds).
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .field("max", &self.max.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Histogram {
    pub fn new() -> Self {
        // `AtomicU64` isn't Copy; build the boxed array through a Vec.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> =
            v.into_boxed_slice().try_into().expect("bucket count is fixed");
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value. Wait-free: relaxed atomics only.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total records so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Fold another histogram's counts into this one (bucket-wise adds;
    /// associative and commutative, pinned by property tests).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket table for quantile queries.
    pub fn snapshot(&self) -> HistSnapshot {
        let buckets: Vec<u64> =
            self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        HistSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Convenience: the compact summary most callers want.
    pub fn summary(&self) -> HistSummary {
        self.snapshot().summary()
    }

    /// Nearest-rank quantile, or `default` while the histogram is
    /// empty (the serving layer keeps its 25 ms prior this way).
    pub fn quantile_or(&self, q: f64, default: u64) -> u64 {
        let snap = self.snapshot();
        if snap.count == 0 {
            default
        } else {
            snap.quantile(q)
        }
    }
}

/// An owned copy of a histogram's state; all queries are answered here
/// so a set of quantiles reads the buckets exactly once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl HistSnapshot {
    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The exact (not quantized) largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Per-bucket (floor, count) pairs for non-empty buckets, in
    /// ascending value order — the dashboard's sparkline input.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_floor(i), n))
            .collect()
    }

    /// Nearest-rank quantile (`q` clamped to `[0, 1]`): the
    /// representative of the bucket holding the `ceil(q·count)`-th
    /// smallest record; `q == 1` returns the exact max. Returns 0 for
    /// an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The top bucket's floor can quantize above the true
                // max (which is tracked exactly); never report past it.
                return bucket_floor(i).min(self.max);
            }
        }
        self.max
    }

    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            sum: self.sum,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max,
        }
    }
}

/// The compact quantile summary surfaced by the `stats` op, the
/// drain-time telemetry report, and `BENCH_serve.json`. All fields are
/// in the recorded unit (microseconds in the serving layer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistSummary {
    pub count: u64,
    pub sum: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub max: u64,
}

impl HistSummary {
    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_values_are_exact_and_buckets_are_contiguous() {
        for v in 0..16u64 {
            assert_eq!(bucket_floor(bucket_index(v)), v);
        }
        // Index is monotone and floors invert indices everywhere.
        let mut last = 0;
        for i in 0..BUCKETS {
            let f = bucket_floor(i);
            assert!(i == 0 || f > last, "floor not increasing at {i}");
            assert_eq!(bucket_index(f), i, "floor of {i} maps back");
            last = f;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_of_a_known_stream() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.max(), 100);
        // Nearest-rank p50 of 1..=100 is 50; the bucket holding 50
        // spans [50, 52), so the representative is exactly 50.
        assert_eq!(s.quantile(0.50), 50);
        assert_eq!(s.quantile(1.0), 100);
        assert!(s.quantile(0.99) <= 100 && s.quantile(0.99) >= 93);
        let sum: u64 = (1..=100).sum();
        assert_eq!(s.sum(), sum);
    }

    #[test]
    fn merge_adds_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge_from(&b);
        let s = a.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.p50, 10);
    }

    #[test]
    fn empty_histogram_uses_the_default() {
        let h = Histogram::new();
        assert_eq!(h.quantile_or(0.9, 25_000), 25_000);
        h.record(7);
        assert_eq!(h.quantile_or(0.9, 25_000), 7);
    }

    #[test]
    fn concurrent_records_conserve_count() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + i % 997);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 40_000);
        let bucket_total: u64 = s.nonzero_buckets().iter().map(|(_, n)| n).sum();
        assert_eq!(bucket_total, 40_000);
    }
}
